// Copyright 2026 The SemTree Authors
//
// Terms are the elements of a triple. Following the paper (§III-A), a
// term is either a *concept* — a vocabulary entry, optionally qualified
// by a prefix as in "Fun:accept_cmd" ("the meaning of the concept x can
// be found by using the prefix X") — or a *literal/constant* such as the
// identifier 'OBSW001'.

#ifndef SEMTREE_RDF_TERM_H_
#define SEMTREE_RDF_TERM_H_

#include <functional>
#include <string>
#include <string_view>

namespace semtree {

/// One element (subject, predicate or object) of a triple.
class Term {
 public:
  enum class Kind {
    kConcept,  ///< Vocabulary concept, resolvable in a taxonomy.
    kLiteral,  ///< Opaque constant compared by string distance.
  };

  Term() : kind_(Kind::kLiteral) {}

  /// Concept with an optional vocabulary prefix ("" = standard
  /// vocabulary).
  static Term Concept(std::string_view name, std::string_view prefix = "");

  /// Literal/constant term.
  static Term Literal(std::string_view value);

  Kind kind() const { return kind_; }
  bool is_concept() const { return kind_ == Kind::kConcept; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }

  /// Concept name or literal value.
  const std::string& value() const { return value_; }

  /// Vocabulary prefix; empty for literals and unprefixed concepts.
  const std::string& prefix() const { return prefix_; }

  /// Paper-style rendering: 'literal' or Prefix:name or name.
  std::string ToString() const;

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && value_ == other.value_ &&
           prefix_ == other.prefix_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const;

  /// Stable hash, suitable for unordered containers.
  size_t Hash() const;

 private:
  Kind kind_;
  std::string value_;
  std::string prefix_;
};

struct TermHasher {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace semtree

#endif  // SEMTREE_RDF_TERM_H_

// Copyright 2026 The SemTree Authors

#include "rdf/triple_store.h"

#include <algorithm>

namespace semtree {

TripleId TripleStore::Add(Triple triple, DocumentId doc) {
  TripleId id = triples_.size();
  by_subject_[triple.subject].push_back(id);
  by_predicate_[triple.predicate].push_back(id);
  by_object_[triple.object].push_back(id);
  if (doc != kNoDocument) by_document_[doc].push_back(id);
  triples_.push_back(std::move(triple));
  documents_.push_back(doc);
  return id;
}

const TripleStore::PostingList* TripleStore::Lookup(const TermIndex& index,
                                                    const Term& t) {
  auto it = index.find(t);
  return it == index.end() ? nullptr : &it->second;
}

std::vector<TripleId> TripleStore::Match(
    const std::optional<Term>& subject,
    const std::optional<Term>& predicate,
    const std::optional<Term>& object) const {
  // Gather the posting lists of the bound positions; the smallest list
  // drives the scan.
  std::vector<const PostingList*> lists;
  if (subject) {
    const PostingList* l = Lookup(by_subject_, *subject);
    if (!l) return {};
    lists.push_back(l);
  }
  if (predicate) {
    const PostingList* l = Lookup(by_predicate_, *predicate);
    if (!l) return {};
    lists.push_back(l);
  }
  if (object) {
    const PostingList* l = Lookup(by_object_, *object);
    if (!l) return {};
    lists.push_back(l);
  }
  if (lists.empty()) {
    // Full scan: every id.
    std::vector<TripleId> all(triples_.size());
    for (TripleId i = 0; i < triples_.size(); ++i) all[i] = i;
    return all;
  }
  const PostingList* smallest = lists[0];
  for (const PostingList* l : lists) {
    if (l->size() < smallest->size()) smallest = l;
  }
  std::vector<TripleId> out;
  for (TripleId id : *smallest) {
    const Triple& t = triples_[id];
    if (subject && !(t.subject == *subject)) continue;
    if (predicate && !(t.predicate == *predicate)) continue;
    if (object && !(t.object == *object)) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<TripleId> TripleStore::ByDocument(DocumentId doc) const {
  auto it = by_document_.find(doc);
  return it == by_document_.end() ? std::vector<TripleId>{} : it->second;
}

}  // namespace semtree

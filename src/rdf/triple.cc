// Copyright 2026 The SemTree Authors

#include "rdf/triple.h"

namespace semtree {

std::string Triple::ToString() const {
  return "(" + subject.ToString() + ", " + predicate.ToString() + ", " +
         object.ToString() + ")";
}

bool Triple::operator<(const Triple& other) const {
  if (subject != other.subject) return subject < other.subject;
  if (predicate != other.predicate) return predicate < other.predicate;
  return object < other.object;
}

size_t Triple::Hash() const {
  size_t h = subject.Hash();
  h = h * 2654435761u ^ predicate.Hash();
  h = h * 2654435761u ^ object.Hash();
  return h;
}

}  // namespace semtree

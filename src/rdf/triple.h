// Copyright 2026 The SemTree Authors
//
// (subject, predicate, object) statements, as in the RDF model (§I).

#ifndef SEMTREE_RDF_TRIPLE_H_
#define SEMTREE_RDF_TRIPLE_H_

#include <cstdint>
#include <string>

#include "rdf/term.h"

namespace semtree {

/// Stable identifier of a triple inside a TripleStore.
using TripleId = uint64_t;

/// Identifier of the source document a triple was extracted from.
using DocumentId = uint32_t;

inline constexpr DocumentId kNoDocument = ~0u;

/// One (subject, predicate, object) assertion.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  Triple() = default;
  Triple(Term s, Term p, Term o)
      : subject(std::move(s)),
        predicate(std::move(p)),
        object(std::move(o)) {}

  /// Paper-style rendering: ('OBSW001', Fun:accept_cmd, CmdType:start-up).
  std::string ToString() const;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }
  bool operator<(const Triple& other) const;

  size_t Hash() const;
};

struct TripleHasher {
  size_t operator()(const Triple& t) const { return t.Hash(); }
};

}  // namespace semtree

#endif  // SEMTREE_RDF_TRIPLE_H_

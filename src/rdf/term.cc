// Copyright 2026 The SemTree Authors

#include "rdf/term.h"

namespace semtree {

Term Term::Concept(std::string_view name, std::string_view prefix) {
  Term t;
  t.kind_ = Kind::kConcept;
  t.value_ = std::string(name);
  t.prefix_ = std::string(prefix);
  return t;
}

Term Term::Literal(std::string_view value) {
  Term t;
  t.kind_ = Kind::kLiteral;
  t.value_ = std::string(value);
  return t;
}

std::string Term::ToString() const {
  if (is_literal()) return "'" + value_ + "'";
  if (prefix_.empty()) return value_;
  return prefix_ + ":" + value_;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  if (prefix_ != other.prefix_) return prefix_ < other.prefix_;
  return value_ < other.value_;
}

size_t Term::Hash() const {
  size_t h = std::hash<int>()(static_cast<int>(kind_));
  h = h * 1315423911u ^ std::hash<std::string>()(value_);
  h = h * 1315423911u ^ std::hash<std::string>()(prefix_);
  return h;
}

}  // namespace semtree

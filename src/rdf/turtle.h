// Copyright 2026 The SemTree Authors
//
// Parser and serializer for the paper's Turtle-like triple notation:
//
//   ('OBSW001', Fun:accept_cmd, CmdType:start-up)
//
// Elements are either single-quoted literals or (optionally prefixed)
// concept names. One triple per line; '#' starts a comment.

#ifndef SEMTREE_RDF_TURTLE_H_
#define SEMTREE_RDF_TURTLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace semtree {

/// Parses a single "(s, p, o)" line.
Result<Triple> ParseTriple(std::string_view line);

/// Parses a whole document (one triple per line, comments allowed).
/// Fails with InvalidArgument naming the offending line.
Result<std::vector<Triple>> ParseTriples(std::string_view text);

/// Renders triples one per line in the notation ParseTriples accepts.
std::string SerializeTriples(const std::vector<Triple>& triples);

}  // namespace semtree

#endif  // SEMTREE_RDF_TURTLE_H_

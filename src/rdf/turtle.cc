// Copyright 2026 The SemTree Authors

#include "rdf/turtle.h"

#include "common/string_util.h"

namespace semtree {

namespace {

// Parses one element: 'literal' | Prefix:name | name.
Result<Term> ParseElement(std::string_view raw) {
  std::string_view s = Trim(raw);
  if (s.empty()) return Status::InvalidArgument("empty triple element");
  if (s.front() == '\'') {
    if (s.size() < 2 || s.back() != '\'') {
      return Status::InvalidArgument("unterminated literal: " +
                                     std::string(s));
    }
    return Term::Literal(s.substr(1, s.size() - 2));
  }
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Term::Concept(s);
  }
  std::string_view prefix = s.substr(0, colon);
  std::string_view name = s.substr(colon + 1);
  if (prefix.empty() || name.empty()) {
    return Status::InvalidArgument("malformed prefixed concept: " +
                                   std::string(s));
  }
  return Term::Concept(name, prefix);
}

// Splits the interior of "(a, b, c)" on top-level commas, respecting
// quoted literals (which may contain commas).
Result<std::vector<std::string>> SplitElements(std::string_view inner) {
  std::vector<std::string> parts;
  std::string cur;
  bool in_quote = false;
  for (char c : inner) {
    if (c == '\'') in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quote) return Status::InvalidArgument("unterminated literal");
  parts.push_back(cur);
  return parts;
}

}  // namespace

Result<Triple> ParseTriple(std::string_view line) {
  std::string_view s = Trim(line);
  if (s.size() < 2 || s.front() != '(' || s.back() != ')') {
    return Status::InvalidArgument("triple must be parenthesized: " +
                                   std::string(s));
  }
  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> parts,
                           SplitElements(s.substr(1, s.size() - 2)));
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        StringPrintf("expected 3 elements, found %zu", parts.size()));
  }
  SEMTREE_ASSIGN_OR_RETURN(Term subj, ParseElement(parts[0]));
  SEMTREE_ASSIGN_OR_RETURN(Term pred, ParseElement(parts[1]));
  SEMTREE_ASSIGN_OR_RETURN(Term obj, ParseElement(parts[2]));
  return Triple(std::move(subj), std::move(pred), std::move(obj));
}

Result<std::vector<Triple>> ParseTriples(std::string_view text) {
  std::vector<Triple> out;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto triple = ParseTriple(line);
    if (!triple.ok()) {
      return Status::InvalidArgument(StringPrintf(
          "line %zu: %s", line_no, triple.status().message().c_str()));
    }
    out.push_back(std::move(*triple));
  }
  return out;
}

std::string SerializeTriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// An in-memory triple store with per-position indexes for pattern
// queries (the exact-match complement of SemTree's similarity queries;
// also the substrate the ground-truth oracle scans).

#ifndef SEMTREE_RDF_TRIPLE_STORE_H_
#define SEMTREE_RDF_TRIPLE_STORE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace semtree {

/// Append-only store of triples with provenance and pattern matching.
/// TripleIds are dense: 0 .. size()-1.
///
/// Thread-compatible: concurrent reads are safe once loading finishes.
class TripleStore {
 public:
  TripleStore() = default;

  /// Adds a triple, optionally recording the source document; returns
  /// its id. Duplicate triples are allowed (documents repeat
  /// statements) and get distinct ids.
  TripleId Add(Triple triple, DocumentId doc = kNoDocument);

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  const Triple& Get(TripleId id) const { return triples_[id]; }
  DocumentId document(TripleId id) const { return documents_[id]; }

  const std::vector<Triple>& triples() const { return triples_; }

  /// Ids whose triple matches the pattern; std::nullopt fields are
  /// wildcards. Matching is exact term equality.
  std::vector<TripleId> Match(const std::optional<Term>& subject,
                              const std::optional<Term>& predicate,
                              const std::optional<Term>& object) const;

  /// All ids extracted from the given document.
  std::vector<TripleId> ByDocument(DocumentId doc) const;

  /// Number of distinct subjects / predicates / objects.
  size_t DistinctSubjects() const { return by_subject_.size(); }
  size_t DistinctPredicates() const { return by_predicate_.size(); }
  size_t DistinctObjects() const { return by_object_.size(); }

 private:
  using PostingList = std::vector<TripleId>;
  using TermIndex = std::unordered_map<Term, PostingList, TermHasher>;

  static const PostingList* Lookup(const TermIndex& index, const Term& t);

  std::vector<Triple> triples_;
  std::vector<DocumentId> documents_;
  TermIndex by_subject_;
  TermIndex by_predicate_;
  TermIndex by_object_;
  std::unordered_map<DocumentId, PostingList> by_document_;
};

}  // namespace semtree

#endif  // SEMTREE_RDF_TRIPLE_STORE_H_

// Copyright 2026 The SemTree Authors

#include "cluster/cluster.h"

#include <thread>

#include "common/logging.h"

namespace semtree {

Cluster::Cluster(ClusterOptions options) : options_(options) {
  const bool delayed = options_.latency.count() > 0 ||
                       options_.bandwidth_bytes_per_us > 0.0;
  if (delayed) {
    net_running_ = true;
    net_thread_ = std::thread([this]() { NetworkLoop(); });
  }
}

Cluster::~Cluster() { Shutdown(); }

ComputeNode* Cluster::AddNode() {
  MutexLock lock(nodes_mu_);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<ComputeNode>(id, this));
  return nodes_.back().get();
}

ComputeNode* Cluster::node(NodeId id) const {
  MutexLock lock(nodes_mu_);
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[static_cast<size_t>(id)].get();
}

size_t Cluster::NodeCount() const {
  MutexLock lock(nodes_mu_);
  return nodes_.size();
}

std::chrono::steady_clock::time_point Cluster::DeliveryTime(
    size_t bytes) const {
  auto now = std::chrono::steady_clock::now();
  auto delay = options_.latency;
  if (options_.bandwidth_bytes_per_us > 0.0) {
    delay += std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(bytes) / options_.bandwidth_bytes_per_us));
  }
  return now + delay;
}

void Cluster::Account(const Message& msg) {
  MutexLock lock(stats_mu_);
  ++stats_.messages;
  stats_.bytes += msg.approx_bytes;
  if (msg.from != msg.to) ++stats_.remote_messages;
}

void Cluster::Send(NodeId target, uint32_t type, Payload payload,
                   size_t approx_bytes, NodeId from) {
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = target;
  msg.payload = std::move(payload);
  msg.approx_bytes = approx_bytes;
  msg.deliver_at = DeliveryTime(approx_bytes);
  Route(std::move(msg));
}

std::future<Payload> Cluster::Call(NodeId target, uint32_t type,
                                   Payload payload, size_t approx_bytes,
                                   NodeId from) {
  if (is_shutdown_.load(std::memory_order_acquire)) {
    std::promise<Payload> dead;
    dead.set_value(nullptr);
    return dead.get_future();
  }
  uint64_t correlation =
      next_correlation_.fetch_add(1, std::memory_order_relaxed);
  std::future<Payload> future;
  {
    MutexLock lock(pending_mu_);
    future = pending_[correlation].get_future();
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.calls;
  }
  Message msg;
  msg.type = type;
  msg.from = from;
  msg.to = target;
  msg.correlation_id = correlation;
  msg.payload = std::move(payload);
  msg.approx_bytes = approx_bytes;
  msg.deliver_at = DeliveryTime(approx_bytes);
  Route(std::move(msg));
  return future;
}

std::vector<std::future<Payload>> Cluster::CallAll(
    std::vector<OutboundCall> calls, NodeId from) {
  std::vector<std::future<Payload>> futures;
  futures.reserve(calls.size());
  for (OutboundCall& c : calls) {
    futures.push_back(
        Call(c.target, c.type, std::move(c.payload), c.approx_bytes, from));
  }
  return futures;
}

Result<Payload> Cluster::CallAndWait(NodeId target, uint32_t type,
                                     Payload payload, size_t approx_bytes,
                                     NodeId from) {
  std::future<Payload> future =
      Call(target, type, std::move(payload), approx_bytes, from);
  Payload response = future.get();  // Never throws: promise always set.
  if (response == nullptr) {
    return Status::Unavailable("cluster shut down during call");
  }
  return response;
}

void Cluster::Forward(const Message& request, NodeId new_target,
                      NodeId from) {
  {
    MutexLock lock(stats_mu_);
    ++stats_.forwards;
  }
  Message msg = request;  // Payload shared; correlation preserved.
  msg.from = from;
  msg.to = new_target;
  msg.deliver_at = DeliveryTime(msg.approx_bytes);
  Route(std::move(msg));
}

void Cluster::Respond(const Message& request, Payload payload,
                      size_t approx_bytes) {
  if (request.correlation_id == 0) return;  // One-way: nothing to do.
  Message msg;
  msg.type = kResponseType;
  msg.from = request.to;
  msg.to = request.from;
  msg.correlation_id = request.correlation_id;
  msg.payload = std::move(payload);
  msg.approx_bytes = approx_bytes;
  msg.deliver_at = DeliveryTime(approx_bytes);
  Route(std::move(msg));
}

void Cluster::Route(Message msg) {
  Account(msg);
  bool delayed;
  {
    MutexLock lock(net_mu_);
    delayed = net_running_;
    if (delayed) {
      net_queue_.push(Scheduled{msg.deliver_at, net_seq_++, std::move(msg)});
    }
  }
  if (delayed) {
    net_cv_.NotifyOne();
  } else {
    // The move into net_queue_ above happens only when `delayed`; the
    // CFG path from it to here is infeasible.
    DeliverNow(std::move(msg));  // NOLINT(bugprone-use-after-move)
  }
}

void Cluster::DeliverNow(Message&& msg) {
  if (msg.type == kResponseType) {
    std::promise<Payload> promise;
    {
      MutexLock lock(pending_mu_);
      auto it = pending_.find(msg.correlation_id);
      if (it == pending_.end()) {
        SEMTREE_LOG(Warning) << "orphan response for correlation "
                             << msg.correlation_id;
        return;
      }
      promise = std::move(it->second);
      pending_.erase(it);
    }
    promise.set_value(std::move(msg.payload));
    return;
  }
  ComputeNode* target = node(msg.to);
  if (target == nullptr) {
    SEMTREE_LOG(Warning) << "message to unknown node " << msg.to;
    return;
  }
  target->Deliver(std::move(msg));
}

void Cluster::NetworkLoop() {
  // Hand-over-hand locking (the analysis tracks the explicit
  // Lock/Unlock pairs): the loop body runs locked; delivery and the
  // near-deadline spin drop the lock and re-take it before looping.
  net_mu_.Lock();
  for (;;) {
    if (net_queue_.empty()) {
      if (shutdown_) break;
      net_cv_.Wait(net_mu_);
      continue;
    }
    auto at = net_queue_.top().at;
    auto now = std::chrono::steady_clock::now();
    if (now < at) {
      // OS timer granularity (tens of microseconds) would inflate
      // sub-100us latencies; spin for near deadlines, sleep for far
      // ones. Spinning can drop the lock: with a uniform latency model
      // later sends always carry later deadlines, so the heap top
      // stays the earliest message.
      if (at - now < std::chrono::microseconds(200)) {
        net_mu_.Unlock();
        while (std::chrono::steady_clock::now() < at) {
          std::this_thread::yield();
        }
        net_mu_.Lock();
      } else {
        net_cv_.WaitUntil(net_mu_, at);
      }
      continue;
    }
    Message msg = std::move(const_cast<Scheduled&>(net_queue_.top()).msg);
    net_queue_.pop();
    net_mu_.Unlock();
    DeliverNow(std::move(msg));
    net_mu_.Lock();
  }
  net_mu_.Unlock();
}

ClusterStats Cluster::Stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

std::vector<Cluster::NodeLoad> Cluster::NodeLoads() const {
  MutexLock lock(nodes_mu_);
  std::vector<NodeLoad> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    NodeLoad load;
    load.id = node->id();
    load.processed = node->processed();
    load.queued = node->mailbox_depth();
    load.queue_high_watermark = node->mailbox_high_watermark();
    out.push_back(load);
  }
  return out;
}

void Cluster::Shutdown() {
  if (is_shutdown_.exchange(true)) return;

  auto resolve_pending = [this]() {
    std::map<uint64_t, std::promise<Payload>> pending;
    {
      MutexLock lock(pending_mu_);
      pending.swap(pending_);
    }
    for (auto& [correlation, promise] : pending) {
      (void)correlation;
      promise.set_value(nullptr);
    }
  };

  // Stop the network thread first so no new deliveries race the node
  // teardown; it drains whatever is already queued before exiting.
  {
    MutexLock lock(net_mu_);
    shutdown_ = true;
  }
  net_cv_.NotifyAll();
  if (net_thread_.joinable()) {
    net_thread_.join();
    // Under the lock: a late Route (e.g. a worker mid-Respond during
    // teardown) reads net_running_ under net_mu_ and must see false so
    // it delivers inline instead of queueing to the dead thread.
    MutexLock lock(net_mu_);
    net_running_ = false;
  }
  // Unblock any worker waiting on an in-flight RPC, then stop the
  // nodes; new Calls after this point resolve to nullptr immediately,
  // so the workers cannot block again.
  resolve_pending();
  std::vector<ComputeNode*> nodes;
  {
    MutexLock lock(nodes_mu_);
    for (auto& n : nodes_) nodes.push_back(n.get());
  }
  for (ComputeNode* n : nodes) n->Stop();
  resolve_pending();
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Messages exchanged between compute nodes. The paper's implementation
// uses MPJ (MPI for Java) on a physical cluster; this repository
// simulates the cluster in-process (see DESIGN.md §2): payloads are
// type-erased in-memory objects, and each message carries an
// approximate wire size so the simulator can account network bytes and
// apply latency.

#ifndef SEMTREE_CLUSTER_MESSAGE_H_
#define SEMTREE_CLUSTER_MESSAGE_H_

#include <chrono>
#include <cstdint>
#include <memory>

namespace semtree {

/// Identifies a compute node in the cluster; kClientNode is the
/// off-cluster caller (the application driving the index).
using NodeId = int32_t;
inline constexpr NodeId kClientNode = -1;

/// Type-erased message body.
using Payload = std::shared_ptr<void>;

/// Wraps a value into a payload.
template <typename T>
Payload MakePayload(T value) {
  return std::make_shared<T>(std::move(value));
}

/// Recovers a typed reference from a payload. The caller must know the
/// message type's payload contract.
template <typename T>
T& PayloadAs(const Payload& payload) {
  return *static_cast<T*>(payload.get());
}

/// One message on the simulated interconnect.
struct Message {
  uint32_t type = 0;
  NodeId from = kClientNode;
  NodeId to = kClientNode;

  /// Correlates requests with responses; 0 means one-way.
  uint64_t correlation_id = 0;

  Payload payload;

  /// Approximate serialized size, accounted in ClusterStats.
  size_t approx_bytes = 0;

  /// Earliest delivery time under the latency model.
  std::chrono::steady_clock::time_point deliver_at{};
};

}  // namespace semtree

#endif  // SEMTREE_CLUSTER_MESSAGE_H_

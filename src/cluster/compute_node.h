// Copyright 2026 The SemTree Authors
//
// A simulated compute node: a mailbox plus a worker thread dispatching
// messages to registered handlers. One SemTree partition lives on one
// compute node (paper §III-B: partitions are "usually managed by a
// single compute node").

#ifndef SEMTREE_CLUSTER_COMPUTE_NODE_H_
#define SEMTREE_CLUSTER_COMPUTE_NODE_H_

#include <atomic>
#include <functional>
#include <thread>
#include <unordered_map>

#include "cluster/mailbox.h"
#include "cluster/message.h"

namespace semtree {

class Cluster;

/// One node of the simulated cluster.
///
/// Handlers run on the node's single worker thread, so all state owned
/// by the node (e.g. its partition) is mutated serially without locks.
/// Handlers may issue nested Cluster::Call RPCs; the SemTree protocol
/// only calls "down" the partition tree, so such chains cannot
/// deadlock.
class ComputeNode {
 public:
  using Handler = std::function<void(const Message&)>;

  ComputeNode(NodeId id, Cluster* cluster);
  ~ComputeNode();

  ComputeNode(const ComputeNode&) = delete;
  ComputeNode& operator=(const ComputeNode&) = delete;

  NodeId id() const { return id_; }

  /// Registers the handler for a message type. Must happen before
  /// Start(); one handler per type.
  void RegisterHandler(uint32_t type, Handler handler);

  /// Spawns the worker thread.
  void Start();

  /// Closes the mailbox and joins the worker. Idempotent.
  void Stop();

  /// Enqueues a message for this node (called by the Cluster).
  void Deliver(Message msg);

  /// Messages processed so far (for stats).
  uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  size_t mailbox_high_watermark() const {
    return mailbox_.high_watermark();
  }
  /// Messages currently queued (instantaneous backlog; the
  /// rebalancer's per-node load signal for migration targeting).
  size_t mailbox_depth() const { return mailbox_.size(); }

 private:
  void WorkerLoop();

  NodeId id_;
  Cluster* cluster_;
  Mailbox mailbox_;  // Internally synchronized; the only cross-thread door.
  // Deliberately lock-free by *confinement*, not by accident:
  //  - handlers_ and started_ are written only before Start() spawns the
  //    worker (RegisterHandler documents the contract) and read-only
  //    afterwards; the thread constructor's synchronizes-with edge
  //    publishes them to the worker.
  //  - Partition state captured by the handlers is touched only from
  //    WorkerLoop, which drains the mailbox serially.
  // Anything that breaks either rule must grow a Mutex here.
  std::unordered_map<uint32_t, Handler> handlers_;
  std::thread worker_;
  std::atomic<uint64_t> processed_{0};
  bool started_ = false;
};

}  // namespace semtree

#endif  // SEMTREE_CLUSTER_COMPUTE_NODE_H_

// Copyright 2026 The SemTree Authors

#include "cluster/compute_node.h"

#include "common/logging.h"

namespace semtree {

ComputeNode::ComputeNode(NodeId id, Cluster* cluster)
    : id_(id), cluster_(cluster) {
  (void)cluster_;
}

ComputeNode::~ComputeNode() { Stop(); }

void ComputeNode::RegisterHandler(uint32_t type, Handler handler) {
  handlers_[type] = std::move(handler);
}

void ComputeNode::Start() {
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this]() { WorkerLoop(); });
}

void ComputeNode::Stop() {
  mailbox_.Close();
  if (worker_.joinable()) worker_.join();
}

void ComputeNode::Deliver(Message msg) { mailbox_.Push(std::move(msg)); }

void ComputeNode::WorkerLoop() {
  Message msg;
  while (mailbox_.Pop(&msg)) {
    auto it = handlers_.find(msg.type);
    if (it == handlers_.end()) {
      SEMTREE_LOG(Warning) << "node " << id_
                           << " dropped message of unknown type "
                           << msg.type;
      continue;
    }
    it->second(msg);
    processed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "cluster/mailbox.h"

namespace semtree {

void Mailbox::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    queue_.push_back(std::move(msg));
    high_watermark_ = std::max(high_watermark_, queue_.size());
  }
  cv_.notify_one();
}

bool Mailbox::Pop(Message* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this]() { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t Mailbox::high_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_watermark_;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "cluster/mailbox.h"

#include <algorithm>

namespace semtree {

void Mailbox::Push(Message msg) {
  {
    MutexLock lock(mu_);
    if (closed_) return;
    queue_.push_back(std::move(msg));
    high_watermark_ = std::max(high_watermark_, queue_.size());
  }
  cv_.NotifyOne();
}

bool Mailbox::Pop(Message* out) {
  MutexLock lock(mu_);
  while (!closed_ && queue_.empty()) cv_.Wait(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Mailbox::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

size_t Mailbox::size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

size_t Mailbox::high_watermark() const {
  MutexLock lock(mu_);
  return high_watermark_;
}

}  // namespace semtree

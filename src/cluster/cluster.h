// Copyright 2026 The SemTree Authors
//
// The simulated cluster: owns compute nodes, routes messages between
// them with an injectable latency/bandwidth model, and provides a
// request/response (RPC) layer on top of one-way messages. This stands
// in for the paper's MPJ deployment on an 8-processor cluster; the
// SemTree protocol code is identical either way (see DESIGN.md §2).

#ifndef SEMTREE_CLUSTER_CLUSTER_H_
#define SEMTREE_CLUSTER_CLUSTER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "cluster/compute_node.h"
#include "cluster/message.h"
#include "common/mutex.h"
#include "common/result.h"

namespace semtree {

struct ClusterOptions {
  /// One-way delivery latency applied to every message.
  std::chrono::microseconds latency{0};

  /// Payload bandwidth in bytes per microsecond; 0 means infinite.
  double bandwidth_bytes_per_us = 0.0;
};

/// Aggregate interconnect statistics.
struct ClusterStats {
  uint64_t messages = 0;         ///< All messages (requests + responses).
  uint64_t bytes = 0;            ///< Sum of approx_bytes.
  uint64_t remote_messages = 0;  ///< Messages whose from != to.
  uint64_t calls = 0;            ///< RPCs issued.
  uint64_t forwards = 0;         ///< Requests re-targeted mid-flight.
};

/// The in-process cluster simulator.
///
/// Thread-safe: nodes can be added while the cluster runs (SemTree's
/// build-partition allocates partitions at runtime), and any thread may
/// Send/Call/Respond.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Creates a node; the caller registers handlers and then calls
  /// ComputeNode::Start().
  ComputeNode* AddNode();

  ComputeNode* node(NodeId id) const;
  size_t NodeCount() const;

  /// One-way message.
  void Send(NodeId target, uint32_t type, Payload payload,
            size_t approx_bytes = 64, NodeId from = kClientNode);

  /// RPC: sends a request and returns a future resolved by the
  /// handler's Respond (possibly after forwarding). The future holds a
  /// null Payload if the cluster shuts down first.
  std::future<Payload> Call(NodeId target, uint32_t type, Payload payload,
                            size_t approx_bytes = 64,
                            NodeId from = kClientNode);

  /// One outbound RPC of a fan-out round (see CallAll).
  struct OutboundCall {
    NodeId target = kClientNode;
    uint32_t type = 0;
    Payload payload;
    size_t approx_bytes = 64;
  };

  /// Issues one RPC per entry and returns the futures in order. This is
  /// the fan-out primitive of the coalesced batch protocol: a handler
  /// groups sub-work by target partition and ships each group as a
  /// single message instead of one RPC per query.
  std::vector<std::future<Payload>> CallAll(std::vector<OutboundCall> calls,
                                            NodeId from = kClientNode);

  /// Blocking RPC convenience; surfaces shutdown as Unavailable.
  Result<Payload> CallAndWait(NodeId target, uint32_t type,
                              Payload payload, size_t approx_bytes = 64,
                              NodeId from = kClientNode);

  /// Re-targets an in-flight request to another node, preserving its
  /// correlation id so the eventual Respond still reaches the original
  /// caller (used by the insertion protocol: "a message containing the
  /// point to be added has to be sent to the correct partition").
  void Forward(const Message& request, NodeId new_target, NodeId from);

  /// Answers a request; resolves the caller's future.
  void Respond(const Message& request, Payload payload,
               size_t approx_bytes = 64);

  /// Stops all nodes and the network thread; resolves outstanding
  /// calls with null payloads. Idempotent; called by the destructor.
  void Shutdown();

  ClusterStats Stats() const;
  const ClusterOptions& options() const { return options_; }

  /// Point-in-time load of one compute node.
  struct NodeLoad {
    NodeId id = kClientNode;
    uint64_t processed = 0;        ///< Messages handled so far.
    size_t queued = 0;             ///< Mailbox backlog right now.
    size_t queue_high_watermark = 0;
  };

  /// Per-node load report, ordered by node id. Safe to call while the
  /// cluster runs; the values are instantaneous, not a consistent cut.
  std::vector<NodeLoad> NodeLoads() const;

 private:
  // Responses travel as messages with this reserved type and are routed
  // to the pending-call registry instead of a node.
  static constexpr uint32_t kResponseType = 0xFFFFFFFFu;

  void Route(Message msg);
  void DeliverNow(Message&& msg);
  void NetworkLoop();
  std::chrono::steady_clock::time_point DeliveryTime(size_t bytes) const;
  void Account(const Message& msg);

  ClusterOptions options_;

  // Guards the node registry only; nodes are append-only and the
  // pointers handed out stay valid for the cluster's lifetime.
  mutable Mutex nodes_mu_;
  std::vector<std::unique_ptr<ComputeNode>> nodes_ GUARDED_BY(nodes_mu_);

  // In-flight RPCs by correlation id. Promises are *moved out* under
  // the lock and resolved outside it, so a continuation running on the
  // resolving thread cannot re-enter the registry while it is held.
  Mutex pending_mu_;
  std::map<uint64_t, std::promise<Payload>> pending_
      GUARDED_BY(pending_mu_);
  std::atomic<uint64_t> next_correlation_{1};

  // Delayed-delivery machinery (only engaged when latency/bandwidth
  // model a non-zero delay).
  struct Scheduled {
    std::chrono::steady_clock::time_point at;
    uint64_t seq;  // FIFO tie-break.
    Message msg;
    bool operator>(const Scheduled& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  Mutex net_mu_;
  CondVar net_cv_;  // Wakes the network thread: new message or shutdown.
  std::priority_queue<Scheduled, std::vector<Scheduled>,
                      std::greater<Scheduled>>
      net_queue_ GUARDED_BY(net_mu_);
  // Only touched by the constructor and Shutdown (serialized through
  // is_shutdown_), never by the network thread itself.
  std::thread net_thread_;
  uint64_t net_seq_ GUARDED_BY(net_mu_) = 0;
  bool net_running_ GUARDED_BY(net_mu_) = false;
  bool shutdown_ GUARDED_BY(net_mu_) = false;
  std::atomic<bool> is_shutdown_{false};

  mutable Mutex stats_mu_;
  ClusterStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace semtree

#endif  // SEMTREE_CLUSTER_CLUSTER_H_

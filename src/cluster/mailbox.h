// Copyright 2026 The SemTree Authors
//
// A blocking FIFO mailbox, one per compute node. Producers are any
// threads (other nodes' workers, the network thread, clients); the
// consumer is the owning node's worker thread.

#ifndef SEMTREE_CLUSTER_MAILBOX_H_
#define SEMTREE_CLUSTER_MAILBOX_H_

#include <deque>

#include "cluster/message.h"
#include "common/mutex.h"

namespace semtree {

/// Thread-safe blocking queue of Messages.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message. No-op after Close().
  void Push(Message msg);

  /// Blocks until a message is available or the mailbox is closed.
  /// Returns false iff closed and drained.
  bool Pop(Message* out);

  /// Unblocks consumers; pending messages can still be popped.
  void Close();

  size_t size() const;

  /// Largest queue length observed (for stats).
  size_t high_watermark() const;

 private:
  mutable Mutex mu_;
  CondVar cv_;  // Signals "message queued" or "closed" to Pop.
  std::deque<Message> queue_ GUARDED_BY(mu_);
  size_t high_watermark_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace semtree

#endif  // SEMTREE_CLUSTER_MAILBOX_H_

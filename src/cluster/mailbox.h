// Copyright 2026 The SemTree Authors
//
// A blocking FIFO mailbox, one per compute node. Producers are any
// threads (other nodes' workers, the network thread, clients); the
// consumer is the owning node's worker thread.

#ifndef SEMTREE_CLUSTER_MAILBOX_H_
#define SEMTREE_CLUSTER_MAILBOX_H_

#include <condition_variable>
#include <deque>
#include <mutex>

#include "cluster/message.h"

namespace semtree {

/// Thread-safe blocking queue of Messages.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message. No-op after Close().
  void Push(Message msg);

  /// Blocks until a message is available or the mailbox is closed.
  /// Returns false iff closed and drained.
  bool Pop(Message* out);

  /// Unblocks consumers; pending messages can still be popped.
  void Close();

  size_t size() const;

  /// Largest queue length observed (for stats).
  size_t high_watermark() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace semtree

#endif  // SEMTREE_CLUSTER_MAILBOX_H_

// Copyright 2026 The SemTree Authors
//
// Message is a plain struct; this translation unit anchors the target.

#include "cluster/message.h"

namespace semtree {}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "semtree/semantic_index.h"

#include <algorithm>

namespace semtree {

Result<std::unique_ptr<SemanticIndex>> SemanticIndex::Build(
    const Taxonomy* taxonomy, std::vector<Triple> corpus,
    SemanticIndexOptions options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("corpus must not be empty");
  }
  SEMTREE_ASSIGN_OR_RETURN(
      TripleDistance distance,
      TripleDistance::Make(taxonomy, options.weights, options.element));

  std::unique_ptr<SemanticIndex> index(new SemanticIndex(
      options, std::move(distance), std::move(corpus)));
  const std::vector<Triple>& triples = index->corpus_;

  // Train the FastMap embedding on the corpus.
  IndexDistanceFn oracle;
  CachingTripleDistance cached(index->distance_);
  if (options.cache_element_distances) {
    oracle = [&cached, &triples](size_t i, size_t j) {
      return cached(triples[i], triples[j]);
    };
  } else {
    oracle = [index = index.get(), &triples](size_t i, size_t j) {
      return index->distance_(triples[i], triples[j]);
    };
  }
  SEMTREE_ASSIGN_OR_RETURN(
      FastMap fm, FastMap::Train(triples.size(), oracle, options.fastmap));
  index->fastmap_ = std::make_unique<FastMap>(std::move(fm));
  SEMTREE_RETURN_NOT_OK(index->BuildTree());
  return index;
}

Result<std::unique_ptr<SemanticIndex>> SemanticIndex::Restore(
    const Taxonomy* taxonomy, std::vector<Triple> corpus, FastMap fastmap,
    SemanticIndexOptions options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("corpus must not be empty");
  }
  if (fastmap.size() != corpus.size()) {
    return Status::InvalidArgument(
        "embedding and corpus sizes disagree");
  }
  SEMTREE_ASSIGN_OR_RETURN(
      TripleDistance distance,
      TripleDistance::Make(taxonomy, options.weights, options.element));
  std::unique_ptr<SemanticIndex> index(new SemanticIndex(
      options, std::move(distance), std::move(corpus)));
  index->fastmap_ = std::make_unique<FastMap>(std::move(fastmap));
  SEMTREE_RETURN_NOT_OK(index->BuildTree());
  return index;
}

Result<std::unique_ptr<SemanticIndex>> SemanticIndex::RestoreWithTree(
    const Taxonomy* taxonomy, std::vector<Triple> corpus, FastMap fastmap,
    std::unique_ptr<SemTree> tree, SemanticIndexOptions options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("corpus must not be empty");
  }
  if (fastmap.size() != corpus.size()) {
    return Status::InvalidArgument("embedding and corpus sizes disagree");
  }
  if (tree == nullptr || tree->size() != corpus.size() ||
      tree->options().dimensions != fastmap.dimensions()) {
    return Status::InvalidArgument(
        "restored tree disagrees with the embedding");
  }
  SEMTREE_ASSIGN_OR_RETURN(
      TripleDistance distance,
      TripleDistance::Make(taxonomy, options.weights, options.element));
  std::unique_ptr<SemanticIndex> index(new SemanticIndex(
      options, std::move(distance), std::move(corpus)));
  index->fastmap_ = std::make_unique<FastMap>(std::move(fastmap));
  index->tree_ = std::move(tree);
  return index;
}

Status SemanticIndex::BuildTree() {
  SemTreeOptions topts;
  topts.dimensions = fastmap_->dimensions();
  topts.bucket_size = options_.bucket_size;
  topts.max_partitions = options_.max_partitions;
  topts.partition_capacity = options_.partition_capacity;
  topts.network_latency = options_.network_latency;
  topts.split_policy = options_.split_policy;
  topts.build_threads = options_.build_threads;
  SEMTREE_ASSIGN_OR_RETURN(std::unique_ptr<SemTree> tree,
                           SemTree::Create(std::move(topts)));
  tree_ = std::move(tree);

  // Feed the tree straight from the embedding's flat arena — one
  // contiguous block, no per-point coordinate vectors.
  PointBlock points = fastmap_->ToPointBlock();
  if (options_.bulk_load) {
    return tree_->BulkLoadBalanced(std::move(points));
  }
  return tree_->BulkInsert(
      points, std::max<size_t>(1, options_.build_client_threads));
}

std::vector<double> SemanticIndex::Embed(const Triple& query) const {
  return fastmap_->Project([this, &query](size_t train_index) {
    return distance_(query, corpus_[train_index]);
  });
}

std::vector<SemanticIndex::Hit> SemanticIndex::MakeHits(
    const Triple& query, const std::vector<Neighbor>& neighbors) const {
  std::vector<Hit> hits;
  hits.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) {
    Hit hit;
    hit.id = n.id;
    hit.embedded_distance = n.distance;
    hit.semantic_distance = distance_(query, corpus_[n.id]);
    hits.push_back(hit);
  }
  if (options_.rerank_by_semantic_distance) {
    std::stable_sort(hits.begin(), hits.end(),
                     [](const Hit& a, const Hit& b) {
                       return a.semantic_distance < b.semantic_distance;
                     });
  }
  return hits;
}

Result<std::vector<SemanticIndex::Hit>> SemanticIndex::KnnQuery(
    const Triple& query, size_t k) const {
  std::vector<double> embedded = Embed(query);
  SEMTREE_ASSIGN_OR_RETURN(std::vector<Neighbor> neighbors,
                           tree_->KnnSearch(embedded, k));
  return MakeHits(query, neighbors);
}

Result<std::vector<SemanticIndex::Hit>> SemanticIndex::RangeQuery(
    const Triple& query, double radius) const {
  std::vector<double> embedded = Embed(query);
  SEMTREE_ASSIGN_OR_RETURN(std::vector<Neighbor> neighbors,
                           tree_->RangeSearch(embedded, radius));
  return MakeHits(query, neighbors);
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "semtree/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace semtree {

std::string PartitionStats::ToString() const {
  return StringPrintf(
      "Partition{id=%d points=%zu nodes=%zu leaves=%zu routing=%zu "
      "edge=%zu depth=%zu}",
      id, points, nodes, leaves, routing, edge_nodes, local_depth);
}

void Partition::SplitLeafIfNeeded(int32_t leaf) {
  if (nodes_[static_cast<size_t>(leaf)].bucket.size() <= bucket_size_) {
    return;
  }
  // Pick the dimension with the widest spread; fall back through the
  // remaining dimensions when the widest cannot separate the bucket.
  std::vector<std::pair<double, uint32_t>> dims;
  dims.reserve(dimensions_);
  {
    const PNode& n = nodes_[static_cast<size_t>(leaf)];
    for (size_t d = 0; d < dimensions_; ++d) {
      double mn = std::numeric_limits<double>::infinity();
      double mx = -mn;
      for (const KdPoint& p : n.bucket) {
        mn = std::min(mn, p.coords[d]);
        mx = std::max(mx, p.coords[d]);
      }
      dims.emplace_back(mx - mn, static_cast<uint32_t>(d));
    }
  }
  std::sort(dims.begin(), dims.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [spread, dim] : dims) {
    if (spread <= 0.0) return;  // Identical points: allow overflow.
    std::vector<double> values;
    {
      const PNode& n = nodes_[static_cast<size_t>(leaf)];
      values.reserve(n.bucket.size());
      for (const KdPoint& p : n.bucket) values.push_back(p.coords[dim]);
    }
    std::sort(values.begin(), values.end());
    size_t mid = values.size() / 2;
    size_t split_pos = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i - 1] < values[i]) {
        double dist =
            std::fabs(static_cast<double>(i) - static_cast<double>(mid));
        if (dist < best) {
          best = dist;
          split_pos = i;
        }
      }
    }
    if (split_pos == 0) continue;
    double sv = (values[split_pos - 1] + values[split_pos]) / 2.0;

    int32_t left = NewLeaf();
    int32_t right = NewLeaf();
    PNode& n = nodes_[static_cast<size_t>(leaf)];  // Re-take: realloc.
    for (KdPoint& p : n.bucket) {
      PNode& child = nodes_[static_cast<size_t>(
          p.coords[dim] <= sv ? left : right)];
      child.bucket.push_back(std::move(p));
    }
    n.bucket.clear();
    n.bucket.shrink_to_fit();
    n.is_leaf = false;
    n.split_dim = dim;
    n.split_value = sv;
    n.left = ChildRef{id_, left};
    n.right = ChildRef{id_, right};
    return;
  }
}

int32_t Partition::AdoptRoot() {
  // Reuse the pristine initial root so adopted partitions do not keep
  // an orphan empty leaf around.
  if (points_ == 0 && roots_.size() == 1 && nodes_.size() == 1 &&
      nodes_[0].is_leaf && nodes_[0].bucket.empty()) {
    return roots_[0];
  }
  int32_t root = NewLeaf();
  roots_.push_back(root);
  return root;
}

namespace {

// Widest-spread dimension over a span; returns (dim, spread).
std::pair<uint32_t, double> WidestSpreadSpan(
    const std::vector<KdPoint>& pts, size_t lo, size_t hi, size_t dims) {
  uint32_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dims; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (size_t i = lo; i < hi; ++i) {
      mn = std::min(mn, pts[i].coords[d]);
      mx = std::max(mx, pts[i].coords[d]);
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = static_cast<uint32_t>(d);
    }
  }
  return {best_dim, best_spread};
}

}  // namespace

void Partition::BuildBalancedLocal(int32_t root,
                                   std::vector<KdPoint> points) {
  size_t count = points.size();
  // Recursive median build writing into this partition's arena. The
  // recursion allocates children before filling the parent, so `root`
  // is finalized last.
  struct Builder {
    Partition* part;
    std::vector<KdPoint>& pts;

    void Build(int32_t node, size_t lo, size_t hi) {
      size_t n = hi - lo;
      if (n <= part->bucket_size()) {
        FillLeaf(node, lo, hi);
        return;
      }
      auto [dim, spread] =
          WidestSpreadSpan(pts, lo, hi, part->dimensions());
      if (spread <= 0.0) {
        FillLeaf(node, lo, hi);  // Identical points: overflow bucket.
        return;
      }
      std::sort(pts.begin() + static_cast<ptrdiff_t>(lo),
                pts.begin() + static_cast<ptrdiff_t>(hi),
                [dim = dim](const KdPoint& a, const KdPoint& b) {
                  return a.coords[dim] < b.coords[dim];
                });
      size_t mid = lo + n / 2;
      size_t split = 0;
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = lo + 1; i < hi; ++i) {
        if (pts[i - 1].coords[dim] < pts[i].coords[dim]) {
          double dist =
              std::fabs(double(i) - double(mid));
          if (dist < best) {
            best = dist;
            split = i;
          }
        }
      }
      double sv =
          (pts[split - 1].coords[dim] + pts[split].coords[dim]) / 2.0;
      int32_t left = part->NewLeaf();
      int32_t right = part->NewLeaf();
      Build(left, lo, split);
      Build(right, split, hi);
      PNode& pn = part->node(node);
      pn.is_leaf = false;
      pn.split_dim = dim;
      pn.split_value = sv;
      pn.left = ChildRef{part->id(), left};
      pn.right = ChildRef{part->id(), right};
    }

    void FillLeaf(int32_t node, size_t lo, size_t hi) {
      auto& bucket = part->node(node).bucket;
      bucket.assign(
          std::make_move_iterator(pts.begin() + static_cast<ptrdiff_t>(lo)),
          std::make_move_iterator(pts.begin() + static_cast<ptrdiff_t>(hi)));
    }
  };
  if (count > 0) {
    Builder{this, points}.Build(root, 0, count);
  }
  AddPoints(count);
}

std::vector<Partition::LeafLocation> Partition::LocalLeaves() const {
  std::vector<LeafLocation> out;
  struct Frame {
    int32_t node;
    int32_t parent;
    bool is_left;
  };
  std::vector<Frame> stack;
  for (int32_t root : roots_) stack.push_back({root, -1, false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const PNode& n = nodes_[static_cast<size_t>(f.node)];
    if (n.is_dead) continue;
    if (n.is_leaf) {
      out.push_back(LeafLocation{f.node, f.parent, f.is_left});
      continue;
    }
    if (n.left.partition == id_) {
      stack.push_back({n.left.node, f.node, true});
    }
    if (n.right.partition == id_) {
      stack.push_back({n.right.node, f.node, false});
    }
  }
  return out;
}

PartitionStats Partition::Stats() const {
  PartitionStats stats;
  stats.id = id_;
  stats.points = points_;
  struct Frame {
    int32_t node;
    size_t depth;
  };
  std::vector<Frame> stack;
  for (int32_t root : roots_) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const PNode& n = nodes_[static_cast<size_t>(f.node)];
    if (n.is_dead) continue;
    ++stats.nodes;
    stats.local_depth = std::max(stats.local_depth, f.depth);
    if (n.is_leaf) {
      ++stats.leaves;
      continue;
    }
    ++stats.routing;
    bool edge = false;
    if (n.left.partition == id_) {
      stack.push_back({n.left.node, f.depth + 1});
    } else {
      edge = true;
    }
    if (n.right.partition == id_) {
      stack.push_back({n.right.node, f.depth + 1});
    } else {
      edge = true;
    }
    if (edge) ++stats.edge_nodes;
  }
  return stats;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "semtree/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "core/split.h"
#include "persist/snapshot.h"

namespace semtree {

std::string PartitionStats::ToString() const {
  return StringPrintf(
      "Partition{id=%d points=%zu nodes=%zu leaves=%zu routing=%zu "
      "edge=%zu depth=%zu load_ops=%.1f load_dist=%.1f reb=%llu}",
      id, points, nodes, leaves, routing, edge_nodes, local_depth,
      load_ops, load_distances, (unsigned long long)rebalances);
}

void Partition::SplitLeafIfNeeded(int32_t leaf) {
  if (nodes_[static_cast<size_t>(leaf)].bucket.size() <= bucket_size_) {
    return;
  }
  BucketSplit split;
  if (!ChooseBucketSplit(nodes_[static_cast<size_t>(leaf)].bucket,
                         dimensions_,
                         [this](Slot s) { return store_.CoordsAt(s); },
                         &split)) {
    return;  // Identical points: allow overflow.
  }
  int32_t left = NewLeaf();
  int32_t right = NewLeaf();
  PNode& n = nodes_[static_cast<size_t>(leaf)];  // Re-take: realloc.
  for (Slot s : n.bucket) {
    PNode& child = nodes_[static_cast<size_t>(
        store_.CoordsAt(s)[split.dim] <= split.value ? left : right)];
    child.bucket.push_back(s);
  }
  n.bucket.clear();
  n.bucket.shrink_to_fit();
  n.is_leaf = false;
  n.split_dim = split.dim;
  n.split_value = split.value;
  n.left = ChildRef{id_, left};
  n.right = ChildRef{id_, right};
}

int32_t Partition::AdoptRoot() {
  // Reuse the pristine initial root so adopted partitions do not keep
  // an orphan empty leaf around. A freed seat's killed root (see
  // Evacuate, DESIGN.md §12) is NOT pristine: it must stay dead so
  // straggler traffic keeps getting stale responses.
  if (points_ == 0 && roots_.size() == 1 && nodes_.size() == 1 &&
      nodes_[0].is_leaf && !nodes_[0].is_dead && nodes_[0].bucket.empty()) {
    return roots_[0];
  }
  int32_t root = NewLeaf();
  roots_.push_back(root);
  return root;
}

void Partition::AbsorbBlock(int32_t leaf, const PointBlock& block) {
  store_.Reserve(block.size());
  std::vector<Slot>& bucket = nodes_[static_cast<size_t>(leaf)].bucket;
  bucket.reserve(bucket.size() + block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    bucket.push_back(store_.Append(block.Row(i), block.ids[i]));
  }
  AddPoints(block.size());
}

PointBlock Partition::ExtractLeafBlock(int32_t leaf) {
  PNode& n = nodes_[static_cast<size_t>(leaf)];
  PointBlock block(dimensions_);
  block.Reserve(n.bucket.size());
  for (Slot s : n.bucket) {
    block.Append(store_.CoordsAt(s), store_.IdAt(s));
    store_.Release(s);
  }
  n.bucket.clear();
  n.bucket.shrink_to_fit();
  return block;
}

void Partition::BuildBalancedLocal(int32_t root, const PointBlock& block,
                                   const BulkBuildOptions& opts) {
  size_t count = block.size();
  // Copy the block into this partition's arena first; the build then
  // works purely over slot indices.
  store_.Reserve(count);
  std::vector<Slot> slots;
  slots.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    slots.push_back(store_.Append(block.Row(i), block.ids[i]));
  }
  if (count > 0) {
    // Phase 1: plan the subtree (possibly across opts.build_threads
    // workers; the plan is scheduling-independent, core/bulk_build.h).
    BulkBuildOptions build = opts;
    build.bucket_size = bucket_size_;
    const PointStore& store = store_;
    std::unique_ptr<KdPlanNode> plan =
        BuildKdPlan(slots, dimensions_,
                    [&store](Slot s) { return store.CoordsAt(s); }, build);
    // Phase 2: emit serially, replicating the historical arena layout:
    // both children of a routing node are allocated before either
    // subtree is descended, the parent PNode is filled after both, and
    // `root` is finalized last.
    struct Emitter {
      Partition* part;
      const std::vector<Slot>& slots;

      void Emit(int32_t node, const KdPlanNode& p) {
        if (p.is_leaf) {
          part->node(node).bucket.assign(
              slots.begin() + static_cast<ptrdiff_t>(p.lo),
              slots.begin() + static_cast<ptrdiff_t>(p.hi));
          return;
        }
        int32_t left = part->NewLeaf();
        int32_t right = part->NewLeaf();
        Emit(left, *p.left);
        Emit(right, *p.right);
        PNode& pn = part->node(node);
        pn.is_leaf = false;
        pn.split_dim = p.split_dim;
        pn.split_value = p.split_value;
        pn.left = ChildRef{part->id(), left};
        pn.right = ChildRef{part->id(), right};
      }
    };
    Emitter{this, slots}.Emit(root, *plan);
  }
  AddPoints(count);
}

std::vector<SubtreeInfo> Partition::Subtrees() const {
  std::vector<SubtreeInfo> out;
  for (int32_t root : roots_) {
    const PNode& rn = nodes_[static_cast<size_t>(root)];
    if (rn.is_dead) continue;
    SubtreeInfo info;
    info.root = root;
    std::vector<int32_t> stack{root};
    while (!stack.empty()) {
      int32_t idx = stack.back();
      stack.pop_back();
      const PNode& n = nodes_[static_cast<size_t>(idx)];
      if (n.is_dead) continue;
      ++info.nodes;
      if (n.is_leaf) {
        info.points += n.bucket.size();
        continue;
      }
      if (n.left.partition == id_) {
        stack.push_back(n.left.node);
      } else {
        info.fully_local = false;
      }
      if (n.right.partition == id_) {
        stack.push_back(n.right.node);
      } else {
        info.fully_local = false;
      }
    }
    out.push_back(info);
  }
  return out;
}

bool Partition::SubtreeLocalSlots(int32_t root,
                                  std::vector<Slot>* out) const {
  std::vector<int32_t> stack{root};
  while (!stack.empty()) {
    int32_t idx = stack.back();
    stack.pop_back();
    const PNode& n = nodes_[static_cast<size_t>(idx)];
    if (n.is_dead) continue;
    if (n.is_leaf) {
      out->insert(out->end(), n.bucket.begin(), n.bucket.end());
      continue;
    }
    if (n.left.partition != id_ || n.right.partition != id_) {
      return false;
    }
    stack.push_back(n.left.node);
    stack.push_back(n.right.node);
  }
  return true;
}

void Partition::DetachSubtree(int32_t root) {
  std::vector<int32_t> stack{root};
  while (!stack.empty()) {
    int32_t idx = stack.back();
    stack.pop_back();
    PNode& n = nodes_[static_cast<size_t>(idx)];
    if (n.is_dead) continue;
    for (Slot s : n.bucket) store_.Release(s);
    n.bucket.clear();
    n.bucket.shrink_to_fit();
    if (!n.is_leaf) {
      if (n.left.partition == id_) stack.push_back(n.left.node);
      if (n.right.partition == id_) stack.push_back(n.right.node);
    }
    if (idx == root) {
      n.is_leaf = true;
      n.left = ChildRef{};
      n.right = ChildRef{};
    } else {
      n.is_dead = true;
    }
  }
}

void Partition::UnregisterRoot(int32_t node) {
  for (size_t i = 1; i < roots_.size(); ++i) {
    if (roots_[i] == node) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void Partition::Reset() {
  store_ = PointStore(dimensions_);
  nodes_.clear();
  roots_.clear();
  points_ = 0;
  load_ops_ = 0.0;
  load_distances_ = 0.0;
  roots_.push_back(NewLeaf());
}

void Partition::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(dimensions_);
  out->PutU64(bucket_size_);
  out->PutU64(points_);
  persist::WritePointStore(store_, out);
  out->PutU64(roots_.size());
  for (int32_t root : roots_) out->PutI32(root);
  out->PutU64(nodes_.size());
  for (const PNode& n : nodes_) {
    out->PutU8(static_cast<uint8_t>((n.is_leaf ? 1 : 0) |
                                    (n.is_dead ? 2 : 0)));
    out->PutU32(n.split_dim);
    out->PutDouble(n.split_value);
    out->PutI32(n.left.partition);
    out->PutI32(n.left.node);
    out->PutI32(n.right.partition);
    out->PutI32(n.right.node);
    out->PutU32Array(n.bucket);
  }
  // Load-counter tail (DESIGN.md §12), appended after the node arena
  // so pre-rebalancer blobs (which simply end here) still restore: the
  // reader probes AtEnd() on the length-framed blob.
  out->PutDouble(load_ops_);
  out->PutDouble(load_distances_);
  out->PutU64(rebalances_);
}

Status Partition::RestoreFrom(persist::ByteReader* in,
                              size_t expected_partitions,
                              int32_t remap_from) {
  SEMTREE_ASSIGN_OR_RETURN(uint64_t dimensions, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t bucket_size, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t points, in->U64());
  if (dimensions != dimensions_ || bucket_size != bucket_size_) {
    return Status::Corruption(
        "partition blob disagrees with tree options");
  }
  SEMTREE_ASSIGN_OR_RETURN(PointStore store, persist::ReadPointStore(in));
  if (store.dimensions() != dimensions_) {
    return Status::Corruption("partition arena dimensionality mismatch");
  }
  SEMTREE_ASSIGN_OR_RETURN(uint64_t root_count, in->U64());
  SEMTREE_RETURN_NOT_OK(in->CheckCount(root_count, 4));
  std::vector<int32_t> roots;
  roots.reserve(root_count);
  for (uint64_t i = 0; i < root_count; ++i) {
    SEMTREE_ASSIGN_OR_RETURN(int32_t root, in->I32());
    roots.push_back(root);
  }
  SEMTREE_ASSIGN_OR_RETURN(uint64_t node_count, in->U64());
  if (root_count == 0 || node_count == 0) {
    return Status::Corruption("partition blob has no nodes");
  }
  for (int32_t root : roots) {
    if (root < 0 || uint64_t(root) >= node_count) {
      return Status::Corruption("partition root out of range");
    }
  }
  auto check_ref = [&](const ChildRef& ref) {
    if (ref.partition < 0 ||
        size_t(ref.partition) >= expected_partitions || ref.node < 0) {
      return false;
    }
    // Local child nodes must exist; remote node indices are validated
    // by the partition that hosts them.
    return ref.partition != id_ || uint64_t(ref.node) < node_count;
  };
  // 37 = serialized bytes of an empty node.
  SEMTREE_RETURN_NOT_OK(in->CheckCount(node_count, 37));
  std::vector<PNode> nodes;
  nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    PNode n;
    SEMTREE_ASSIGN_OR_RETURN(uint8_t flags, in->U8());
    n.is_leaf = (flags & 1) != 0;
    n.is_dead = (flags & 2) != 0;
    SEMTREE_ASSIGN_OR_RETURN(n.split_dim, in->U32());
    SEMTREE_ASSIGN_OR_RETURN(n.split_value, in->Double());
    SEMTREE_ASSIGN_OR_RETURN(n.left.partition, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.left.node, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.right.partition, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.right.node, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.bucket, in->U32Array());
    // Migration remap: the blob was written by partition `remap_from`;
    // its local edges become local edges of this seat (node indexes
    // are arena positions, preserved verbatim by this loop).
    if (remap_from >= 0) {
      if (n.left.partition == remap_from) n.left.partition = id_;
      if (n.right.partition == remap_from) n.right.partition = id_;
    }
    if (n.is_leaf) {
      for (Slot s : n.bucket) {
        if (s >= store.slot_count()) {
          return Status::Corruption("partition bucket slot out of range");
        }
      }
    } else if (!n.is_dead &&
               (n.split_dim >= dimensions_ || !check_ref(n.left) ||
                !check_ref(n.right))) {
      return Status::Corruption("partition routing node malformed");
    }
    nodes.push_back(std::move(n));
  }
  // Optional load-counter tail: absent in pre-rebalancer blobs, in
  // which case the partition keeps its current counters (so a
  // partition-local rebuild from an old blob does not zero the load
  // the rebalancer is tracking).
  double load_ops = load_ops_;
  double load_distances = load_distances_;
  uint64_t rebalances = rebalances_;
  if (!in->AtEnd()) {
    SEMTREE_ASSIGN_OR_RETURN(load_ops, in->Double());
    SEMTREE_ASSIGN_OR_RETURN(load_distances, in->Double());
    SEMTREE_ASSIGN_OR_RETURN(rebalances, in->U64());
  }
  store_ = std::move(store);
  nodes_ = std::move(nodes);
  roots_ = std::move(roots);
  points_ = points;
  load_ops_ = load_ops;
  load_distances_ = load_distances;
  rebalances_ = rebalances;
  return Status::OK();
}

std::vector<Partition::LeafLocation> Partition::LocalLeaves() const {
  std::vector<LeafLocation> out;
  struct Frame {
    int32_t node;
    int32_t parent;
    bool is_left;
  };
  std::vector<Frame> stack;
  for (int32_t root : roots_) stack.push_back({root, -1, false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const PNode& n = nodes_[static_cast<size_t>(f.node)];
    if (n.is_dead) continue;
    if (n.is_leaf) {
      out.push_back(LeafLocation{f.node, f.parent, f.is_left});
      continue;
    }
    if (n.left.partition == id_) {
      stack.push_back({n.left.node, f.node, true});
    }
    if (n.right.partition == id_) {
      stack.push_back({n.right.node, f.node, false});
    }
  }
  return out;
}

PartitionStats Partition::Stats() const {
  PartitionStats stats;
  stats.id = id_;
  stats.points = points_;
  stats.load_ops = load_ops_;
  stats.load_distances = load_distances_;
  stats.rebalances = rebalances_;
  struct Frame {
    int32_t node;
    size_t depth;
  };
  std::vector<Frame> stack;
  for (int32_t root : roots_) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const PNode& n = nodes_[static_cast<size_t>(f.node)];
    if (n.is_dead) continue;
    ++stats.nodes;
    stats.local_depth = std::max(stats.local_depth, f.depth);
    if (n.is_leaf) {
      ++stats.leaves;
      continue;
    }
    ++stats.routing;
    bool edge = false;
    if (n.left.partition == id_) {
      stack.push_back({n.left.node, f.depth + 1});
    } else {
      edge = true;
    }
    if (n.right.partition == id_) {
      stack.push_back({n.right.node, f.depth + 1});
    } else {
      edge = true;
    }
    if (edge) ++stats.edge_nodes;
  }
  return stats;
}

}  // namespace semtree

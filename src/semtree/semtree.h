// Copyright 2026 The SemTree Authors
//
// SemTree: the distributed KD-tree of the paper (§III-B). The tree is
// split into partitions, each hosted by a compute node of the simulated
// cluster; navigation crosses partitions only through messages.
//
// Protocol (paper §III-B.1–4):
//  * Insert — starts at the root node of the root partition; navigation
//    compares P[Sr] with Sv. When the target child lives in another
//    partition (Cp != Childp), the request is *forwarded* there; the
//    final partition answers the client directly. Saturated leaf
//    buckets split into two local children (Fig. 1).
//  * Build partition — when a partition's resource condition trips,
//    every local leaf is migrated to a newly created partition and a
//    direct link is installed (Fig. 2); some partitions end up pure
//    routing, others store data.
//  * K-nearest — forward navigation to a leaf, then a backward visit
//    deciding for each node whether the unexplored subtree must be
//    entered: |max(Rs) - P| > |P[Sr] - Sv| or |Rs| < K. The traversal
//    state — the result set Rs, and per-node status S in
//    {Not Visited, near-side Visited, All Visited} (Table I) — travels
//    inside the message, which is *forwarded* between partitions like
//    an insertion; no compute node blocks on another, so concurrent
//    queries pipeline across the cluster.
//  * Range — descends both children when |P[Sr] - Sv| <= D; on edge
//    nodes the remote subqueries run in parallel and the partial result
//    sets are merged during the backward phase.

#ifndef SEMTREE_SEMTREE_SEMTREE_H_
#define SEMTREE_SEMTREE_SEMTREE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/epoch.h"
#include "core/point.h"
#include "core/point_block.h"
#include "core/query.h"
#include "core/split.h"
#include "persist/wire.h"
#include "semtree/partition.h"
#include "semtree/rebalance.h"

namespace semtree {

/// Resource condition deciding when a partition is saturated
/// (paper §III-B.1: "dynamically evaluated at run-time ... or
/// statically fixed").
using SaturationCondition = std::function<bool(const PartitionStats&)>;

struct SemTreeOptions {
  /// Dimensionality of the embedded space.
  size_t dimensions = 8;

  /// Leaf bucket capacity Bs.
  size_t bucket_size = 32;

  /// Upper bound on partitions (compute nodes). 1 = fully local tree.
  size_t max_partitions = 1;

  /// Static resource condition: a partition saturates when it stores
  /// at least this many points. Ignored if `saturation` is set.
  size_t partition_capacity = SIZE_MAX;

  /// Optional dynamic resource condition overriding the static one.
  SaturationCondition saturation;

  /// One-way network latency of the simulated interconnect.
  std::chrono::microseconds network_latency{0};

  /// Interconnect bandwidth (bytes/us); 0 = infinite.
  double bandwidth_bytes_per_us = 0.0;

  /// How bulk loads cut nodes (core/split.h): the paper's median split
  /// or clustering-guided centroid splits (core/bulk_build.h). Applies
  /// to the client-side region splitter AND every partition's local
  /// balanced build; incremental insertion always splits overflowing
  /// buckets by median.
  SplitPolicy split_policy = SplitPolicy::kMedian;

  /// Worker threads for each partition's local balanced build:
  /// 1 = serial (default), 0 = one per hardware thread, n = exactly n.
  /// The built tree is byte-identical across all values (DESIGN.md §8).
  size_t build_threads = 1;

  /// Caps the data partitions BulkLoadBalanced spreads the corpus
  /// over; 0 = auto (max_partitions - 1, the historical behavior).
  /// Setting it below max_partitions - 1 leaves idle seats for the
  /// online rebalancer to split into (DESIGN.md §12).
  size_t bulk_load_partitions = 0;

  /// Online rebalancer policy (semtree/rebalance.h). The rebalancer
  /// only runs when RebalanceTick/StartRebalancer is called.
  RebalanceOptions rebalance;
};

/// Outcome counters for a distributed search (network cost included).
/// `truncated` mirrors SearchStats::truncated (core/point.h): the
/// query's SearchBudget ran out, or epsilon pruning skipped a subtree
/// an exact search would have entered, somewhere in the cluster.
struct DistributedSearchStats {
  size_t partitions_visited = 0;
  uint64_t messages_before = 0;
  uint64_t messages_after = 0;
  bool truncated = false;
};

/// The distributed index. Create once, then use from any thread:
/// partition state is only ever touched by its compute node's worker.
class SemTree {
 public:
  /// Builds an empty SemTree (one root partition on one compute node).
  static Result<std::unique_ptr<SemTree>> Create(SemTreeOptions options);

  ~SemTree();
  SemTree(const SemTree&) = delete;
  SemTree& operator=(const SemTree&) = delete;

  /// Inserts one point (distributed insertion, §III-B.1). Triggers
  /// build-partition when the receiving partition saturates.
  Status Insert(const std::vector<double>& coords, PointId id);

  /// Row-pointer form: inserts `dims` coordinates without requiring an
  /// owning vector (used when feeding from a flat arena).
  Status Insert(const double* coords, size_t dims, PointId id);

  /// Inserts many points using `client_threads` concurrent clients
  /// ("using M-1 data partitions we can perform M-1 parallel
  /// operations", §III-C).
  Status BulkInsert(const PointBlock& points, size_t client_threads = 1);
  Status BulkInsert(const std::vector<KdPoint>& points,
                    size_t client_threads = 1);

  /// Bulk loads an *empty* tree ("Kd-trees are more efficient in
  /// bulk-loading situations", §III-B): the corpus is median-split
  /// client-side into one region per available data partition, every
  /// region is shipped as one contiguous PointBlock and built as a
  /// balanced subtree on its own compute node in parallel, and the
  /// routing skeleton is installed in the root partition. Fails with
  /// FailedPrecondition on a non-empty tree.
  Status BulkLoadBalanced(PointBlock points);
  Status BulkLoadBalanced(std::vector<KdPoint> points);

  /// Removes a stored point (extension; the paper leaves deletion as
  /// future work, noting Kd-tree modification is "non-trivial"). The
  /// request is forwarded across partitions exactly like an insertion;
  /// the point is erased from its leaf bucket and the routing
  /// structure is retained. Returns NotFound if absent.
  Status Remove(const std::vector<double>& coords, PointId id);

  /// Distributed k-nearest query (§III-B.3). Results sorted by
  /// ascending distance, ties by id. The SearchBudget travels inside
  /// the work-item message together with its spent-so-far counters, so
  /// the cap is enforced globally across partition hops (not per
  /// partition); an exact budget reproduces the budget-less protocol
  /// run message-for-message. Truncation is reported through
  /// `stats->truncated`.
  Result<std::vector<Neighbor>> KnnSearch(
      const std::vector<double>& query, size_t k,
      const SearchBudget& budget,
      DistributedSearchStats* stats = nullptr) const;
  Result<std::vector<Neighbor>> KnnSearch(
      const std::vector<double>& query, size_t k,
      DistributedSearchStats* stats = nullptr) const {
    return KnnSearch(query, k, SearchBudget{}, stats);
  }

  /// Distributed range query (§III-B.4). Because the remote subqueries
  /// of a range search run in parallel (no traversal state travels
  /// between them), the budget is enforced *per partition subtree* —
  /// each partition meters its local work independently — rather than
  /// globally; the batch protocol below, which advances items
  /// serially, enforces it globally.
  Result<std::vector<Neighbor>> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget,
      DistributedSearchStats* stats = nullptr) const;
  Result<std::vector<Neighbor>> RangeSearch(
      const std::vector<double>& query, double radius,
      DistributedSearchStats* stats = nullptr) const {
    return RangeSearch(query, radius, SearchBudget{}, stats);
  }

  /// Executes a batch of mixed k-NN/range queries as ONE coalesced
  /// protocol run: the whole batch ships to the root partition in a
  /// single message, and at every partition the sub-queries that must
  /// descend into the same child partition travel there together in one
  /// RPC per (partition, round) instead of one RPC per query. Results
  /// are positionally aligned with `queries` and identical to issuing
  /// each query through KnnSearch/RangeSearch. Each query's
  /// SearchBudget (SpatialQuery::budget) travels with its work item —
  /// counters included — so budgets are enforced globally across
  /// partitions; `truncated`, if given, receives one flag per query
  /// (nonzero = that result may be missing members). `stats`, if
  /// given, aggregates over the batch.
  Result<std::vector<std::vector<Neighbor>>> BatchSearch(
      const std::vector<SpatialQuery>& queries,
      DistributedSearchStats* stats = nullptr,
      std::vector<uint8_t>* truncated = nullptr) const;

  /// Total points stored across partitions.
  size_t size() const { return total_points_.load(); }

  size_t PartitionCount() const;
  const SemTreeOptions& options() const { return options_; }

  /// Per-partition statistics, fetched over the message protocol.
  std::vector<PartitionStats> AllPartitionStats() const;

  /// One bounded rebalance pass (DESIGN.md §12): reads the decayed
  /// per-partition load counters and performs at most ONE structural
  /// action — split the hottest overloaded partition, else fold the
  /// coldest underloaded one back into its parents, else migrate a
  /// hot-but-unsplittable partition onto an idle seat. Runs
  /// concurrently with readers and writers; thread-safe (at most one
  /// pass at a time). Returns OK when nothing qualified.
  Status RebalanceTick();

  /// Spawns a background thread calling RebalanceTick every
  /// options().rebalance.interval. FailedPrecondition if running.
  Status StartRebalancer();

  /// Stops and joins the background rebalancer. Idempotent; called by
  /// the destructor before the cluster shuts down.
  void StopRebalancer();

  /// Monotone counter bumped at the start AND end of every structural
  /// rebalance action (odd = a step is in flight). Cache layers add it
  /// to their own mutation epoch so entries cached mid-step can never
  /// be served once the routing has settled (engine/query_engine.cc).
  uint64_t rebalance_epoch() const {
    return rebalance_epoch_.load(std::memory_order_acquire);
  }

  /// Observability snapshot: per-partition stats (sizes + load
  /// counters), the free-seat pool and the rebalance counters.
  SemTreeDebugStats DebugStats() const;

  /// Interconnect statistics.
  ClusterStats NetworkStats() const { return cluster_->Stats(); }

  /// Structural check across all partitions: every stored point lies
  /// inside the region induced by its ancestors' splits (including
  /// cross-partition edges), and point counts reconcile. Must only be
  /// called when no operations are in flight.
  Status CheckInvariants() const;

  /// Serializes the whole tree for the v2 snapshot (DESIGN.md §5):
  /// metadata plus one blob per partition, each produced by that
  /// partition's compute node over the snapshot protocol — the same
  /// fan-out discipline as every other cross-partition interaction.
  /// Must only be called when no operations are in flight.
  Status SaveTo(persist::ByteWriter* out) const;

  /// Reassembles a saved tree: partitions (and their compute nodes)
  /// are recreated and every blob ships back to its node for restore —
  /// no re-insertion, no rebuild. `runtime` supplies the deployment
  /// knobs (latency, bandwidth, saturation, extra partition headroom);
  /// dimensions and bucket size come from the snapshot.
  static Result<std::unique_ptr<SemTree>> LoadFrom(
      persist::ByteReader* in, SemTreeOptions runtime = {});

 private:
  explicit SemTree(SemTreeOptions options);

  /// Allocates a new partition + compute node; -1 if max_partitions
  /// is reached. Thread-safe.
  int32_t CreatePartition();
  void RegisterHandlers(Partition* partition, ComputeNode* node);

  Partition* partition(int32_t id) const;
  bool IsSaturated(const Partition& partition) const;

  // Message handlers (run on the owning partition's worker thread).
  void HandleInsert(Partition* p, const Message& msg);
  void HandleRemove(Partition* p, const Message& msg);
  void HandleKnn(Partition* p, const Message& msg);
  void HandleRange(Partition* p, const Message& msg);
  void HandleBuildPartition(Partition* p, const Message& msg);
  void HandleAdoptLeaf(Partition* p, const Message& msg);
  void HandleStats(Partition* p, const Message& msg);
  void HandleBulkBuild(Partition* p, const Message& msg);
  void HandleInstallTopology(Partition* p, const Message& msg);
  void HandleBatch(Partition* p, const Message& msg);
  void HandleSnapshot(Partition* p, const Message& msg);
  void HandleRestore(Partition* p, const Message& msg);

  // Rebalance handlers + coordinator (semtree/rebalance.cc).
  void RegisterRebalanceHandlers(Partition* partition, ComputeNode* node);
  void HandleSplit(Partition* p, const Message& msg);
  void HandleInstallSplit(Partition* p, const Message& msg);
  void HandleMerge(Partition* p, const Message& msg);
  void HandleMigrate(Partition* p, const Message& msg);
  void HandleRetarget(Partition* p, const Message& msg);
  void HandleEvacuate(Partition* p, const Message& msg);
  void HandleEdges(Partition* p, const Message& msg);

  // One live cross-partition edge: `partition`'s routing node
  // `parent_node` points at `child` on its `is_left` side.
  struct EdgeLocation {
    int32_t partition = -1;
    int32_t parent_node = -1;
    bool is_left = false;
    ChildRef child;
  };
  // The coordinator's cluster-wide view for one tick: per-partition
  // stats (with load counters), subtree inventories, and every live
  // cross-partition edge.
  struct LoadSnapshot {
    std::vector<PartitionStats> stats;             // By partition id.
    std::vector<std::vector<SubtreeInfo>> subtrees;  // By partition id.
    std::vector<EdgeLocation> edges;
    double total_score = 0.0;
    size_t active = 0;  // Partitions with data or routing load.
  };
  Result<LoadSnapshot> GatherLoad(double decay) const;
  Result<bool> TrySplit(const LoadSnapshot& snap)
      REQUIRES(rebalance_mu_);
  Result<bool> TryMerge(const LoadSnapshot& snap)
      REQUIRES(rebalance_mu_);
  Result<bool> TryMigrate(const LoadSnapshot& snap)
      REQUIRES(rebalance_mu_);
  // Re-routes points that arrived inside a rebalance window through
  // normal insertion (adjusting total_points_ first, so the re-insert
  // does not double-count them).
  Status ReinsertBlock(const PointBlock& block) REQUIRES(rebalance_mu_);
  // A free seat with id in (above, below), or a fresh partition when
  // `below` is unbounded; -1 when none qualifies. Ids must grow along
  // edges (the deadlock-freedom invariant of the batch protocol), so
  // every rebalance target is constrained by its future neighbors.
  int32_t AcquireSeat(int32_t above, int32_t below)
      REQUIRES(rebalance_mu_);
  void RebalancerLoop();

  SemTreeOptions options_;
  std::unique_ptr<Cluster> cluster_;

  // The partition registry is read on every routing hop (partition()
  // in the message handlers) but written only by CreatePartition, so
  // reads go through an RCU-published immutable snapshot (DESIGN.md
  // §11): readers pin an epoch and load `partition_table_` — no lock
  // on the hot path — while the writer swaps in a rebuilt table under
  // partitions_mu_ and retires the old one until the last pinned
  // reader drains. The Partition objects themselves are not part of
  // the protocol: each one's state is thread-confined to its compute
  // node's worker thread (compute_node.h), and the pointers stay
  // valid for the tree's lifetime — only the *table* is versioned.
  struct PartitionTable {
    std::vector<Partition*> entries;  // Borrowed from partitions_.
  };

  mutable Mutex partitions_mu_;
  std::vector<std::unique_ptr<Partition>> partitions_
      GUARDED_BY(partitions_mu_);
  mutable EpochManager partition_epochs_;
  std::atomic<const PartitionTable*> partition_table_;
  RetireList retired_tables_ GUARDED_BY(partitions_mu_);

  std::atomic<size_t> total_points_{0};

  // Rebalancer state (DESIGN.md §12). rebalance_mu_ serializes ticks
  // and guards the free-seat pool + counters; when a tick creates a
  // partition it takes partitions_mu_ *inside* rebalance_mu_ (never
  // the reverse). The epoch is read locklessly by cache layers.
  mutable Mutex rebalance_mu_;
  std::vector<int32_t> free_seats_ GUARDED_BY(rebalance_mu_);
  RebalanceCounters rebalance_counters_ GUARDED_BY(rebalance_mu_);
  std::atomic<uint64_t> rebalance_epoch_{0};

  // Background rebalancer thread (StartRebalancer/StopRebalancer).
  Mutex rebalancer_mu_;
  CondVar rebalancer_cv_;
  std::thread rebalancer_thread_;
  bool rebalancer_running_ GUARDED_BY(rebalancer_mu_) = false;
  bool rebalancer_stop_ GUARDED_BY(rebalancer_mu_) = false;
};

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_SEMTREE_H_

// Copyright 2026 The SemTree Authors
//
// SemanticIndex: the end-to-end pipeline of the paper (§III-A):
//
//   triples --(semantic distance, Eq. 1)--> FastMap --> vector space
//          --> distributed SemTree --> k-nearest / range queries
//
// This is the type a downstream application instantiates: feed it a
// vocabulary and a triple corpus, then ask semantic similarity queries
// by example.

#ifndef SEMTREE_SEMTREE_SEMANTIC_INDEX_H_
#define SEMTREE_SEMTREE_SEMANTIC_INDEX_H_

#include <memory>
#include <vector>

#include "distance/triple_distance.h"
#include "fastmap/fastmap.h"
#include "ontology/taxonomy.h"
#include "rdf/triple.h"
#include "semtree/semtree.h"

namespace semtree {

struct SemanticIndexOptions {
  /// FastMap embedding configuration (dimensionality etc.).
  FastMapOptions fastmap;

  /// Weights (alpha, beta, gamma) of Eq. (1).
  TripleDistanceWeights weights;

  /// Element-level distance configuration.
  ElementDistanceOptions element;

  /// Leaf bucket capacity of the SemTree.
  size_t bucket_size = 32;

  /// Partitions (compute nodes) of the distributed tree.
  size_t max_partitions = 1;

  /// Points a partition may store before build-partition triggers.
  /// Defaults to "never" for single-partition trees.
  size_t partition_capacity = SIZE_MAX;

  /// Simulated one-way network latency between partitions.
  std::chrono::microseconds network_latency{0};

  /// Concurrent client threads used while bulk-inserting the corpus.
  size_t build_client_threads = 1;

  /// Load the tree with the distributed balanced bulk load instead of
  /// point-wise insertion (faster; the paper motivates KD-trees by
  /// their bulk-loading efficiency).
  bool bulk_load = false;

  /// Split policy of the balanced bulk load (core/split.h): median or
  /// clustering-guided centroid cuts. Only consulted when `bulk_load`
  /// is set.
  SplitPolicy split_policy = SplitPolicy::kMedian;

  /// Worker threads for each partition's local balanced build
  /// (SemTreeOptions::build_threads): 1 = serial, 0 = one per hardware
  /// thread. Byte-identical trees across all values.
  size_t build_threads = 1;

  /// Memoize element distances during FastMap training (recommended;
  /// vocabularies are small so the hit rate is high).
  bool cache_element_distances = true;

  /// Order hits by true semantic distance instead of embedded distance.
  bool rerank_by_semantic_distance = false;
};

/// The paper's full semantic indexing framework.
class SemanticIndex {
 public:
  /// One query answer.
  struct Hit {
    TripleId id = 0;
    double embedded_distance = 0.0;  ///< Euclidean, in FastMap space.
    double semantic_distance = 0.0;  ///< Eq. (1), recomputed exactly.
  };

  /// Embeds and indexes `corpus`. The taxonomy must outlive the index.
  static Result<std::unique_ptr<SemanticIndex>> Build(
      const Taxonomy* taxonomy, std::vector<Triple> corpus,
      SemanticIndexOptions options = {});

  /// Rebuilds an index from a previously trained embedding (used by
  /// LoadIndex in semtree/index_io.h): skips FastMap training and goes
  /// straight to standing up the tree over the stored coordinates.
  static Result<std::unique_ptr<SemanticIndex>> Restore(
      const Taxonomy* taxonomy, std::vector<Triple> corpus,
      FastMap fastmap, SemanticIndexOptions options = {});

  /// Like Restore, but installs an already-reassembled SemTree (the v2
  /// snapshot load path, persist/index_snapshot.h): neither FastMap
  /// training nor tree construction runs.
  static Result<std::unique_ptr<SemanticIndex>> RestoreWithTree(
      const Taxonomy* taxonomy, std::vector<Triple> corpus,
      FastMap fastmap, std::unique_ptr<SemTree> tree,
      SemanticIndexOptions options = {});

  /// K nearest triples to `query` under the embedded distance
  /// (query-by-example, §II).
  Result<std::vector<Hit>> KnnQuery(const Triple& query, size_t k) const;

  /// Triples within `radius` of `query` in the embedded space.
  Result<std::vector<Hit>> RangeQuery(const Triple& query,
                                      double radius) const;

  /// The indexed triple for a hit id.
  const Triple& triple(TripleId id) const { return corpus_[id]; }
  size_t size() const { return corpus_.size(); }

  /// Exact Eq. (1) distance between two triples under this index's
  /// configuration.
  double SemanticDistance(const Triple& a, const Triple& b) const {
    return distance_(a, b);
  }

  /// Projects a triple into the FastMap space of this index.
  std::vector<double> Embed(const Triple& query) const;

  /// The configured Eq. (1) distance (element-level access included).
  const TripleDistance& distance() const { return distance_; }

  const FastMap& fastmap() const { return *fastmap_; }
  const SemTree& tree() const { return *tree_; }
  SemTree& tree() { return *tree_; }
  const Taxonomy& taxonomy() const {
    return distance_.element_distance().taxonomy();
  }
  const SemanticIndexOptions& options() const { return options_; }

 private:
  SemanticIndex(SemanticIndexOptions options, TripleDistance distance,
                std::vector<Triple> corpus)
      : options_(std::move(options)),
        distance_(std::move(distance)),
        corpus_(std::move(corpus)) {}

  std::vector<Hit> MakeHits(const Triple& query,
                            const std::vector<Neighbor>& neighbors) const;

  /// Stands up the SemTree over fastmap_'s coordinates (shared tail of
  /// Build and Restore).
  Status BuildTree();

  SemanticIndexOptions options_;
  TripleDistance distance_;
  std::vector<Triple> corpus_;
  std::unique_ptr<FastMap> fastmap_;
  std::unique_ptr<SemTree> tree_;
};

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_SEMANTIC_INDEX_H_

// Copyright 2026 The SemTree Authors

#include "semtree/index_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "ontology/vocabulary_io.h"
#include "persist/index_snapshot.h"
#include "persist/snapshot.h"
#include "rdf/turtle.h"

namespace semtree {

namespace {

constexpr char kMagic[] = "semtree-index";
constexpr int kVersion = 1;

Status LineError(size_t line_no, std::string_view message) {
  return Status::Corruption(
      StringPrintf("index file line %zu: %.*s", line_no,
                   static_cast<int>(message.size()), message.data()));
}

// Locale-independent: a "%.17g"-style file written under the classic
// locale must parse identically under de_DE-style locales whose
// LC_NUMERIC would make strtod stop at the '.' (string_util.h).
Result<double> ParseDouble(const std::string& s, size_t line_no) {
  double v = 0.0;
  if (!ParseDoubleText(s, &v)) {
    return LineError(line_no, "malformed number '" + s + "'");
  }
  return v;
}

Result<unsigned long long> ParseUint(const std::string& s,
                                     size_t line_no) {
  uint64_t v = 0;
  if (!ParseUint64Text(s, &v)) {
    return LineError(line_no, "malformed integer '" + s + "'");
  }
  return static_cast<unsigned long long>(v);
}

}  // namespace

std::string SerializeIndex(const SemanticIndex& index) {
  std::string out;
  out += StringPrintf("%s %d\n", kMagic, kVersion);

  // Numbers are written with FormatDouble, never "%.17g": printf's
  // float output follows LC_NUMERIC too, and a comma-decimal index
  // file would be unreadable anywhere else.
  const SemanticIndexOptions& opts = index.options();
  out += "weights " + FormatDouble(opts.weights.alpha) + ' ' +
         FormatDouble(opts.weights.beta) + ' ' +
         FormatDouble(opts.weights.gamma) + '\n';
  out += StringPrintf("element %d %d ", int(opts.element.string_distance),
                      int(opts.element.concept_measure));
  out += FormatDouble(opts.element.mixed_kind_distance) + '\n';
  out += StringPrintf("bucket %zu\n", opts.bucket_size);
  out += StringPrintf("rerank %d\n",
                      opts.rerank_by_semantic_distance ? 1 : 0);

  std::string vocab_text = SerializeVocabulary(index.taxonomy());
  size_t vocab_lines = Split(vocab_text, '\n').size();
  // Split produces one trailing empty field for the final newline.
  if (!vocab_text.empty() && vocab_text.back() == '\n') --vocab_lines;
  out += StringPrintf("vocabulary %zu\n", vocab_lines);
  out += vocab_text;

  out += StringPrintf("triples %zu\n", index.size());
  for (TripleId id = 0; id < index.size(); ++id) {
    out += index.triple(id).ToString();
    out += '\n';
  }

  const FastMap& fm = index.fastmap();
  out += StringPrintf("fastmap %zu %zu %zu\n", fm.size(),
                      fm.dimensions(), fm.effective_dimensions());
  for (size_t axis = 0; axis < fm.effective_dimensions(); ++axis) {
    out += StringPrintf("pivot %zu %zu ", fm.pivots()[axis].first,
                        fm.pivots()[axis].second);
    out += FormatDouble(fm.pivot_distances()[axis]) + '\n';
  }
  out += "coords\n";
  // Bulk-serialize the flat arena: one contiguous row pointer per
  // object, no per-point coordinate vectors.
  for (size_t i = 0; i < fm.size(); ++i) {
    const double* row = fm.CoordsRow(i);
    for (size_t d = 0; d < fm.dimensions(); ++d) {
      if (d) out += ' ';
      out += FormatDouble(row[d]);
    }
    out += '\n';
  }
  return out;
}

Status SaveIndex(const SemanticIndex& index, const std::string& path) {
  // Write-to-temp + atomic rename (in binary mode, so no newline
  // translation ever skews byte offsets): a crash mid-save leaves the
  // previous index file intact instead of a torn, unloadable one.
  return persist::AtomicWriteFile(path, SerializeIndex(index));
}

Result<IndexBundle> ParseIndex(std::string_view text,
                               const SemanticIndexOptions& runtime) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t cursor = 0;
  auto next_line = [&]() -> Result<std::vector<std::string>> {
    while (cursor < lines.size() && Trim(lines[cursor]).empty()) ++cursor;
    if (cursor >= lines.size()) {
      return Status::Corruption("index file truncated");
    }
    return SplitWhitespace(lines[cursor++]);
  };

  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> header, next_line());
  if (header.size() != 2 || header[0] != kMagic) {
    return Status::Corruption("not a semtree index file");
  }
  if (header[1] != std::to_string(kVersion)) {
    return Status::NotSupported("unsupported index version " + header[1]);
  }

  SemanticIndexOptions opts = runtime;

  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> weights, next_line());
  if (weights.size() != 4 || weights[0] != "weights") {
    return LineError(cursor, "expected 'weights a b g'");
  }
  SEMTREE_ASSIGN_OR_RETURN(opts.weights.alpha,
                           ParseDouble(weights[1], cursor));
  SEMTREE_ASSIGN_OR_RETURN(opts.weights.beta,
                           ParseDouble(weights[2], cursor));
  SEMTREE_ASSIGN_OR_RETURN(opts.weights.gamma,
                           ParseDouble(weights[3], cursor));

  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> element, next_line());
  if (element.size() != 4 || element[0] != "element") {
    return LineError(cursor, "expected 'element kind measure mixed'");
  }
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long string_kind,
                           ParseUint(element[1], cursor));
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long measure,
                           ParseUint(element[2], cursor));
  opts.element.string_distance =
      static_cast<StringDistanceKind>(string_kind);
  opts.element.concept_measure =
      static_cast<SimilarityMeasure>(measure);
  SEMTREE_ASSIGN_OR_RETURN(opts.element.mixed_kind_distance,
                           ParseDouble(element[3], cursor));

  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> bucket, next_line());
  if (bucket.size() != 2 || bucket[0] != "bucket") {
    return LineError(cursor, "expected 'bucket n'");
  }
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long bucket_size,
                           ParseUint(bucket[1], cursor));
  opts.bucket_size = static_cast<size_t>(bucket_size);

  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> rerank, next_line());
  if (rerank.size() != 2 || rerank[0] != "rerank") {
    return LineError(cursor, "expected 'rerank 0|1'");
  }
  opts.rerank_by_semantic_distance = (rerank[1] == "1");

  // Vocabulary block.
  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> vocab_hdr,
                           next_line());
  if (vocab_hdr.size() != 2 || vocab_hdr[0] != "vocabulary") {
    return LineError(cursor, "expected 'vocabulary n'");
  }
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long vocab_lines,
                           ParseUint(vocab_hdr[1], cursor));
  if (cursor + vocab_lines > lines.size()) {
    return Status::Corruption("vocabulary block truncated");
  }
  std::string vocab_text;
  for (size_t i = 0; i < vocab_lines; ++i) {
    vocab_text += lines[cursor++];
    vocab_text += '\n';
  }
  SEMTREE_ASSIGN_OR_RETURN(Taxonomy vocab, ParseVocabulary(vocab_text));

  // Triples block.
  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> triples_hdr,
                           next_line());
  if (triples_hdr.size() != 2 || triples_hdr[0] != "triples") {
    return LineError(cursor, "expected 'triples n'");
  }
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long triple_count,
                           ParseUint(triples_hdr[1], cursor));
  if (cursor + triple_count > lines.size()) {
    return Status::Corruption("triple block truncated");
  }
  std::vector<Triple> corpus;
  corpus.reserve(triple_count);
  for (size_t i = 0; i < triple_count; ++i) {
    // lines[cursor] is 1-based file line cursor + 1; compute it before
    // advancing so the error provably points at the malformed triple
    // itself (asserted by TripleParseErrorReportsItsOwnLine).
    const size_t line_no = cursor + 1;
    auto triple = ParseTriple(lines[cursor]);
    if (!triple.ok()) return LineError(line_no, triple.status().message());
    ++cursor;
    corpus.push_back(std::move(*triple));
  }

  // FastMap block.
  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> fm_hdr, next_line());
  if (fm_hdr.size() != 4 || fm_hdr[0] != "fastmap") {
    return LineError(cursor, "expected 'fastmap n dims effective'");
  }
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long fm_n,
                           ParseUint(fm_hdr[1], cursor));
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long fm_dims,
                           ParseUint(fm_hdr[2], cursor));
  SEMTREE_ASSIGN_OR_RETURN(unsigned long long fm_eff,
                           ParseUint(fm_hdr[3], cursor));
  if (fm_n != corpus.size()) {
    return Status::Corruption("embedding size disagrees with corpus");
  }
  std::vector<std::pair<size_t, size_t>> pivots;
  std::vector<double> pivot_distances;
  for (size_t axis = 0; axis < fm_eff; ++axis) {
    SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> pivot, next_line());
    if (pivot.size() != 4 || pivot[0] != "pivot") {
      return LineError(cursor, "expected 'pivot a b dist'");
    }
    SEMTREE_ASSIGN_OR_RETURN(unsigned long long a,
                             ParseUint(pivot[1], cursor));
    SEMTREE_ASSIGN_OR_RETURN(unsigned long long b,
                             ParseUint(pivot[2], cursor));
    SEMTREE_ASSIGN_OR_RETURN(double dist, ParseDouble(pivot[3], cursor));
    pivots.emplace_back(size_t(a), size_t(b));
    pivot_distances.push_back(dist);
  }
  SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> coords_hdr,
                           next_line());
  if (coords_hdr.size() != 1 || coords_hdr[0] != "coords") {
    return LineError(cursor, "expected 'coords'");
  }
  std::vector<double> flat;
  flat.reserve(size_t(fm_n) * size_t(fm_dims));
  for (size_t i = 0; i < fm_n; ++i) {
    SEMTREE_ASSIGN_OR_RETURN(std::vector<std::string> row, next_line());
    if (row.size() != fm_dims) {
      return LineError(cursor, "coordinate row has wrong arity");
    }
    for (const std::string& cell : row) {
      SEMTREE_ASSIGN_OR_RETURN(double v, ParseDouble(cell, cursor));
      flat.push_back(v);
    }
  }
  SEMTREE_ASSIGN_OR_RETURN(
      FastMap fastmap,
      FastMap::FromParts(fm_n, fm_dims, std::move(flat),
                         std::move(pivots), std::move(pivot_distances)));

  IndexBundle bundle;
  bundle.vocabulary = std::make_unique<Taxonomy>(std::move(vocab));
  SEMTREE_ASSIGN_OR_RETURN(
      bundle.index,
      SemanticIndex::Restore(bundle.vocabulary.get(), std::move(corpus),
                             std::move(fastmap), opts));
  return bundle;
}

Result<IndexBundle> LoadIndex(const std::string& path,
                              const SemanticIndexOptions& runtime) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StringPrintf("cannot open index file '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string contents = std::move(buffer).str();
  // One entry point for both generations: v2 binary snapshots are
  // sniffed by magic, everything else parses as the v1 text format.
  if (persist::LooksLikeSnapshot(contents)) {
    return persist::ParseIndexSnapshot(std::move(contents), runtime);
  }
  return ParseIndex(contents, runtime);
}

}  // namespace semtree

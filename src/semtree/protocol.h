// Copyright 2026 The SemTree Authors
//
// Internal wire structs of the SemTree message protocol. Payloads are
// type-erased shared_ptr<void>s (cluster/message.h), so the sender and
// every handler must agree on the concrete struct behind each message
// type; hoisting them out of semtree.cc's anonymous namespace lets the
// protocol be implemented across translation units (semtree.cc for the
// §III-B core, rebalance.cc for the online rebalancer of DESIGN.md §12)
// without ODR hazards. Not part of the public API: only semtree/*.cc
// include this.

#ifndef SEMTREE_SEMTREE_PROTOCOL_H_
#define SEMTREE_SEMTREE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/point.h"
#include "core/point_block.h"
#include "core/query.h"
#include "core/split.h"
#include "semtree/partition.h"

namespace semtree {
namespace protocol {

// Message types of the SemTree protocol.
constexpr uint32_t kInsertMsg = 1;
constexpr uint32_t kKnnMsg = 2;
constexpr uint32_t kRangeMsg = 3;
constexpr uint32_t kBuildPartitionMsg = 4;
constexpr uint32_t kAdoptLeafMsg = 5;
constexpr uint32_t kStatsMsg = 6;
constexpr uint32_t kRemoveMsg = 7;
constexpr uint32_t kBulkBuildMsg = 8;
constexpr uint32_t kInstallTopologyMsg = 9;
constexpr uint32_t kBatchMsg = 10;
constexpr uint32_t kSnapshotMsg = 11;
constexpr uint32_t kRestoreMsg = 12;
// Online rebalancing (DESIGN.md §12).
constexpr uint32_t kSplitMsg = 13;
constexpr uint32_t kMergeMsg = 14;
constexpr uint32_t kMigrateMsg = 15;
constexpr uint32_t kRetargetMsg = 16;
constexpr uint32_t kEvacuateMsg = 17;
constexpr uint32_t kEdgesMsg = 18;
constexpr uint32_t kInstallSplitMsg = 19;

struct InsertRequest {
  int32_t start_node = 0;
  KdPoint point;
};
struct InsertResponse {
  bool ok = false;
  bool saturated = false;
  // The addressed node vanished mid-rebalance (dead or out of range):
  // nothing was stored; the client retries from the root against the
  // settled routing.
  bool stale = false;
  int32_t partition = -1;
  std::string error;
};
struct RemoveRequest {
  int32_t start_node = 0;
  KdPoint point;
};
struct RemoveResponse {
  bool found = false;
  bool stale = false;  // Same retry contract as InsertResponse::stale.
};

// Budget accounting that travels inside a search work item: the caps
// (SearchBudget, core/query.h) plus the work already spent across
// every partition the item visited, so the cap is global to the
// query, not reset per hop. Mirrors core/best_first.h's BudgetGauge
// for the message-passing traversal.
struct TravelBudget {
  SearchBudget budget;
  uint64_t nodes = 0;
  uint64_t points = 0;
  bool truncated = false;

  bool ChargeNode() {
    if (budget.max_nodes_visited != 0 &&
        nodes >= budget.max_nodes_visited) {
      truncated = true;
      return false;
    }
    ++nodes;
    return true;
  }
  bool ChargeDistance() {
    if (budget.max_distance_computations != 0 &&
        points >= budget.max_distance_computations) {
      truncated = true;
      return false;
    }
    ++points;
    return true;
  }
  // Bulk grant for batched leaf scans — same accounting as `want`
  // ChargeDistance calls (mirrors BudgetGauge::ChargeDistances).
  size_t ChargeDistances(size_t want) {
    size_t granted = want;
    if (budget.max_distance_computations != 0) {
      uint64_t remaining = budget.max_distance_computations > points
                               ? budget.max_distance_computations - points
                               : 0;
      if (remaining < want) {
        granted = size_t(remaining);
        truncated = true;
      }
    }
    points += granted;
    return granted;
  }
  double eps() const {
    return budget.epsilon > 0.0 ? budget.epsilon : 0.0;
  }
};

// Node status of the k-nearest traversal — Table I of the paper:
// Not Visited (Nv), Left/Right (near side) Visited, All Visited (Av).
enum class VisitStatus : uint8_t {
  kNotVisited = 0,
  kNearVisited = 1,
  kAllVisited = 2,
};

// One pending node of the forward/backward visit. The frame stack
// travels inside the message, so any partition can continue the
// traversal and no compute node ever blocks on another (the protocol
// is "basically the same as the one described in the insertion
// algorithm": forwarding).
struct KnnFrame {
  int32_t partition = -1;
  int32_t node = -1;
  VisitStatus status = VisitStatus::kNotVisited;
};

struct KnnRequest {
  std::vector<double> query;
  size_t k = 0;                 // K of Table I.
  TravelBudget tb;              // Budget + spent counters, hop to hop.
  std::vector<Neighbor> rs;     // Result set Rs (max-heap on distance D).
  std::vector<KnnFrame> stack;  // Pending nodes with their status S.
  size_t partitions_visited = 0;
};
struct KnnResponse {
  std::vector<Neighbor> rs;
  size_t partitions_visited = 0;
  bool truncated = false;
};
struct RangeRequest {
  int32_t start_node = 0;
  std::vector<double> query;
  double radius = 0.0;
  SearchBudget budget;  // Enforced per partition subtree (semtree.h).
};
struct RangeResponse {
  std::vector<Neighbor> results;
  size_t partitions_visited = 0;
  bool truncated = false;
};
struct BuildPartitionRequest {};
struct BuildPartitionResponse {
  size_t leaves_moved = 0;
  std::vector<int32_t> new_partitions;
};
// Leaf migration payload: one contiguous coordinate block per Fig. 2
// build-partition, not N small vectors.
struct AdoptLeafRequest {
  PointBlock block;
};
struct AdoptLeafResponse {
  int32_t root_node = 0;
};
struct StatsRequest {
  // Multiplied into the partition's load counters *after* they are
  // reported, so the rebalancer's trigger tracks a recent window
  // (1.0 = pure read, used by AllPartitionStats/DebugStats).
  double decay = 1.0;
  bool include_subtrees = false;
};
struct StatsResponse {
  PartitionStats stats;
  std::vector<SubtreeInfo> subtrees;  // Only when include_subtrees.
};
struct BulkBuildRequest {
  PointBlock block;
};
struct BulkBuildResponse {
  int32_t root_node = -1;
};
// One routing node of the client-computed top-level skeleton. A child
// is either another skeleton node (index >= 0) or an already-built
// remote region (ChildRef).
struct SkeletonNode {
  uint32_t split_dim = 0;
  double split_value = 0.0;
  int32_t left_skeleton = -1;
  int32_t right_skeleton = -1;
  ChildRef left_ref;
  ChildRef right_ref;
};
struct InstallTopologyRequest {
  std::vector<SkeletonNode> skeleton;  // skeleton[0] becomes the root.
};
struct InstallTopologyResponse {
  bool ok = false;
  std::string error;
};
// Snapshot protocol: each partition serializes (or restores) itself on
// its own compute node; the client only assembles the per-partition
// blobs (one per partition, DESIGN.md §5).
struct SnapshotRequest {};
struct SnapshotResponse {
  std::string blob;
};
struct RestoreRequest {
  std::string blob;
  size_t partition_count = 0;  // ChildRef partition-id bound.
  // Migration (DESIGN.md §12): ChildRefs naming this partition id in
  // the blob are rewritten to the restoring partition's own id, so a
  // whole partition relocates onto a new seat with its node indexes
  // (and therefore every inbound edge's target node) preserved.
  int32_t remap_from = -1;
};
struct RestoreResponse {
  bool ok = false;
  std::string error;
};

// One query of a coalesced batch (BatchSearch), carrying its in-flight
// traversal state so any partition can continue it. k-NN items reuse
// the Table-I frame machinery of KnnRequest; range items use the same
// stack with the status field unused (a routing node is expanded once,
// pushing every child the radius condition admits).
struct BatchItem {
  uint32_t slot = 0;  // Position in the client's batch.
  QueryType type = QueryType::kKnn;
  std::vector<double> query;
  size_t k = 0;
  double radius = 0.0;
  TravelBudget tb;              // Budget + spent counters, hop to hop.
  std::vector<Neighbor> rs;     // k-NN: max-heap; range: accumulator.
  std::vector<KnnFrame> stack;  // Pending nodes, root-side at the bottom.
};
struct BatchRequest {
  std::vector<BatchItem> items;
};
struct BatchResponse {
  std::vector<BatchItem> items;
  size_t partitions_visited = 0;  // Handler activations, all partitions.
};

// ---- Rebalance protocol (DESIGN.md §12) ----
//
// All rebalance requests are issued by the client-side coordinator
// (SemTree::RebalanceTick), never from inside a handler, so they add
// no nested-call edges to the partition DAG and cannot deadlock.

// Source-side split: drain the fully-local subtree under `root`, cut
// its points with ChooseSplitForPolicy, and return the two halves as
// contiguous blocks. On success the subtree is detached (descendants
// dead, `root` an empty leaf) and the partition's point accounting is
// already adjusted; on failure nothing is mutated.
struct SplitRequest {
  int32_t root = -1;
  SplitPolicy policy = SplitPolicy::kMedian;
};
struct SplitResponse {
  bool ok = false;
  std::string error;
  uint32_t split_dim = 0;
  double split_value = 0.0;
  PointBlock left;
  PointBlock right;
};

// Source-side drain of a fully-local subtree into one block (merge
// phase, and strand collection after a retarget). `kill` additionally
// marks the emptied root dead — used once the root is unreachable, so
// late in-flight traffic gets a stale response instead of storing
// points into an abandoned node.
struct MergeRequest {
  int32_t root = -1;
  bool kill = false;
};
struct MergeResponse {
  bool ok = false;
  std::string error;
  PointBlock block;
};

// Target-side adopt of a shipped block: a fresh root is allocated and
// a balanced subtree built over the block (PR 6 pipeline). The reply
// names the new root so the coordinator can link it.
struct MigrateRequest {
  PointBlock block;
  SplitPolicy policy = SplitPolicy::kMedian;
  size_t build_threads = 1;
};
struct MigrateResponse {
  int32_t root_node = -1;
};

// Edits one child slot of a routing node — the atomic routing-table
// publication step of every rebalance move (the write happens on the
// owning worker thread, so readers see either the old or the new edge,
// never a torn one).
struct RetargetRequest {
  int32_t parent_node = -1;
  bool is_left = false;
  ChildRef child;
};
struct RetargetResponse {
  bool ok = false;
  std::string error;
};

// Atomic whole-partition evacuation (migration transfer format = the
// PR 3 per-partition snapshot blob): serialize, reset to pristine, and
// kill the root in ONE handler activation, so the blob and the
// emptied seat can never diverge and late arrivals always get stale
// responses rather than landing in an abandoned partition.
struct EvacuateRequest {
  bool want_blob = true;  // false: reset-only (freeing a merged seat).
};
struct EvacuateResponse {
  std::string blob;
  uint64_t points = 0;  // Points carried by the blob.
};

// Inventory of this partition's live outbound cross-partition edges.
struct EdgeInfo {
  int32_t parent_node = -1;
  bool is_left = false;
  ChildRef child;
};
struct EdgesRequest {};
struct EdgesResponse {
  std::vector<EdgeInfo> edges;
};

// Final step of a split: convert the drained (empty-leaf) root into a
// routing node over the two adopted halves. Points inserted into the
// leaf between the split drain and this install are returned as
// `strands` for client-side re-insertion.
struct InstallSplitRequest {
  int32_t node = -1;
  uint32_t split_dim = 0;
  double split_value = 0.0;
  ChildRef left;
  ChildRef right;
};
struct InstallSplitResponse {
  bool ok = false;
  std::string error;
  PointBlock strands;
};

inline size_t PointBytes(size_t dims) { return dims * sizeof(double) + 16; }
inline size_t NeighborBytes(size_t n) {
  return n * sizeof(Neighbor) + 16;
}

inline size_t BatchItemBytes(const BatchItem& item) {
  return item.query.size() * sizeof(double) +
         item.rs.size() * sizeof(Neighbor) +
         item.stack.size() * sizeof(KnnFrame) + 32;
}

inline size_t BatchBytes(const std::vector<BatchItem>& items) {
  size_t bytes = 32;
  for (const BatchItem& item : items) bytes += BatchItemBytes(item);
  return bytes;
}

}  // namespace protocol
}  // namespace semtree

#endif  // SEMTREE_SEMTREE_PROTOCOL_H_

// Copyright 2026 The SemTree Authors

#include "semtree/semtree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/bulk_build.h"
#include "core/distance.h"
#include "core/kernels.h"
#include "core/split.h"
#include "semtree/protocol.h"

namespace semtree {

// The wire structs and message ids live in semtree/protocol.h so the
// rebalancer handlers (semtree/rebalance.cc) can speak the same
// protocol without ODR hazards.
using namespace protocol;  // NOLINT(build/namespaces)

namespace {

// One local step of the k-NN forward/backward visit (§III-B.3,
// Table I): a leaf scan into the rs max-heap, or one status
// transition of the routing frame on top of `stack`. Shared by the
// single-query handler and the batch advance loop so batched results
// cannot diverge from sequential ones. Precondition: stack->back() is
// a frame hosted by `p`.
//
// `tb` meters the item's SearchBudget: when a cap runs out the stack
// is cleared (the traversal ends wherever it is, flagged truncated),
// and epsilon relaxes the backward-visit condition to
// |P[Sr] - Sv|·(1+eps) < max(Rs) — the (1+ε)-approximate criterion.
// With an exact budget every charge succeeds and the relaxed condition
// equals the textbook one, so the traversal is unchanged.
void KnnStep(Partition* p, const std::vector<double>& query, size_t k,
             TravelBudget* tb, std::vector<Neighbor>* rs,
             std::vector<KnnFrame>* stack) {
  KnnFrame& frame = stack->back();
  // An out-of-range index means the frame was captured before a
  // rebalance step rewrote this partition (e.g. a migration reset the
  // arena): the subtree it pointed at now lives behind a retargeted
  // edge the traversal has already consulted or will re-enter through
  // the parent, so the stale frame is dropped like a dead node.
  if (frame.node < 0 ||
      static_cast<size_t>(frame.node) >= p->arena_size()) {
    stack->pop_back();
    return;
  }
  const Partition::PNode& n = p->node(frame.node);
  if (n.is_dead) {
    stack->pop_back();
    return;
  }
  if (n.is_leaf) {
    if (!tb->ChargeNode()) {
      stack->clear();
      return;
    }
    const PointStore& store = p->store();
    // Batched leaf scan (core/kernels.h); the embedded space is L2 by
    // construction. The bulk grant reproduces a per-point charge loop
    // exactly, including the truncation point.
    size_t granted = tb->ChargeDistances(n.bucket.size());
    p->RecordLoad(0, static_cast<double>(granted));
    BatchScan(
        Metric::kL2, query.data(), store.dimensions(), granted,
        [&](size_t j) { return store.CoordsAt(n.bucket[j]); },
        [&](size_t j, double d) {
          rs->push_back(Neighbor{store.IdAt(n.bucket[j]), d});
          std::push_heap(rs->begin(), rs->end(), NeighborDistanceThenId);
          if (rs->size() > k) {
            std::pop_heap(rs->begin(), rs->end(),
                          NeighborDistanceThenId);
            rs->pop_back();
          }
        });
    if (granted < n.bucket.size()) {
      stack->clear();
    } else {
      stack->pop_back();
    }
    return;
  }
  double diff = query[n.split_dim] - n.split_value;
  ChildRef near = (diff <= 0.0) ? n.left : n.right;
  ChildRef far = (diff <= 0.0) ? n.right : n.left;
  switch (frame.status) {
    case VisitStatus::kNotVisited:
      if (!tb->ChargeNode()) {
        stack->clear();
        return;
      }
      // Forward visit: descend the near side first.
      frame.status = VisitStatus::kNearVisited;
      stack->push_back(
          KnnFrame{near.partition, near.node, VisitStatus::kNotVisited});
      break;
    case VisitStatus::kNearVisited: {
      // Backward visit: enter the unexplored subtree when the result
      // set is not full (|Rs| < K) or the splitting plane is closer
      // than the worst result (the disjunction of §III-B.3), the
      // latter relaxed by epsilon. The empty-heap guard also covers
      // k == 0.
      double adiff = std::fabs(diff);
      bool full = rs->size() >= k;
      bool enter_relaxed =
          !full ||
          (!rs->empty() && adiff * (1.0 + tb->eps()) < rs->front().distance);
      if (enter_relaxed) {
        frame.status = VisitStatus::kAllVisited;
        stack->push_back(
            KnnFrame{far.partition, far.node, VisitStatus::kNotVisited});
      } else {
        // Epsilon (not the geometry) pruned a subtree the exact
        // condition would have entered: the result is approximate.
        if (!rs->empty() && adiff < rs->front().distance) {
          tb->truncated = true;
        }
        stack->pop_back();
      }
      break;
    }
    case VisitStatus::kAllVisited:
      stack->pop_back();
      break;
  }
}

}  // namespace

Result<std::unique_ptr<SemTree>> SemTree::Create(SemTreeOptions options) {
  if (options.dimensions == 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (options.bucket_size == 0) {
    return Status::InvalidArgument("bucket_size must be positive");
  }
  if (options.max_partitions == 0) {
    return Status::InvalidArgument("max_partitions must be positive");
  }
  std::unique_ptr<SemTree> tree(new SemTree(std::move(options)));
  if (tree->CreatePartition() != 0) {
    return Status::Internal("failed to create the root partition");
  }
  return tree;
}

SemTree::SemTree(SemTreeOptions options) : options_(std::move(options)) {
  ClusterOptions copts;
  copts.latency = options_.network_latency;
  copts.bandwidth_bytes_per_us = options_.bandwidth_bytes_per_us;
  cluster_ = std::make_unique<Cluster>(copts);
  partition_table_.store(new PartitionTable{},
                         std::memory_order_seq_cst);
}

SemTree::~SemTree() {
  // The background rebalancer issues cluster calls; it must be gone
  // before the workers stop draining mailboxes.
  StopRebalancer();
  cluster_->Shutdown();
  // Workers are gone, so no reader can be pinned: the current table
  // dies here and the retired ones drain in RetireList's destructor.
  delete partition_table_.load(std::memory_order_seq_cst);
}

int32_t SemTree::CreatePartition() {
  int32_t id;
  {
    MutexLock lock(partitions_mu_);
    if (partitions_.size() >= options_.max_partitions) return -1;
    id = static_cast<int32_t>(partitions_.size());
    partitions_.push_back(std::make_unique<Partition>(
        id, options_.dimensions, options_.bucket_size));
    // RCU publish (core/epoch.h): a rebuilt immutable table replaces
    // the published one; routing hops pinned to the old table keep
    // reading it until they drain, then it is reclaimed.
    auto* next = new PartitionTable;
    next->entries.reserve(partitions_.size());
    for (const auto& p : partitions_) next->entries.push_back(p.get());
    const PartitionTable* old =
        partition_table_.exchange(next, std::memory_order_seq_cst);
    const uint64_t retire = partition_epochs_.Advance();
    retired_tables_.Retire(retire, /*tag=*/retire, [old] { delete old; });
    retired_tables_.ReclaimBefore(partition_epochs_.MinActiveEpoch());
  }
  ComputeNode* node = cluster_->AddNode();
  RegisterHandlers(partition(id), node);
  node->Start();
  return id;
}

Partition* SemTree::partition(int32_t id) const {
  // Lock-free: pin, read the published table, unpin. The returned
  // Partition pointer outlives the pin — partitions live as long as
  // the tree — so only the table access needs the guard.
  EpochGuard guard(partition_epochs_);
  const PartitionTable* table =
      partition_table_.load(std::memory_order_seq_cst);
  if (id < 0 || static_cast<size_t>(id) >= table->entries.size()) {
    return nullptr;
  }
  return table->entries[static_cast<size_t>(id)];
}

size_t SemTree::PartitionCount() const {
  EpochGuard guard(partition_epochs_);
  return partition_table_.load(std::memory_order_seq_cst)
      ->entries.size();
}

bool SemTree::IsSaturated(const Partition& part) const {
  PartitionStats stats = part.Stats();
  if (options_.saturation) return options_.saturation(stats);
  return stats.points >= options_.partition_capacity;
}

void SemTree::RegisterHandlers(Partition* part, ComputeNode* node) {
  node->RegisterHandler(kInsertMsg, [this, part](const Message& m) {
    HandleInsert(part, m);
  });
  node->RegisterHandler(kKnnMsg, [this, part](const Message& m) {
    HandleKnn(part, m);
  });
  node->RegisterHandler(kRangeMsg, [this, part](const Message& m) {
    HandleRange(part, m);
  });
  node->RegisterHandler(kBuildPartitionMsg,
                        [this, part](const Message& m) {
                          HandleBuildPartition(part, m);
                        });
  node->RegisterHandler(kAdoptLeafMsg, [this, part](const Message& m) {
    HandleAdoptLeaf(part, m);
  });
  node->RegisterHandler(kStatsMsg, [this, part](const Message& m) {
    HandleStats(part, m);
  });
  node->RegisterHandler(kRemoveMsg, [this, part](const Message& m) {
    HandleRemove(part, m);
  });
  node->RegisterHandler(kBulkBuildMsg, [this, part](const Message& m) {
    HandleBulkBuild(part, m);
  });
  node->RegisterHandler(kInstallTopologyMsg,
                        [this, part](const Message& m) {
                          HandleInstallTopology(part, m);
                        });
  node->RegisterHandler(kBatchMsg, [this, part](const Message& m) {
    HandleBatch(part, m);
  });
  node->RegisterHandler(kSnapshotMsg, [this, part](const Message& m) {
    HandleSnapshot(part, m);
  });
  node->RegisterHandler(kRestoreMsg, [this, part](const Message& m) {
    HandleRestore(part, m);
  });
  RegisterRebalanceHandlers(part, node);
}

// --------------------------------------------------------------------
// Insertion (§III-B.1)

void SemTree::HandleInsert(Partition* p, const Message& msg) {
  auto& req = PayloadAs<InsertRequest>(msg.payload);
  p->RecordLoad(1, 0);
  int32_t nd = req.start_node;
  for (;;) {
    if (nd < 0 || static_cast<size_t>(nd) >= p->arena_size() ||
        p->node(nd).is_dead) {
      // The addressed node vanished mid-rebalance: nothing stored;
      // the client retries from the root against the settled routing.
      InsertResponse resp;
      resp.stale = true;
      cluster_->Respond(msg, MakePayload<InsertResponse>(std::move(resp)),
                        64);
      return;
    }
    Partition::PNode& n = p->node(nd);
    if (n.is_leaf) {
      n.bucket.push_back(
          p->store().Append(req.point.coords.data(), req.point.id));
      p->AddPoints(1);
      total_points_.fetch_add(1, std::memory_order_relaxed);
      p->SplitLeafIfNeeded(nd);
      InsertResponse resp;
      resp.ok = true;
      resp.partition = p->id();
      resp.saturated = IsSaturated(*p);
      cluster_->Respond(msg, MakePayload<InsertResponse>(std::move(resp)),
                        64);
      return;
    }
    const ChildRef& child =
        (req.point.coords[n.split_dim] <= n.split_value) ? n.left
                                                         : n.right;
    if (child.partition == p->id()) {
      // Cp == Childp: navigate as a sequential Kd-Tree.
      nd = child.node;
      continue;
    }
    // Cp != Childp: hand the point to the partition hosting the child;
    // it (or a later hop) answers the original caller.
    req.start_node = child.node;
    cluster_->Forward(msg, child.partition, p->id());
    return;
  }
}

Status SemTree::Insert(const double* coords, size_t dims, PointId id) {
  return Insert(std::vector<double>(coords, coords + dims), id);
}

Status SemTree::Insert(const std::vector<double>& coords, PointId id) {
  if (coords.size() != options_.dimensions) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, tree has %zu",
                     coords.size(), options_.dimensions));
  }
  SEMTREE_RETURN_NOT_OK(CheckFiniteCoords(coords));
  // A stale response means the addressed node vanished mid-rebalance;
  // retrying from the root sees the settled routing. The bound only
  // trips if rebalance steps keep racing this one client.
  for (int attempt = 0; attempt < 16; ++attempt) {
    InsertRequest req;
    req.start_node = 0;
    req.point = KdPoint{coords, id};
    SEMTREE_ASSIGN_OR_RETURN(
        Payload payload,
        cluster_->CallAndWait(0, kInsertMsg,
                              MakePayload<InsertRequest>(std::move(req)),
                              PointBytes(options_.dimensions)));
    auto& resp = PayloadAs<InsertResponse>(payload);
    if (resp.stale) continue;
    if (!resp.ok) return Status::Internal(resp.error);
    if (resp.saturated && PartitionCount() < options_.max_partitions) {
      SEMTREE_ASSIGN_OR_RETURN(
          Payload build,
          cluster_->CallAndWait(
              resp.partition, kBuildPartitionMsg,
              MakePayload<BuildPartitionRequest>(BuildPartitionRequest{}),
              32));
      (void)build;
    }
    return Status::OK();
  }
  return Status::Unavailable(
      "insert kept hitting partitions mid-rebalance");
}

Status SemTree::BulkInsert(const PointBlock& points,
                           size_t client_threads) {
  if (points.dimensions != options_.dimensions && !points.empty()) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (client_threads <= 1) {
    for (size_t i = 0; i < points.size(); ++i) {
      SEMTREE_RETURN_NOT_OK(
          Insert(points.Row(i), points.dimensions, points.ids[i]));
    }
    return Status::OK();
  }
  ThreadPool pool(client_threads);
  std::atomic<bool> failed{false};
  Mutex status_mu;
  Status first_error;
  for (size_t i = 0; i < points.size(); ++i) {
    pool.Submit([this, &points, i, &failed, &status_mu, &first_error]() {
      if (failed.load(std::memory_order_relaxed)) return;
      Status st = Insert(points.Row(i), points.dimensions, points.ids[i]);
      if (!st.ok()) {
        MutexLock lock(status_mu);
        if (first_error.ok()) first_error = st;
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool.Wait();
  return first_error;
}

Status SemTree::BulkInsert(const std::vector<KdPoint>& points,
                           size_t client_threads) {
  for (const KdPoint& p : points) {
    if (p.coords.size() != options_.dimensions) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  return BulkInsert(PointBlock::FromPoints(options_.dimensions, points),
                    client_threads);
}

void SemTree::HandleRemove(Partition* p, const Message& msg) {
  auto& req = PayloadAs<RemoveRequest>(msg.payload);
  p->RecordLoad(1, 0);
  int32_t nd = req.start_node;
  for (;;) {
    if (nd < 0 || static_cast<size_t>(nd) >= p->arena_size() ||
        p->node(nd).is_dead) {
      RemoveResponse resp;
      resp.stale = true;
      cluster_->Respond(msg, MakePayload<RemoveResponse>(resp), 32);
      return;
    }
    Partition::PNode& n = p->node(nd);
    if (n.is_leaf) {
      RemoveResponse resp;
      p->RecordLoad(0, static_cast<double>(n.bucket.size()));
      for (size_t i = 0; i < n.bucket.size(); ++i) {
        Partition::Slot slot = n.bucket[i];
        if (p->store().IdAt(slot) == req.point.id &&
            std::equal(req.point.coords.begin(), req.point.coords.end(),
                       p->store().CoordsAt(slot))) {
          n.bucket.erase(n.bucket.begin() + static_cast<ptrdiff_t>(i));
          p->store().Release(slot);
          p->RemovePoints(1);
          total_points_.fetch_sub(1, std::memory_order_relaxed);
          resp.found = true;
          break;
        }
      }
      cluster_->Respond(msg, MakePayload<RemoveResponse>(resp), 32);
      return;
    }
    const ChildRef& child =
        (req.point.coords[n.split_dim] <= n.split_value) ? n.left
                                                         : n.right;
    if (child.partition == p->id()) {
      nd = child.node;
      continue;
    }
    req.start_node = child.node;
    cluster_->Forward(msg, child.partition, p->id());
    return;
  }
}

Status SemTree::Remove(const std::vector<double>& coords, PointId id) {
  if (coords.size() != options_.dimensions) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, tree has %zu",
                     coords.size(), options_.dimensions));
  }
  for (int attempt = 0; attempt < 16; ++attempt) {
    RemoveRequest req;
    req.start_node = 0;
    req.point = KdPoint{coords, id};
    SEMTREE_ASSIGN_OR_RETURN(
        Payload payload,
        cluster_->CallAndWait(0, kRemoveMsg,
                              MakePayload<RemoveRequest>(std::move(req)),
                              PointBytes(options_.dimensions)));
    auto& resp = PayloadAs<RemoveResponse>(payload);
    if (resp.stale) continue;  // Raced a rebalance step; start over.
    if (!resp.found) {
      return Status::NotFound(StringPrintf(
          "point %llu not stored at the given coordinates",
          (unsigned long long)id));
    }
    return Status::OK();
  }
  return Status::Unavailable(
      "remove kept hitting partitions mid-rebalance");
}

// --------------------------------------------------------------------
// Build partition (§III-B.2, Fig. 2)

void SemTree::HandleBuildPartition(Partition* p, const Message& msg) {
  BuildPartitionResponse resp;
  if (IsSaturated(*p)) {
    // Allocate every partition the cluster can still host, then
    // distribute this partition's leaves over them round-robin. The
    // saturated partition keeps only routing structure (and its root
    // regions), matching the paper's "some partitions are used just
    // for routing and others for storing data".
    std::vector<int32_t> targets;
    while (true) {
      int32_t q = CreatePartition();
      if (q < 0) break;
      targets.push_back(q);
    }
    if (!targets.empty()) {
      // Movable leaves, in DFS order: contiguous runs are spatially
      // close, so block assignment preserves locality and searches
      // cross few partitions.
      std::vector<Partition::LeafLocation> movable;
      for (const Partition::LeafLocation& loc : p->LocalLeaves()) {
        // Roots cannot migrate (no parent link to retarget); empty
        // leaves carry nothing to move.
        if (loc.parent < 0) continue;
        if (p->node(loc.leaf).bucket.empty()) continue;
        movable.push_back(loc);
      }
      for (size_t i = 0; i < movable.size(); ++i) {
        const Partition::LeafLocation& loc = movable[i];
        int32_t q = targets[i * targets.size() / movable.size()];
        AdoptLeafRequest adopt;
        // One contiguous coordinate block per migrated leaf (Fig. 2).
        adopt.block = p->ExtractLeafBlock(loc.leaf);
        size_t moved = adopt.block.size();
        size_t bytes = adopt.block.ApproxBytes();
        auto adopted = cluster_->CallAndWait(
            q, kAdoptLeafMsg,
            MakePayload<AdoptLeafRequest>(std::move(adopt)), bytes,
            p->id());
        if (!adopted.ok()) break;
        auto& aresp = PayloadAs<AdoptLeafResponse>(*adopted);
        // Install the direct link between the partitions (Fig. 2).
        Partition::PNode& parent = p->node(loc.parent);
        ChildRef link{q, aresp.root_node};
        (loc.is_left ? parent.left : parent.right) = link;
        p->node(loc.leaf).is_dead = true;
        p->RemovePoints(moved);
        ++resp.leaves_moved;
      }
      resp.new_partitions = std::move(targets);
    }
  }
  cluster_->Respond(
      msg, MakePayload<BuildPartitionResponse>(std::move(resp)), 64);
}

void SemTree::HandleAdoptLeaf(Partition* p, const Message& msg) {
  auto& req = PayloadAs<AdoptLeafRequest>(msg.payload);
  int32_t root = p->AdoptRoot();
  p->AbsorbBlock(root, req.block);
  p->SplitLeafIfNeeded(root);
  AdoptLeafResponse resp;
  resp.root_node = root;
  cluster_->Respond(msg, MakePayload<AdoptLeafResponse>(resp), 32);
}

// --------------------------------------------------------------------
// Distributed bulk load

void SemTree::HandleBulkBuild(Partition* p, const Message& msg) {
  auto& req = PayloadAs<BulkBuildRequest>(msg.payload);
  int32_t root = p->AdoptRoot();
  total_points_.fetch_add(req.block.size(), std::memory_order_relaxed);
  BulkBuildOptions build;
  build.policy = options_.split_policy;
  build.build_threads = options_.build_threads;
  p->BuildBalancedLocal(root, req.block, build);
  BulkBuildResponse resp;
  resp.root_node = root;
  cluster_->Respond(msg, MakePayload<BulkBuildResponse>(resp), 32);
}

void SemTree::HandleInstallTopology(Partition* p, const Message& msg) {
  auto& req = PayloadAs<InstallTopologyRequest>(msg.payload);
  InstallTopologyResponse resp;
  if (req.skeleton.empty()) {
    resp.error = "empty skeleton";
  } else if (!(p->node(p->root_node()).is_leaf &&
               p->node(p->root_node()).bucket.empty())) {
    resp.error = "root partition is not pristine";
  } else {
    // skeleton[0] overlays the partition root; the rest get fresh
    // nodes. Children are wired after all nodes exist.
    std::vector<int32_t> node_of(req.skeleton.size());
    node_of[0] = p->root_node();
    for (size_t i = 1; i < req.skeleton.size(); ++i) {
      node_of[i] = p->NewLeaf();
    }
    auto resolve = [&](int32_t skeleton_index,
                       const ChildRef& ref) -> ChildRef {
      if (skeleton_index >= 0) {
        return ChildRef{p->id(), node_of[size_t(skeleton_index)]};
      }
      return ref;
    };
    for (size_t i = 0; i < req.skeleton.size(); ++i) {
      const SkeletonNode& sk = req.skeleton[i];
      Partition::PNode& n = p->node(node_of[i]);
      n.is_leaf = false;
      n.split_dim = sk.split_dim;
      n.split_value = sk.split_value;
      n.left = resolve(sk.left_skeleton, sk.left_ref);
      n.right = resolve(sk.right_skeleton, sk.right_ref);
    }
    resp.ok = true;
  }
  cluster_->Respond(
      msg, MakePayload<InstallTopologyResponse>(std::move(resp)), 32);
}

namespace {

// Client-side recursive median partitioning of the corpus into at most
// `budget` regions; emits skeleton routing entries and region spans.
// Works over the flat block through an index permutation — rows are
// gathered into per-region contiguous blocks only once, at dispatch.
struct RegionSplitter {
  const PointBlock& block;
  size_t bucket_size;
  BulkBuildOptions build;  // Split policy for region cuts (serial).
  std::vector<uint32_t> order;  // Row permutation; spans are regions.
  std::vector<SkeletonNode> skeleton;
  std::vector<std::pair<size_t, size_t>> regions;  // [lo, hi) spans.

  RegionSplitter(const PointBlock& b, size_t bucket,
                 const BulkBuildOptions& opts)
      : block(b), bucket_size(bucket), build(opts), order(b.size()) {
    build.bucket_size = bucket;
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
  }

  double Coord(size_t pos, size_t dim) const {
    return block.Row(order[pos])[dim];
  }

  /// Gathers a region span into one contiguous dispatch block.
  PointBlock GatherRegion(size_t region) const {
    auto [lo, hi] = regions[region];
    PointBlock out(block.dimensions);
    out.Reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      out.Append(block.Row(order[i]), block.ids[order[i]]);
    }
    return out;
  }

  // Returns (skeleton_index, region_index): exactly one is >= 0.
  std::pair<int32_t, int32_t> Split(size_t lo, size_t hi, size_t budget) {
    size_t count = hi - lo;
    auto emit_region = [&]() -> std::pair<int32_t, int32_t> {
      regions.emplace_back(lo, hi);
      return {-1, int32_t(regions.size() - 1)};
    };
    if (budget <= 1 || count <= bucket_size) return emit_region();

    const PointBlock& b = block;
    MedianSplit median;
    if (!ChooseSplitForPolicy(order, lo, hi, b.dimensions,
                              [&b](uint32_t x) { return b.Row(x); }, build,
                              &median)) {
      return emit_region();  // All points identical.
    }
    uint32_t best_dim = median.dim;
    size_t split = median.boundary;
    double sv = median.value;
    size_t left_budget = budget / 2;
    size_t right_budget = budget - left_budget;
    // Reserve this skeleton slot before recursing so index 0 is the
    // root.
    size_t my_index = skeleton.size();
    skeleton.emplace_back();
    auto left = Split(lo, split, left_budget);
    auto right = Split(split, hi, right_budget);
    SkeletonNode& sk = skeleton[my_index];
    sk.split_dim = best_dim;
    sk.split_value = sv;
    sk.left_skeleton = left.first;
    sk.right_skeleton = right.first;
    // Region ChildRefs are filled in after the regions are built; stash
    // the region indexes in the refs' node fields for now.
    if (left.first < 0) sk.left_ref = ChildRef{-1, left.second};
    if (right.first < 0) sk.right_ref = ChildRef{-1, right.second};
    return {int32_t(my_index), -1};
  }
};

}  // namespace

Status SemTree::BulkLoadBalanced(std::vector<KdPoint> points) {
  for (const KdPoint& p : points) {
    if (p.coords.size() != options_.dimensions) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  return BulkLoadBalanced(
      PointBlock::FromPoints(options_.dimensions, points));
}

Status SemTree::BulkLoadBalanced(PointBlock points) {
  if (size() != 0) {
    return Status::FailedPrecondition(
        "bulk load requires an empty tree");
  }
  if (points.empty()) return Status::OK();
  if (points.dimensions != options_.dimensions) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }

  size_t data_partitions =
      options_.max_partitions > 1 ? options_.max_partitions - 1 : 1;
  if (options_.bulk_load_partitions > 0) {
    // Leave idle seats for the online rebalancer to split into.
    data_partitions =
        std::min(data_partitions, options_.bulk_load_partitions);
  }
  BulkBuildOptions region_build;
  region_build.policy = options_.split_policy;
  RegionSplitter splitter(points, options_.bucket_size, region_build);
  auto root_out = splitter.Split(0, points.size(), data_partitions);

  if (splitter.regions.size() == 1 || options_.max_partitions == 1 ||
      root_out.first < 0) {
    // Everything fits in the root partition.
    BulkBuildRequest req;
    req.block = std::move(points);
    size_t bytes = req.block.ApproxBytes();
    SEMTREE_ASSIGN_OR_RETURN(
        Payload resp,
        cluster_->CallAndWait(0, kBulkBuildMsg,
                              MakePayload<BulkBuildRequest>(std::move(req)),
                              bytes));
    (void)resp;
    return Status::OK();
  }

  // One new partition per region; dispatch the balanced builds in
  // parallel, one contiguous block per region.
  struct PendingRegion {
    int32_t partition;
    std::future<Payload> future;
  };
  std::vector<PendingRegion> pending;
  pending.reserve(splitter.regions.size());
  for (size_t r = 0; r < splitter.regions.size(); ++r) {
    int32_t q = CreatePartition();
    if (q < 0) {
      return Status::ResourceExhausted(
          "not enough compute nodes for the bulk-load regions");
    }
    BulkBuildRequest req;
    req.block = splitter.GatherRegion(r);
    size_t bytes = req.block.ApproxBytes();
    pending.push_back(PendingRegion{
        q, cluster_->Call(q, kBulkBuildMsg,
                          MakePayload<BulkBuildRequest>(std::move(req)),
                          bytes)});
  }
  std::vector<ChildRef> region_refs(pending.size());
  for (size_t r = 0; r < pending.size(); ++r) {
    Payload payload = pending[r].future.get();
    if (payload == nullptr) {
      return Status::Unavailable("cluster shut down during bulk load");
    }
    auto& resp = PayloadAs<BulkBuildResponse>(payload);
    region_refs[r] = ChildRef{pending[r].partition, resp.root_node};
  }

  // Patch region placeholders with the real ChildRefs and install the
  // skeleton in the root partition.
  InstallTopologyRequest install;
  install.skeleton = std::move(splitter.skeleton);
  for (SkeletonNode& sk : install.skeleton) {
    if (sk.left_skeleton < 0) {
      sk.left_ref = region_refs[size_t(sk.left_ref.node)];
    }
    if (sk.right_skeleton < 0) {
      sk.right_ref = region_refs[size_t(sk.right_ref.node)];
    }
  }
  size_t bytes = install.skeleton.size() * sizeof(SkeletonNode) + 32;
  SEMTREE_ASSIGN_OR_RETURN(
      Payload payload,
      cluster_->CallAndWait(
          0, kInstallTopologyMsg,
          MakePayload<InstallTopologyRequest>(std::move(install)),
          bytes));
  auto& resp = PayloadAs<InstallTopologyResponse>(payload);
  if (!resp.ok) return Status::Internal(resp.error);
  return Status::OK();
}

// --------------------------------------------------------------------
// K-nearest search (§III-B.3)

void SemTree::HandleKnn(Partition* p, const Message& msg) {
  auto& req = PayloadAs<KnnRequest>(msg.payload);
  p->RecordLoad(1, 0);
  ++req.partitions_visited;

  // Drive the traversal off the frame stack until it drains (answer
  // the client) or reaches a node hosted elsewhere (forward the whole
  // work item there, insertion-style).
  while (!req.stack.empty()) {
    if (req.stack.back().partition != p->id()) {
      cluster_->Forward(msg, req.stack.back().partition, p->id());
      return;
    }
    KnnStep(p, req.query, req.k, &req.tb, &req.rs, &req.stack);
  }
  // Backward visit finished (at the root partition per §III-B.3, since
  // the bottom frame lives there) — or the budget ran out and cleared
  // the stack wherever the traversal was.
  KnnResponse resp;
  resp.rs = std::move(req.rs);
  resp.partitions_visited = req.partitions_visited;
  resp.truncated = req.tb.truncated;
  size_t bytes = NeighborBytes(resp.rs.size());
  cluster_->Respond(msg, MakePayload<KnnResponse>(std::move(resp)),
                    bytes);
}

Result<std::vector<Neighbor>> SemTree::KnnSearch(
    const std::vector<double>& query, size_t k, const SearchBudget& budget,
    DistributedSearchStats* stats) const {
  if (query.size() != options_.dimensions) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (!AllFinite(query)) {
    return Status::InvalidArgument(
        "query has non-finite (NaN/Inf) coordinates");
  }
  if (stats) stats->messages_before = cluster_->Stats().messages;
  KnnRequest req;
  req.query = query;
  req.k = k;
  req.tb.budget = budget;
  req.stack.push_back(KnnFrame{0, 0, VisitStatus::kNotVisited});
  SEMTREE_ASSIGN_OR_RETURN(
      Payload payload,
      cluster_->CallAndWait(0, kKnnMsg,
                            MakePayload<KnnRequest>(std::move(req)),
                            PointBytes(query.size())));
  auto& resp = PayloadAs<KnnResponse>(payload);
  std::vector<Neighbor> out = std::move(resp.rs);
  std::sort(out.begin(), out.end(), NeighborDistanceThenId);
  if (stats) {
    stats->messages_after = cluster_->Stats().messages;
    stats->partitions_visited = resp.partitions_visited;
    stats->truncated = resp.truncated;
  }
  return out;
}

// --------------------------------------------------------------------
// Range search (§III-B.4)

namespace {

// Local half of the distributed range search. The budget is metered
// per partition subtree (see semtree.h): this partition's TravelBudget
// charges local nodes and points, while border-crossing subqueries
// ship the original caps and meter themselves. Epsilon prunes the
// both-children descent exactly like the sequential walkers:
// |P[Sr] - Sv|·(1+eps) <= D admits both sides.
void RangeLocalWalk(Cluster* cluster, Partition* p, int32_t node,
                    const RangeRequest& req, TravelBudget* tb,
                    std::vector<Neighbor>* out,
                    std::vector<std::future<Payload>>* remote) {
  // Stale-frame guard (see KnnStep): a node index from before a
  // rebalance rewrite is treated like a dead node.
  if (node < 0 || static_cast<size_t>(node) >= p->arena_size()) return;
  const Partition::PNode& n = p->node(node);
  if (n.is_dead) return;
  if (n.is_leaf) {
    if (!tb->ChargeNode()) return;
    const PointStore& store = p->store();
    size_t granted = tb->ChargeDistances(n.bucket.size());
    p->RecordLoad(0, static_cast<double>(granted));
    BatchScan(
        Metric::kL2, req.query.data(), store.dimensions(), granted,
        [&](size_t j) { return store.CoordsAt(n.bucket[j]); },
        [&](size_t j, double d) {
          if (d <= req.radius) {
            out->push_back(Neighbor{store.IdAt(n.bucket[j]), d});
          }
        });
    return;
  }
  if (!tb->ChargeNode()) return;

  auto visit = [&](const ChildRef& child) {
    if (child.partition == p->id()) {
      RangeLocalWalk(cluster, p, child.node, req, tb, out, remote);
      return;
    }
    // Border node: launch the remote subquery and keep navigating —
    // the remote partitions work in parallel (§III-B.4).
    RangeRequest sub;
    sub.start_node = child.node;
    sub.query = req.query;
    sub.radius = req.radius;
    sub.budget = req.budget;
    remote->push_back(cluster->Call(
        child.partition, kRangeMsg,
        MakePayload<RangeRequest>(std::move(sub)),
        PointBytes(req.query.size()), p->id()));
  };

  double diff = req.query[n.split_dim] - n.split_value;
  double adiff = std::fabs(diff);
  if (adiff * (1.0 + tb->eps()) <= req.radius) {
    visit(n.left);
    visit(n.right);
  } else {
    // Epsilon pruned the far side the exact condition would have
    // entered: the result may be missing borderline members.
    if (adiff <= req.radius) tb->truncated = true;
    visit(diff <= 0.0 ? n.left : n.right);
  }
}

}  // namespace

void SemTree::HandleRange(Partition* p, const Message& msg) {
  auto& req = PayloadAs<RangeRequest>(msg.payload);
  p->RecordLoad(1, 0);
  RangeResponse resp;
  resp.partitions_visited = 1;
  TravelBudget tb;
  tb.budget = req.budget;
  std::vector<std::future<Payload>> remote;
  RangeLocalWalk(cluster_.get(), p, req.start_node, req, &tb,
                 &resp.results, &remote);
  resp.truncated = tb.truncated;
  // Backward phase: merge the parallel partial result sets.
  for (std::future<Payload>& f : remote) {
    Payload payload = f.get();
    if (payload == nullptr) continue;  // Cluster shut down mid-query.
    auto& sub = PayloadAs<RangeResponse>(payload);
    resp.partitions_visited += sub.partitions_visited;
    resp.truncated = resp.truncated || sub.truncated;
    resp.results.insert(resp.results.end(), sub.results.begin(),
                        sub.results.end());
  }
  size_t bytes = NeighborBytes(resp.results.size());
  cluster_->Respond(msg, MakePayload<RangeResponse>(std::move(resp)),
                    bytes);
}

Result<std::vector<Neighbor>> SemTree::RangeSearch(
    const std::vector<double>& query, double radius,
    const SearchBudget& budget, DistributedSearchStats* stats) const {
  if (query.size() != options_.dimensions) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (!AllFinite(query)) {
    return Status::InvalidArgument(
        "query has non-finite (NaN/Inf) coordinates");
  }
  // !(radius >= 0) also rejects a NaN radius, which would defeat
  // every pruning comparison on the partition walks.
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be non-negative");
  }
  if (stats) stats->messages_before = cluster_->Stats().messages;
  RangeRequest req;
  req.start_node = 0;
  req.query = query;
  req.radius = radius;
  req.budget = budget;
  SEMTREE_ASSIGN_OR_RETURN(
      Payload payload,
      cluster_->CallAndWait(0, kRangeMsg,
                            MakePayload<RangeRequest>(std::move(req)),
                            PointBytes(query.size())));
  auto& resp = PayloadAs<RangeResponse>(payload);
  std::vector<Neighbor> out = std::move(resp.results);
  std::sort(out.begin(), out.end(), NeighborDistanceThenId);
  if (stats) {
    stats->messages_after = cluster_->Stats().messages;
    stats->partitions_visited = resp.partitions_visited;
    stats->truncated = resp.truncated;
  }
  return out;
}

// --------------------------------------------------------------------
// Coalesced batch search
//
// A batch travels the partition tree as whole work items. At each
// partition every item advances locally until it completes, blocks on
// a child partition, or pops back out of this partition's frames; the
// blocked items are then grouped by target partition and each group is
// shipped as ONE sub-RPC (instead of one RPC per query). Sub-calls
// only ever follow down-edges of the partition tree — partitions are
// linked strictly old-to-new — so the nested-Call chains cannot
// deadlock (see compute_node.h).

namespace {

enum class ItemState : uint8_t {
  kDone,     // Stack drained: the item is fully answered.
  kExited,   // Popped out of this partition's frames; an ancestor
             // owns the new top frame — hand the item back.
  kBlocked,  // Top frame lives in a child partition.
};

// Advances `item` while its top frame is hosted by `p`. `entry_depth`
// is the stack size at arrival: the frame at entry_depth-1 is the one
// that addressed this partition, so shrinking below it means the
// traversal has left p's subtree.
ItemState AdvanceItem(Partition* p, BatchItem* item, size_t entry_depth) {
  for (;;) {
    if (item->stack.empty()) return ItemState::kDone;
    if (item->stack.size() < entry_depth) return ItemState::kExited;
    KnnFrame& frame = item->stack.back();
    if (frame.partition != p->id()) return ItemState::kBlocked;

    if (item->type == QueryType::kKnn) {
      // The exact per-frame step the single-query handler runs.
      KnnStep(p, item->query, item->k, &item->tb, &item->rs, &item->stack);
      continue;
    }

    // Stale-frame guard (see KnnStep).
    if (frame.node < 0 ||
        static_cast<size_t>(frame.node) >= p->arena_size()) {
      item->stack.pop_back();
      continue;
    }
    const Partition::PNode& n = p->node(frame.node);
    if (n.is_dead) {
      item->stack.pop_back();
      continue;
    }
    if (n.is_leaf) {
      if (!item->tb.ChargeNode()) {
        item->stack.clear();
        continue;
      }
      const PointStore& store = p->store();
      size_t granted = item->tb.ChargeDistances(n.bucket.size());
      p->RecordLoad(0, static_cast<double>(granted));
      BatchScan(
          Metric::kL2, item->query.data(), store.dimensions(), granted,
          [&](size_t j) { return store.CoordsAt(n.bucket[j]); },
          [&](size_t j, double d) {
            if (d <= item->radius) {
              item->rs.push_back(Neighbor{store.IdAt(n.bucket[j]), d});
            }
          });
      bool spent = granted < n.bucket.size();
      if (spent) {
        item->stack.clear();
      } else {
        item->stack.pop_back();
      }
      continue;
    }

    // Expand once: pop the routing frame, push every child the radius
    // condition admits (§III-B.4) — the both-children condition
    // relaxed by the item's epsilon, like the sequential walkers.
    if (!item->tb.ChargeNode()) {
      item->stack.clear();
      continue;
    }
    double diff = item->query[n.split_dim] - n.split_value;
    double adiff = std::fabs(diff);
    ChildRef left = n.left;
    ChildRef right = n.right;
    item->stack.pop_back();
    if (adiff * (1.0 + item->tb.eps()) <= item->radius) {
      item->stack.push_back(
          KnnFrame{left.partition, left.node, VisitStatus::kNotVisited});
      item->stack.push_back(
          KnnFrame{right.partition, right.node, VisitStatus::kNotVisited});
    } else {
      // Epsilon pruned a side the exact condition would have entered.
      if (adiff <= item->radius) item->tb.truncated = true;
      ChildRef near = (diff <= 0.0) ? left : right;
      item->stack.push_back(
          KnnFrame{near.partition, near.node, VisitStatus::kNotVisited});
    }
  }
}

}  // namespace

void SemTree::HandleBatch(Partition* p, const Message& msg) {
  auto& req = PayloadAs<BatchRequest>(msg.payload);
  p->RecordLoad(static_cast<double>(req.items.size()), 0);
  BatchResponse resp;
  resp.partitions_visited = 1;
  resp.items.reserve(req.items.size());

  struct ActiveItem {
    BatchItem item;
    size_t entry_depth;
  };
  // The entry depth is fixed at arrival: frames below it belong to
  // ancestor partitions forever, while frames at or above it are this
  // partition's (or pushed into descendants during local advancing) —
  // including after a sub-call hands an item back.
  std::map<uint32_t, size_t> entry_depth_of;
  std::vector<ActiveItem> active;
  active.reserve(req.items.size());
  for (BatchItem& item : req.items) {
    size_t depth = item.stack.size();
    entry_depth_of[item.slot] = depth;
    active.push_back(ActiveItem{std::move(item), depth});
  }

  while (!active.empty()) {
    // Advance everything locally; settled items go straight into the
    // response, blocked ones group by the partition they need next.
    std::map<int32_t, std::vector<ActiveItem>> blocked;
    for (ActiveItem& a : active) {
      switch (AdvanceItem(p, &a.item, a.entry_depth)) {
        case ItemState::kDone:
        case ItemState::kExited:
          resp.items.push_back(std::move(a.item));
          break;
        case ItemState::kBlocked:
          blocked[a.item.stack.back().partition].push_back(std::move(a));
          break;
      }
    }
    active.clear();
    if (blocked.empty()) break;

    // One sub-RPC per child partition, carrying every item that needs
    // it this round.
    std::vector<Cluster::OutboundCall> calls;
    calls.reserve(blocked.size());
    for (auto& [target, group] : blocked) {
      BatchRequest sub;
      sub.items.reserve(group.size());
      for (ActiveItem& a : group) sub.items.push_back(std::move(a.item));
      size_t bytes = BatchBytes(sub.items);
      calls.push_back(Cluster::OutboundCall{
          target, kBatchMsg, MakePayload<BatchRequest>(std::move(sub)),
          bytes});
    }
    std::vector<std::future<Payload>> futures =
        cluster_->CallAll(std::move(calls), p->id());

    // The children work in parallel; returned items re-enter the local
    // advance loop (a k-NN item may resume a backward visit here).
    for (std::future<Payload>& f : futures) {
      Payload payload = f.get();
      if (payload == nullptr) continue;  // Cluster shut down mid-batch.
      auto& sub = PayloadAs<BatchResponse>(payload);
      resp.partitions_visited += sub.partitions_visited;
      for (BatchItem& item : sub.items) {
        size_t depth = entry_depth_of.at(item.slot);
        active.push_back(ActiveItem{std::move(item), depth});
      }
    }
  }

  size_t bytes = BatchBytes(resp.items);
  cluster_->Respond(msg, MakePayload<BatchResponse>(std::move(resp)),
                    bytes);
}

Result<std::vector<std::vector<Neighbor>>> SemTree::BatchSearch(
    const std::vector<SpatialQuery>& queries,
    DistributedSearchStats* stats,
    std::vector<uint8_t>* truncated) const {
  std::vector<std::vector<Neighbor>> out(queries.size());
  if (truncated) truncated->assign(queries.size(), 0);
  if (queries.empty()) return out;

  BatchRequest req;
  req.items.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const SpatialQuery& q = queries[i];
    if (q.coords.size() != options_.dimensions) {
      return Status::InvalidArgument(StringPrintf(
          "query %zu has %zu dimensions, tree has %zu", i,
          q.coords.size(), options_.dimensions));
    }
    if (!AllFinite(q.coords)) {
      return Status::InvalidArgument(StringPrintf(
          "query %zu has non-finite (NaN/Inf) coordinates", i));
    }
    // !(radius >= 0) also rejects NaN.
    if (q.type == QueryType::kRange && !(q.radius >= 0.0)) {
      return Status::InvalidArgument(
          StringPrintf("query %zu has a negative or NaN radius", i));
    }
    BatchItem item;
    item.slot = static_cast<uint32_t>(i);
    item.type = q.type;
    item.query = q.coords;
    item.k = q.k;
    item.radius = q.radius;
    item.tb.budget = q.budget;
    item.stack.push_back(KnnFrame{0, 0, VisitStatus::kNotVisited});
    req.items.push_back(std::move(item));
  }

  if (stats) stats->messages_before = cluster_->Stats().messages;
  size_t bytes = BatchBytes(req.items);
  SEMTREE_ASSIGN_OR_RETURN(
      Payload payload,
      cluster_->CallAndWait(0, kBatchMsg,
                            MakePayload<BatchRequest>(std::move(req)),
                            bytes));
  auto& resp = PayloadAs<BatchResponse>(payload);
  bool any_truncated = false;
  for (BatchItem& item : resp.items) {
    std::sort(item.rs.begin(), item.rs.end(), NeighborDistanceThenId);
    out[item.slot] = std::move(item.rs);
    any_truncated = any_truncated || item.tb.truncated;
    if (truncated) (*truncated)[item.slot] = item.tb.truncated ? 1 : 0;
  }
  if (stats) {
    stats->messages_after = cluster_->Stats().messages;
    stats->partitions_visited = resp.partitions_visited;
    stats->truncated = any_truncated;
  }
  return out;
}

// --------------------------------------------------------------------
// Snapshot save / restore (DESIGN.md §5)

void SemTree::HandleSnapshot(Partition* p, const Message& msg) {
  persist::ByteWriter blob;
  p->SaveTo(&blob);
  SnapshotResponse resp;
  resp.blob = blob.Take();
  size_t bytes = resp.blob.size() + 16;
  cluster_->Respond(msg, MakePayload<SnapshotResponse>(std::move(resp)),
                    bytes);
}

void SemTree::HandleRestore(Partition* p, const Message& msg) {
  auto& req = PayloadAs<RestoreRequest>(msg.payload);
  persist::ByteReader in(req.blob);
  Status st = p->RestoreFrom(&in, req.partition_count, req.remap_from);
  RestoreResponse resp;
  resp.ok = st.ok();
  if (!st.ok()) resp.error = st.ToString();
  cluster_->Respond(msg, MakePayload<RestoreResponse>(std::move(resp)),
                    64);
}

Status SemTree::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(options_.dimensions);
  out->PutU64(options_.bucket_size);
  out->PutU64(size());
  size_t count = PartitionCount();
  out->PutU64(count);
  // One blob per partition, produced on its own compute node. The
  // fan-out is issued up front so partitions serialize in parallel.
  std::vector<Cluster::OutboundCall> calls;
  calls.reserve(count);
  for (size_t id = 0; id < count; ++id) {
    calls.push_back(Cluster::OutboundCall{
        static_cast<NodeId>(id), kSnapshotMsg,
        MakePayload<SnapshotRequest>(SnapshotRequest{}), 16});
  }
  std::vector<std::future<Payload>> futures =
      cluster_->CallAll(std::move(calls));
  for (std::future<Payload>& f : futures) {
    Payload payload = f.get();
    if (payload == nullptr) {
      return Status::Unavailable("cluster shut down during snapshot");
    }
    out->PutString(PayloadAs<SnapshotResponse>(payload).blob);
  }
  return Status::OK();
}

Result<std::unique_ptr<SemTree>> SemTree::LoadFrom(
    persist::ByteReader* in, SemTreeOptions runtime) {
  SEMTREE_ASSIGN_OR_RETURN(uint64_t dimensions, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t bucket_size, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t total_points, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t partition_count, in->U64());
  // Each partition gets a compute node (thread); a crafted count must
  // not exhaust the host before the blobs are even looked at.
  if (partition_count == 0 || partition_count > (1u << 16)) {
    return Status::Corruption("snapshot partition count implausible");
  }
  SEMTREE_RETURN_NOT_OK(in->CheckCount(partition_count, 8));
  SemTreeOptions options = std::move(runtime);
  options.dimensions = dimensions;
  options.bucket_size = bucket_size;
  options.max_partitions =
      std::max<size_t>(options.max_partitions, partition_count);
  SEMTREE_ASSIGN_OR_RETURN(std::unique_ptr<SemTree> tree,
                           SemTree::Create(std::move(options)));
  while (tree->PartitionCount() < partition_count) {
    if (tree->CreatePartition() < 0) {
      return Status::Internal("cannot recreate snapshot partitions");
    }
  }
  for (uint64_t id = 0; id < partition_count; ++id) {
    RestoreRequest req;
    SEMTREE_ASSIGN_OR_RETURN(req.blob, in->String());
    req.partition_count = partition_count;
    size_t bytes = req.blob.size() + 16;
    SEMTREE_ASSIGN_OR_RETURN(
        Payload payload,
        tree->cluster_->CallAndWait(
            static_cast<NodeId>(id), kRestoreMsg,
            MakePayload<RestoreRequest>(std::move(req)), bytes));
    auto& resp = PayloadAs<RestoreResponse>(payload);
    if (!resp.ok) {
      return Status::Corruption(StringPrintf(
          "partition %llu rejected its snapshot blob: %s",
          (unsigned long long)id, resp.error.c_str()));
    }
  }
  tree->total_points_.store(total_points, std::memory_order_relaxed);
  SEMTREE_RETURN_NOT_OK(tree->CheckInvariants());
  return tree;
}

// --------------------------------------------------------------------
// Stats & invariants

void SemTree::HandleStats(Partition* p, const Message& msg) {
  auto& req = PayloadAs<StatsRequest>(msg.payload);
  StatsResponse resp;
  resp.stats = p->Stats();
  if (req.include_subtrees) resp.subtrees = p->Subtrees();
  // Decay AFTER reporting: the rebalancer reads the full window it
  // configured, then shrinks it for the next tick.
  if (req.decay != 1.0) p->DecayLoad(req.decay);
  cluster_->Respond(msg, MakePayload<StatsResponse>(std::move(resp)),
                    sizeof(PartitionStats));
}

std::vector<PartitionStats> SemTree::AllPartitionStats() const {
  size_t count = PartitionCount();
  std::vector<PartitionStats> out;
  out.reserve(count);
  for (size_t id = 0; id < count; ++id) {
    auto payload = cluster_->CallAndWait(
        static_cast<NodeId>(id), kStatsMsg,
        MakePayload<StatsRequest>(StatsRequest{}), 16);
    if (!payload.ok()) continue;
    out.push_back(PayloadAs<StatsResponse>(*payload).stats);
  }
  return out;
}

Status SemTree::CheckInvariants() const {
  // Direct-memory traversal; only sound when the tree is quiescent.
  struct Bound {
    uint32_t dim;
    bool is_upper;  // true: coord <= value; false: coord > value.
    double value;
  };
  struct Frame {
    ChildRef ref;
    std::vector<Bound> bounds;
  };
  size_t seen_points = 0;
  // Each node has exactly one parent edge in a sound tree; a revisit
  // means a cycle or a shared subtree (possible only in a corrupt
  // snapshot), which would otherwise loop this walk forever.
  std::set<std::pair<int32_t, int32_t>> visited;
  std::vector<Frame> stack;
  stack.push_back(Frame{ChildRef{0, 0}, {}});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    Partition* p = partition(f.ref.partition);
    if (p == nullptr) {
      return Status::Corruption("child reference to unknown partition");
    }
    if (f.ref.node < 0 ||
        static_cast<size_t>(f.ref.node) >= p->arena_size()) {
      return Status::Corruption("child node index out of range");
    }
    if (!visited.emplace(f.ref.partition, f.ref.node).second) {
      return Status::Corruption("node reachable through two paths");
    }
    const Partition::PNode& n = p->node(f.ref.node);
    if (n.is_dead) {
      return Status::Corruption("live edge points at a dead node");
    }
    if (n.is_leaf) {
      if (p->store().dimensions() != options_.dimensions) {
        return Status::Corruption("partition store dimension mismatch");
      }
      for (Partition::Slot s : n.bucket) {
        ++seen_points;
        if (s >= p->store().slot_count()) {
          return Status::Corruption("bucket slot out of range");
        }
        const double* coords = p->store().CoordsAt(s);
        for (const Bound& b : f.bounds) {
          double c = coords[b.dim];
          if (b.is_upper ? (c > b.value) : (c <= b.value)) {
            return Status::Corruption(StringPrintf(
                "point %llu escapes its region (partition %d)",
                (unsigned long long)p->store().IdAt(s), p->id()));
          }
        }
      }
      continue;
    }
    if (!n.bucket.empty()) {
      return Status::Corruption("routing node holds points");
    }
    Frame left{n.left, f.bounds};
    left.bounds.push_back(Bound{n.split_dim, true, n.split_value});
    Frame right{n.right, std::move(f.bounds)};
    right.bounds.push_back(Bound{n.split_dim, false, n.split_value});
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  if (seen_points != size()) {
    return Status::Corruption(
        StringPrintf("size() is %zu but %zu points reachable", size(),
                     seen_points));
  }
  size_t partition_sum = 0;
  for (size_t id = 0; id < PartitionCount(); ++id) {
    partition_sum += partition(static_cast<int32_t>(id))->points();
  }
  if (partition_sum != seen_points) {
    return Status::Corruption("per-partition point counts disagree");
  }
  return Status::OK();
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Triple-pattern queries over a SemanticIndex. The paper positions
// SemTree against systems that answer "various pattern queries by
// translating them into multi-dimensional range queries" (§I, [7]);
// this module provides that capability on top of SemTree:
//
//   (s, p, ?)  — bound subject and predicate, any object
//   (?, p, o)  — any subject
//   (s, ~p, o) — "p or anything semantically close to p"
//
// Exact patterns are answered from the TripleStore's indexes. Patterns
// with a similarity tolerance are translated into an embedded-space
// range query: the wildcard positions receive zero weight in a
// dedicated distance, bound positions must match within the tolerance,
// and candidates are verified exactly before being returned.

#ifndef SEMTREE_SEMTREE_PATTERN_QUERY_H_
#define SEMTREE_SEMTREE_PATTERN_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "semtree/semantic_index.h"

namespace semtree {

/// A triple pattern: unbound positions are wildcards.
struct TriplePattern {
  std::optional<Term> subject;
  std::optional<Term> predicate;
  std::optional<Term> object;

  /// Number of bound positions (0..3).
  size_t BoundCount() const {
    return (subject ? 1 : 0) + (predicate ? 1 : 0) + (object ? 1 : 0);
  }

  std::string ToString() const;
};

struct PatternQueryOptions {
  /// Maximum mean element distance, over the bound positions, for a
  /// triple to match. 0 = exact (semantic) equality: synonyms still
  /// match, unrelated concepts do not.
  double tolerance = 0.0;

  /// Upper bound on returned matches (by ascending pattern distance).
  size_t limit = 100;
};

/// One pattern match.
struct PatternMatch {
  TripleId id = 0;
  /// Mean element distance over the pattern's bound positions.
  double pattern_distance = 0.0;
};

/// Evaluates `pattern` against the indexed corpus. The `store` must
/// hold exactly the triples the index was built over (ids align).
///
/// Strategy: with tolerance 0 and at least one bound position the
/// store's exact indexes drive the scan; with a positive tolerance the
/// candidates come from the index's embedded range query (radius =
/// tolerance scaled by the bound positions' total weight), then every
/// candidate is verified with the exact element distances.
Result<std::vector<PatternMatch>> EvaluatePattern(
    const SemanticIndex& index, const TripleStore& store,
    const TriplePattern& pattern, const PatternQueryOptions& options = {});

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_PATTERN_QUERY_H_

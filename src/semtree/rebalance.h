// Copyright 2026 The SemTree Authors
//
// Public knobs and observability structs of the online skew-aware
// partition rebalancer (DESIGN.md §12). The rebalancer itself is part
// of SemTree (semtree/rebalance.cc): a client-side coordinator that
// watches decayed per-partition load counters and, one bounded action
// per tick, splits overloaded partitions (ChooseSplitForPolicy over
// the drained subtree, halves shipped as PointBlocks), folds cold
// partitions back into their parents, and migrates hot-but-unsplittable
// partitions onto idle seats using the PR 3 snapshot blob as transfer
// format — all while readers keep running lock-free.

#ifndef SEMTREE_SEMTREE_REBALANCE_H_
#define SEMTREE_SEMTREE_REBALANCE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "semtree/partition.h"

namespace semtree {

/// Policy knobs of the online rebalancer. Triggers are relative to the
/// mean load score over data-holding partitions, so they need no
/// absolute calibration per workload.
struct RebalanceOptions {
  /// Background tick period (SemTree::StartRebalancer).
  std::chrono::milliseconds interval{20};

  /// Per-tick multiplicative decay applied to every partition's load
  /// counters after they are read, so triggers track the recent window
  /// instead of all-time totals.
  double load_decay = 0.5;

  /// A partition splits when its load score is at least this multiple
  /// of the mean score.
  double split_load_factor = 2.0;

  /// A partition is folded back into its parents when its load score
  /// is below this multiple of the mean (and it is small enough).
  double merge_load_factor = 0.25;

  /// Minimum points a subtree must hold to be worth splitting.
  size_t min_split_points = 256;

  /// Only partitions at most this large are merge candidates.
  size_t merge_max_points = 4096;

  /// A tick is a no-op below this much total observed load score.
  double min_total_load = 1.0;

  /// Allow whole-partition migration of hot-but-unsplittable
  /// partitions onto idle seats.
  bool allow_migrate = true;
};

/// Monotone counters of rebalance activity (SemTree::DebugStats).
struct RebalanceCounters {
  uint64_t ticks = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;       ///< Subtrees folded into a parent.
  uint64_t migrations = 0;   ///< Whole-partition seat moves.
  uint64_t points_moved = 0; ///< Points shipped in blocks and blobs.
  uint64_t strands_reinserted = 0;  ///< Mid-window arrivals re-routed.
};

/// One-stop debugging/observability snapshot of the distributed tree:
/// per-partition stats (sizes, load counters, per-partition rebalance
/// counts), the free-seat pool, and the tree-level rebalance counters.
struct SemTreeDebugStats {
  std::vector<PartitionStats> partitions;
  std::vector<int32_t> free_partitions;  ///< Seats drained and reusable.
  RebalanceCounters rebalance;
  uint64_t rebalance_epoch = 0;  ///< Odd while a step is in flight.
  size_t total_points = 0;

  std::string ToString() const;
};

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_REBALANCE_H_

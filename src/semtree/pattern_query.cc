// Copyright 2026 The SemTree Authors

#include "semtree/pattern_query.h"

#include <algorithm>

#include "common/string_util.h"

namespace semtree {

std::string TriplePattern::ToString() const {
  auto render = [](const std::optional<Term>& t) {
    return t ? t->ToString() : std::string("?");
  };
  return "(" + render(subject) + ", " + render(predicate) + ", " +
         render(object) + ")";
}

namespace {

// Mean element distance over the bound positions (0 when nothing is
// bound).
double PatternDistance(const TriplePattern& pattern, const Triple& t,
                       const ElementDistance& element) {
  double sum = 0.0;
  size_t bound = 0;
  if (pattern.subject) {
    sum += element(*pattern.subject, t.subject);
    ++bound;
  }
  if (pattern.predicate) {
    sum += element(*pattern.predicate, t.predicate);
    ++bound;
  }
  if (pattern.object) {
    sum += element(*pattern.object, t.object);
    ++bound;
  }
  return bound == 0 ? 0.0 : sum / double(bound);
}

// Candidate ids for the exact (tolerance 0) path: drive the scan off
// the store indexes where literal equality is sound; concepts need
// semantic verification anyway (synonyms), so they do not constrain
// the index lookup.
std::vector<TripleId> ExactCandidates(const TripleStore& store,
                                      const TriplePattern& pattern) {
  std::optional<Term> s, p, o;
  if (pattern.subject && pattern.subject->is_literal()) {
    s = pattern.subject;
  }
  if (pattern.predicate && pattern.predicate->is_literal()) {
    p = pattern.predicate;
  }
  if (pattern.object && pattern.object->is_literal()) {
    o = pattern.object;
  }
  return store.Match(s, p, o);
}

}  // namespace

Result<std::vector<PatternMatch>> EvaluatePattern(
    const SemanticIndex& index, const TripleStore& store,
    const TriplePattern& pattern, const PatternQueryOptions& options) {
  if (index.size() != store.size()) {
    return Status::InvalidArgument(
        "index and store must cover the same triples");
  }
  if (options.tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  const ElementDistance& element = index.distance().element_distance();

  std::vector<TripleId> candidates;
  if (options.tolerance == 0.0 || pattern.BoundCount() == 0) {
    candidates = ExactCandidates(store, pattern);
  } else {
    // Translate into an embedded range query (the [7]-style pattern ->
    // multi-dimensional range query mapping). Wildcard positions can
    // contribute up to their full Eq. (1) weight, bound positions up to
    // tolerance each; FastMap error adds slack on top. Candidates are
    // verified exactly below, so the radius only affects recall.
    const TripleDistanceWeights& w = index.distance().weights();
    double bound_weight = 0.0;
    double wildcard_weight = 0.0;
    (pattern.subject ? bound_weight : wildcard_weight) += w.alpha;
    (pattern.predicate ? bound_weight : wildcard_weight) += w.beta;
    (pattern.object ? bound_weight : wildcard_weight) += w.gamma;

    Triple probe(pattern.subject.value_or(Term::Literal("")),
                 pattern.predicate.value_or(Term::Literal("")),
                 pattern.object.value_or(Term::Literal("")));
    constexpr double kEmbeddingSlack = 0.1;
    double radius = bound_weight * options.tolerance + wildcard_weight +
                    kEmbeddingSlack;
    SEMTREE_ASSIGN_OR_RETURN(std::vector<SemanticIndex::Hit> hits,
                             index.RangeQuery(probe, radius));
    candidates.reserve(hits.size());
    for (const auto& hit : hits) candidates.push_back(hit.id);
  }

  std::vector<PatternMatch> matches;
  for (TripleId id : candidates) {
    double d = PatternDistance(pattern, store.Get(id), element);
    if (d <= options.tolerance + 1e-12) {
      matches.push_back(PatternMatch{id, d});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const PatternMatch& a, const PatternMatch& b) {
              if (a.pattern_distance != b.pattern_distance) {
                return a.pattern_distance < b.pattern_distance;
              }
              return a.id < b.id;
            });
  if (matches.size() > options.limit) matches.resize(options.limit);
  return matches;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Online skew-aware partition rebalancing (DESIGN.md §12).
//
// The coordinator runs client-side (RebalanceTick, optionally driven
// by a background thread): it reads the decayed per-partition load
// counters over the stats protocol and performs at most ONE structural
// action per tick —
//   * split:   the hottest overloaded partition drains its largest
//              fully-local subtree, the points are cut with
//              ChooseSplitForPolicy and shipped as two PointBlocks to
//              idle seats, and the drained root becomes a routing node
//              over the two new remote halves;
//   * merge:   the coldest underloaded partition is folded back into
//              the partitions that point at it (subtree by subtree),
//              its seat returned to the free pool;
//   * migrate: a hot partition that cannot split (no movable subtree)
//              relocates wholesale onto a less-loaded seat, using the
//              per-partition snapshot blob as transfer format.
//
// Readers are never stopped. Every handler-side mutation happens in
// ONE handler activation on the owning worker thread, so concurrent
// traversals observe either the old or the new structure; frames
// captured across a rewrite hit dead/out-of-range nodes and are
// dropped (queries) or answered `stale` (inserts/removes, which retry
// from the root). Points that arrive in a window between drain and
// publish are collected as strands and re-inserted by the coordinator.
//
// Deadlock-freedom: rebalance RPCs are only ever issued from the
// coordinator thread, never from inside a handler, so they add no
// nested-call edges; and every routing edge keeps pointing from a
// lower to a higher partition id (split targets are allocated above
// the source, merges fold into a parent, migration targets must sit
// between the partition's parents and children), preserving the
// invariant the batch protocol's nested calls rely on.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/bulk_build.h"
#include "persist/wire.h"
#include "semtree/protocol.h"
#include "semtree/semtree.h"

namespace semtree {

using namespace protocol;  // NOLINT(build/namespaces)

namespace {

// One partition's scalar "heat": distance computations dominate the
// cost of a leaf scan, handler activations stand in for routing and
// per-message overhead.
double LoadScore(const PartitionStats& s) {
  return s.load_distances + 8.0 * s.load_ops;
}

// Bumps the rebalance epoch on entry AND exit, so the epoch is odd
// exactly while a structural action is in flight (cache layers treat
// any change — including into-the-window — as an invalidation).
class EpochWindow {
 public:
  explicit EpochWindow(std::atomic<uint64_t>& epoch) : epoch_(epoch) {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  ~EpochWindow() { epoch_.fetch_add(1, std::memory_order_acq_rel); }
  EpochWindow(const EpochWindow&) = delete;
  EpochWindow& operator=(const EpochWindow&) = delete;

 private:
  std::atomic<uint64_t>& epoch_;
};

void InsertSorted(std::vector<int32_t>* seats, int32_t id) {
  seats->insert(std::upper_bound(seats->begin(), seats->end(), id), id);
}

// Copies the points behind `slots` out of `store` into one block.
PointBlock GatherSlots(const PointStore& store,
                       const std::vector<PointStore::Slot>& slots,
                       size_t begin, size_t end) {
  PointBlock block(store.dimensions());
  block.Reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    block.Append(store.CoordsAt(slots[i]), store.IdAt(slots[i]));
  }
  return block;
}

}  // namespace

// --------------------------------------------------------------------
// Handler side (runs on the owning partition's worker thread)

void SemTree::RegisterRebalanceHandlers(Partition* part,
                                        ComputeNode* node) {
  node->RegisterHandler(kSplitMsg, [this, part](const Message& m) {
    HandleSplit(part, m);
  });
  node->RegisterHandler(kInstallSplitMsg, [this, part](const Message& m) {
    HandleInstallSplit(part, m);
  });
  node->RegisterHandler(kMergeMsg, [this, part](const Message& m) {
    HandleMerge(part, m);
  });
  node->RegisterHandler(kMigrateMsg, [this, part](const Message& m) {
    HandleMigrate(part, m);
  });
  node->RegisterHandler(kRetargetMsg, [this, part](const Message& m) {
    HandleRetarget(part, m);
  });
  node->RegisterHandler(kEvacuateMsg, [this, part](const Message& m) {
    HandleEvacuate(part, m);
  });
  node->RegisterHandler(kEdgesMsg, [this, part](const Message& m) {
    HandleEdges(part, m);
  });
}

void SemTree::HandleSplit(Partition* p, const Message& msg) {
  auto& req = PayloadAs<SplitRequest>(msg.payload);
  SplitResponse resp;
  auto fail = [&](const char* error) {
    resp.ok = false;
    resp.error = error;
    resp.left = PointBlock{};
    resp.right = PointBlock{};
    cluster_->Respond(msg, MakePayload<SplitResponse>(std::move(resp)),
                      64);
  };
  if (req.root < 0 ||
      static_cast<size_t>(req.root) >= p->arena_size() ||
      p->node(req.root).is_dead) {
    return fail("split root vanished");
  }
  // Two-phase: collect read-only first, mutate only once the cut is
  // known to exist — a failed split must leave the partition intact.
  std::vector<Partition::Slot> slots;
  if (!p->SubtreeLocalSlots(req.root, &slots)) {
    return fail("split subtree is not fully local");
  }
  if (slots.size() < 2) return fail("too few points to split");
  const PointStore& store = p->store();
  std::vector<uint32_t> order(slots.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  BulkBuildOptions cut_opts;
  cut_opts.policy = req.policy;
  cut_opts.bucket_size = 1;  // Any 2+ points are worth cutting.
  MedianSplit cut;
  if (!ChooseSplitForPolicy(
          order, 0, order.size(), store.dimensions(),
          [&](uint32_t i) { return store.CoordsAt(slots[i]); }, cut_opts,
          &cut)) {
    return fail("split subtree is inseparable (all points equal)");
  }
  resp.split_dim = cut.dim;
  resp.split_value = cut.value;
  resp.left = PointBlock(store.dimensions());
  resp.right = PointBlock(store.dimensions());
  resp.left.Reserve(cut.boundary);
  resp.right.Reserve(order.size() - cut.boundary);
  for (size_t i = 0; i < order.size(); ++i) {
    const Partition::Slot s = slots[order[i]];
    (i < cut.boundary ? resp.left : resp.right)
        .Append(store.CoordsAt(s), store.IdAt(s));
  }
  // Commit: the subtree collapses to an empty leaf; its points now
  // live only in this response until the coordinator ships them.
  p->DetachSubtree(req.root);
  p->RemovePoints(slots.size());
  p->BumpRebalances();
  resp.ok = true;
  size_t bytes = resp.left.ApproxBytes() + resp.right.ApproxBytes();
  cluster_->Respond(msg, MakePayload<SplitResponse>(std::move(resp)),
                    bytes);
}

void SemTree::HandleInstallSplit(Partition* p, const Message& msg) {
  auto& req = PayloadAs<InstallSplitRequest>(msg.payload);
  InstallSplitResponse resp;
  auto fail = [&](const char* error) {
    resp.ok = false;
    resp.error = error;
    cluster_->Respond(
        msg, MakePayload<InstallSplitResponse>(std::move(resp)), 64);
  };
  if (req.node < 0 ||
      static_cast<size_t>(req.node) >= p->arena_size() ||
      p->node(req.node).is_dead) {
    return fail("install-split node vanished");
  }
  // Points inserted since the drain may even have re-split the leaf
  // into a small local subtree — gather them all as strands.
  std::vector<Partition::Slot> slots;
  if (!p->SubtreeLocalSlots(req.node, &slots)) {
    return fail("install-split node grew a remote edge");
  }
  resp.strands = GatherSlots(p->store(), slots, 0, slots.size());
  p->DetachSubtree(req.node);
  p->RemovePoints(slots.size());
  // Publish: one field-wise write on the owning worker — concurrent
  // traversals entering this node afterwards follow the new edges.
  Partition::PNode& n = p->node(req.node);
  n.is_leaf = false;
  n.split_dim = req.split_dim;
  n.split_value = req.split_value;
  n.left = req.left;
  n.right = req.right;
  resp.ok = true;
  size_t bytes = resp.strands.ApproxBytes() + 64;
  cluster_->Respond(
      msg, MakePayload<InstallSplitResponse>(std::move(resp)), bytes);
}

void SemTree::HandleMerge(Partition* p, const Message& msg) {
  auto& req = PayloadAs<MergeRequest>(msg.payload);
  MergeResponse resp;
  auto fail = [&](const char* error) {
    resp.ok = false;
    resp.error = error;
    resp.block = PointBlock{};
    cluster_->Respond(msg, MakePayload<MergeResponse>(std::move(resp)),
                      64);
  };
  if (req.root < 0 ||
      static_cast<size_t>(req.root) >= p->arena_size() ||
      p->node(req.root).is_dead) {
    return fail("merge root vanished");
  }
  std::vector<Partition::Slot> slots;
  if (!p->SubtreeLocalSlots(req.root, &slots)) {
    return fail("merge subtree is not fully local");
  }
  resp.block = GatherSlots(p->store(), slots, 0, slots.size());
  p->DetachSubtree(req.root);
  p->RemovePoints(slots.size());
  if (req.kill) {
    // The root is unreachable now (its inbound edge was retargeted);
    // killing it turns any late-arriving insert into a stale retry
    // instead of a point stored in an abandoned node.
    p->node(req.root).is_dead = true;
  }
  p->BumpRebalances();
  resp.ok = true;
  size_t bytes = resp.block.ApproxBytes() + 64;
  cluster_->Respond(msg, MakePayload<MergeResponse>(std::move(resp)),
                    bytes);
}

void SemTree::HandleMigrate(Partition* p, const Message& msg) {
  auto& req = PayloadAs<MigrateRequest>(msg.payload);
  int32_t root = p->AdoptRoot();
  BulkBuildOptions build;
  build.policy = req.policy;
  build.build_threads = req.build_threads;
  // BuildBalancedLocal updates the partition's point accounting; the
  // tree total is untouched — these points moved, they were not added.
  p->BuildBalancedLocal(root, req.block, build);
  p->BumpRebalances();
  MigrateResponse resp;
  resp.root_node = root;
  cluster_->Respond(msg, MakePayload<MigrateResponse>(resp), 32);
}

void SemTree::HandleRetarget(Partition* p, const Message& msg) {
  auto& req = PayloadAs<RetargetRequest>(msg.payload);
  RetargetResponse resp;
  auto fail = [&](const char* error) {
    resp.ok = false;
    resp.error = error;
    cluster_->Respond(msg, MakePayload<RetargetResponse>(std::move(resp)),
                      64);
  };
  if (req.parent_node < 0 ||
      static_cast<size_t>(req.parent_node) >= p->arena_size() ||
      p->node(req.parent_node).is_dead) {
    return fail("retarget parent vanished");
  }
  Partition::PNode& n = p->node(req.parent_node);
  if (n.is_leaf) return fail("retarget parent is a leaf");
  (req.is_left ? n.left : n.right) = req.child;
  if (req.child.partition == p->id()) {
    // The child subtree became local (a merge folded it here): it is
    // now reachable through this edge, so keeping it registered as a
    // root would double-count it in every roots walk.
    p->UnregisterRoot(req.child.node);
  }
  resp.ok = true;
  cluster_->Respond(msg, MakePayload<RetargetResponse>(std::move(resp)),
                    32);
}

void SemTree::HandleEvacuate(Partition* p, const Message& msg) {
  auto& req = PayloadAs<EvacuateRequest>(msg.payload);
  EvacuateResponse resp;
  resp.points = p->points();
  if (req.want_blob) {
    persist::ByteWriter blob;
    p->SaveTo(&blob);
    resp.blob = blob.Take();
  }
  // Serialize + reset + kill in ONE activation: the blob and the
  // emptied seat cannot diverge, and anything still in this node's
  // mailbox behind us sees a dead arena → stale response → retry
  // against the (by then retargeted) routing.
  p->Reset();
  p->node(p->root_node()).is_dead = true;
  p->BumpRebalances();
  size_t bytes = resp.blob.size() + 32;
  cluster_->Respond(msg, MakePayload<EvacuateResponse>(std::move(resp)),
                    bytes);
}

void SemTree::HandleEdges(Partition* p, const Message& msg) {
  EdgesResponse resp;
  std::vector<int32_t> stack;
  for (int32_t root : p->roots()) stack.push_back(root);
  while (!stack.empty()) {
    int32_t idx = stack.back();
    stack.pop_back();
    const Partition::PNode& n = p->node(idx);
    if (n.is_dead || n.is_leaf) continue;
    if (n.left.partition == p->id()) {
      stack.push_back(n.left.node);
    } else {
      resp.edges.push_back(EdgeInfo{idx, true, n.left});
    }
    if (n.right.partition == p->id()) {
      stack.push_back(n.right.node);
    } else {
      resp.edges.push_back(EdgeInfo{idx, false, n.right});
    }
  }
  size_t bytes = resp.edges.size() * sizeof(EdgeInfo) + 32;
  cluster_->Respond(msg, MakePayload<EdgesResponse>(std::move(resp)),
                    bytes);
}

// --------------------------------------------------------------------
// Coordinator side (client thread, under rebalance_mu_)

Result<SemTree::LoadSnapshot> SemTree::GatherLoad(double decay) const {
  LoadSnapshot snap;
  size_t count = PartitionCount();
  snap.stats.resize(count);
  snap.subtrees.resize(count);

  std::vector<Cluster::OutboundCall> stat_calls;
  stat_calls.reserve(count);
  for (size_t id = 0; id < count; ++id) {
    StatsRequest req;
    req.decay = decay;
    req.include_subtrees = true;
    stat_calls.push_back(Cluster::OutboundCall{
        static_cast<NodeId>(id), kStatsMsg,
        MakePayload<StatsRequest>(req), 16});
  }
  std::vector<std::future<Payload>> stat_futures =
      cluster_->CallAll(std::move(stat_calls));
  for (size_t id = 0; id < count; ++id) {
    Payload payload = stat_futures[id].get();
    if (payload == nullptr) {
      return Status::Unavailable("cluster shut down during rebalance");
    }
    auto& resp = PayloadAs<StatsResponse>(payload);
    snap.stats[id] = resp.stats;
    snap.subtrees[id] = resp.subtrees;
  }

  std::vector<Cluster::OutboundCall> edge_calls;
  edge_calls.reserve(count);
  for (size_t id = 0; id < count; ++id) {
    edge_calls.push_back(Cluster::OutboundCall{
        static_cast<NodeId>(id), kEdgesMsg,
        MakePayload<EdgesRequest>(EdgesRequest{}), 16});
  }
  std::vector<std::future<Payload>> edge_futures =
      cluster_->CallAll(std::move(edge_calls));
  for (size_t id = 0; id < count; ++id) {
    Payload payload = edge_futures[id].get();
    if (payload == nullptr) {
      return Status::Unavailable("cluster shut down during rebalance");
    }
    for (const EdgeInfo& e : PayloadAs<EdgesResponse>(payload).edges) {
      snap.edges.push_back(EdgeLocation{static_cast<int32_t>(id),
                                        e.parent_node, e.is_left,
                                        e.child});
    }
  }

  for (const PartitionStats& s : snap.stats) {
    double score = LoadScore(s);
    if (s.points > 0 || score > 0.0) {
      snap.total_score += score;
      ++snap.active;
    }
  }
  return snap;
}

int32_t SemTree::AcquireSeat(int32_t above, int32_t below) {
  for (auto it = free_seats_.begin(); it != free_seats_.end(); ++it) {
    if (*it > above && *it < below) {
      int32_t id = *it;
      free_seats_.erase(it);
      return id;
    }
  }
  // Fresh partitions get the highest id, so they only qualify when the
  // downstream constraint is unbounded.
  if (below != std::numeric_limits<int32_t>::max()) return -1;
  return CreatePartition();  // -1 at max_partitions.
}

Status SemTree::ReinsertBlock(const PointBlock& block) {
  if (block.empty()) return Status::OK();
  // These strands never left the logical tree: Insert() will count
  // them again, so take them out of the total first.
  total_points_.fetch_sub(block.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < block.size(); ++i) {
    SEMTREE_RETURN_NOT_OK(
        Insert(block.Row(i), block.dimensions, block.ids[i]));
  }
  rebalance_counters_.strands_reinserted += block.size();
  return Status::OK();
}

Result<bool> SemTree::TrySplit(const LoadSnapshot& snap) {
  const RebalanceOptions& opt = options_.rebalance;
  double mean =
      snap.total_score / static_cast<double>(std::max<size_t>(snap.active, 1));
  std::vector<char> is_free(snap.stats.size(), 0);
  for (int32_t s : free_seats_) is_free[static_cast<size_t>(s)] = 1;

  int32_t best = -1;
  int32_t best_root = -1;
  double best_score = 0.0;
  for (size_t id = 0; id < snap.stats.size(); ++id) {
    if (is_free[id]) continue;
    double score = LoadScore(snap.stats[id]);
    if (score < opt.split_load_factor * mean || score <= best_score) {
      continue;
    }
    // The largest movable subtree: fully local and big enough that the
    // two halves are each worth a partition.
    int32_t root = -1;
    uint64_t points = 0;
    for (const SubtreeInfo& st : snap.subtrees[id]) {
      if (st.fully_local && st.points >= opt.min_split_points &&
          st.points > points) {
        points = st.points;
        root = st.root;
      }
    }
    if (root < 0) continue;
    best = static_cast<int32_t>(id);
    best_root = root;
    best_score = score;
  }
  if (best < 0) return false;

  // Seats above the source keep edges pointing low → high. With only
  // one seat available both halves adopt into it (two roots).
  int32_t t1 = AcquireSeat(best, std::numeric_limits<int32_t>::max());
  if (t1 < 0) return false;
  int32_t t2 = AcquireSeat(best, std::numeric_limits<int32_t>::max());
  int32_t left_seat = t1;
  int32_t right_seat = t2 >= 0 ? t2 : t1;
  auto release_seats = [&]() {
    InsertSorted(&free_seats_, t1);
    if (t2 >= 0) InsertSorted(&free_seats_, t2);
  };

  EpochWindow window(rebalance_epoch_);
  SplitRequest sreq;
  sreq.root = best_root;
  sreq.policy = options_.split_policy;
  auto split_or = cluster_->CallAndWait(
      best, kSplitMsg, MakePayload<SplitRequest>(sreq), 32);
  if (!split_or.ok()) {
    release_seats();
    return split_or.status();
  }
  auto& sresp = PayloadAs<SplitResponse>(*split_or);
  if (!sresp.ok) {
    // Nothing was mutated (two-phase handler); the tick just found no
    // viable cut. Not an error: the next tick re-evaluates.
    release_seats();
    return false;
  }
  uint64_t moved = sresp.left.size() + sresp.right.size();

  auto ship = [&](PointBlock block,
                  int32_t target) -> Result<int32_t> {
    MigrateRequest mreq;
    mreq.block = std::move(block);
    mreq.policy = options_.split_policy;
    mreq.build_threads = options_.build_threads;
    size_t bytes = mreq.block.ApproxBytes();
    SEMTREE_ASSIGN_OR_RETURN(
        Payload payload,
        cluster_->CallAndWait(target, kMigrateMsg,
                              MakePayload<MigrateRequest>(std::move(mreq)),
                              bytes));
    return PayloadAs<MigrateResponse>(payload).root_node;
  };
  SEMTREE_ASSIGN_OR_RETURN(int32_t left_root,
                           ship(std::move(sresp.left), left_seat));
  SEMTREE_ASSIGN_OR_RETURN(int32_t right_root,
                           ship(std::move(sresp.right), right_seat));

  InstallSplitRequest ireq;
  ireq.node = best_root;
  ireq.split_dim = sresp.split_dim;
  ireq.split_value = sresp.split_value;
  ireq.left = ChildRef{left_seat, left_root};
  ireq.right = ChildRef{right_seat, right_root};
  SEMTREE_ASSIGN_OR_RETURN(
      Payload ipayload,
      cluster_->CallAndWait(best, kInstallSplitMsg,
                            MakePayload<InstallSplitRequest>(ireq), 64));
  auto& iresp = PayloadAs<InstallSplitResponse>(ipayload);
  if (!iresp.ok) {
    return Status::Internal(
        StringPrintf("install-split failed: %s", iresp.error.c_str()));
  }
  SEMTREE_RETURN_NOT_OK(ReinsertBlock(iresp.strands));

  ++rebalance_counters_.splits;
  rebalance_counters_.points_moved += moved;
  return true;
}

Result<bool> SemTree::TryMerge(const LoadSnapshot& snap) {
  const RebalanceOptions& opt = options_.rebalance;
  double mean =
      snap.total_score / static_cast<double>(std::max<size_t>(snap.active, 1));
  std::vector<char> is_free(snap.stats.size(), 0);
  for (int32_t s : free_seats_) is_free[static_cast<size_t>(s)] = 1;

  // Inbound edges per (partition, root-node) target.
  auto inbound_of = [&](int32_t part, int32_t node) {
    std::vector<const EdgeLocation*> in;
    for (const EdgeLocation& e : snap.edges) {
      if (e.child.partition == part && e.child.node == node) {
        in.push_back(&e);
      }
    }
    return in;
  };

  int32_t victim = -1;
  double victim_score = 0.0;
  for (size_t id = 1; id < snap.stats.size(); ++id) {
    if (is_free[id]) continue;
    const PartitionStats& s = snap.stats[id];
    if (s.points == 0 || s.points > opt.merge_max_points) continue;
    double score = LoadScore(s);
    if (score >= opt.merge_load_factor * mean) continue;
    if (victim >= 0 && score >= victim_score) continue;
    // Foldable: every live subtree is fully local (no downstream
    // partitions hang off it) and reachable through exactly one
    // inbound edge we can retarget.
    bool foldable = true;
    for (const SubtreeInfo& st : snap.subtrees[id]) {
      if (!st.fully_local) {
        foldable = false;
        break;
      }
      size_t in = inbound_of(static_cast<int32_t>(id), st.root).size();
      if (in > 1 || (in == 0 && st.points > 0)) {
        foldable = false;
        break;
      }
    }
    if (!foldable) continue;
    victim = static_cast<int32_t>(id);
    victim_score = score;
  }
  if (victim < 0) return false;

  EpochWindow window(rebalance_epoch_);
  uint64_t moved = 0;
  for (const SubtreeInfo& st : snap.subtrees[victim]) {
    auto in = inbound_of(victim, st.root);
    if (in.empty()) continue;  // Empty orphan root; the evacuate wipes it.
    const EdgeLocation& edge = *in[0];

    // 1. Drain the subtree into one block.
    MergeRequest mreq;
    mreq.root = st.root;
    SEMTREE_ASSIGN_OR_RETURN(
        Payload mpayload,
        cluster_->CallAndWait(victim, kMergeMsg,
                              MakePayload<MergeRequest>(mreq), 32));
    auto& mresp = PayloadAs<MergeResponse>(mpayload);
    if (!mresp.ok) {
      return Status::Internal(
          StringPrintf("merge drain failed: %s", mresp.error.c_str()));
    }
    uint64_t drained = mresp.block.size();

    // 2. Rebuild it inside the parent partition (edge becomes local).
    MigrateRequest mig;
    mig.block = std::move(mresp.block);
    mig.policy = options_.split_policy;
    mig.build_threads = options_.build_threads;
    size_t bytes = mig.block.ApproxBytes();
    SEMTREE_ASSIGN_OR_RETURN(
        Payload gpayload,
        cluster_->CallAndWait(edge.partition, kMigrateMsg,
                              MakePayload<MigrateRequest>(std::move(mig)),
                              bytes));
    int32_t new_root = PayloadAs<MigrateResponse>(gpayload).root_node;

    // 3. Atomically swing the edge to the rebuilt local subtree.
    RetargetRequest rreq;
    rreq.parent_node = edge.parent_node;
    rreq.is_left = edge.is_left;
    rreq.child = ChildRef{edge.partition, new_root};
    SEMTREE_ASSIGN_OR_RETURN(
        Payload rpayload,
        cluster_->CallAndWait(edge.partition, kRetargetMsg,
                              MakePayload<RetargetRequest>(rreq), 32));
    auto& rresp = PayloadAs<RetargetResponse>(rpayload);
    if (!rresp.ok) {
      return Status::Internal(
          StringPrintf("merge retarget failed: %s", rresp.error.c_str()));
    }

    // 4. Collect strands that slipped in between drain and retarget,
    //    and kill the now-unreachable root.
    MergeRequest kreq;
    kreq.root = st.root;
    kreq.kill = true;
    SEMTREE_ASSIGN_OR_RETURN(
        Payload kpayload,
        cluster_->CallAndWait(victim, kMergeMsg,
                              MakePayload<MergeRequest>(kreq), 32));
    auto& kresp = PayloadAs<MergeResponse>(kpayload);
    if (kresp.ok) SEMTREE_RETURN_NOT_OK(ReinsertBlock(kresp.block));
    moved += drained;
  }

  // 5. Return the drained seat to the pool (reset + dead root, so
  //    late arrivals turn into stale retries).
  EvacuateRequest ereq;
  ereq.want_blob = false;
  SEMTREE_ASSIGN_OR_RETURN(
      Payload epayload,
      cluster_->CallAndWait(victim, kEvacuateMsg,
                            MakePayload<EvacuateRequest>(ereq), 32));
  (void)epayload;
  InsertSorted(&free_seats_, victim);

  ++rebalance_counters_.merges;
  rebalance_counters_.points_moved += moved;
  return true;
}

Result<bool> SemTree::TryMigrate(const LoadSnapshot& snap) {
  const RebalanceOptions& opt = options_.rebalance;
  double mean =
      snap.total_score / static_cast<double>(std::max<size_t>(snap.active, 1));
  std::vector<char> is_free(snap.stats.size(), 0);
  for (int32_t s : free_seats_) is_free[static_cast<size_t>(s)] = 1;

  // Hottest overloaded non-root partition. (TrySplit ran first, so
  // anything reaching here has no movable subtree or no seats above.)
  int32_t hot = -1;
  double hot_score = 0.0;
  for (size_t id = 1; id < snap.stats.size(); ++id) {
    if (is_free[id] || snap.stats[id].points == 0) continue;
    double score = LoadScore(snap.stats[id]);
    if (score < opt.split_load_factor * mean || score <= hot_score) {
      continue;
    }
    hot = static_cast<int32_t>(id);
    hot_score = score;
  }
  if (hot < 0) return false;

  // A target seat must keep every edge pointing low → high: above all
  // partitions that point at `hot`, below all partitions `hot` points
  // at.
  int32_t lo = -1;
  int32_t hi = std::numeric_limits<int32_t>::max();
  std::vector<EdgeLocation> inbound;
  for (const EdgeLocation& e : snap.edges) {
    if (e.child.partition == hot) {
      inbound.push_back(e);
      lo = std::max(lo, e.partition);
    }
    if (e.partition == hot) hi = std::min(hi, e.child.partition);
  }
  if (inbound.empty()) return false;  // Nothing routes here; skip.

  // Prefer the admissible free seat whose compute node has the
  // shallowest mailbox (Cluster::NodeLoads); fall back to a fresh
  // partition when the downstream constraint allows it.
  std::vector<Cluster::NodeLoad> loads = cluster_->NodeLoads();
  int32_t target = -1;
  size_t target_queue = std::numeric_limits<size_t>::max();
  size_t target_pos = free_seats_.size();
  for (size_t i = 0; i < free_seats_.size(); ++i) {
    int32_t seat = free_seats_[i];
    if (seat <= lo || seat >= hi) continue;
    size_t queued = static_cast<size_t>(seat) < loads.size()
                        ? loads[static_cast<size_t>(seat)].queued
                        : 0;
    if (queued < target_queue) {
      target_queue = queued;
      target = seat;
      target_pos = i;
    }
  }
  if (target >= 0) {
    free_seats_.erase(free_seats_.begin() +
                      static_cast<ptrdiff_t>(target_pos));
  } else if (hi == std::numeric_limits<int32_t>::max()) {
    target = CreatePartition();
  }
  if (target < 0 || target <= lo) return false;

  EpochWindow window(rebalance_epoch_);
  // 1. Atomic evacuation: blob + reset + dead root in one activation.
  EvacuateRequest ereq;
  ereq.want_blob = true;
  SEMTREE_ASSIGN_OR_RETURN(
      Payload epayload,
      cluster_->CallAndWait(hot, kEvacuateMsg,
                            MakePayload<EvacuateRequest>(ereq), 32));
  auto& eresp = PayloadAs<EvacuateResponse>(epayload);
  uint64_t moved = eresp.points;

  // 2. Restore the blob on the new seat, rewriting self-references.
  RestoreRequest rreq;
  rreq.blob = std::move(eresp.blob);
  rreq.partition_count = PartitionCount();
  rreq.remap_from = hot;
  size_t bytes = rreq.blob.size() + 16;
  SEMTREE_ASSIGN_OR_RETURN(
      Payload rpayload,
      cluster_->CallAndWait(target, kRestoreMsg,
                            MakePayload<RestoreRequest>(std::move(rreq)),
                            bytes));
  auto& rresp = PayloadAs<RestoreResponse>(rpayload);
  if (!rresp.ok) {
    return Status::Internal(StringPrintf(
        "migration restore rejected: %s", rresp.error.c_str()));
  }

  // 3. Swing every inbound edge to the new seat. Node indexes are
  //    preserved by the restore, so only the partition id changes.
  for (const EdgeLocation& e : inbound) {
    RetargetRequest swing;
    swing.parent_node = e.parent_node;
    swing.is_left = e.is_left;
    swing.child = ChildRef{target, e.child.node};
    SEMTREE_ASSIGN_OR_RETURN(
        Payload spayload,
        cluster_->CallAndWait(e.partition, kRetargetMsg,
                              MakePayload<RetargetRequest>(swing), 32));
    auto& sresp = PayloadAs<RetargetResponse>(spayload);
    if (!sresp.ok) {
      return Status::Internal(StringPrintf(
          "migration retarget failed: %s", sresp.error.c_str()));
    }
  }
  InsertSorted(&free_seats_, hot);

  ++rebalance_counters_.migrations;
  rebalance_counters_.points_moved += moved;
  return true;
}

Status SemTree::RebalanceTick() {
  MutexLock lock(rebalance_mu_);
  ++rebalance_counters_.ticks;
  SEMTREE_ASSIGN_OR_RETURN(
      LoadSnapshot snap, GatherLoad(options_.rebalance.load_decay));
  if (snap.total_score < options_.rebalance.min_total_load) {
    return Status::OK();
  }
  {
    SEMTREE_ASSIGN_OR_RETURN(bool acted, TrySplit(snap));
    if (acted) return Status::OK();
  }
  {
    SEMTREE_ASSIGN_OR_RETURN(bool acted, TryMerge(snap));
    if (acted) return Status::OK();
  }
  if (options_.rebalance.allow_migrate) {
    SEMTREE_ASSIGN_OR_RETURN(bool acted, TryMigrate(snap));
    if (acted) return Status::OK();
  }
  return Status::OK();
}

// --------------------------------------------------------------------
// Background driver

Status SemTree::StartRebalancer() {
  MutexLock lock(rebalancer_mu_);
  if (rebalancer_running_) {
    return Status::FailedPrecondition("rebalancer already running");
  }
  rebalancer_stop_ = false;
  rebalancer_running_ = true;
  rebalancer_thread_ = std::thread([this] { RebalancerLoop(); });
  return Status::OK();
}

void SemTree::StopRebalancer() {
  std::thread worker;
  {
    MutexLock lock(rebalancer_mu_);
    if (!rebalancer_running_) return;
    rebalancer_stop_ = true;
    rebalancer_cv_.NotifyAll();
    worker = std::move(rebalancer_thread_);
    rebalancer_running_ = false;
  }
  if (worker.joinable()) worker.join();
}

void SemTree::RebalancerLoop() {
  for (;;) {
    auto deadline =
        std::chrono::steady_clock::now() + options_.rebalance.interval;
    {
      MutexLock lock(rebalancer_mu_);
      while (!rebalancer_stop_ &&
             std::chrono::steady_clock::now() < deadline) {
        rebalancer_cv_.WaitUntil(rebalancer_mu_, deadline);
      }
      if (rebalancer_stop_) return;
    }
    // Unavailable means the cluster shut down under us; anything else
    // is a structural failure worth surfacing loudly.
    Status st = RebalanceTick();
    if (!st.ok()) {
      if (!st.IsUnavailable()) {
        SEMTREE_LOG(Error) << "rebalance tick failed: " << st.ToString();
      }
      return;
    }
  }
}

// --------------------------------------------------------------------
// Observability

SemTreeDebugStats SemTree::DebugStats() const {
  SemTreeDebugStats out;
  out.partitions = AllPartitionStats();
  out.total_points = size();
  out.rebalance_epoch = rebalance_epoch();
  MutexLock lock(rebalance_mu_);
  out.free_partitions = free_seats_;
  out.rebalance = rebalance_counters_;
  return out;
}

std::string SemTreeDebugStats::ToString() const {
  std::string out = StringPrintf(
      "SemTree: %zu points, %zu partitions (%zu free), epoch=%llu\n"
      "rebalance: ticks=%llu splits=%llu merges=%llu migrations=%llu "
      "points_moved=%llu strands=%llu\n",
      total_points, partitions.size(), free_partitions.size(),
      (unsigned long long)rebalance_epoch,
      (unsigned long long)rebalance.ticks,
      (unsigned long long)rebalance.splits,
      (unsigned long long)rebalance.merges,
      (unsigned long long)rebalance.migrations,
      (unsigned long long)rebalance.points_moved,
      (unsigned long long)rebalance.strands_reinserted);
  for (const PartitionStats& p : partitions) {
    out += "  " + p.ToString() + "\n";
  }
  return out;
}

}  // namespace semtree

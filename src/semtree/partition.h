// Copyright 2026 The SemTree Authors
//
// A SemTree partition: the subtree fragment hosted by one compute node.
// Children of a routing node are either local (same partition) or
// remote (another partition's root region); a routing node with at
// least one remote child is an *edge node*, otherwise it is *internal*
// (paper §III-B.1).
//
// Point coordinates live in the partition's flat PointStore arena; leaf
// buckets hold slot indices. Leaf migration (build-partition, Fig. 2)
// ships one contiguous PointBlock per leaf instead of N per-point
// vectors.

#ifndef SEMTREE_SEMTREE_PARTITION_H_
#define SEMTREE_SEMTREE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/bulk_build.h"
#include "core/point.h"
#include "core/point_block.h"
#include "core/point_store.h"
#include "persist/wire.h"

namespace semtree {

/// Cross-partition child pointer: (Childp, node index). A reference is
/// local when `partition` equals the owning partition's id.
struct ChildRef {
  int32_t partition = -1;
  int32_t node = -1;

  bool valid() const { return partition >= 0 && node >= 0; }
};

/// Statistics of one partition, as reported by its stats handler.
struct PartitionStats {
  int32_t id = -1;
  size_t points = 0;       ///< Points stored in local leaf buckets.
  size_t nodes = 0;        ///< Live local nodes.
  size_t leaves = 0;       ///< Live local leaf nodes.
  size_t routing = 0;      ///< Live local routing nodes.
  size_t edge_nodes = 0;   ///< Routing nodes with a remote child.
  size_t local_depth = 0;  ///< Longest local root-to-edge path.

  /// Decayed load accounting (DESIGN.md §12): handler activations and
  /// leaf-scan distance computations charged to this partition. Only
  /// op traffic records load — bulk builds and snapshot/restore do
  /// not — and the counters ride the snapshot blob, so they survive
  /// partition-local rebuilds and warm restarts.
  double load_ops = 0.0;
  double load_distances = 0.0;
  uint64_t rebalances = 0;  ///< Rebalance actions applied here.

  std::string ToString() const;
};

/// One disjoint subtree of a partition (a roots_ entry), as inventoried
/// for the rebalancer: a subtree is only movable when `fully_local` —
/// every descendant lives in this partition, so draining it cannot
/// orphan a cross-partition edge.
struct SubtreeInfo {
  int32_t root = -1;
  uint64_t points = 0;
  uint64_t nodes = 0;
  bool fully_local = true;
};

/// The node arena of one partition. All mutation happens on the owning
/// compute node's worker thread; the class itself is not synchronized.
class Partition {
 public:
  using Slot = PointStore::Slot;

  Partition(int32_t id, size_t dimensions, size_t bucket_size)
      : id_(id),
        dimensions_(dimensions),
        bucket_size_(bucket_size),
        store_(dimensions) {
    roots_.push_back(NewLeaf());  // Node 0: this partition's root.
  }

  /// One KD-tree node hosted in this partition.
  struct PNode {
    bool is_leaf = true;
    bool is_dead = false;      // Migrated away by build-partition.
    uint32_t split_dim = 0;    // Sr
    double split_value = 0.0;  // Sv
    ChildRef left;
    ChildRef right;
    std::vector<Slot> bucket;  // Slots into the partition's store.
  };

  int32_t id() const { return id_; }
  size_t dimensions() const { return dimensions_; }
  size_t bucket_size() const { return bucket_size_; }

  /// The flat coordinate arena of this partition.
  PointStore& store() { return store_; }
  const PointStore& store() const { return store_; }

  /// A partition may host several disjoint subtrees: its original root
  /// plus any leaves adopted from saturated partitions (build-partition
  /// distributes leaves round-robin, so one compute node can receive
  /// more than one). The first root is node 0.
  const std::vector<int32_t>& roots() const { return roots_; }
  int32_t root_node() const { return roots_[0]; }

  /// Registers a fresh leaf as an additional subtree root (adoption
  /// target) and returns its index. Reuses the initial empty root when
  /// this partition has never stored anything.
  int32_t AdoptRoot();
  PNode& node(int32_t idx) { return nodes_[static_cast<size_t>(idx)]; }
  const PNode& node(int32_t idx) const {
    return nodes_[static_cast<size_t>(idx)];
  }
  size_t arena_size() const { return nodes_.size(); }

  /// Points currently stored in this partition's leaves.
  size_t points() const { return points_; }
  void AddPoints(size_t n) { points_ += n; }
  void RemovePoints(size_t n) { points_ -= std::min(points_, n); }

  /// Load accounting (DESIGN.md §12). Like every other partition
  /// field, the counters are mutated only on the owning worker thread
  /// (op handlers charge them; the stats handler reads and decays
  /// them), so plain doubles suffice.
  void RecordLoad(double ops, double distances) {
    load_ops_ += ops;
    load_distances_ += distances;
  }
  void DecayLoad(double factor) {
    load_ops_ *= factor;
    load_distances_ *= factor;
  }
  double load_ops() const { return load_ops_; }
  double load_distances() const { return load_distances_; }
  uint64_t rebalances() const { return rebalances_; }
  void BumpRebalances() { ++rebalances_; }

  /// Allocates a fresh local leaf and returns its index.
  int32_t NewLeaf() {
    nodes_.emplace_back();
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  /// Splits `leaf` into two local children if its bucket exceeds the
  /// bucket size and a separating dimension exists (Fig. 1). Buckets of
  /// fully duplicated points are left to overflow.
  void SplitLeafIfNeeded(int32_t leaf);

  /// Replaces the (empty leaf) node `root` with a balanced subtree
  /// over the block's points — the local half of the distributed bulk
  /// load, built through the two-phase plan builder
  /// (core/bulk_build.h) under `opts`' split policy and thread count
  /// (opts.bucket_size is overridden by this partition's). The node
  /// arena is byte-identical whatever opts.build_threads says. Point
  /// accounting is updated.
  void BuildBalancedLocal(int32_t root, const PointBlock& block,
                          const BulkBuildOptions& opts = {});

  /// Copies the block's rows into this partition's arena and appends
  /// their slots to `leaf`'s bucket. Point accounting is updated.
  void AbsorbBlock(int32_t leaf, const PointBlock& block);

  /// Gathers `leaf`'s bucket into one contiguous migration payload,
  /// releasing the arena rows and emptying the bucket. Point accounting
  /// is NOT touched (the caller decides when the move is committed).
  PointBlock ExtractLeafBlock(int32_t leaf);

  /// Live local leaves reachable from any of the partition's roots,
  /// each with its parent routing node (-1 for roots themselves) and
  /// the side it hangs off (true = left).
  struct LeafLocation {
    int32_t leaf;
    int32_t parent;
    bool is_left;
  };
  std::vector<LeafLocation> LocalLeaves() const;

  /// Inventories this partition's live subtrees (one entry per live
  /// roots_ entry) for the rebalancer's candidate selection.
  std::vector<SubtreeInfo> Subtrees() const;

  /// Collects the slots of every live point under `root` into `out`,
  /// in DFS order. Returns false — without touching `out`'s validity
  /// for the caller — when the subtree is not fully local (a remote
  /// child edge makes it unmovable).
  bool SubtreeLocalSlots(int32_t root, std::vector<Slot>* out) const;

  /// Detaches the (fully local) subtree under `root`: every live
  /// descendant is marked dead with its bucket released, and `root`
  /// itself becomes an empty live leaf. The caller must have copied
  /// the points out first (SubtreeLocalSlots) and owns the point
  /// accounting, mirroring ExtractLeafBlock.
  void DetachSubtree(int32_t root);

  /// Drops `node` from the roots list after a merge turned it into an
  /// internal node of this same partition (a local parent edge now
  /// reaches it, so keeping it a root would double-count the subtree
  /// in every roots_ walk). The primary root (node 0) is never
  /// dropped.
  void UnregisterRoot(int32_t node);

  /// Returns this partition to its pristine just-constructed state
  /// (empty arena, one empty leaf root) and zeroes the load counters.
  /// `rebalances()` is kept: it counts what happened to the seat.
  void Reset();

  /// Local statistics (traverses the live local subtree).
  PartitionStats Stats() const;

  /// Serializes this partition — node arena, roots, buckets, point
  /// count, coordinate store — into one snapshot blob. Runs on the
  /// owning compute node's worker (the snapshot protocol handler), so
  /// it sees a quiescent partition.
  void SaveTo(persist::ByteWriter* out) const;

  /// Replaces all state with a saved blob's. `expected_partitions`
  /// bounds the ChildRef partition ids the blob may reference. When
  /// `remap_from` >= 0, ChildRefs naming that partition id are
  /// rewritten to this partition's own id — the migration restore
  /// (DESIGN.md §12): node indexes are preserved, so inbound edges can
  /// be retargeted 1:1 to the new seat.
  Status RestoreFrom(persist::ByteReader* in, size_t expected_partitions,
                     int32_t remap_from = -1);

 private:
  int32_t id_;
  size_t dimensions_;
  size_t bucket_size_;
  PointStore store_;
  std::vector<PNode> nodes_;
  std::vector<int32_t> roots_;
  size_t points_ = 0;
  // Decayed load counters + rebalance event count (DESIGN.md §12).
  // Worker-thread confined, like everything above.
  double load_ops_ = 0.0;
  double load_distances_ = 0.0;
  uint64_t rebalances_ = 0;
};

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_PARTITION_H_

// Copyright 2026 The SemTree Authors
//
// Persistence for a built SemanticIndex: vocabulary, corpus, distance
// configuration and the trained FastMap embedding are written to one
// self-contained text file. Loading reconstructs the index without
// re-training FastMap (the expensive part); the KD-tree itself is
// rebuilt from the stored coordinates, which is cheap and keeps the
// on-disk format independent of the in-memory tree layout.

#ifndef SEMTREE_SEMTREE_INDEX_IO_H_
#define SEMTREE_SEMTREE_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "ontology/taxonomy.h"
#include "semtree/semantic_index.h"

namespace semtree {

/// A loaded index together with the vocabulary it references (the
/// index holds a non-owning pointer into `vocabulary`, so the bundle
/// must stay alive as long as the index is used).
struct IndexBundle {
  std::unique_ptr<Taxonomy> vocabulary;
  std::unique_ptr<SemanticIndex> index;
};

/// Serializes the index (vocabulary + triples + options + embedding)
/// into the format LoadIndex reads.
std::string SerializeIndex(const SemanticIndex& index);

/// Writes SerializeIndex(index) to `path`.
Status SaveIndex(const SemanticIndex& index, const std::string& path);

/// Parses an index from text. `runtime` lets the caller override the
/// deployment-specific knobs (partitions, latency, client threads) that
/// are deliberately not persisted; distance weights, element options,
/// bucket size and the embedding come from the file.
Result<IndexBundle> ParseIndex(std::string_view text,
                               const SemanticIndexOptions& runtime = {});

/// Loads an index file written by SaveIndex.
Result<IndexBundle> LoadIndex(const std::string& path,
                              const SemanticIndexOptions& runtime = {});

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_INDEX_IO_H_

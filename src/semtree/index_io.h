// Copyright 2026 The SemTree Authors
//
// Persistence for a built SemanticIndex. Two generations share the
// LoadIndex entry point:
//  * v1 — the original self-contained text format written by
//    SaveIndex: vocabulary, corpus, distance configuration and the
//    trained FastMap embedding. Loading skips FastMap training but
//    rebuilds the SemTree from the stored coordinates.
//  * v2 — the binary snapshot of persist/index_snapshot.h, which also
//    carries the SemTree partition blobs so loading reassembles the
//    tree without a rebuild. LoadIndex sniffs the magic and routes
//    v2 files there automatically.

#ifndef SEMTREE_SEMTREE_INDEX_IO_H_
#define SEMTREE_SEMTREE_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "ontology/taxonomy.h"
#include "semtree/semantic_index.h"

namespace semtree {

/// A loaded index together with the vocabulary it references (the
/// index holds a non-owning pointer into `vocabulary`, so the bundle
/// must stay alive as long as the index is used).
struct IndexBundle {
  std::unique_ptr<Taxonomy> vocabulary;
  std::unique_ptr<SemanticIndex> index;
};

/// Serializes the index (vocabulary + triples + options + embedding)
/// into the format LoadIndex reads.
std::string SerializeIndex(const SemanticIndex& index);

/// Writes SerializeIndex(index) to `path`.
Status SaveIndex(const SemanticIndex& index, const std::string& path);

/// Parses an index from text. `runtime` lets the caller override the
/// deployment-specific knobs (partitions, latency, client threads) that
/// are deliberately not persisted; distance weights, element options,
/// bucket size and the embedding come from the file.
Result<IndexBundle> ParseIndex(std::string_view text,
                               const SemanticIndexOptions& runtime = {});

/// Loads an index file written by SaveIndex.
Result<IndexBundle> LoadIndex(const std::string& path,
                              const SemanticIndexOptions& runtime = {});

}  // namespace semtree

#endif  // SEMTREE_SEMTREE_INDEX_IO_H_

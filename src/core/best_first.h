// Copyright 2026 The SemTree Authors
//
// The shared budgeted best-first traversal that every sequential
// backend's k-NN and range search is built on (DESIGN.md §6). A search
// keeps a min-heap frontier of pending subtrees keyed by a *lower
// bound* on the distance from the query to anything inside; subtrees
// are expanded in ascending-bound order, so the walk
//
//  * proves exactness the moment the cheapest pending bound exceeds
//    the pruning limit (the current k-th distance, or the range
//    radius) — a min-heap pop is a proof about everything not popped;
//  * degrades gracefully under a SearchBudget: stopping early leaves
//    exactly the farthest subtrees unvisited, which is why small
//    budgets retain high recall (bench/recall_speedup.cc);
//  * applies epsilon slack by shrinking the limit to limit/(1+eps),
//    skipping subtrees that could only improve the result marginally.
//
// Backends supply two lambdas: the (relaxed and exact) pruning limits
// and a visit callback that either scans a leaf or pushes children
// with their bounds. Bounds must be admissible (never exceed the true
// distance to any contained point); looseness only costs extra visits,
// never correctness.

#ifndef SEMTREE_CORE_BEST_FIRST_H_
#define SEMTREE_CORE_BEST_FIRST_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/point.h"
#include "core/query.h"

namespace semtree {

/// Charges search work against a SearchBudget. The gauge meters its
/// own spent-so-far counters (SearchStats is an accumulative contract
/// — callers legitimately reuse one stats object across queries, so
/// it cannot double as the budget state) and mirrors every charge
/// into the caller's stats. Not thread-safe; one gauge per search.
class BudgetGauge {
 public:
  BudgetGauge(const SearchBudget& budget, SearchStats* stats)
      : budget_(budget), stats_(stats) {}

  /// Charges one node visit. Returns false — and marks the search
  /// truncated — when the node budget is already spent; the visit must
  /// then not happen.
  bool ChargeNode() {
    if (budget_.max_nodes_visited != 0 &&
        nodes_ >= budget_.max_nodes_visited) {
      MarkTruncated();
      return false;
    }
    ++nodes_;
    ++stats_->nodes_visited;
    return true;
  }

  /// Charges one distance computation (same contract as ChargeNode).
  bool ChargeDistance() {
    if (budget_.max_distance_computations != 0 &&
        distances_ >= budget_.max_distance_computations) {
      MarkTruncated();
      return false;
    }
    ++distances_;
    ++stats_->points_examined;
    return true;
  }

  /// Bulk form for batched leaf scans: grants as many of `want`
  /// distance charges as the budget allows and returns the granted
  /// count. Granting less than `want` marks the search truncated —
  /// exactly the accounting a per-point ChargeDistance loop would
  /// produce (compute `granted` distances, fail on the next), so
  /// batched and scalar scans report identical stats and results.
  size_t ChargeDistances(size_t want) {
    size_t granted = want;
    if (budget_.max_distance_computations != 0) {
      size_t remaining =
          budget_.max_distance_computations > distances_
              ? budget_.max_distance_computations - distances_
              : 0;
      if (remaining < want) {
        granted = remaining;
        MarkTruncated();
      }
    }
    distances_ += granted;
    stats_->points_examined += granted;
    return granted;
  }

  /// Records that the search result may be missing members. A failed
  /// charge also means no further work is possible: the walk must
  /// stop, not merely skip (see exhausted()).
  void MarkTruncated() {
    stats_->truncated = true;
    exhausted_ = true;
  }

  /// True once any charge has failed — the result set is frozen, so
  /// continuing to traverse would burn time without ever improving it.
  bool exhausted() const { return exhausted_; }

  bool truncated() const { return stats_->truncated; }

 private:
  SearchBudget budget_;
  SearchStats* stats_;
  size_t nodes_ = 0;
  size_t distances_ = 0;
  bool exhausted_ = false;
};

/// One pending subtree of a best-first walk: a backend node handle, an
/// admissible lower bound on the distance from the query to anything
/// stored inside it, and a `hint` breaking bound ties (metric trees
/// produce many overlapping balls whose lower bound is 0 — the hint,
/// typically the query's distance to the region's pivot, orders those
/// by actual proximity, which is what keeps recall high when a budget
/// cuts the walk short). The hint never affects pruning, only order.
struct FrontierEntry {
  double bound = 0.0;
  double hint = 0.0;
  int32_t node = -1;
};

/// Min-heap of pending subtrees, cheapest (bound, hint) on top.
/// Remaining ties pop in a deterministic (heap-algorithm) order for a
/// given push sequence, so budgeted searches are reproducible.
class Frontier {
 public:
  void Push(double bound, double hint, int32_t node) {
    heap_.push_back(FrontierEntry{bound, hint, node});
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }
  void Push(double bound, int32_t node) { Push(bound, bound, node); }

  /// Pops the cheapest entry into `*e`; false when empty.
  bool Pop(FrontierEntry* e) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    *e = heap_.back();
    heap_.pop_back();
    return true;
  }

 private:
  // std::push_heap keeps the *largest* on top; invert for a min-heap.
  static bool Later(const FrontierEntry& a, const FrontierEntry& b) {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.hint > b.hint;
  }

  std::vector<FrontierEntry> heap_;
};

/// Bounded k-NN accumulator: a max-heap of the best k (distance, id)
/// hits seen so far, exposing the current pruning threshold tau.
class KnnAccumulator {
 public:
  explicit KnnAccumulator(size_t k) : k_(k) { heap_.reserve(k + 1); }

  void Offer(PointId id, double distance) {
    heap_.push_back(Neighbor{id, distance});
    std::push_heap(heap_.begin(), heap_.end(), NeighborDistanceThenId);
    if (heap_.size() > k_) {
      std::pop_heap(heap_.begin(), heap_.end(), NeighborDistanceThenId);
      heap_.pop_back();
    }
  }

  /// Current k-th distance; +inf while the result set is not full
  /// (nothing may be pruned yet).
  double tau() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().distance;
  }

  /// The canonical sorted result; the accumulator is consumed.
  std::vector<Neighbor> Take() {
    std::sort_heap(heap_.begin(), heap_.end(), NeighborDistanceThenId);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;
};

/// The shared walker. Expands subtrees in ascending-bound order until
/// the frontier drains, `relaxed_limit()` proves no (epsilon-relevant)
/// improvement is possible, or `gauge` runs out of budget.
///
/// `relaxed_limit()` is the epsilon-scaled pruning limit (e.g.
/// `tau * budget.pruning_scale()`); `exact_limit()` is the unscaled
/// one. When the walk stops at a bound the exact limit would still
/// have admitted, the result may be missing members and the gauge
/// marks the search truncated — so `SearchStats::truncated` is set by
/// exhausted budgets AND by epsilon pruning that actually bit, and
/// never by an exact search.
///
/// `visit(node, bound, frontier)` either scans a leaf into the
/// caller's accumulator (charging `gauge` per distance) or pushes each
/// child with an admissible bound (>= `bound`; lower bounds only
/// tighten downward).
template <typename RelaxedLimitFn, typename ExactLimitFn, typename VisitFn>
void BestFirstSearch(int32_t root, BudgetGauge* gauge,
                     RelaxedLimitFn relaxed_limit, ExactLimitFn exact_limit,
                     VisitFn visit) {
  Frontier frontier;
  frontier.Push(0.0, root);
  FrontierEntry e;
  while (frontier.Pop(&e)) {
    if (e.bound > relaxed_limit()) {
      // Min-heap: every remaining subtree is at least this far. If the
      // exact limit would still have admitted this bound, only epsilon
      // justifies stopping — the result is approximate.
      if (e.bound <= exact_limit()) gauge->MarkTruncated();
      break;
    }
    if (!gauge->ChargeNode()) break;
    visit(e.node, e.bound, &frontier);
    // A failed distance charge inside visit freezes the result set:
    // nothing further can be computed, so keeping on popping (and, on
    // backends whose routing nodes charge no distances, walking the
    // entire tree) would only burn the latency the budget was meant
    // to cap.
    if (gauge->exhausted()) break;
  }
}

}  // namespace semtree

#endif  // SEMTREE_CORE_BEST_FIRST_H_

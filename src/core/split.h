// Copyright 2026 The SemTree Authors
//
// Shared KD split-point selection. Every layer that builds or splits a
// bucket KD-tree (KdTree, Partition, the client-side bulk-load region
// splitter) uses the same policy: split on the widest-spread dimension,
// at the midpoint between the two central distinct values, as close to
// the median as possible. One definition here keeps the trees identical
// across layers.

#ifndef SEMTREE_CORE_SPLIT_H_
#define SEMTREE_CORE_SPLIT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace semtree {

/// How a bulk builder cuts a node's points in two (DESIGN.md §8).
/// Persisted as one byte in the spatial-index snapshot tuning section
/// so a restored tree reports how it was built.
enum class SplitPolicy : uint8_t {
  /// Widest-spread dimension, boundary between the two central
  /// distinct values (the paper's coordinate-median split).
  kMedian = 0,
  /// 2-means on the node's rows (Lloyd iterations, deterministic
  /// farthest-pair seeding), projected onto the axis where the two
  /// centroids separate most (core/bulk_build.h).
  kCentroid = 1,
};

/// Human-readable policy name (bench series, README knobs).
inline std::string_view SplitPolicyName(SplitPolicy policy) {
  switch (policy) {
    case SplitPolicy::kMedian:
      return "median";
    case SplitPolicy::kCentroid:
      return "centroid";
  }
  return "unknown";
}

/// Validated narrowing from a persisted byte; false on unknown values.
inline bool SplitPolicyFromU8(uint8_t raw, SplitPolicy* out) {
  if (raw > static_cast<uint8_t>(SplitPolicy::kCentroid)) return false;
  *out = static_cast<SplitPolicy>(raw);
  return true;
}

struct MedianSplit {
  uint32_t dim = 0;    // Sr
  double value = 0.0;  // Sv
  size_t boundary = 0; // First index of the right half within [lo, hi).
};

/// Widest-spread dimension of rows idx[lo..hi) (coordinates through
/// `row`: index -> const double*); returns the spread, or a negative
/// value when no dimension spreads (all points identical).
template <typename Index, typename RowFn>
double WidestSpreadDim(const std::vector<Index>& idx, size_t lo, size_t hi,
                       size_t dimensions, RowFn row, uint32_t* best_dim) {
  *best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dimensions; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (size_t i = lo; i < hi; ++i) {
      double c = row(idx[i])[d];
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      *best_dim = static_cast<uint32_t>(d);
    }
  }
  return best_spread;
}

/// Picks the widest-spread dimension of rows idx[lo..hi), selects the
/// median-most boundary between distinct values on it, and partitions
/// `idx[lo..hi)` so [lo, boundary) holds the left half and
/// [boundary, hi) the right. Returns false — without touching `idx` —
/// when the span cannot be separated (all points identical).
///
/// Selection runs on nth_element + one three-way partition instead of
/// a full sort. It provably picks the same (dim, value, boundary) as
/// the historical sort-based scan (ChooseMedianSplitBySort below, kept
/// as the golden-test reference): with v the value at sorted position
/// mid = lo + (hi-lo)/2, the sorted span is [<v | ==v | >v] and mid
/// falls inside the ==v block, so the two distinct-value boundaries
/// nearest mid are exactly that block's ends lo+a and lo+a+b (a =
/// #(<v), b = #(==v)); any boundary inside the <v or >v blocks is
/// strictly farther. The reference scans ascending and keeps the first
/// strictly-closest boundary, i.e. the LEFT end on a tie — reproduced
/// here by `<=`. The split value is the midpoint of the two central
/// distinct values: max(<v) and v, or v and min(>v). All three outputs
/// depend only on the multiset of coordinates, never on the order the
/// algorithms leave the span in.
///
/// Unlike the sort path, the span afterwards is merely partitioned,
/// not sorted — callers (the bulk builders) canonicalize leaf order
/// themselves, which is what keeps parallel and serial builds
/// byte-identical (DESIGN.md §8).
template <typename Index, typename RowFn>
bool ChooseMedianSplit(std::vector<Index>& idx, size_t lo, size_t hi,
                       size_t dimensions, RowFn row, MedianSplit* out) {
  uint32_t best_dim = 0;
  if (WidestSpreadDim(idx, lo, hi, dimensions, row, &best_dim) <= 0.0) {
    return false;
  }
  auto first = idx.begin() + static_cast<ptrdiff_t>(lo);
  auto last = idx.begin() + static_cast<ptrdiff_t>(hi);
  size_t mid = lo + (hi - lo) / 2;
  std::nth_element(first, idx.begin() + static_cast<ptrdiff_t>(mid), last,
                   [&row, best_dim](Index a, Index b) {
                     return row(a)[best_dim] < row(b)[best_dim];
                   });
  const double v = row(idx[mid])[best_dim];

  // Three-way partition by v: [<v | ==v | >v]. Also track the largest
  // value below v and the smallest above it (the neighbours of the
  // equal block in sorted order) for the split-value midpoints.
  double below_max = -std::numeric_limits<double>::infinity();
  double above_min = std::numeric_limits<double>::infinity();
  auto eq_first = std::partition(first, last, [&](Index x) {
    double c = row(x)[best_dim];
    if (c < v) {
      below_max = std::max(below_max, c);
      return true;
    }
    return false;
  });
  auto gt_first = std::partition(eq_first, last, [&](Index x) {
    double c = row(x)[best_dim];
    if (c > v) above_min = std::min(above_min, c);
    return c == v;
  });
  size_t a = static_cast<size_t>(eq_first - first);   // #(<v)
  size_t eq = static_cast<size_t>(gt_first - eq_first);  // #(==v)

  // Candidate boundaries: the equal block's ends. The reference keeps
  // the first (leftmost) on a distance tie.
  size_t left_b = lo + a;         // Valid when a > 0.
  size_t right_b = lo + a + eq;   // Valid when < hi.
  bool has_left = a > 0;
  bool has_right = right_b < hi;
  if (!has_left && !has_right) return false;  // Single distinct value.
  auto dist = [mid](size_t b) {
    return b >= mid ? b - mid : mid - b;
  };
  size_t boundary;
  double value;
  if (has_left && (!has_right || dist(left_b) <= dist(right_b))) {
    boundary = left_b;
    value = (below_max + v) / 2.0;
  } else {
    boundary = right_b;
    value = (v + above_min) / 2.0;
  }
  out->dim = best_dim;
  out->value = value;
  out->boundary = boundary;
  return true;
}

/// The historical full-sort selection, kept verbatim as the reference
/// implementation ChooseMedianSplit is golden-tested against
/// (tests/bulk_build_test.cc): it must produce the same
/// (dim, value, boundary) and the same left/right membership for any
/// input. The only intended difference is the order the span is left
/// in (fully sorted here), which the bulk builders canonicalize away.
template <typename Index, typename RowFn>
bool ChooseMedianSplitBySort(std::vector<Index>& idx, size_t lo, size_t hi,
                             size_t dimensions, RowFn row,
                             MedianSplit* out) {
  uint32_t best_dim = 0;
  if (WidestSpreadDim(idx, lo, hi, dimensions, row, &best_dim) <= 0.0) {
    return false;
  }
  std::sort(idx.begin() + static_cast<ptrdiff_t>(lo),
            idx.begin() + static_cast<ptrdiff_t>(hi),
            [&row, best_dim](Index a, Index b) {
              return row(a)[best_dim] < row(b)[best_dim];
            });
  size_t mid = lo + (hi - lo) / 2;
  size_t split = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = lo + 1; i < hi; ++i) {
    if (row(idx[i - 1])[best_dim] < row(idx[i])[best_dim]) {
      double dist =
          std::fabs(static_cast<double>(i) - static_cast<double>(mid));
      if (dist < best) {
        best = dist;
        split = i;
      }
    }
  }
  if (split == 0) return false;
  out->dim = best_dim;
  out->value =
      (row(idx[split - 1])[best_dim] + row(idx[split])[best_dim]) / 2.0;
  out->boundary = split;
  return true;
}

struct BucketSplit {
  uint32_t dim = 0;    // Sr
  double value = 0.0;  // Sv
};

/// Split choice for an overflowing leaf bucket: tries dimensions in
/// order of decreasing spread until one separates the bucket (identical
/// points cannot be separated; returns false and the bucket overflows).
/// `row` maps a bucket entry to its coordinate row.
template <typename Index, typename RowFn>
bool ChooseBucketSplit(const std::vector<Index>& bucket, size_t dimensions,
                       RowFn row, BucketSplit* out) {
  std::vector<std::pair<double, uint32_t>> dims;
  dims.reserve(dimensions);
  for (size_t d = 0; d < dimensions; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (Index s : bucket) {
      double c = row(s)[d];
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    dims.emplace_back(mx - mn, static_cast<uint32_t>(d));
  }
  std::sort(dims.begin(), dims.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<double> values;
  for (const auto& [spread, dim] : dims) {
    if (spread <= 0.0) return false;  // No remaining dimension separates.
    // Median split: midpoint between the two central distinct values.
    values.clear();
    values.reserve(bucket.size());
    for (Index s : bucket) values.push_back(row(s)[dim]);
    std::sort(values.begin(), values.end());
    size_t mid = values.size() / 2;
    size_t split_pos = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i - 1] < values[i]) {
        double dist =
            std::fabs(static_cast<double>(i) - static_cast<double>(mid));
        if (dist < best) {
          best = dist;
          split_pos = i;
        }
      }
    }
    if (split_pos == 0) continue;  // All values equal on this dim.
    out->dim = dim;
    out->value = (values[split_pos - 1] + values[split_pos]) / 2.0;
    return true;
  }
  return false;
}

}  // namespace semtree

#endif  // SEMTREE_CORE_SPLIT_H_

// Copyright 2026 The SemTree Authors
//
// Shared KD split-point selection. Every layer that builds or splits a
// bucket KD-tree (KdTree, Partition, the client-side bulk-load region
// splitter) uses the same policy: split on the widest-spread dimension,
// at the midpoint between the two central distinct values, as close to
// the median as possible. One definition here keeps the trees identical
// across layers.

#ifndef SEMTREE_CORE_SPLIT_H_
#define SEMTREE_CORE_SPLIT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace semtree {

struct MedianSplit {
  uint32_t dim = 0;    // Sr
  double value = 0.0;  // Sv
  size_t boundary = 0; // First index of the right half within [lo, hi).
};

/// Picks the widest-spread dimension of rows idx[lo..hi) (coordinates
/// through `row`: index -> const double*), sorts that span of `idx` by
/// it, and selects the median-most boundary between distinct values.
/// Returns false — leaving `idx` unsorted only if no dimension spreads —
/// when the span cannot be separated (all points identical).
template <typename Index, typename RowFn>
bool ChooseMedianSplit(std::vector<Index>& idx, size_t lo, size_t hi,
                       size_t dimensions, RowFn row, MedianSplit* out) {
  uint32_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dimensions; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (size_t i = lo; i < hi; ++i) {
      double c = row(idx[i])[d];
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = static_cast<uint32_t>(d);
    }
  }
  if (best_spread <= 0.0) return false;

  std::sort(idx.begin() + static_cast<ptrdiff_t>(lo),
            idx.begin() + static_cast<ptrdiff_t>(hi),
            [&row, best_dim](Index a, Index b) {
              return row(a)[best_dim] < row(b)[best_dim];
            });
  size_t mid = lo + (hi - lo) / 2;
  size_t split = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = lo + 1; i < hi; ++i) {
    if (row(idx[i - 1])[best_dim] < row(idx[i])[best_dim]) {
      double dist =
          std::fabs(static_cast<double>(i) - static_cast<double>(mid));
      if (dist < best) {
        best = dist;
        split = i;
      }
    }
  }
  if (split == 0) return false;
  out->dim = best_dim;
  out->value =
      (row(idx[split - 1])[best_dim] + row(idx[split])[best_dim]) / 2.0;
  out->boundary = split;
  return true;
}

struct BucketSplit {
  uint32_t dim = 0;    // Sr
  double value = 0.0;  // Sv
};

/// Split choice for an overflowing leaf bucket: tries dimensions in
/// order of decreasing spread until one separates the bucket (identical
/// points cannot be separated; returns false and the bucket overflows).
/// `row` maps a bucket entry to its coordinate row.
template <typename Index, typename RowFn>
bool ChooseBucketSplit(const std::vector<Index>& bucket, size_t dimensions,
                       RowFn row, BucketSplit* out) {
  std::vector<std::pair<double, uint32_t>> dims;
  dims.reserve(dimensions);
  for (size_t d = 0; d < dimensions; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (Index s : bucket) {
      double c = row(s)[d];
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    dims.emplace_back(mx - mn, static_cast<uint32_t>(d));
  }
  std::sort(dims.begin(), dims.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<double> values;
  for (const auto& [spread, dim] : dims) {
    if (spread <= 0.0) return false;  // No remaining dimension separates.
    // Median split: midpoint between the two central distinct values.
    values.clear();
    values.reserve(bucket.size());
    for (Index s : bucket) values.push_back(row(s)[dim]);
    std::sort(values.begin(), values.end());
    size_t mid = values.size() / 2;
    size_t split_pos = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i - 1] < values[i]) {
        double dist =
            std::fabs(static_cast<double>(i) - static_cast<double>(mid));
        if (dist < best) {
          best = dist;
          split_pos = i;
        }
      }
    }
    if (split_pos == 0) continue;  // All values equal on this dim.
    out->dim = dim;
    out->value = (values[split_pos - 1] + values[split_pos]) / 2.0;
    return true;
  }
  return false;
}

}  // namespace semtree

#endif  // SEMTREE_CORE_SPLIT_H_

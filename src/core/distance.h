// Copyright 2026 The SemTree Authors
//
// The single Euclidean distance kernel of the system. Every backend
// (KD-tree, linear scan, SemTree partitions, FastMap) funnels through
// the raw-pointer form so there is exactly one hot loop to optimise
// (SIMD, batching) in later PRs.

#ifndef SEMTREE_CORE_DISTANCE_H_
#define SEMTREE_CORE_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace semtree {

/// Squared Euclidean distance between two coordinate rows of length n.
inline double SquaredEuclideanDistance(const double* a, const double* b,
                                       size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

/// Euclidean distance between two coordinate rows of length n.
inline double EuclideanDistance(const double* a, const double* b,
                                size_t n) {
  return std::sqrt(SquaredEuclideanDistance(a, b, n));
}

/// Convenience overload for owning vectors; trailing coordinates of the
/// longer vector are ignored (treated as matching zeros both sides).
inline double EuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  return EuclideanDistance(a.data(), b.data(), n);
}

}  // namespace semtree

#endif  // SEMTREE_CORE_DISTANCE_H_

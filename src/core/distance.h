// Copyright 2026 The SemTree Authors
//
// The single Euclidean distance kernel of the system. Every backend
// (KD-tree, linear scan, SemTree partitions, FastMap) funnels through
// the raw-pointer form so there is exactly one hot loop to optimise
// (SIMD, batching) in later PRs.

#ifndef SEMTREE_CORE_DISTANCE_H_
#define SEMTREE_CORE_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace semtree {

/// Squared Euclidean distance between two coordinate rows of length n.
inline double SquaredEuclideanDistance(const double* a, const double* b,
                                       size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

/// Euclidean distance between two coordinate rows of length n.
inline double EuclideanDistance(const double* a, const double* b,
                                size_t n) {
  return std::sqrt(SquaredEuclideanDistance(a, b, n));
}

namespace internal {

/// A dimension mismatch is a programming error, never data: silently
/// truncating to the shorter vector (the old behavior) returned a
/// plausible-looking distance computed in the wrong space. Abort so
/// the bug surfaces at the call site instead of corrupting results.
[[noreturn]] inline void FatalDimensionMismatch(size_t a, size_t b) {
  std::fprintf(stderr,
               "EuclideanDistance: dimension mismatch (%zu vs %zu)\n", a,
               b);
  std::abort();
}

}  // namespace internal

/// Convenience overload for owning vectors. The vectors must have the
/// same dimensionality; mismatches abort (see FatalDimensionMismatch).
inline double EuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    internal::FatalDimensionMismatch(a.size(), b.size());
  }
  return EuclideanDistance(a.data(), b.data(), a.size());
}

}  // namespace semtree

#endif  // SEMTREE_CORE_DISTANCE_H_

// Copyright 2026 The SemTree Authors
//
// The parallel bulk-build pipeline (DESIGN.md §8). Every balanced bulk
// builder — KdTree::BulkLoadBalanced, the SemTree partition build, the
// client-side region splitter — funnels through the same two-phase
// scheme:
//
//  Phase 1 (parallel): build a *plan* — a pointer tree of split
//  decisions over disjoint spans of one index vector. Each span is
//  processed sequentially by exactly one task, and a span's content at
//  task start depends only on its parent's (deterministic, sequential)
//  partition — so the plan is byte-for-byte independent of thread
//  count and scheduling. Leaf spans are canonicalized to ascending
//  index order for the same reason: however a split policy permuted
//  the span, the emitted bucket is the sorted one.
//
//  Phase 2 (serial): the caller walks the plan and emits its own node
//  representation in exactly the order its historical serial builder
//  allocated nodes. Parallel and serial builds therefore produce
//  identical node arrays — and identical snapshot bytes.
//
// Split policies (core/split.h): kMedian is the paper's widest-spread
// median cut; kCentroid runs a small 2-means on the node's rows and
// cuts along the axis separating the two cluster centroids most, which
// aligns leaf regions with the data's cluster structure and reduces
// distance computations per query on clustered corpora
// (bench/bulk_build.cc measures this). Clustering runs under L2
// regardless of the index's query metric: the split plane only shapes
// the partition — query-time pruning still uses the index's own metric
// bounds, so searches stay exact either way.

#ifndef SEMTREE_CORE_BULK_BUILD_H_
#define SEMTREE_CORE_BULK_BUILD_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/kernels.h"
#include "core/split.h"

namespace semtree {

/// Knobs shared by every plan-based bulk builder. Callers translate
/// their own options (KdTreeOptions, BackendOptions, SemTreeOptions)
/// into this.
struct BulkBuildOptions {
  SplitPolicy policy = SplitPolicy::kMedian;

  /// Worker threads for phase 1. 1 = serial (the default), 0 = one per
  /// hardware thread, n = exactly n. The built tree is byte-identical
  /// across all values — this knob trades wall-clock only.
  size_t build_threads = 1;

  /// Leaf capacity: spans at or under this size become buckets.
  size_t bucket_size = 32;

  /// Spans at or above this size fan their left child out to the pool;
  /// smaller spans recurse inline (task overhead would dominate).
  size_t parallel_cutoff = 4096;

  /// Lloyd refinement rounds for kCentroid (after farthest-pair
  /// seeding). Small values suffice: the plane only needs the rough
  /// cluster direction, not converged centroids.
  size_t lloyd_iterations = 3;
};

/// Maps the build_threads knob to an actual worker count (>= 1).
inline size_t ResolveBuildThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Deterministic per-span seed derivation (splitmix64 finalization over
/// the caller's seed and the span bounds). Parallel builders that need
/// randomness (the VP-tree's vantage picks) seed a fresh generator per
/// node span instead of sharing one sequential stream — every node's
/// random choices then depend only on (seed, lo, hi), never on the
/// order tasks ran in. Spans are unique per node within one build.
inline uint64_t MixSeed(uint64_t seed, uint64_t lo, uint64_t hi) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (2 * lo + 3 * hi + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A phase-1 split decision. Leaves reference their bucket as a span
/// [lo, hi) of the index vector the plan was built over (canonical
/// ascending order); routing nodes carry the KD plane.
struct KdPlanNode {
  bool is_leaf = true;
  uint32_t split_dim = 0;    // Sr
  double split_value = 0.0;  // Sv
  size_t lo = 0;
  size_t hi = 0;
  std::unique_ptr<KdPlanNode> left;
  std::unique_ptr<KdPlanNode> right;
};

/// Centroid (2-means) split of rows idx[lo..hi): seeds two centroids
/// deterministically (c1 = point farthest from the span mean, c2 =
/// point farthest from c1; ties broken toward the earliest span
/// position), runs `lloyd_iterations` rounds of Lloyd assignment
/// (squared-L2 via the batched kernels, ties to centroid 1, means
/// accumulated in span order so floating-point sums are reproducible),
/// then cuts along dim = argmax |c1[d] - c2[d]| at the midpoint.
/// Partitions idx so [lo, boundary) holds rows with coord <= value.
/// Returns false — leaving `idx` untouched — when the span has no
/// spread or the plane fails to separate it; callers fall back to the
/// median split.
template <typename Index, typename RowFn>
bool ChooseCentroidSplit(std::vector<Index>& idx, size_t lo, size_t hi,
                         size_t dimensions, RowFn row,
                         size_t lloyd_iterations, MedianSplit* out) {
  const size_t n = hi - lo;
  if (n < 2) return false;
  auto row_at = [&](size_t j) { return row(idx[lo + j]); };

  // Span mean, accumulated in span order.
  std::vector<double> c1(dimensions, 0.0), c2(dimensions, 0.0);
  {
    std::vector<double> mean(dimensions, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      const double* r = row(idx[i]);
      for (size_t d = 0; d < dimensions; ++d) mean[d] += r[d];
    }
    for (size_t d = 0; d < dimensions; ++d) {
      mean[d] /= static_cast<double>(n);
    }
    // c1 = farthest from the mean; earliest span position on ties.
    size_t far1 = 0;
    double best = -1.0;
    BatchScan(Metric::kL2, mean.data(), dimensions, n, row_at,
              [&](size_t j, double d) {
                if (d > best) {
                  best = d;
                  far1 = j;
                }
              });
    const double* r1 = row(idx[lo + far1]);
    std::copy(r1, r1 + dimensions, c1.begin());
  }
  {
    // c2 = farthest from c1. Zero spread means every row equals c1:
    // nothing to split.
    size_t far2 = 0;
    double best = -1.0;
    BatchScan(Metric::kL2, c1.data(), dimensions, n, row_at,
              [&](size_t j, double d) {
                if (d > best) {
                  best = d;
                  far2 = j;
                }
              });
    if (best <= 0.0) return false;
    const double* r2 = row(idx[lo + far2]);
    std::copy(r2, r2 + dimensions, c2.begin());
  }

  // Lloyd rounds. Assignment distances come from the batched kernels
  // (bit-identical to scalar, so the result is machine-independent up
  // to FP determinism of the build host); means accumulate in span
  // order, which phase 1 guarantees is the same serial or parallel.
  std::vector<double> d1(n), d2(n);
  std::vector<double> s1(dimensions), s2(dimensions);
  for (size_t iter = 0; iter < lloyd_iterations; ++iter) {
    BatchScan(Metric::kL2, c1.data(), dimensions, n, row_at,
              [&](size_t j, double d) { d1[j] = d; });
    BatchScan(Metric::kL2, c2.data(), dimensions, n, row_at,
              [&](size_t j, double d) { d2[j] = d; });
    std::fill(s1.begin(), s1.end(), 0.0);
    std::fill(s2.begin(), s2.end(), 0.0);
    size_t n1 = 0, n2 = 0;
    for (size_t j = 0; j < n; ++j) {
      const double* r = row(idx[lo + j]);
      if (d1[j] <= d2[j]) {  // Tie -> centroid 1.
        ++n1;
        for (size_t d = 0; d < dimensions; ++d) s1[d] += r[d];
      } else {
        ++n2;
        for (size_t d = 0; d < dimensions; ++d) s2[d] += r[d];
      }
    }
    if (n1 == 0 || n2 == 0) break;  // Keep the previous centroids.
    for (size_t d = 0; d < dimensions; ++d) {
      c1[d] = s1[d] / static_cast<double>(n1);
      c2[d] = s2[d] / static_cast<double>(n2);
    }
  }

  // The split plane: the axis where the centroids separate most, cut
  // at their midpoint. Lowest dimension wins ties.
  uint32_t dim = 0;
  double sep = -1.0;
  for (size_t d = 0; d < dimensions; ++d) {
    double gap = std::fabs(c1[d] - c2[d]);
    if (gap > sep) {
      sep = gap;
      dim = static_cast<uint32_t>(d);
    }
  }
  if (sep <= 0.0) return false;
  const double value = (c1[dim] + c2[dim]) / 2.0;

  // The plane must actually cut the span; degenerate planes (every row
  // on one side) send the caller to the median fallback.
  size_t n_left = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (row(idx[i])[dim] <= value) ++n_left;
  }
  if (n_left == 0 || n_left == n) return false;
  std::partition(idx.begin() + static_cast<ptrdiff_t>(lo),
                 idx.begin() + static_cast<ptrdiff_t>(hi),
                 [&](Index x) { return row(x)[dim] <= value; });
  out->dim = dim;
  out->value = value;
  out->boundary = lo + n_left;
  return true;
}

/// One split decision: policy first, median fallback. Returns false
/// when the span must become a leaf (at or under bucket size, or
/// inseparable).
template <typename Index, typename RowFn>
bool ChooseSplitForPolicy(std::vector<Index>& idx, size_t lo, size_t hi,
                          size_t dimensions, RowFn row,
                          const BulkBuildOptions& opts, MedianSplit* out) {
  if (hi - lo <= opts.bucket_size) return false;
  if (opts.policy == SplitPolicy::kCentroid &&
      ChooseCentroidSplit(idx, lo, hi, dimensions, row,
                          opts.lloyd_iterations, out)) {
    return true;
  }
  return ChooseMedianSplit(idx, lo, hi, dimensions, row, out);
}

/// Phase-1 recursion: fills `node` with the split decision for
/// idx[lo..hi), fanning the left child out to `group` when the span is
/// large enough (right child continues on this thread — the task that
/// owns a span always has work of its own). With a null group
/// everything runs inline; the result is identical either way.
template <typename Index, typename RowFn>
void FillKdPlanNode(KdPlanNode* node, std::vector<Index>* idx, size_t lo,
                    size_t hi, size_t dimensions, RowFn row,
                    BulkBuildOptions opts, TaskGroup* group) {
  MedianSplit split;
  if (!ChooseSplitForPolicy(*idx, lo, hi, dimensions, row, opts, &split)) {
    // Canonical bucket order: ascending index, whatever order the
    // partitions above left the span in. This is what makes leaves —
    // and the snapshot bytes — independent of the split policy's
    // internal permutations and of the nth_element/sort choice in the
    // median path.
    std::sort(idx->begin() + static_cast<ptrdiff_t>(lo),
              idx->begin() + static_cast<ptrdiff_t>(hi));
    node->is_leaf = true;
    node->lo = lo;
    node->hi = hi;
    return;
  }
  node->is_leaf = false;
  node->split_dim = split.dim;
  node->split_value = split.value;
  node->left = std::make_unique<KdPlanNode>();
  node->right = std::make_unique<KdPlanNode>();
  KdPlanNode* left = node->left.get();
  KdPlanNode* right = node->right.get();
  const size_t boundary = split.boundary;
  if (group != nullptr && hi - lo >= opts.parallel_cutoff) {
    group->Run([left, idx, lo, boundary, dimensions, row, opts, group]() {
      FillKdPlanNode(left, idx, lo, boundary, dimensions, row, opts, group);
    });
    FillKdPlanNode(right, idx, boundary, hi, dimensions, row, opts, group);
    return;
  }
  FillKdPlanNode(left, idx, lo, boundary, dimensions, row, opts, group);
  FillKdPlanNode(right, idx, boundary, hi, dimensions, row, opts, group);
}

/// Builds the split plan for idx (permuting it; leaves reference its
/// final order). Spawns a pool only when the resolved thread count and
/// the input size warrant one. Returns null for an empty input.
template <typename Index, typename RowFn>
std::unique_ptr<KdPlanNode> BuildKdPlan(std::vector<Index>& idx,
                                        size_t dimensions, RowFn row,
                                        const BulkBuildOptions& opts) {
  if (idx.empty()) return nullptr;
  auto root = std::make_unique<KdPlanNode>();
  size_t threads = ResolveBuildThreads(opts.build_threads);
  if (threads > 1 && idx.size() >= opts.parallel_cutoff) {
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    FillKdPlanNode(root.get(), &idx, 0, idx.size(), dimensions, row, opts,
                   &group);
    group.Wait();
  } else {
    FillKdPlanNode(root.get(), &idx, 0, idx.size(), dimensions, row, opts,
                   nullptr);
  }
  return root;
}

}  // namespace semtree

#endif  // SEMTREE_CORE_BULK_BUILD_H_

// Copyright 2026 The SemTree Authors
//
// NOTE: this file is compiled with -ffp-contract=off (see
// CMakeLists.txt). The byte-identity contract — batched L2 distances
// equal the historical scalar EuclideanDistance bit for bit — forbids
// fusing d*d + s into an FMA on targets that have one, because the
// baseline scalar code (x86-64 SSE2) rounds the product and the sum
// separately.

#include "core/kernels.h"

#include <algorithm>

#include "core/distance.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SEMTREE_KERNELS_X86_SIMD 1
#include <immintrin.h>
#endif

namespace semtree {

namespace {

// Chord distance of a zero vector against a non-zero one: the zero
// vector has no direction, so it is treated as orthogonal to
// everything (sqrt(2), the exact double nearest it). Keeps the
// triangle inequality: sqrt(2) <= sqrt(2) + chord and chord <= 2 <=
// 2*sqrt(2).
constexpr double kOrthogonalChord = 1.4142135623730951;

// Final combine of the cosine kernel. Shared by the scalar and the
// batched paths so the result is bit-identical regardless of how the
// three running sums were produced (each sum's own accumulation order
// is fixed: ascending dimension). Precondition: the sums passed
// CosineSumsDegenerate below — `dot` finite, `na*nb` finite and
// nonzero. sqrt(na*nb) keeps self-distance exactly 0 (the square of a
// double roots back exactly).
inline double ChordFromSums(double dot, double query_norm2,
                            double row_norm2) {
  double cosine = dot / std::sqrt(query_norm2 * row_norm2);
  // Rounding can push |cosine| marginally past 1; clamp so the sqrt
  // argument stays in [0, 4].
  double c = 1.0 - cosine;
  if (c < 0.0) c = 0.0;
  if (c > 2.0) c = 2.0;
  return std::sqrt(2.0 * c);
}

inline double L1Scalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

// True when the accumulated cosine sums cannot be combined reliably:
// the dot or the norms-squared product over/underflowed double range
// (finite inputs near 1e±160 do this), or a norm is 0 — which is
// either a genuine zero vector or an underflow. All of these are
// settled by the scaled recompute below.
inline bool CosineSumsDegenerate(double dot, double na, double nb) {
  double denom2 = na * nb;  // NaN/inf norms propagate into denom2.
  return !std::isfinite(dot) || !std::isfinite(denom2) ||
         denom2 == 0.0;
}

// Scale-invariant fallback: cosine only sees directions, so dividing
// each vector by its max |coordinate| first keeps every sum within
// [−n, n] without changing the angle. Only runs on degenerate rows
// (extreme magnitudes or zero vectors), never on the fast path.
double RescaledChord(const double* a, const double* b, size_t n) {
  double amax = 0.0, bmax = 0.0;
  for (size_t i = 0; i < n; ++i) {
    amax = std::max(amax, std::fabs(a[i]));
    bmax = std::max(bmax, std::fabs(b[i]));
  }
  if (amax == 0.0 || bmax == 0.0) {
    return (amax == 0.0 && bmax == 0.0) ? 0.0 : kOrthogonalChord;
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double x = a[i] / amax;
    double y = b[i] / bmax;
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  return ChordFromSums(dot, na, nb);
}

inline double CosineScalar(const double* q, double query_norm2,
                           const double* b, size_t n) {
  double dot = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dot += q[i] * b[i];
    nb += b[i] * b[i];
  }
  if (CosineSumsDegenerate(dot, query_norm2, nb)) {
    return RescaledChord(q, b, n);
  }
  return ChordFromSums(dot, query_norm2, nb);
}

// Row accessors that let one batched loop serve both the contiguous
// (row-major block) and the gathered (pointer-per-row) entry points.
struct ContiguousRows {
  const double* base;
  size_t dim;
  const double* operator[](size_t r) const { return base + r * dim; }
};
struct GatheredRows {
  const double* const* rows;
  const double* operator[](size_t r) const { return rows[r]; }
};

// The 4-way unrolled one-vs-many loops. Each row keeps its own
// accumulator chain iterating dimensions in ascending order — exactly
// the scalar kernel's operation sequence per row, so results are
// bit-identical to the scalar calls while the four independent chains
// hide FP-add latency. The tail (count % 4 rows) is the
// runtime-checked fallback: it runs the plain scalar kernel.

template <typename Rows>
void BatchL2(const double* q, size_t dim, Rows rows, size_t count,
             double* out) {
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const double* p0 = rows[r];
    const double* p1 = rows[r + 1];
    const double* p2 = rows[r + 2];
    const double* p3 = rows[r + 3];
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double qi = q[i];
      const double d0 = qi - p0[i];
      const double d1 = qi - p1[i];
      const double d2 = qi - p2[i];
      const double d3 = qi - p3[i];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    out[r] = std::sqrt(s0);
    out[r + 1] = std::sqrt(s1);
    out[r + 2] = std::sqrt(s2);
    out[r + 3] = std::sqrt(s3);
  }
  for (; r < count; ++r) out[r] = EuclideanDistance(q, rows[r], dim);
}

template <typename Rows>
void BatchL1(const double* q, size_t dim, Rows rows, size_t count,
             double* out) {
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const double* p0 = rows[r];
    const double* p1 = rows[r + 1];
    const double* p2 = rows[r + 2];
    const double* p3 = rows[r + 3];
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double qi = q[i];
      s0 += std::fabs(qi - p0[i]);
      s1 += std::fabs(qi - p1[i]);
      s2 += std::fabs(qi - p2[i]);
      s3 += std::fabs(qi - p3[i]);
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < count; ++r) out[r] = L1Scalar(q, rows[r], dim);
}

template <typename Rows>
void BatchCosine(const double* q, size_t dim, Rows rows, size_t count,
                 double* out) {
  // The query's own norm is row-independent; computing it once (in the
  // same ascending-dimension order the scalar kernel uses) yields the
  // same bits as recomputing it per row.
  const double query_norm2 = SquaredNorm(q, dim);
  size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const double* p0 = rows[r];
    const double* p1 = rows[r + 1];
    const double* p2 = rows[r + 2];
    const double* p3 = rows[r + 3];
    double dot0 = 0.0, dot1 = 0.0, dot2 = 0.0, dot3 = 0.0;
    double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      const double qi = q[i];
      dot0 += qi * p0[i];
      n0 += p0[i] * p0[i];
      dot1 += qi * p1[i];
      n1 += p1[i] * p1[i];
      dot2 += qi * p2[i];
      n2 += p2[i] * p2[i];
      dot3 += qi * p3[i];
      n3 += p3[i] * p3[i];
    }
    out[r] = CosineSumsDegenerate(dot0, query_norm2, n0)
                 ? RescaledChord(q, p0, dim)
                 : ChordFromSums(dot0, query_norm2, n0);
    out[r + 1] = CosineSumsDegenerate(dot1, query_norm2, n1)
                     ? RescaledChord(q, p1, dim)
                     : ChordFromSums(dot1, query_norm2, n1);
    out[r + 2] = CosineSumsDegenerate(dot2, query_norm2, n2)
                     ? RescaledChord(q, p2, dim)
                     : ChordFromSums(dot2, query_norm2, n2);
    out[r + 3] = CosineSumsDegenerate(dot3, query_norm2, n3)
                     ? RescaledChord(q, p3, dim)
                     : ChordFromSums(dot3, query_norm2, n3);
  }
  for (; r < count; ++r) {
    out[r] = CosineScalar(q, query_norm2, rows[r], dim);
  }
}

#if SEMTREE_KERNELS_X86_SIMD

// Rebases a row accessor so the AVX path's row tail can reuse the
// plain fallback kernel.
template <typename Rows>
struct RowsOffset {
  Rows rows;
  size_t base;
  const double* operator[](size_t j) const { return rows[base + j]; }
};

// ------------------------------------------------------------------
// AVX fast path for L2 (the hot default metric). Eight rows per
// iteration in two independent accumulator chains; dims are processed
// four at a time by loading four consecutive doubles per row and
// transposing the 4x4 block in registers, so each accumulator lane is
// one row summing squared diffs in ascending-dimension order — the
// exact scalar operation sequence, hence bit-identical results (mul
// and add stay separate ops; see the -ffp-contract=off note above).
// vsqrtpd is IEEE-correctly rounded like sqrtsd, so the vectorized
// square root preserves bits too.

__attribute__((target("avx"))) static inline void Transpose4(
    __m256d r0, __m256d r1, __m256d r2, __m256d r3, __m256d* c0,
    __m256d* c1, __m256d* c2, __m256d* c3) {
  __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  *c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  *c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  *c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  *c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

template <typename Rows>
__attribute__((target("avx"))) void BatchL2Avx(const double* q,
                                               size_t dim, Rows rows,
                                               size_t count,
                                               double* out) {
  size_t r = 0;
  for (; r + 8 <= count; r += 8) {
    const double* p0 = rows[r];
    const double* p1 = rows[r + 1];
    const double* p2 = rows[r + 2];
    const double* p3 = rows[r + 3];
    const double* p4 = rows[r + 4];
    const double* p5 = rows[r + 5];
    const double* p6 = rows[r + 6];
    const double* p7 = rows[r + 7];
    __m256d acc_a = _mm256_setzero_pd();
    __m256d acc_b = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
      __m256d a0, a1, a2, a3, b0, b1, b2, b3;
      Transpose4(_mm256_loadu_pd(p0 + i), _mm256_loadu_pd(p1 + i),
                 _mm256_loadu_pd(p2 + i), _mm256_loadu_pd(p3 + i), &a0,
                 &a1, &a2, &a3);
      Transpose4(_mm256_loadu_pd(p4 + i), _mm256_loadu_pd(p5 + i),
                 _mm256_loadu_pd(p6 + i), _mm256_loadu_pd(p7 + i), &b0,
                 &b1, &b2, &b3);
      __m256d q0 = _mm256_broadcast_sd(q + i);
      __m256d q1 = _mm256_broadcast_sd(q + i + 1);
      __m256d q2 = _mm256_broadcast_sd(q + i + 2);
      __m256d q3 = _mm256_broadcast_sd(q + i + 3);
      __m256d da, db;
      da = _mm256_sub_pd(q0, a0);
      acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
      db = _mm256_sub_pd(q0, b0);
      acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
      da = _mm256_sub_pd(q1, a1);
      acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
      db = _mm256_sub_pd(q1, b1);
      acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
      da = _mm256_sub_pd(q2, a2);
      acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
      db = _mm256_sub_pd(q2, b2);
      acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
      da = _mm256_sub_pd(q3, a3);
      acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
      db = _mm256_sub_pd(q3, b3);
      acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
    }
    alignas(32) double sa[4], sb[4];
    _mm256_store_pd(sa, acc_a);
    _mm256_store_pd(sb, acc_b);
    // Dim tail (dim % 4): continue each row's accumulator in order.
    for (; i < dim; ++i) {
      const double qi = q[i];
      double d;
      d = qi - p0[i];
      sa[0] += d * d;
      d = qi - p1[i];
      sa[1] += d * d;
      d = qi - p2[i];
      sa[2] += d * d;
      d = qi - p3[i];
      sa[3] += d * d;
      d = qi - p4[i];
      sb[0] += d * d;
      d = qi - p5[i];
      sb[1] += d * d;
      d = qi - p6[i];
      sb[2] += d * d;
      d = qi - p7[i];
      sb[3] += d * d;
    }
    _mm256_storeu_pd(out + r, _mm256_sqrt_pd(_mm256_load_pd(sa)));
    _mm256_storeu_pd(out + r + 4, _mm256_sqrt_pd(_mm256_load_pd(sb)));
  }
  // Row tail: the plain 4-way/scalar fallback finishes the remainder.
  if (r < count) {
    BatchL2(q, dim, RowsOffset<Rows>{rows, r}, count - r, out + r);
  }
}

// The runtime check of the dispatch: AVX is a property of the machine
// the binary *runs* on, not the one it was built on.
// __builtin_cpu_supports only reports AVX when the OS enables the ymm
// state, so a positive answer means the path is safe to call.
bool DetectAvx() { return __builtin_cpu_supports("avx") > 0; }

#endif  // SEMTREE_KERNELS_X86_SIMD

template <typename Rows>
void BatchDispatch(Metric metric, const double* q, size_t dim, Rows rows,
                   size_t count, double* out) {
  switch (metric) {
    case Metric::kL2:
#if SEMTREE_KERNELS_X86_SIMD
      // Runtime-checked fast path; the plain loop below is the
      // fallback for machines without usable AVX.
      if (BatchKernelsUseSimd() && dim >= 4 && count >= 8) {
        BatchL2Avx(q, dim, rows, count, out);
        return;
      }
#endif
      BatchL2(q, dim, rows, count, out);
      return;
    case Metric::kL1:
      BatchL1(q, dim, rows, count, out);
      return;
    case Metric::kCosine:
      BatchCosine(q, dim, rows, count, out);
      return;
  }
  // Unknown metric values cannot be constructed through the public
  // surface (MetricFromU8 validates persisted bytes); treat as L2.
  BatchL2(q, dim, rows, count, out);
}

}  // namespace

std::string_view MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kL1:
      return "l1";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

bool MetricFromU8(uint8_t raw, Metric* out) {
  switch (raw) {
    case uint8_t(Metric::kL2):
    case uint8_t(Metric::kL1):
    case uint8_t(Metric::kCosine):
      *out = static_cast<Metric>(raw);
      return true;
  }
  return false;
}

double MetricDistance(Metric metric, const double* a, const double* b,
                      size_t n) {
  switch (metric) {
    case Metric::kL2:
      return EuclideanDistance(a, b, n);
    case Metric::kL1:
      return L1Scalar(a, b, n);
    case Metric::kCosine:
      return CosineScalar(a, SquaredNorm(a, n), b, n);
  }
  return EuclideanDistance(a, b, n);
}

double SquaredNorm(const double* a, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * a[i];
  return sum;
}

double CosineChordDistance(const double* a, double a_norm2,
                           const double* b, size_t n) {
  return CosineScalar(a, a_norm2, b, n);
}

void BatchDistance(Metric metric, const double* query, size_t dim,
                   const double* rows, size_t count, double* out) {
  BatchDispatch(metric, query, dim, ContiguousRows{rows, dim}, count, out);
}

void BatchDistance(Metric metric, const double* query, size_t dim,
                   const double* const* rows, size_t count, double* out) {
  BatchDispatch(metric, query, dim, GatheredRows{rows}, count, out);
}

bool BatchKernelsUseSimd() {
#if SEMTREE_KERNELS_X86_SIMD
  static const bool has_avx = DetectAvx();
  return has_avx;
#else
  return false;
#endif
}

bool AllFinite(const double* coords, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(coords[i])) return false;
  }
  return true;
}

Status CheckFiniteCoords(const std::vector<double>& coords) {
  if (!AllFinite(coords)) {
    return Status::InvalidArgument(
        "point has non-finite (NaN/Inf) coordinates");
  }
  return Status::OK();
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// PointStore: the flat coordinate arena behind every index backend.
// All coordinates live row-major in fixed-size power-of-two chunks (one
// allocation per chunk, never reallocated), with a parallel PointId
// array. Leaf buckets and search loops hold 32-bit slot indices into
// the store, so scanning a bucket touches one contiguous row per point
// instead of chasing a heap-allocated std::vector<double> each.
//
// Guarantees:
//  * Row pointers (CoordsAt / View) stay valid for the store's whole
//    lifetime — chunks are never moved or freed before destruction.
//  * Rows are contiguous and consecutive slots within a chunk are
//    adjacent in memory (chunks hold `chunk_capacity` rows back to
//    back), so bulk-loaded stores scan like one flat array.
//  * Released slots are recycled by later appends (free list), so a
//    long-lived store with churn does not grow without bound.

#ifndef SEMTREE_CORE_POINT_STORE_H_
#define SEMTREE_CORE_POINT_STORE_H_

#include <cassert>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "core/point.h"

namespace semtree {

class PointStore {
 public:
  /// Slot index into a PointStore.
  using Slot = uint32_t;

  /// Default rows per chunk (64 KiB of doubles at 8 dimensions).
  static constexpr size_t kDefaultChunkCapacity = 1024;

  /// `chunk_capacity` is rounded up to a power of two so slot->chunk
  /// resolution is a shift/mask.
  explicit PointStore(size_t dimensions,
                      size_t chunk_capacity = kDefaultChunkCapacity)
      : dim_(dimensions < 1 ? 1 : dimensions) {
    shift_ = 0;
    size_t cap = 1;
    while (cap < chunk_capacity) {
      cap <<= 1;
      ++shift_;
    }
    mask_ = cap - 1;
  }

  PointStore(PointStore&&) = default;
  PointStore& operator=(PointStore&&) = default;
  PointStore(const PointStore&) = delete;
  PointStore& operator=(const PointStore&) = delete;

  size_t dimensions() const { return dim_; }

  /// Live points (appended minus released).
  size_t size() const { return live_; }

  /// Slots ever allocated (upper bound over all valid slot indices).
  size_t slot_count() const { return slots_; }

  size_t chunk_capacity() const { return mask_ + 1; }

  /// Pre-allocates chunks for `points` further appends.
  void Reserve(size_t points) {
    ids_.reserve(slots_ + points);
    while (cap_ - slots_ + free_.size() < points) AddChunk();
  }

  /// Copies one coordinate row into the arena; returns its slot.
  Slot Append(const double* coords, PointId id) {
    Slot slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      ids_[slot] = id;
    } else {
      if (slots_ == cap_) AddChunk();
      assert(slots_ <= std::numeric_limits<Slot>::max());
      slot = static_cast<Slot>(slots_++);
      ids_.push_back(id);
    }
    std::memcpy(MutableCoordsAt(slot), coords, dim_ * sizeof(double));
    ++live_;
    return slot;
  }

  Slot Append(const std::vector<double>& coords, PointId id) {
    assert(coords.size() == dim_);
    return Append(coords.data(), id);
  }

  /// Marks a slot dead; its row may be reused by a later Append. The
  /// caller must drop every reference to the slot first.
  void Release(Slot slot) {
    assert(slot < slots_);
    assert(live_ > 0);
    free_.push_back(slot);
    --live_;
  }

  /// Stable pointer to the row of `slot` (contiguous, length dim_).
  const double* CoordsAt(Slot slot) const {
    assert(slot < slots_);
    return chunks_[slot >> shift_].get() + (slot & mask_) * dim_;
  }

  double* MutableCoordsAt(Slot slot) {
    return const_cast<double*>(CoordsAt(slot));
  }

  PointId IdAt(Slot slot) const {
    assert(slot < slots_);
    return ids_[slot];
  }

  PointView View(Slot slot) const {
    return PointView{CoordsAt(slot), dim_, ids_[slot]};
  }

  /// Serialization access (persist/snapshot.h): the id of every
  /// allocated slot, and the free list in recycling order.
  const std::vector<PointId>& slot_ids() const { return ids_; }
  const std::vector<Slot>& free_slots() const { return free_; }

  /// Rebuilds a store's slot layout from its serialized parts — same
  /// slot indices, same free-list recycling order — so structures
  /// holding slot indices stay valid without translation. Coordinate
  /// rows are left uninitialized; the caller (persist::ReadPointStore)
  /// streams them straight into the chunks via MutableCoordsAt. Inputs
  /// must be pre-validated.
  static PointStore Preallocate(size_t dimensions, size_t chunk_capacity,
                                std::vector<PointId> ids,
                                std::vector<Slot> free_slots) {
    PointStore store(dimensions, chunk_capacity);
    assert(free_slots.size() <= ids.size());
    while (store.cap_ < ids.size()) store.AddChunk();
    store.slots_ = ids.size();
    store.live_ = ids.size() - free_slots.size();
    store.ids_ = std::move(ids);
    store.free_ = std::move(free_slots);
    return store;
  }

 private:
  void AddChunk() {
    chunks_.push_back(std::make_unique<double[]>(chunk_capacity() * dim_));
    cap_ += chunk_capacity();
  }

  size_t dim_;
  size_t shift_ = 0;
  size_t mask_ = 0;
  size_t slots_ = 0;  // Slots ever allocated.
  size_t cap_ = 0;    // Total chunk capacity in points.
  size_t live_ = 0;   // Live (non-released) points.
  std::vector<std::unique_ptr<double[]>> chunks_;
  std::vector<PointId> ids_;
  std::vector<Slot> free_;
};

}  // namespace semtree

#endif  // SEMTREE_CORE_POINT_STORE_H_

// Copyright 2026 The SemTree Authors
//
// SpatialIndex adapters and the backend factory. KdTree and
// LinearScanIndex implement SpatialIndex natively; the metric trees
// (VpTree, MTree) index abstract objects through a distance oracle, so
// their adapters own a PointStore of the inserted vectors and present
// the Euclidean metric over it. All four become interchangeable behind
// MakeSpatialIndex, which the cross-backend equivalence test and the
// comparison benches rely on.

#ifndef SEMTREE_CORE_BACKENDS_H_
#define SEMTREE_CORE_BACKENDS_H_

#include <memory>
#include <optional>

#include "common/mutex.h"
#include "core/point_store.h"
#include "core/spatial_index.h"
#include "kdtree/mtree.h"
#include "kdtree/vptree.h"
#include "persist/wire.h"

namespace semtree {

enum class BackendKind {
  kKdTree,
  kLinearScan,
  kVpTree,
  kMTree,
};

struct BackendOptions {
  /// Leaf bucket / node capacity of tree backends.
  size_t bucket_size = 32;

  /// Seed for randomized construction (VP vantage points, M-tree split
  /// promotion).
  uint64_t seed = 42;

  /// Distance function the index evaluates (core/kernels.h): L2
  /// (default), L1, or cosine (angular chord). The metric trees prune
  /// under any of the three (all satisfy the triangle inequality); the
  /// KD-tree stays exact under cosine but loses its splitting-plane
  /// pruning (see KdPlaneLowerBound).
  Metric metric = Metric::kL2;

  /// How bulk builds cut nodes (core/split.h): median (default) or
  /// clustering-guided centroid splits (core/bulk_build.h). Consumed
  /// by the KD-tree's bulk load; recorded as index metadata on every
  /// backend and persisted with the snapshot tuning section.
  SplitPolicy split_policy = SplitPolicy::kMedian;

  /// Worker threads for bulk builds (KD-tree plan builds, VP-tree
  /// lazy rebuilds): 1 = serial (default), 0 = one per hardware
  /// thread, n = exactly n. Built structures are byte-identical across
  /// all values (DESIGN.md §8).
  size_t build_threads = 1;
};

/// Vantage-point tree over Euclidean vectors. The VP-tree core is a
/// static (build-once) index, so inserts are buffered in the point
/// store and the tree is rebuilt lazily on the first query after a
/// mutation. Removal is not supported.
class VpTreeIndex : public SpatialIndex {
 public:
  VpTreeIndex(size_t dimensions, BackendOptions options = {});

  Status Insert(const std::vector<double>& coords, PointId id) override;
  Status Remove(const std::vector<double>& coords, PointId id) override;

  /// Appends the whole batch to the arena and invalidates the built
  /// tree once — one deferred (possibly parallel, see
  /// BackendOptions::build_threads) whole-tree build on the next query
  /// instead of n rebuild invalidations.
  Status BulkLoad(const std::vector<KdPoint>& points) override;

  using SpatialIndex::KnnSearch;
  using SpatialIndex::RangeSearch;

  /// Budgeted searches (core/query.h): the budget is forwarded to the
  /// VP-tree's best-first walker; `stats->truncated` reports
  /// approximate results.
  std::vector<Neighbor> KnnSearch(const std::vector<double>& query,
                                  size_t k, const SearchBudget& budget,
                                  SearchStats* stats = nullptr) const override;
  std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;
  size_t size() const override { return store_.size(); }
  size_t dimensions() const override { return store_.dimensions(); }
  std::string_view name() const override { return "vptree"; }

  /// Changing the metric invalidates the built tree (its ball
  /// decomposition was computed under the old distances); the next
  /// query rebuilds lazily under the new one. Re-setting the current
  /// metric is a strict no-op: the built tree survives and no lazy
  /// rebuild is queued (regression-tested; rebuild_count observes it).
  Status set_metric(Metric metric) override;

  /// Forces the lazy rebuild now, so subsequent searches run pure
  /// read-only tree code (the RCU wrapper calls this when publishing
  /// a base built on this backend).
  Status Freeze() override {
    EnsureBuilt();
    return Status::OK();
  }

  /// Whole-tree builds performed so far — the price of every deferred
  /// rebuild, observable so tests can pin down when one happened (and
  /// when one must not have: see the set_metric no-op contract).
  uint64_t rebuild_count() const {
    return rebuild_count_.load(std::memory_order_acquire);
  }

  /// Serializes the adapter (arena + built tree + epoch). Forces the
  /// lazy rebuild first so the snapshot preserves the tree structure.
  /// The metric itself rides in the snapshot tuning section
  /// (persist/index_snapshot.cc) and is handed back through `metric`
  /// on load — before the tree binds its distance oracle.
  void SaveTo(persist::ByteWriter* out) const;
  static Result<std::unique_ptr<VpTreeIndex>> LoadFrom(
      persist::ByteReader* in, Metric metric = Metric::kL2);

 private:
  void EnsureBuilt() const;
  const VpTree* built_tree() const;

  BackendOptions options_;
  PointStore store_;
  // The lazy rebuild makes queries mutate state, so concurrent
  // searches (safe on every other backend) must serialize the
  // check-and-build; afterwards the tree is read-only until the next
  // Insert. Mutations (Insert/BulkLoad/set_metric) also take the lock
  // to reset the tree — they are externally synchronized against
  // searches (SpatialIndex contract), but not against each other.
  mutable Mutex build_mu_;
  mutable std::optional<VpTree> tree_
      GUARDED_BY(build_mu_);  // Rebuilt when stale.
  mutable std::atomic<uint64_t> rebuild_count_{0};
};

/// Dynamic M-tree over Euclidean vectors. Supports incremental
/// insertion; removal is not supported.
class MTreeIndex : public SpatialIndex {
 public:
  MTreeIndex(size_t dimensions, BackendOptions options = {});

  // The M-tree's distance oracle captures `this`; pin the adapter.
  MTreeIndex(const MTreeIndex&) = delete;
  MTreeIndex& operator=(const MTreeIndex&) = delete;

  Status Insert(const std::vector<double>& coords, PointId id) override;
  Status Remove(const std::vector<double>& coords, PointId id) override;

  using SpatialIndex::KnnSearch;
  using SpatialIndex::RangeSearch;

  /// Budgeted searches (core/query.h): the budget is forwarded to the
  /// M-tree's best-first walker; `stats->truncated` reports
  /// approximate results.
  std::vector<Neighbor> KnnSearch(const std::vector<double>& query,
                                  size_t k, const SearchBudget& budget,
                                  SearchStats* stats = nullptr) const override;
  std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;
  size_t size() const override { return store_.size(); }
  size_t dimensions() const override { return store_.dimensions(); }
  std::string_view name() const override { return "mtree"; }

  /// The M-tree's routing radii are computed at insert time, so the
  /// metric cannot change once points are stored (FailedPrecondition);
  /// re-setting the current metric is a no-op.
  Status set_metric(Metric metric) override;

  /// Serializes the adapter (arena + tree + epoch); the loaded tree's
  /// distance oracle is re-bound to the loaded arena under `metric`
  /// (restored from the snapshot tuning section).
  void SaveTo(persist::ByteWriter* out) const;
  static Result<std::unique_ptr<MTreeIndex>> LoadFrom(
      persist::ByteReader* in, Metric metric = Metric::kL2);

 private:
  PointStore store_;
  std::unique_ptr<MTree> tree_;
};

/// Creates a backend of the requested kind over a `dimensions`-d space.
std::unique_ptr<SpatialIndex> MakeSpatialIndex(BackendKind kind,
                                               size_t dimensions,
                                               BackendOptions options = {});

/// Backend name without instantiating one (for bench series labels).
std::string_view BackendName(BackendKind kind);

}  // namespace semtree

#endif  // SEMTREE_CORE_BACKENDS_H_

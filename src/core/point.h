// Copyright 2026 The SemTree Authors
//
// Fundamental point types shared by every index backend. The hot paths
// of the system (KD-tree leaves, partition buckets, migration payloads)
// store coordinates in flat row-major arenas (see point_store.h) and
// pass them around as non-owning PointViews; the owning per-point
// KdPoint remains only as an API-boundary convenience type.

#ifndef SEMTREE_CORE_POINT_H_
#define SEMTREE_CORE_POINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace semtree {

/// Identifier carried by each indexed point (SemTree stores TripleIds).
using PointId = uint64_t;

/// Non-owning, trivially copyable view of one stored point: a pointer
/// into a flat coordinate arena plus the payload id. Valid as long as
/// the owning PointStore is alive (arena chunks never move).
struct PointView {
  const double* coords = nullptr;
  size_t dim = 0;
  PointId id = 0;

  double operator[](size_t i) const { return coords[i]; }
};

/// A point in the embedded space plus its payload id. Owning per-point
/// representation, used at API boundaries (bulk-load inputs, single
/// point RPCs); index internals use PointStore slots instead.
struct KdPoint {
  std::vector<double> coords;
  PointId id = 0;
};

/// One search hit; results are sorted by ascending distance, ties by id.
struct Neighbor {
  PointId id = 0;
  double distance = 0.0;

  bool operator==(const Neighbor& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// Canonical result ordering — ascending distance, ties by id — shared
/// by every backend so cross-backend results compare byte-for-byte.
/// Doubles as the max-heap predicate (worst candidate on top).
inline bool NeighborDistanceThenId(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

/// Work counters filled by the search procedures (for benches/tests).
/// `points_examined` counts distance computations (leaf points scanned
/// plus routing pivots probed) — the unit `SearchBudget` caps.
/// `truncated` is set when the search stopped short of proving its
/// result exact: a budget ran out, or epsilon-relaxed pruning skipped a
/// subtree the exact bound would have entered. Exact budgets never set
/// it.
struct SearchStats {
  size_t nodes_visited = 0;
  size_t leaves_visited = 0;
  size_t points_examined = 0;
  bool truncated = false;
  /// epoch() value of the index version this search actually ran
  /// against. 0 on the sequential backends (caller sees the live
  /// epoch); the RCU wrapper (core/versioned_index.h) reports the
  /// pinned version's epoch, which can trail the live one — the
  /// engine keys cache fills on it so a reader pinned to version V
  /// never publishes results under V+1's key.
  uint64_t version_epoch = 0;
};

}  // namespace semtree

#endif  // SEMTREE_CORE_POINT_H_

// Copyright 2026 The SemTree Authors
//
// Epoch-based reclamation for read-copy-update (RCU) data structures
// (DESIGN.md §11). Readers pin the global epoch through an EpochGuard
// before dereferencing a published pointer; writers publish a
// replacement, retire the old object tagged with the epoch at which it
// became unreachable, and physically reclaim it only once every reader
// that could still hold the old pointer has drained.
//
// The protocol (all epoch/slot/pointer operations are seq_cst, which
// keeps the safety argument a total-order case split):
//
//   reader                          writer (serialized externally)
//   ------                          ------
//   e = current_epoch()             publish new pointer
//   announce e in a slot (CAS)      r = Advance()        // retire epoch
//   p = load published pointer      retire(old, r)
//   ... use *p ...                  m = MinActiveEpoch()
//   release slot                    reclaim every retiree with epoch < m
//
// Why no retired object is freed under a live reader: consider reader
// R holding pointer p to object V retired at epoch r. In the seq_cst
// total order, R's slot announcement either precedes the writer's slot
// scan — then the writer observes R's epoch e; e was read from the
// global counter before the Advance() that produced r, so e <= r, the
// scan's minimum is <= r, and V (needing min > r) survives — or it
// follows the scan, in which case R's later pointer load also follows
// the writer's earlier publication of the replacement, so R never saw
// V in the first place. Announcing a slightly stale epoch (the counter
// advanced between the read and the CAS) only lowers the minimum:
// reclamation is delayed, never unsafe.
//
// EpochManager synchronizes readers against writers by itself; it does
// NOT serialize writers against each other — publication, Advance,
// Retire and reclaim belong under the owner's writer mutex (see
// core/versioned_index.h and the SemTree partition table for the two
// in-tree users).

#ifndef SEMTREE_CORE_EPOCH_H_
#define SEMTREE_CORE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <utility>

namespace semtree {

/// Reader registry plus the global epoch counter. Pin/Unpin are
/// wait-free while a slot is available and lock-free overall; they
/// never block on a writer, which is what keeps k-NN reads flat while
/// a writer sustains inserts (the ROADMAP item 3 target).
class EpochManager {
 public:
  /// Concurrent pinned readers supported; a Pin beyond this spins
  /// until a slot frees (readers hold slots only across one search).
  static constexpr size_t kMaxReaders = 64;

  /// Slot value meaning "no reader here"; also the MinActiveEpoch
  /// result when nothing is pinned (every retiree is reclaimable).
  static constexpr uint64_t kIdle = std::numeric_limits<uint64_t>::max();

  EpochManager() {
    for (std::atomic<uint64_t>& slot : slots_) slot.store(kIdle);
  }
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Claims a reader slot announcing the current epoch; returns the
  /// slot index for Unpin. Prefer the RAII EpochGuard.
  size_t Pin() {
    for (;;) {
      uint64_t epoch = global_.load(std::memory_order_seq_cst);
      for (size_t i = 0; i < kMaxReaders; ++i) {
        uint64_t idle = kIdle;
        if (slots_[i].compare_exchange_strong(
                idle, epoch, std::memory_order_seq_cst)) {
          return i;
        }
      }
      // All slots taken: > kMaxReaders concurrent searches. Re-read
      // the epoch and rescan; slots turn over per search, so this
      // resolves in bounded time without blocking any writer.
    }
  }

  void Unpin(size_t slot) {
    slots_[slot].store(kIdle, std::memory_order_seq_cst);
  }

  uint64_t current_epoch() const {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Advances the global epoch; returns the PRE-increment value — the
  /// epoch to tag a just-unpublished object with (readers announcing
  /// that value or earlier may still hold it).
  uint64_t Advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Smallest epoch announced by any pinned reader, or kIdle when no
  /// reader is pinned. A retiree tagged `r` is reclaimable iff
  /// r < MinActiveEpoch().
  uint64_t MinActiveEpoch() const {
    uint64_t min = kIdle;
    for (const std::atomic<uint64_t>& slot : slots_) {
      uint64_t e = slot.load(std::memory_order_seq_cst);
      if (e < min) min = e;
    }
    return min;
  }

  /// Pinned reader count (tests and introspection only; racy by
  /// nature).
  size_t ActiveReaders() const {
    size_t n = 0;
    for (const std::atomic<uint64_t>& slot : slots_) {
      if (slot.load(std::memory_order_seq_cst) != kIdle) ++n;
    }
    return n;
  }

 private:
  // Epoch 1 up: a retiree tagged with the pre-increment value is then
  // always < some future epoch, and 0 never collides with a live tag.
  std::atomic<uint64_t> global_{1};
  std::array<std::atomic<uint64_t>, kMaxReaders> slots_;
};

/// RAII reader pin. Hold one across every dereference of an
/// RCU-published pointer; destruction releases the slot.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager)
      : manager_(manager), slot_(manager.Pin()) {}
  ~EpochGuard() { manager_.Unpin(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& manager_;
  size_t slot_;
};

/// Limbo list of retired objects awaiting reclamation. Entries carry
/// the retire epoch, an opaque caller tag (VersionedIndex stores the
/// retired version's cache epoch so the engine can evict exactly the
/// drained versions' cache entries) and a deleter. NOT internally
/// synchronized: Retire/Reclaim belong under the owner's writer mutex,
/// like every other writer-side step of the protocol.
class RetireList {
 public:
  RetireList() = default;
  RetireList(const RetireList&) = delete;
  RetireList& operator=(const RetireList&) = delete;
  ~RetireList() { ReclaimAll(); }

  /// Queues `free` to run once every reader announcing an epoch
  /// <= `retire_epoch` drains. Retire epochs must be non-decreasing
  /// across calls (they come from one serialized Advance() stream).
  void Retire(uint64_t retire_epoch, uint64_t tag,
              std::function<void()> free) {
    entries_.push_back(Entry{retire_epoch, tag, std::move(free)});
  }

  /// Runs the deleter of every entry with retire_epoch < `min_active`
  /// (pass EpochManager::MinActiveEpoch(); kIdle reclaims everything).
  /// Returns the number reclaimed.
  size_t ReclaimBefore(uint64_t min_active) {
    size_t n = 0;
    while (!entries_.empty() &&
           entries_.front().retire_epoch < min_active) {
      entries_.front().free();
      entries_.pop_front();
      ++n;
    }
    return n;
  }

  /// Unconditional drain — destruction-time only, when the owner
  /// guarantees no reader can still be pinned.
  size_t ReclaimAll() {
    return ReclaimBefore(std::numeric_limits<uint64_t>::max());
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Tag of the oldest (front) retiree, or `fallback` when empty.
  uint64_t oldest_tag(uint64_t fallback) const {
    return entries_.empty() ? fallback : entries_.front().tag;
  }

 private:
  struct Entry {
    uint64_t retire_epoch;
    uint64_t tag;
    std::function<void()> free;
  };
  std::deque<Entry> entries_;
};

}  // namespace semtree

#endif  // SEMTREE_CORE_EPOCH_H_

// Copyright 2026 The SemTree Authors
//
// VersionedIndex: the RCU wrapper that makes any sequential backend
// safe for lock-free concurrent reads under one writer (DESIGN.md
// §11, ROADMAP item 3). Searches never take a lock: a reader pins the
// current epoch (core/epoch.h), loads the published Version pointer,
// and searches an immutable snapshot — an already-built base tree plus
// a bounded append-only delta log. Mutations serialize on one writer
// mutex, append to the delta (never touching published prefixes),
// publish a new Version atomically, and retire the old one; retired
// state is freed only after the last reader that could hold it
// drains. When a delta log fills, the writer merges: it rebuilds a
// fresh base tree from the live set, publishes it with an empty
// delta, and retires the old base/delta the same way.
//
// Snapshot anatomy — a published Version is a triple of borrowed
// pointers plus prefix lengths:
//
//     Version ──► base   (SpatialIndex, fully built, never mutated)
//             ──► delta  (three append-only logs, capacity-reserved)
//                 add_count / tomb_base_count / killed_count
//
// The logs are reserved to capacity at creation and merged before
// they fill, so push_back never reallocates: readers index the data()
// prefix their Version names while the writer constructs the next
// element in place — disjoint memory, no lock, TSan-clean.
//
// Remove resolves its target at write time, under the writer mutex,
// where the full picture is available: a base point gets a tombstone
// (id appended to tomb_base_ids; readers suppress base hits carrying
// a tombstoned id), a delta add gets its slot appended to
// killed_add_slots (readers skip those slots). Read-side filtering is
// therefore a prefix scan of small logs, never a search. Between
// merges a base tombstone suppresses every base hit with that id —
// ids are assumed to identify points, as everywhere else in the tree;
// the merge itself resolves by exact slot.
//
// Search semantics match the wrapped backend's SpatialIndex contract:
// results are true distances to stored points sorted (distance, id),
// budgets cap total distance computations across base + delta and
// only ever drop members, and `stats->version_epoch` reports the
// epoch() of the snapshot actually searched so the engine can key its
// result cache honestly (engine/query_engine.cc).

#ifndef SEMTREE_CORE_VERSIONED_INDEX_H_
#define SEMTREE_CORE_VERSIONED_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "core/backends.h"
#include "core/epoch.h"
#include "core/spatial_index.h"

namespace semtree {

/// RCU snapshot-on-mutate wrapper over a sequential backend.
///
/// Concurrency contract (the one exception to the SpatialIndex
/// baseline): KnnSearch/RangeSearch may run concurrently with
/// Insert/Remove/BulkLoad and with each other, from any threads,
/// without external locking — lock_free_reads() returns true.
/// Mutations are internally serialized on a writer mutex, so multiple
/// writer threads are safe too (they just queue). Configuration
/// setters (set_metric, set_split_policy, set_default_budget) remain
/// configuration-time, as on every backend.
class VersionedIndex : public SpatialIndex {
 public:
  struct Options {
    /// Backend the base trees are built on.
    BackendKind backend = BackendKind::kKdTree;

    /// Options forwarded to every base build (metric is overridden by
    /// the wrapper's current metric).
    BackendOptions backend_options;

    /// Delta-log capacity: a merge (base rebuild) triggers when a log
    /// would overflow it. Smaller = cheaper reads between merges but
    /// more frequent rebuilds.
    size_t merge_threshold = 256;
  };

  // Two constructors instead of one defaulted argument: a `= {}` or
  // `= Options()` default would need Options' member initializers
  // before the end of the enclosing class, which GCC rejects.
  explicit VersionedIndex(size_t dimensions)
      : VersionedIndex(dimensions, Options()) {}
  VersionedIndex(size_t dimensions, Options options);
  ~VersionedIndex() override;

  VersionedIndex(const VersionedIndex&) = delete;
  VersionedIndex& operator=(const VersionedIndex&) = delete;

  Status Insert(const std::vector<double>& coords, PointId id) override;
  Status Remove(const std::vector<double>& coords, PointId id) override;

  /// Rebuilds the base from the current live set plus `points` in one
  /// build and publishes it as a fresh version with an empty delta.
  Status BulkLoad(const std::vector<KdPoint>& points) override;

  using SpatialIndex::KnnSearch;
  using SpatialIndex::RangeSearch;

  std::vector<Neighbor> KnnSearch(const std::vector<double>& query,
                                  size_t k, const SearchBudget& budget,
                                  SearchStats* stats = nullptr) const override;
  std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;

  size_t size() const override {
    return live_count_.load(std::memory_order_acquire);
  }
  size_t dimensions() const override { return dims_; }
  std::string_view name() const override { return "versioned"; }

  /// Merges any pending delta into a fresh base so searches run pure
  /// tree code (also the fast path for a quiesced-equivalence check).
  Status Freeze() override;

  /// Rebuilds the base under the new metric (distances embedded in
  /// the old tree's structure are stale). No-op when unchanged.
  /// Configuration-time, like every backend's set_metric.
  Status set_metric(Metric metric) override;

  bool lock_free_reads() const override { return true; }

  /// epoch() of the oldest version a still-pinned reader could be
  /// searching: the oldest unreclaimed retiree's, or the live epoch
  /// when limbo is empty. Cache entries keyed below this are
  /// unreachable by any reader and safe to evict
  /// (ShardedResultCache::EvictEpochsBelow).
  uint64_t oldest_live_epoch() const override {
    return oldest_live_epoch_.load(std::memory_order_acquire);
  }

  // ---- Introspection (tests, benches) --------------------------------

  /// Explicit merge, identical to Freeze (test hook).
  Status Merge() { return Freeze(); }

  /// Retired versions/bases/deltas still awaiting reader drain.
  size_t pending_reclaims() const;

  /// Entries in the current delta log (adds, not net of kills).
  size_t delta_size() const;

  /// Base rebuilds performed so far (merges + metric changes + bulk
  /// loads).
  uint64_t merges() const {
    return merges_.load(std::memory_order_acquire);
  }

  /// Pinned-reader count right now (racy; tests only).
  size_t active_readers() const { return epochs_.ActiveReaders(); }

 private:
  /// Append-only mutation logs. Reserved to capacity at creation;
  /// merged before any push_back could reallocate, so published
  /// prefixes are immutable. Added coordinates live in one flat
  /// row-major arena (`add_coords`, add slot i at i * dims) rather
  /// than per-point vectors: the delta is rescanned by every search,
  /// and a contiguous arena turns that scan into a dense batched
  /// sweep instead of a cache miss per point.
  struct Delta {
    std::vector<PointId> add_ids;
    std::vector<double> add_coords;  ///< add_ids.size() * dims doubles.
    std::vector<PointId> tomb_base_ids;
    std::vector<uint32_t> killed_add_slots;
  };

  /// One immutable published snapshot. Borrows base/delta from the
  /// wrapper; the counts name the log prefixes this version may read.
  struct Version {
    const SpatialIndex* base = nullptr;
    const Delta* delta = nullptr;
    size_t add_count = 0;
    size_t tomb_base_count = 0;
    size_t killed_count = 0;
    /// SpatialIndex::epoch() as of this version's publication — the
    /// engine's cache key for results computed against it.
    uint64_t version_epoch = 0;
  };

  std::unique_ptr<Delta> MakeDelta() const;
  Status CheckPoint(const std::vector<double>& coords) const;

  /// Batched distance scan of `v`'s un-killed adds prefix, metering
  /// whatever distance budget the base search left over; calls
  /// emit(id, dist) per surviving add. When the version has no kills
  /// (the overwhelmingly common case) the scan runs in place over the
  /// adds log with no per-query allocation — this is the read hot
  /// path while a writer runs.
  template <typename Emit>
  void ScanDelta(const Version& v, const std::vector<double>& query,
                 const SearchBudget& budget, SearchStats* s,
                 Emit emit) const;

  /// Publishes a Version snapshotting current writer state, retires
  /// the previously published one (plus, on a rebuild, the base and
  /// delta it borrowed), and reclaims drained retirees.
  void PublishLocked(uint64_t version_epoch,
                     SpatialIndex* dead_base = nullptr,
                     Delta* dead_delta = nullptr) REQUIRES(write_mu_);

  /// Rebuilds the base from `points` (one BulkLoad + Freeze on a
  /// fresh backend), swaps it in with an empty delta, and publishes
  /// at `version_epoch`. Retires the old base and delta.
  Status RebuildLocked(std::vector<KdPoint> points,
                       uint64_t version_epoch) REQUIRES(write_mu_);

  /// Live points (base minus tombstones, plus un-killed adds).
  std::vector<KdPoint> LivePointsLocked() const REQUIRES(write_mu_);

  /// Merge iff a delta log is at capacity.
  Status MaybeMergeLocked() REQUIRES(write_mu_);

  const size_t dims_;
  Options options_;

  /// Serializes mutations; never taken by searches.
  mutable Mutex write_mu_;

  /// Reader registry + RCU epoch stream (distinct from the cache
  /// epoch SpatialIndex::epoch_); mutable because searches pin it.
  mutable EpochManager epochs_;

  /// The published snapshot readers load. seq_cst with the epoch
  /// protocol (core/epoch.h header comment).
  std::atomic<const Version*> current_;

  // Writer-side state. `base_points_` mirrors the base tree's
  // contents (the backends cannot enumerate themselves), and
  // `base_index_` maps id -> base_points_ slots so Remove resolves
  // without a search.
  std::unique_ptr<SpatialIndex> base_ GUARDED_BY(write_mu_);
  std::unique_ptr<Delta> delta_ GUARDED_BY(write_mu_);
  std::vector<KdPoint> base_points_ GUARDED_BY(write_mu_);
  std::unordered_multimap<PointId, size_t> base_index_
      GUARDED_BY(write_mu_);
  std::vector<uint8_t> base_removed_ GUARDED_BY(write_mu_);
  RetireList retired_ GUARDED_BY(write_mu_);

  std::atomic<size_t> live_count_{0};
  std::atomic<uint64_t> oldest_live_epoch_{0};
  std::atomic<uint64_t> merges_{0};
};

}  // namespace semtree

#endif  // SEMTREE_CORE_VERSIONED_INDEX_H_

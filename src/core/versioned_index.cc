// Copyright 2026 The SemTree Authors
//
// VersionedIndex implementation. See versioned_index.h for the
// snapshot anatomy and core/epoch.h for the reclamation protocol; the
// division of labor here is strict: everything under write_mu_ may
// touch writer state, the search paths touch only a pinned Version's
// immutable prefixes.

#include "core/versioned_index.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "core/kernels.h"

namespace semtree {

namespace {

/// True when `id` appears in the tombstone prefix. The log is bounded
/// by the merge threshold (a few hundred), so a linear scan per hit
/// beats building a hash set per query.
bool IdTombstoned(const PointId* tombs, size_t count, PointId id) {
  for (size_t i = 0; i < count; ++i) {
    if (tombs[i] == id) return true;
  }
  return false;
}

}  // namespace

VersionedIndex::VersionedIndex(size_t dimensions, Options options)
    : dims_(dimensions), options_(options) {
  if (options_.merge_threshold == 0) options_.merge_threshold = 1;
  // Adopt the backend options' tuning as the wrapper's own, so
  // metric()/split_policy() answer consistently with what base builds
  // use (the base Status is always OK here).
  (void)SpatialIndex::set_metric(options_.backend_options.metric);
  (void)SpatialIndex::set_split_policy(options_.backend_options.split_policy);
  MutexLock lock(write_mu_);
  base_ = MakeSpatialIndex(options_.backend, dims_, options_.backend_options);
  delta_ = MakeDelta();
  current_.store(new Version{base_.get(), delta_.get(), 0, 0, 0, epoch()},
                 std::memory_order_seq_cst);
  oldest_live_epoch_.store(epoch(), std::memory_order_release);
}

VersionedIndex::~VersionedIndex() {
  // No reader may be pinned at destruction (standard object lifetime
  // contract); limbo drains unconditionally via RetireList's dtor.
  delete current_.load(std::memory_order_seq_cst);
}

std::unique_ptr<VersionedIndex::Delta> VersionedIndex::MakeDelta() const {
  auto d = std::make_unique<Delta>();
  // Full capacity up front: push_back must never reallocate under a
  // reader (versioned_index.h, "Snapshot anatomy").
  d->add_ids.reserve(options_.merge_threshold);
  d->add_coords.reserve(options_.merge_threshold * dims_);
  d->tomb_base_ids.reserve(options_.merge_threshold);
  d->killed_add_slots.reserve(options_.merge_threshold);
  return d;
}

Status VersionedIndex::CheckPoint(const std::vector<double>& coords) const {
  if (coords.size() != dims_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  return CheckFiniteCoords(coords);
}

void VersionedIndex::PublishLocked(uint64_t version_epoch,
                                   SpatialIndex* dead_base,
                                   Delta* dead_delta) {
  auto* v = new Version{base_.get(),
                        delta_.get(),
                        delta_->add_ids.size(),
                        delta_->tomb_base_ids.size(),
                        delta_->killed_add_slots.size(),
                        version_epoch};
  const Version* old = current_.exchange(v, std::memory_order_seq_cst);
  // One retire epoch covers the whole cohort: the old Version and, on
  // a rebuild, the base/delta only it (and earlier versions, already
  // in limbo) could reference.
  const uint64_t r = epochs_.Advance();
  const uint64_t tag = old->version_epoch;
  retired_.Retire(r, tag, [old] { delete old; });
  if (dead_base != nullptr) {
    retired_.Retire(r, tag, [dead_base] { delete dead_base; });
  }
  if (dead_delta != nullptr) {
    retired_.Retire(r, tag, [dead_delta] { delete dead_delta; });
  }
  retired_.ReclaimBefore(epochs_.MinActiveEpoch());
  oldest_live_epoch_.store(retired_.oldest_tag(version_epoch),
                           std::memory_order_release);
}

std::vector<KdPoint> VersionedIndex::LivePointsLocked() const {
  std::vector<KdPoint> out;
  out.reserve(live_count_.load(std::memory_order_acquire));
  for (size_t i = 0; i < base_points_.size(); ++i) {
    if (!base_removed_[i]) out.push_back(base_points_[i]);
  }
  std::vector<uint8_t> killed(delta_->add_ids.size(), 0);
  for (uint32_t slot : delta_->killed_add_slots) killed[slot] = 1;
  for (size_t i = 0; i < delta_->add_ids.size(); ++i) {
    if (killed[i]) continue;
    const double* row = delta_->add_coords.data() + i * dims_;
    out.push_back(
        KdPoint{std::vector<double>(row, row + dims_), delta_->add_ids[i]});
  }
  return out;
}

Status VersionedIndex::RebuildLocked(std::vector<KdPoint> points,
                                     uint64_t version_epoch) {
  BackendOptions bo = options_.backend_options;
  bo.metric = metric();
  bo.split_policy = split_policy();
  std::unique_ptr<SpatialIndex> next =
      MakeSpatialIndex(options_.backend, dims_, bo);
  SEMTREE_RETURN_NOT_OK(next->BulkLoad(points));
  // Force any deferred build now, on the writer thread, so readers of
  // the new version run pure search code (VP-tree lazy rebuild).
  SEMTREE_RETURN_NOT_OK(next->Freeze());

  SpatialIndex* old_base = base_.release();
  Delta* old_delta = delta_.release();
  base_ = std::move(next);
  delta_ = MakeDelta();
  base_points_ = std::move(points);
  base_index_.clear();
  for (size_t i = 0; i < base_points_.size(); ++i) {
    base_index_.emplace(base_points_[i].id, i);
  }
  base_removed_.assign(base_points_.size(), 0);
  PublishLocked(version_epoch, old_base, old_delta);
  merges_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status VersionedIndex::MaybeMergeLocked() {
  if (delta_->add_ids.size() < options_.merge_threshold &&
      delta_->tomb_base_ids.size() < options_.merge_threshold &&
      delta_->killed_add_slots.size() < options_.merge_threshold) {
    return Status::OK();
  }
  return RebuildLocked(LivePointsLocked(), epoch());
}

Status VersionedIndex::Insert(const std::vector<double>& coords,
                              PointId id) {
  SEMTREE_RETURN_NOT_OK(CheckPoint(coords));
  MutexLock lock(write_mu_);
  SEMTREE_RETURN_NOT_OK(MaybeMergeLocked());
  delta_->add_ids.push_back(id);
  delta_->add_coords.insert(delta_->add_coords.end(), coords.begin(),
                            coords.end());
  live_count_.fetch_add(1, std::memory_order_acq_rel);
  BumpEpoch();
  PublishLocked(epoch());
  return Status::OK();
}

Status VersionedIndex::Remove(const std::vector<double>& coords,
                              PointId id) {
  SEMTREE_RETURN_NOT_OK(CheckPoint(coords));
  MutexLock lock(write_mu_);
  SEMTREE_RETURN_NOT_OK(MaybeMergeLocked());
  // A delta add first, newest match wins (it shadows older state);
  // killing it is a slot append, invisible to pinned readers.
  std::vector<uint8_t> killed(delta_->add_ids.size(), 0);
  for (uint32_t slot : delta_->killed_add_slots) killed[slot] = 1;
  for (size_t i = delta_->add_ids.size(); i-- > 0;) {
    const double* row = delta_->add_coords.data() + i * dims_;
    if (delta_->add_ids[i] == id && !killed[i] &&
        std::equal(coords.begin(), coords.end(), row)) {
      delta_->killed_add_slots.push_back(static_cast<uint32_t>(i));
      live_count_.fetch_sub(1, std::memory_order_acq_rel);
      BumpEpoch();
      PublishLocked(epoch());
      return Status::OK();
    }
  }
  // Then the base: flag the slot for the next merge and tombstone the
  // id for readers.
  auto range = base_index_.equal_range(id);
  for (auto it = range.first; it != range.second; ++it) {
    const size_t slot = it->second;
    if (!base_removed_[slot] && base_points_[slot].coords == coords) {
      base_removed_[slot] = 1;
      delta_->tomb_base_ids.push_back(id);
      live_count_.fetch_sub(1, std::memory_order_acq_rel);
      BumpEpoch();
      PublishLocked(epoch());
      return Status::OK();
    }
  }
  return Status::NotFound("point not in index");
}

Status VersionedIndex::BulkLoad(const std::vector<KdPoint>& points) {
  for (const KdPoint& p : points) {
    SEMTREE_RETURN_NOT_OK(CheckPoint(p.coords));
  }
  if (points.empty()) return Status::OK();
  MutexLock lock(write_mu_);
  std::vector<KdPoint> all = LivePointsLocked();
  all.insert(all.end(), points.begin(), points.end());
  live_count_.store(all.size(), std::memory_order_release);
  BumpEpoch();
  return RebuildLocked(std::move(all), epoch());
}

Status VersionedIndex::Freeze() {
  MutexLock lock(write_mu_);
  if (delta_->add_ids.empty() && delta_->tomb_base_ids.empty() &&
      delta_->killed_add_slots.empty()) {
    return Status::OK();
  }
  return RebuildLocked(LivePointsLocked(), epoch());
}

Status VersionedIndex::set_metric(Metric metric) {
  MutexLock lock(write_mu_);
  if (metric == this->metric()) return Status::OK();
  SEMTREE_RETURN_NOT_OK(SpatialIndex::set_metric(metric));
  // Future base builds (including the one right now) run under the
  // new metric; the M-tree backend accepts it because rebuilds start
  // from an empty tree constructed with it.
  options_.backend_options.metric = metric;
  return RebuildLocked(LivePointsLocked(), epoch());
}

size_t VersionedIndex::pending_reclaims() const {
  MutexLock lock(write_mu_);
  return retired_.size();
}

size_t VersionedIndex::delta_size() const {
  MutexLock lock(write_mu_);
  return delta_->add_ids.size();
}

template <typename Emit>
void VersionedIndex::ScanDelta(const Version& v,
                               const std::vector<double>& query,
                               const SearchBudget& budget, SearchStats* s,
                               Emit emit) const {
  if (v.add_count == 0) return;
  const PointId* add_ids = v.delta->add_ids.data();
  const double* add_coords = v.delta->add_coords.data();
  auto capped = [&](size_t n) {
    if (budget.max_distance_computations > 0) {
      const size_t cap = budget.max_distance_computations;
      const size_t left =
          cap > s->points_examined ? cap - s->points_examined : 0;
      if (n > left) {
        s->truncated = true;
        return left;
      }
    }
    return n;
  };
  if (v.killed_count == 0) {
    const size_t scan = capped(v.add_count);
    BatchScan(
        metric(), query.data(), dims_, scan,
        [&](size_t i) { return add_coords + i * dims_; },
        [&](size_t i, double dist) { emit(add_ids[i], dist); });
    s->points_examined += scan;
    return;
  }
  // Kills present: compact the live slots first so the batch scan
  // stays dense.
  std::vector<uint8_t> killed(v.add_count, 0);
  const uint32_t* ks = v.delta->killed_add_slots.data();
  for (size_t i = 0; i < v.killed_count; ++i) {
    if (ks[i] < v.add_count) killed[ks[i]] = 1;
  }
  std::vector<uint32_t> live;
  live.reserve(v.add_count);
  for (size_t slot = 0; slot < v.add_count; ++slot) {
    if (!killed[slot]) live.push_back(static_cast<uint32_t>(slot));
  }
  const size_t scan = capped(live.size());
  BatchScan(
      metric(), query.data(), dims_, scan,
      [&](size_t i) { return add_coords + live[i] * size_t{dims_}; },
      [&](size_t i, double dist) { emit(add_ids[live[i]], dist); });
  s->points_examined += scan;
}

std::vector<Neighbor> VersionedIndex::KnnSearch(
    const std::vector<double>& query, size_t k, const SearchBudget& budget,
    SearchStats* stats) const {
  SearchStats local;
  SearchStats* s = stats != nullptr ? stats : &local;
  if (k == 0 || query.size() != dims_ || !AllFinite(query)) return {};

  EpochGuard guard(epochs_);
  const Version* v = current_.load(std::memory_order_seq_cst);
  s->version_epoch = v->version_epoch;

  // Base search, optimistic: fetch exactly k first — in the common
  // case none of the k nearest is tombstoned and the base does only
  // the work a plain k-NN would. Only when suppression starves the
  // result below k while the base still had more candidates (it
  // returned a full k) do we pay the over-fetched pass, whose
  // k + tomb_base_count bound guarantees k live survivors whenever
  // the base holds that many. Both passes' traversal costs are
  // reported — the work really happened — so the rare fallback can
  // exceed a distance budget; it keeps `truncated` honest instead.
  const PointId* tombs = v->delta->tomb_base_ids.data();
  auto suppress = [&](std::vector<Neighbor>* hits) {
    if (v->tomb_base_count == 0) return;
    hits->erase(std::remove_if(hits->begin(), hits->end(),
                               [&](const Neighbor& n) {
                                 return IdTombstoned(
                                     tombs, v->tomb_base_count, n.id);
                               }),
                hits->end());
  };
  auto base_knn = [&](size_t fetch) {
    SearchStats base_stats;
    std::vector<Neighbor> hits =
        v->base->KnnSearch(query, fetch, budget, &base_stats);
    s->nodes_visited += base_stats.nodes_visited;
    s->leaves_visited += base_stats.leaves_visited;
    s->points_examined += base_stats.points_examined;
    s->truncated |= base_stats.truncated;
    return hits;
  };
  std::vector<Neighbor> hits = base_knn(k);
  const bool base_exhausted = hits.size() < k;
  suppress(&hits);
  if (hits.size() < k && !base_exhausted && v->tomb_base_count > 0) {
    hits = base_knn(k + v->tomb_base_count);
    suppress(&hits);
  }

  // Delta scan: the un-killed adds prefix, batched, under whatever
  // distance budget the base left over. `hits` is kept bounded at k
  // as a max-heap — appending every delta point and sorting the union
  // would make per-query work (allocation and sort, not distances)
  // grow with the delta, which is exactly the read-side cost this
  // index exists to avoid.
  if (hits.size() > k) hits.resize(k);  // Over-fetched fallback pass.
  std::make_heap(hits.begin(), hits.end(), NeighborDistanceThenId);
  ScanDelta(*v, query, budget, s,
            [&](PointId id, double dist) {
              const Neighbor n{id, dist};
              if (hits.size() < k) {
                hits.push_back(n);
                std::push_heap(hits.begin(), hits.end(),
                               NeighborDistanceThenId);
              } else if (NeighborDistanceThenId(n, hits.front())) {
                std::pop_heap(hits.begin(), hits.end(),
                              NeighborDistanceThenId);
                hits.back() = n;
                std::push_heap(hits.begin(), hits.end(),
                               NeighborDistanceThenId);
              }
            });

  std::sort_heap(hits.begin(), hits.end(), NeighborDistanceThenId);
  return hits;
}

std::vector<Neighbor> VersionedIndex::RangeSearch(
    const std::vector<double>& query, double radius,
    const SearchBudget& budget, SearchStats* stats) const {
  SearchStats local;
  SearchStats* s = stats != nullptr ? stats : &local;
  if (query.size() != dims_ || !AllFinite(query) || radius < 0.0) return {};

  EpochGuard guard(epochs_);
  const Version* v = current_.load(std::memory_order_seq_cst);
  s->version_epoch = v->version_epoch;

  SearchStats base_stats;
  std::vector<Neighbor> hits =
      v->base->RangeSearch(query, radius, budget, &base_stats);
  s->nodes_visited += base_stats.nodes_visited;
  s->leaves_visited += base_stats.leaves_visited;
  s->points_examined += base_stats.points_examined;
  s->truncated |= base_stats.truncated;
  if (v->tomb_base_count > 0) {
    const PointId* tombs = v->delta->tomb_base_ids.data();
    hits.erase(std::remove_if(hits.begin(), hits.end(),
                              [&](const Neighbor& n) {
                                return IdTombstoned(
                                    tombs, v->tomb_base_count, n.id);
                              }),
               hits.end());
  }

  ScanDelta(*v, query, budget, s,
            [&](PointId id, double dist) {
              if (dist <= radius) hits.push_back(Neighbor{id, dist});
            });

  std::sort(hits.begin(), hits.end(), NeighborDistanceThenId);
  return hits;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// SpatialQuery: one element of a mixed query batch. The QueryEngine
// (engine/query_engine.h) and the coalesced distributed batch protocol
// (SemTree::BatchSearch) both consume vectors of these, so the type
// lives in core/ below either consumer. A query is either k-NN
// (`k` is meaningful) or range (`radius` is meaningful); results follow
// the canonical (distance, id) ordering of core/point.h either way.
//
// SearchBudget is the approximate-search contract (DESIGN.md §6): a
// per-query cap on search work plus an epsilon slack on the pruning
// bound. The default budget is exact — every search without an explicit
// budget behaves as if the subsystem did not exist.

#ifndef SEMTREE_CORE_QUERY_H_
#define SEMTREE_CORE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace semtree {

enum class QueryType : uint8_t {
  kKnn = 0,
  kRange = 1,
};

/// Work/precision budget of one search (DESIGN.md §6).
///
/// Three independent knobs, all neutral by default:
///
///  * `max_distance_computations` — hard cap on distance evaluations
///    (leaf points scanned + routing pivots probed; the search's
///    `SearchStats::points_examined`). 0 means unlimited.
///  * `max_nodes_visited` — hard cap on tree nodes entered
///    (`SearchStats::nodes_visited`). 0 means unlimited.
///  * `epsilon` — relative slack on the pruning bound: a subtree is
///    skipped unless it could contain a point closer than
///    `best/(1+epsilon)` (k-NN) or `radius/(1+epsilon)` (range), the
///    classic (1+ε)-approximate-nearest-neighbor criterion. 0 means
///    textbook exact pruning. Negative (and NaN) values are clamped
///    to exact by the raw backend surface (pruning_scale), but
///    QueryEngine::Run rejects them up front with InvalidArgument —
///    pass 0 to mean exact.
///
/// Results under any budget are always *true* distances to *stored*
/// points, sorted canonically — a budget can only make the result set
/// miss far-flung members (recall < 1), never report a wrong distance
/// (precision stays 1). A search that stopped short of proving
/// exactness reports `SearchStats::truncated`.
struct SearchBudget {
  size_t max_distance_computations = 0;  ///< 0 = unlimited.
  size_t max_nodes_visited = 0;          ///< 0 = unlimited.
  double epsilon = 0.0;                  ///< 0 = exact pruning.

  /// The default budget: unlimited work, exact pruning.
  static SearchBudget Exact() { return SearchBudget{}; }

  /// Budget capping only distance computations.
  static SearchBudget MaxDistances(size_t n) {
    SearchBudget b;
    b.max_distance_computations = n;
    return b;
  }

  /// Budget capping only nodes visited.
  static SearchBudget MaxNodes(size_t n) {
    SearchBudget b;
    b.max_nodes_visited = n;
    return b;
  }

  /// Budget relaxing only the pruning bound by (1+eps).
  static SearchBudget Epsilon(double eps) {
    SearchBudget b;
    b.epsilon = eps;
    return b;
  }

  /// True when every knob is neutral: a search under this budget is
  /// guaranteed byte-identical to one issued without any budget.
  bool exact() const {
    return max_distance_computations == 0 && max_nodes_visited == 0 &&
           !(epsilon > 0.0);
  }

  /// The factor pruning limits shrink by: 1/(1+epsilon), clamping
  /// negative (and NaN) epsilon to exact.
  double pruning_scale() const {
    return epsilon > 0.0 ? 1.0 / (1.0 + epsilon) : 1.0;
  }

  bool operator==(const SearchBudget& o) const {
    return max_distance_computations == o.max_distance_computations &&
           max_nodes_visited == o.max_nodes_visited &&
           epsilon == o.epsilon;
  }
};

/// One k-NN or range query over the embedded space.
struct SpatialQuery {
  QueryType type = QueryType::kKnn;
  std::vector<double> coords;
  size_t k = 0;         ///< Result size bound (k-NN only).
  double radius = 0.0;  ///< Inclusive distance bound (range only).
  SearchBudget budget;  ///< Approximation budget; exact by default.

  static SpatialQuery Knn(std::vector<double> coords, size_t k,
                          SearchBudget budget = {}) {
    SpatialQuery q;
    q.type = QueryType::kKnn;
    q.coords = std::move(coords);
    q.k = k;
    q.budget = budget;
    return q;
  }

  static SpatialQuery Range(std::vector<double> coords, double radius,
                            SearchBudget budget = {}) {
    SpatialQuery q;
    q.type = QueryType::kRange;
    q.coords = std::move(coords);
    q.radius = radius;
    q.budget = budget;
    return q;
  }
};

}  // namespace semtree

#endif  // SEMTREE_CORE_QUERY_H_

// Copyright 2026 The SemTree Authors
//
// SpatialQuery: one element of a mixed query batch. The QueryEngine
// (engine/query_engine.h) and the coalesced distributed batch protocol
// (SemTree::BatchSearch) both consume vectors of these, so the type
// lives in core/ below either consumer. A query is either k-NN
// (`k` is meaningful) or range (`radius` is meaningful); results follow
// the canonical (distance, id) ordering of core/point.h either way.

#ifndef SEMTREE_CORE_QUERY_H_
#define SEMTREE_CORE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace semtree {

enum class QueryType : uint8_t {
  kKnn = 0,
  kRange = 1,
};

/// One k-NN or range query over the embedded space.
struct SpatialQuery {
  QueryType type = QueryType::kKnn;
  std::vector<double> coords;
  size_t k = 0;         ///< Result size bound (k-NN only).
  double radius = 0.0;  ///< Inclusive distance bound (range only).

  static SpatialQuery Knn(std::vector<double> coords, size_t k) {
    SpatialQuery q;
    q.type = QueryType::kKnn;
    q.coords = std::move(coords);
    q.k = k;
    return q;
  }

  static SpatialQuery Range(std::vector<double> coords, double radius) {
    SpatialQuery q;
    q.type = QueryType::kRange;
    q.coords = std::move(coords);
    q.radius = radius;
    return q;
  }
};

}  // namespace semtree

#endif  // SEMTREE_CORE_QUERY_H_

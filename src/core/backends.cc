// Copyright 2026 The SemTree Authors

#include "core/backends.h"

#include <algorithm>

#include "core/kernels.h"
#include "kdtree/kdtree.h"
#include "kdtree/linear_scan.h"
#include "persist/snapshot.h"

namespace semtree {

namespace {

Status CheckInsertable(const std::vector<double>& coords, size_t want) {
  if (coords.size() != want) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  return CheckFiniteCoords(coords);
}

// The metric trees report object indices (store slots); translate them
// back to the PointIds the SpatialIndex contract promises, and restore
// the canonical ordering (slot-order ties may differ from id-order).
std::vector<Neighbor> SlotsToIds(const PointStore& store,
                                 std::vector<Neighbor> hits) {
  for (Neighbor& n : hits) {
    n.id = store.IdAt(PointStore::Slot(n.id));
  }
  std::sort(hits.begin(), hits.end(), NeighborDistanceThenId);
  return hits;
}

// Distance from a query vector to a stored object under the adapter's
// metric, as the metric trees' lazy query oracle. The cosine path
// hoists the query's own norm out of the per-object calls (one O(d)
// pass per search instead of per distance); CosineChordDistance is
// bit-identical to MetricDistance(kCosine, ...).
QueryDistanceFn QueryOracle(Metric metric, const PointStore& store,
                            const std::vector<double>& query) {
  if (metric == Metric::kCosine) {
    double query_norm2 = SquaredNorm(query.data(), query.size());
    return [&store, &query, query_norm2](size_t obj) {
      return CosineChordDistance(query.data(), query_norm2,
                                 store.CoordsAt(PointStore::Slot(obj)),
                                 store.dimensions());
    };
  }
  return [metric, &store, &query](size_t obj) {
    return MetricDistance(metric, query.data(),
                          store.CoordsAt(PointStore::Slot(obj)),
                          store.dimensions());
  };
}

}  // namespace

// --------------------------------------------------------------------
// VpTreeIndex

VpTreeIndex::VpTreeIndex(size_t dimensions, BackendOptions options)
    : options_(options), store_(dimensions) {
  (void)SpatialIndex::set_metric(options.metric);
  (void)SpatialIndex::set_split_policy(options.split_policy);
}

Status VpTreeIndex::Insert(const std::vector<double>& coords, PointId id) {
  SEMTREE_RETURN_NOT_OK(CheckInsertable(coords, store_.dimensions()));
  store_.Append(coords, id);
  {
    // Mutations are externally synchronized against searches, but two
    // concurrent Inserts still need the reset ordered against a
    // EnsureBuilt the other may have started.
    MutexLock lock(build_mu_);
    tree_.reset();  // Static index: rebuild lazily on the next query.
  }
  BumpEpoch();
  return Status::OK();
}

Status VpTreeIndex::Remove(const std::vector<double>&, PointId) {
  return Status::NotSupported("VP-tree does not support removal");
}

Status VpTreeIndex::BulkLoad(const std::vector<KdPoint>& points) {
  if (points.empty()) return Status::OK();
  // Validate everything first so a bad point cannot leave a partial
  // batch appended.
  for (const KdPoint& p : points) {
    SEMTREE_RETURN_NOT_OK(CheckInsertable(p.coords, store_.dimensions()));
  }
  store_.Reserve(points.size());
  for (const KdPoint& p : points) store_.Append(p.coords, p.id);
  {
    MutexLock lock(build_mu_);
    tree_.reset();  // One lazy whole-tree rebuild on the next query.
  }
  BumpEpoch();
  return Status::OK();
}

Status VpTreeIndex::set_metric(Metric metric) {
  // Re-setting the current metric must not queue a rebuild: the ball
  // decomposition is already correct, and the snapshot loader (and
  // any config replay) re-applies the persisted metric on every load.
  if (metric == this->metric()) return Status::OK();
  MutexLock lock(build_mu_);
  // The ball decomposition is metric-dependent; drop any built tree
  // and rebuild lazily under the new distances on the next query.
  tree_.reset();
  options_.metric = metric;  // Keep the stored options in sync.
  return SpatialIndex::set_metric(metric);
}

// Returns the built tree, or null when the index is empty. The caller
// dereferences the pointer *outside* the lock; that is sound because
// searches only race other searches (the SpatialIndex contract makes
// mutations externally synchronized), and every search path builds
// first — once EnsureBuilt returns, the tree is read-only until a
// mutation the caller is already ordered against.
const VpTree* VpTreeIndex::built_tree() const {
  MutexLock lock(build_mu_);
  return tree_.has_value() ? &*tree_ : nullptr;
}

void VpTreeIndex::EnsureBuilt() const {
  MutexLock lock(build_mu_);
  if (tree_.has_value() || store_.size() == 0) return;
  VpTreeOptions vopts;
  vopts.bucket_size = options_.bucket_size;
  vopts.seed = options_.seed;
  // The oracle below is pure reads over the arena, so parallel builds
  // are safe; the built tree is identical either way.
  vopts.build_threads = options_.build_threads;
  const PointStore& store = store_;
  size_t dim = store.dimensions();
  Metric m = metric();
  auto built = VpTree::Build(
      store.size(),
      [&store, dim, m](size_t a, size_t b) {
        return MetricDistance(m, store.CoordsAt(PointStore::Slot(a)),
                              store.CoordsAt(PointStore::Slot(b)), dim);
      },
      vopts);
  // Build only fails on n == 0 or a null oracle; neither happens here.
  tree_.emplace(std::move(*built));
  rebuild_count_.fetch_add(1, std::memory_order_acq_rel);
}

std::vector<Neighbor> VpTreeIndex::KnnSearch(
    const std::vector<double>& query, size_t k, const SearchBudget& budget,
    SearchStats* stats) const {
  if (query.size() != store_.dimensions() || !AllFinite(query)) return {};
  EnsureBuilt();
  const VpTree* tree = built_tree();
  if (tree == nullptr) return {};
  return SlotsToIds(store_,
                    tree->KnnSearch(QueryOracle(metric(), store_, query),
                                    k, budget, stats));
}

std::vector<Neighbor> VpTreeIndex::RangeSearch(
    const std::vector<double>& query, double radius,
    const SearchBudget& budget, SearchStats* stats) const {
  // !(radius >= 0) also rejects a NaN radius.
  if (query.size() != store_.dimensions() || !AllFinite(query) ||
      !(radius >= 0.0)) {
    return {};
  }
  EnsureBuilt();
  const VpTree* tree = built_tree();
  if (tree == nullptr) return {};
  return SlotsToIds(
      store_, tree->RangeSearch(QueryOracle(metric(), store_, query),
                                radius, budget, stats));
}

void VpTreeIndex::SaveTo(persist::ByteWriter* out) const {
  EnsureBuilt();  // Snapshot the structure, not a pending rebuild.
  MutexLock lock(build_mu_);
  out->PutU64(options_.bucket_size);
  out->PutU64(options_.seed);
  out->PutU64(epoch());
  persist::WritePointStore(store_, out);
  out->PutU8(tree_.has_value() ? 1 : 0);
  if (tree_.has_value()) tree_->SaveTo(out);
}

Result<std::unique_ptr<VpTreeIndex>> VpTreeIndex::LoadFrom(
    persist::ByteReader* in, Metric metric) {
  BackendOptions options;
  options.metric = metric;
  SEMTREE_ASSIGN_OR_RETURN(options.bucket_size, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(options.seed, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t epoch, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(PointStore store, persist::ReadPointStore(in));
  auto index =
      std::make_unique<VpTreeIndex>(store.dimensions(), options);
  index->store_ = std::move(store);
  SEMTREE_ASSIGN_OR_RETURN(uint8_t has_tree, in->U8());
  if (has_tree != 0) {
    SEMTREE_ASSIGN_OR_RETURN(VpTree tree, VpTree::LoadFrom(in));
    if (tree.size() != index->store_.size()) {
      return Status::Corruption("vp-tree size disagrees with arena");
    }
    // The index is still private to this function; the lock just keeps
    // the guarded write visible to the analysis (and to whichever
    // thread the caller publishes the index to).
    MutexLock lock(index->build_mu_);
    index->tree_.emplace(std::move(tree));
  } else if (index->store_.size() != 0) {
    return Status::Corruption("vp-tree snapshot missing its tree");
  }
  index->RestoreEpoch(epoch);
  return index;
}

// --------------------------------------------------------------------
// MTreeIndex

MTreeIndex::MTreeIndex(size_t dimensions, BackendOptions options)
    : store_(dimensions) {
  (void)SpatialIndex::set_metric(options.metric);
  MTreeOptions mopts;
  mopts.node_capacity = options.bucket_size;
  mopts.seed = options.seed;
  // The oracle reads the adapter's metric at call time (the adapter is
  // pinned — non-copyable — so `this` stays valid), which lets the
  // snapshot loader bind the oracle before the persisted metric is
  // restored.
  auto tree = MTree::Create(
      [this](size_t a, size_t b) {
        return MetricDistance(metric(),
                              store_.CoordsAt(PointStore::Slot(a)),
                              store_.CoordsAt(PointStore::Slot(b)),
                              store_.dimensions());
      },
      mopts);
  tree_ = std::make_unique<MTree>(std::move(*tree));
}

Status MTreeIndex::Insert(const std::vector<double>& coords, PointId id) {
  SEMTREE_RETURN_NOT_OK(CheckInsertable(coords, store_.dimensions()));
  PointStore::Slot slot = store_.Append(coords, id);
  SEMTREE_RETURN_NOT_OK(tree_->Insert(slot));
  BumpEpoch();
  return Status::OK();
}

Status MTreeIndex::Remove(const std::vector<double>&, PointId) {
  return Status::NotSupported("M-tree does not support removal");
}

Status MTreeIndex::set_metric(Metric metric) {
  if (metric == this->metric()) return Status::OK();
  if (store_.size() != 0) {
    return Status::FailedPrecondition(
        "M-tree routing radii were computed under the current metric; "
        "set the metric before inserting points");
  }
  return SpatialIndex::set_metric(metric);
}

std::vector<Neighbor> MTreeIndex::KnnSearch(
    const std::vector<double>& query, size_t k, const SearchBudget& budget,
    SearchStats* stats) const {
  if (query.size() != store_.dimensions() || !AllFinite(query)) return {};
  return SlotsToIds(store_,
                    tree_->KnnSearch(QueryOracle(metric(), store_, query),
                                     k, budget, stats));
}

std::vector<Neighbor> MTreeIndex::RangeSearch(
    const std::vector<double>& query, double radius,
    const SearchBudget& budget, SearchStats* stats) const {
  // !(radius >= 0) also rejects a NaN radius.
  if (query.size() != store_.dimensions() || !AllFinite(query) ||
      !(radius >= 0.0)) {
    return {};
  }
  return SlotsToIds(
      store_, tree_->RangeSearch(QueryOracle(metric(), store_, query),
                                 radius, budget, stats));
}

void MTreeIndex::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(epoch());
  persist::WritePointStore(store_, out);
  tree_->SaveTo(out);
}

Result<std::unique_ptr<MTreeIndex>> MTreeIndex::LoadFrom(
    persist::ByteReader* in, Metric metric) {
  SEMTREE_ASSIGN_OR_RETURN(uint64_t epoch, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(PointStore loaded, persist::ReadPointStore(in));
  BackendOptions options;
  options.metric = metric;
  auto index = std::make_unique<MTreeIndex>(loaded.dimensions(), options);
  index->store_ = std::move(loaded);
  // Re-bind the distance oracle to the loaded arena (the adapter is
  // pinned, so the captured pointer stays valid) under the restored
  // metric.
  MTreeIndex* self = index.get();
  SEMTREE_ASSIGN_OR_RETURN(
      MTree tree,
      MTree::LoadFrom(
          [self](size_t a, size_t b) {
            return MetricDistance(
                self->metric(),
                self->store_.CoordsAt(PointStore::Slot(a)),
                self->store_.CoordsAt(PointStore::Slot(b)),
                self->store_.dimensions());
          },
          index->store_.slot_count(), in));
  if (tree.size() != index->store_.size()) {
    return Status::Corruption("m-tree size disagrees with arena");
  }
  index->tree_ = std::make_unique<MTree>(std::move(tree));
  index->RestoreEpoch(epoch);
  return index;
}

// --------------------------------------------------------------------
// Factory

std::unique_ptr<SpatialIndex> MakeSpatialIndex(BackendKind kind,
                                               size_t dimensions,
                                               BackendOptions options) {
  switch (kind) {
    case BackendKind::kKdTree: {
      KdTreeOptions kopts;
      kopts.bucket_size = options.bucket_size;
      kopts.metric = options.metric;
      kopts.split_policy = options.split_policy;
      kopts.build_threads = options.build_threads;
      return std::make_unique<KdTree>(dimensions, kopts);
    }
    case BackendKind::kLinearScan: {
      auto index = std::make_unique<LinearScanIndex>(dimensions,
                                                     options.metric);
      (void)index->set_split_policy(options.split_policy);
      return index;
    }
    case BackendKind::kVpTree:
      return std::make_unique<VpTreeIndex>(dimensions, options);
    case BackendKind::kMTree: {
      auto index = std::make_unique<MTreeIndex>(dimensions, options);
      (void)index->set_split_policy(options.split_policy);
      return index;
    }
  }
  return nullptr;
}

std::string_view BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kKdTree:
      return "kdtree";
    case BackendKind::kLinearScan:
      return "linear_scan";
    case BackendKind::kVpTree:
      return "vptree";
    case BackendKind::kMTree:
      return "mtree";
  }
  return "unknown";
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// SpatialIndex: the one query surface every sequential backend
// implements (KdTree, VpTree, MTree, LinearScanIndex). Benches, tests
// and the distributed layer program against this interface, so backends
// are comparable apples-to-apples and interchangeable behind a factory
// (see core/backends.h).
//
// Every search takes a SearchBudget (core/query.h, DESIGN.md §6); the
// budget-less overloads run under the index's default budget, which is
// exact unless set_default_budget was called.

#ifndef SEMTREE_CORE_SPATIAL_INDEX_H_
#define SEMTREE_CORE_SPATIAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/kernels.h"
#include "core/point.h"
#include "core/query.h"
#include "core/split.h"

namespace semtree {

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Inserts one point. Fails if `coords` has the wrong dimensionality,
  /// contains a non-finite (NaN/Inf) coordinate — a single NaN would
  /// poison best-first frontier ordering undetected — or the backend
  /// does not support incremental insertion.
  virtual Status Insert(const std::vector<double>& coords, PointId id) = 0;

  /// Removes the point with the given coordinates and id. Backends
  /// without deletion support return NotSupported.
  virtual Status Remove(const std::vector<double>& coords, PointId id) = 0;

  /// Loads `points` in one batch. The default is an Insert loop (all
  /// validation and epoch semantics of Insert apply, and a failure may
  /// leave a prefix inserted); backends with a real bulk path override
  /// this — the KD-tree rebuilds through the parallel plan builder
  /// (core/bulk_build.h) under split_policy(), the VP-tree appends and
  /// defers one whole-tree build. Empty input is a no-op.
  virtual Status BulkLoad(const std::vector<KdPoint>& points) {
    for (const KdPoint& p : points) {
      SEMTREE_RETURN_NOT_OK(Insert(p.coords, p.id));
    }
    return Status::OK();
  }

  /// The k nearest points to `query` under `budget`, sorted by
  /// ascending distance, ties by id. Returns fewer than k when the
  /// index is smaller — or when the budget ran out first, in which
  /// case `stats->truncated` is set. Distances are always true
  /// distances to stored points: a budget can only make the result
  /// miss members, never report a wrong one. An exact budget
  /// reproduces the budget-less result byte-identically. Queries of
  /// the wrong arity or with non-finite coordinates return empty
  /// (QueryEngine::Run rejects them with a Status up front).
  virtual std::vector<Neighbor> KnnSearch(
      const std::vector<double>& query, size_t k, const SearchBudget& budget,
      SearchStats* stats = nullptr) const = 0;

  /// All points within `radius` of `query` under `budget`, sorted by
  /// (distance, id). Budgeted/epsilon searches may omit members (with
  /// `stats->truncated` set) but never include a point outside the
  /// radius.
  virtual std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget, SearchStats* stats = nullptr) const = 0;

  /// Budget-less convenience forms: search under default_budget().
  std::vector<Neighbor> KnnSearch(const std::vector<double>& query,
                                  size_t k,
                                  SearchStats* stats = nullptr) const {
    return KnnSearch(query, k, default_budget_, stats);
  }
  std::vector<Neighbor> RangeSearch(const std::vector<double>& query,
                                    double radius,
                                    SearchStats* stats = nullptr) const {
    return RangeSearch(query, radius, default_budget_, stats);
  }

  /// Stored point count.
  virtual size_t size() const = 0;

  /// Dimensionality of the indexed space.
  virtual size_t dimensions() const = 0;

  /// Human-readable backend name (for bench CSV series).
  virtual std::string_view name() const = 0;

  /// The distance function this index evaluates (core/kernels.h).
  /// L2 unless configured otherwise at construction
  /// (BackendOptions::metric) or through set_metric.
  Metric metric() const { return metric_; }

  /// Sets the metric. Configuration-time only, like
  /// set_default_budget: call it before serving queries. Backends
  /// whose *structure* depends on the metric override this — the
  /// VP-tree adapter discards its built tree (rebuilt lazily under
  /// the new metric), and the M-tree adapter rejects a metric change
  /// once points have been inserted (its routing radii were computed
  /// under the old one). The snapshot loader restores the persisted
  /// metric through this hook.
  virtual Status set_metric(Metric metric) {
    metric_ = metric;
    return Status::OK();
  }

  /// How bulk builds of this index cut nodes in two (core/split.h).
  /// Median unless configured at construction
  /// (BackendOptions::split_policy) or through set_split_policy.
  SplitPolicy split_policy() const { return split_policy_; }

  /// Sets the split policy. Configuration-time only, like set_metric:
  /// it steers *future* bulk builds and rebuilds — an already-built
  /// structure is not reorganized. Persisted with the snapshot tuning
  /// section so a warm-restarted index rebuilds the way it was built.
  virtual Status set_split_policy(SplitPolicy policy) {
    split_policy_ = policy;
    return Status::OK();
  }

  /// Index-wide search budget — an operator knob for serving whole
  /// workloads approximately without touching call sites. Exact by
  /// default. Applied by the budget-less search overloads AND by
  /// QueryEngine batches whose queries carry an unspecified (exact)
  /// budget; an explicit non-exact per-query budget always wins.
  /// Persisted by the spatial-index snapshot (persist/index_snapshot.h)
  /// so a warm-restarted index keeps its tuning.
  const SearchBudget& default_budget() const { return default_budget_; }

  /// Sets the default budget. Not synchronized against concurrent
  /// searches; set it during configuration, before serving.
  void set_default_budget(const SearchBudget& budget) {
    default_budget_ = budget;
  }

  /// Monotone mutation counter: every successful Insert/Remove bumps
  /// it. Result caches (engine/result_cache.h) key entries on
  /// (query, parameters, epoch), so a mutation implicitly invalidates
  /// everything cached against the previous epoch. Safe to read
  /// concurrently with searches.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Flushes any deferred build work so subsequent searches touch only
  /// immutable state: the VP-tree adapter forces its lazy rebuild, the
  /// RCU wrapper (core/versioned_index.h) merges its delta into a
  /// fresh base tree. A no-op for backends that are always fully
  /// built. Mutation-side: externally synchronized like Insert.
  virtual Status Freeze() { return Status::OK(); }

  /// True when KnnSearch/RangeSearch on this index are safe to run
  /// concurrently with Insert/Remove without external locking (the
  /// RCU contract of core/versioned_index.h). False — the default —
  /// means the SpatialIndex baseline contract applies: callers must
  /// serialize mutations against searches (QueryEngine does, with its
  /// reader-writer lock).
  virtual bool lock_free_reads() const { return false; }

  /// Oldest epoch() value any still-pinned reader of this index could
  /// be observing results from. Equal to epoch() on the sequential
  /// backends (no reader outlives a mutation there); the RCU wrapper
  /// reports the oldest unreclaimed version's epoch, which is the
  /// watermark per-version cache invalidation may evict below
  /// (ShardedResultCache::EvictEpochsBelow).
  virtual uint64_t oldest_live_epoch() const { return epoch(); }

 protected:
  // The atomic counter would otherwise delete implicit copy/move, which
  // by-value builders (KdTree::BulkLoadBalanced) rely on; copying an
  // index carries its epoch (and default budget) along.
  SpatialIndex() = default;
  SpatialIndex(const SpatialIndex& other)
      : metric_(other.metric_),
        split_policy_(other.split_policy_),
        default_budget_(other.default_budget_),
        epoch_(other.epoch()) {}
  SpatialIndex& operator=(const SpatialIndex& other) {
    metric_ = other.metric_;
    split_policy_ = other.split_policy_;
    default_budget_ = other.default_budget_;
    epoch_.store(other.epoch(), std::memory_order_release);
    return *this;
  }

  /// Called by backends after a successful mutation.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Called by backends when loading a snapshot: a restarted index
  /// resumes at the epoch it was saved at, so epoch-keyed caches warmed
  /// against the old process stay semantically consistent.
  void RestoreEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }

 private:
  Metric metric_ = Metric::kL2;
  SplitPolicy split_policy_ = SplitPolicy::kMedian;
  SearchBudget default_budget_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace semtree

#endif  // SEMTREE_CORE_SPATIAL_INDEX_H_

// Copyright 2026 The SemTree Authors
//
// SpatialIndex: the one query surface every sequential backend
// implements (KdTree, VpTree, MTree, LinearScanIndex). Benches, tests
// and the distributed layer program against this interface, so backends
// are comparable apples-to-apples and interchangeable behind a factory
// (see core/backends.h).

#ifndef SEMTREE_CORE_SPATIAL_INDEX_H_
#define SEMTREE_CORE_SPATIAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/point.h"

namespace semtree {

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Inserts one point. Fails if `coords` has the wrong dimensionality
  /// or the backend does not support incremental insertion.
  virtual Status Insert(const std::vector<double>& coords, PointId id) = 0;

  /// Removes the point with the given coordinates and id. Backends
  /// without deletion support return NotSupported.
  virtual Status Remove(const std::vector<double>& coords, PointId id) = 0;

  /// The k nearest points to `query`, sorted by ascending distance,
  /// ties by id. Returns fewer than k when the index is smaller.
  virtual std::vector<Neighbor> KnnSearch(
      const std::vector<double>& query, size_t k,
      SearchStats* stats = nullptr) const = 0;

  /// All points within `radius` of `query`, sorted by (distance, id).
  virtual std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      SearchStats* stats = nullptr) const = 0;

  /// Stored point count.
  virtual size_t size() const = 0;

  /// Dimensionality of the indexed space.
  virtual size_t dimensions() const = 0;

  /// Human-readable backend name (for bench CSV series).
  virtual std::string_view name() const = 0;

  /// Monotone mutation counter: every successful Insert/Remove bumps
  /// it. Result caches (engine/result_cache.h) key entries on
  /// (query, parameters, epoch), so a mutation implicitly invalidates
  /// everything cached against the previous epoch. Safe to read
  /// concurrently with searches.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 protected:
  // The atomic counter would otherwise delete implicit copy/move, which
  // by-value builders (KdTree::BulkLoadBalanced) rely on; copying an
  // index carries its epoch along.
  SpatialIndex() = default;
  SpatialIndex(const SpatialIndex& other) : epoch_(other.epoch()) {}
  SpatialIndex& operator=(const SpatialIndex& other) {
    epoch_.store(other.epoch(), std::memory_order_release);
    return *this;
  }

  /// Called by backends after a successful mutation.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Called by backends when loading a snapshot: a restarted index
  /// resumes at the epoch it was saved at, so epoch-keyed caches warmed
  /// against the old process stay semantically consistent.
  void RestoreEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }

 private:
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace semtree

#endif  // SEMTREE_CORE_SPATIAL_INDEX_H_

// Copyright 2026 The SemTree Authors
//
// PointBlock: a self-contained, contiguous batch of points — the wire
// format for every bulk point transfer in the system (leaf migration in
// build-partition, distributed bulk-load regions). One coordinate
// buffer plus one id buffer replaces N heap-allocated per-point
// vectors, following the contiguous transfer-buffer idiom of bp-forest
// style tree migration.

#ifndef SEMTREE_CORE_POINT_BLOCK_H_
#define SEMTREE_CORE_POINT_BLOCK_H_

#include <cassert>
#include <utility>
#include <vector>

#include "core/point.h"

namespace semtree {

struct PointBlock {
  size_t dimensions = 0;
  std::vector<double> coords;  // Row-major, ids.size() * dimensions.
  std::vector<PointId> ids;

  PointBlock() = default;
  explicit PointBlock(size_t dims) : dimensions(dims) {}

  size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }

  const double* Row(size_t i) const {
    return coords.data() + i * dimensions;
  }

  void Reserve(size_t points) {
    coords.reserve(points * dimensions);
    ids.reserve(points);
  }

  /// Appends one row (copied; `row` must have `dimensions` entries).
  void Append(const double* row, PointId id) {
    coords.insert(coords.end(), row, row + dimensions);
    ids.push_back(id);
  }

  PointView View(size_t i) const {
    return PointView{Row(i), dimensions, ids[i]};
  }

  /// Approximate wire size, for the simulated interconnect accounting.
  size_t ApproxBytes() const {
    return coords.size() * sizeof(double) + ids.size() * sizeof(PointId) +
           32;
  }

  /// Gathers owning per-point API inputs into one contiguous block.
  static PointBlock FromPoints(size_t dims,
                               const std::vector<KdPoint>& points) {
    PointBlock block(dims);
    block.Reserve(points.size());
    for (const KdPoint& p : points) {
      assert(p.coords.size() == dims);
      block.Append(p.coords.data(), p.id);
    }
    return block;
  }
};

}  // namespace semtree

#endif  // SEMTREE_CORE_POINT_BLOCK_H_

// Copyright 2026 The SemTree Authors
//
// The batched multi-metric distance-kernel layer. core/distance.h keeps
// the scalar Euclidean primitive; this header is the hot-path surface
// every backend's leaf scan funnels through: one query evaluated
// against a whole block of PointStore rows per call (one-vs-many),
// under a Metric selected per index.
//
// Batching model (DESIGN.md §7): the one-vs-many kernels process rows
// four at a time with one independent accumulator chain per row, the
// tail falling back to the per-row scalar loop. Four independent
// chains hide floating-point add latency (the scalar loop is bound by
// its single serial accumulator), which is where the throughput win
// comes from — bench_micro_distance asserts it. Within each row the
// accumulation order is exactly the scalar kernel's (ascending
// dimension, one running sum), so every batched distance is
// bit-identical to its scalar counterpart and exact L2 searches stay
// byte-identical whether or not a backend batches.
//
// Metric semantics:
//  * kL2     — Euclidean distance (the default; FastMap's embedded
//              space is Euclidean by construction).
//  * kL1     — Manhattan distance.
//  * kCosine — angular *chord* distance sqrt(2·(1−cosθ)), i.e. the
//              Euclidean distance between the direction vectors. The
//              raw "1−cos" dissimilarity violates the triangle
//              inequality, which metric-tree pruning relies on; the
//              chord form is a true (pseudo-)metric, so VP-/M-tree
//              searches stay exact. Zero vectors have no direction:
//              d(0,0) = 0 and d(0,x) = sqrt(2) (treated as
//              orthogonal), which preserves the triangle inequality.
//              Rows whose norms or dot product over/underflow double
//              range (coordinates near 1e±160) are recomputed on a
//              scaled copy — cosine only sees directions — so finite
//              inputs can never produce a NaN distance.
//
// All three metrics satisfy symmetry, zero self-distance and the
// triangle inequality (cosine as chord), so every backend prunes
// soundly under every metric — except that the KD-tree's splitting-
// plane bound has no cosine analogue; see KdPlaneLowerBound.

#ifndef SEMTREE_CORE_KERNELS_H_
#define SEMTREE_CORE_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace semtree {

/// The distance function an index evaluates. Fixed per index at
/// construction (SpatialIndex::set_metric) and persisted with the
/// snapshot tuning section, so a warm-restarted index keeps its
/// geometry.
enum class Metric : uint8_t {
  kL2 = 0,
  kL1 = 1,
  kCosine = 2,
};

/// Human-readable metric name (bench CSV series, error messages).
std::string_view MetricName(Metric metric);

/// Validated narrowing from a persisted byte; false on unknown values.
bool MetricFromU8(uint8_t raw, Metric* out);

/// Scalar one-vs-one distance between two rows of length n under
/// `metric`. Bit-identical to the corresponding lane of the batched
/// kernels below; for kL2 it is bit-identical to EuclideanDistance.
double MetricDistance(Metric metric, const double* a, const double* b,
                      size_t n);

/// Squared L2 norm of one row (ascending-index accumulation, the
/// order the cosine kernels use).
double SquaredNorm(const double* a, size_t n);

/// Cosine chord distance with the query's squared norm precomputed
/// (`SquaredNorm(a, n)`). Bit-identical to
/// `MetricDistance(kCosine, a, b, n)`; oracle-style callers that
/// evaluate one query against many objects hoist the query norm once
/// instead of paying an O(n) pass per distance.
double CosineChordDistance(const double* a, double a_norm2,
                           const double* b, size_t n);

/// One-vs-many over a contiguous row-major block: distances from
/// `query` to rows[r*dim .. r*dim+dim) for r in [0, count), written to
/// out[0..count). This is the bulk-loaded PointStore fast path (rows
/// adjacent in one chunk).
void BatchDistance(Metric metric, const double* query, size_t dim,
                   const double* rows, size_t count, double* out);

/// One-vs-many over gathered rows: `rows[r]` points at row r (leaf
/// buckets hold arbitrary store slots, so their rows are not generally
/// adjacent). Same unrolling and bit-exactness as the contiguous form.
void BatchDistance(Metric metric, const double* query, size_t dim,
                   const double* const* rows, size_t count, double* out);

/// True when the one-vs-many kernels dispatch to the runtime-checked
/// SIMD fast path on this machine (x86 AVX). The portable 4-way
/// unrolled fallback produces bit-identical results either way; only
/// throughput differs, so bench assertions key off this.
bool BatchKernelsUseSimd();

/// Rows a leaf scan gathers per kernel call: big enough to amortize
/// the dispatch, small enough for the pointer/distance scratch to live
/// on the stack.
inline constexpr size_t kDistanceBatch = 64;

/// Admissible lower bound on the distance from a query to anything
/// beyond a KD-tree splitting plane, given `diff` = query[Sr] − Sv.
/// |diff| bounds any single-coordinate gap from below for L2 and L1;
/// the cosine chord distance has no per-coordinate bound (angles do
/// not decompose over axes), so the far child inherits bound 0 — the
/// search stays exact but degrades toward an exhaustive scan. Prefer
/// the metric trees for cosine workloads.
inline double KdPlaneLowerBound(Metric metric, double diff) {
  return metric == Metric::kCosine ? 0.0 : std::fabs(diff);
}

/// Chunked driver for batched leaf/arena scans: gathers row pointers
/// kDistanceBatch at a time into stack scratch, runs the batched
/// kernel, and hands each (index, distance) pair to `sink` in order.
/// `row_at(i)` returns the i-th row pointer; `sink(i, d)` consumes its
/// distance. Callers cap `count` with BudgetGauge::ChargeDistances
/// first, so budget accounting matches a per-point scalar loop
/// exactly.
template <typename RowAt, typename Sink>
void BatchScan(Metric metric, const double* query, size_t dim,
               size_t count, RowAt row_at, Sink sink) {
  const double* rows[kDistanceBatch];
  double dist[kDistanceBatch];
  for (size_t base = 0; base < count; base += kDistanceBatch) {
    size_t m = count - base;
    if (m > kDistanceBatch) m = kDistanceBatch;
    for (size_t j = 0; j < m; ++j) rows[j] = row_at(base + j);
    BatchDistance(metric, query, dim, rows, m, dist);
    for (size_t j = 0; j < m; ++j) sink(base + j, dist[j]);
  }
}

/// True when every coordinate is finite (no NaN/Inf). Insert and query
/// entry points reject non-finite rows up front: a single NaN distance
/// would otherwise poison best-first frontier ordering and k-NN heap
/// invariants undetected.
bool AllFinite(const double* coords, size_t n);

inline bool AllFinite(const std::vector<double>& coords) {
  return AllFinite(coords.data(), coords.size());
}

/// Status form of AllFinite shared by every Insert / bulk-load entry
/// point, so the rejection policy (and the message tests assert on)
/// lives in one place.
Status CheckFiniteCoords(const std::vector<double>& coords);

}  // namespace semtree

#endif  // SEMTREE_CORE_KERNELS_H_

// Copyright 2026 The SemTree Authors
//
// LatencyHistogram: an HDR-style log-linear bucketed histogram for
// latency percentiles (p50/p99/p999) with a *documented* relative
// error bound and O(1) lock-free-per-thread recording — each worker
// owns one and the driver merges them, so the hot recording path never
// takes a lock.
//
// Bucketing (precision m = `precision_bits`):
//
//  * values v < 2^(m+1) land in their own unit bucket — exact;
//  * larger values are shifted right until their mantissa fits in
//    m+1 bits: with e = floor(log2 v) - m, the bucket covers
//    [mantissa << e, ((mantissa+1) << e) - 1], a span of 2^e - 1
//    around a value of at least 2^(m+e).
//
// A bucket is reported by its UPPER edge, so for any quantile q:
//
//   true_q  <=  ValueAtQuantile(q)  <=  true_q * (1 + 2^-m)
//
// where true_q is the exact sample the same rank rule would select
// from a sorted vector (rank = ceil(q * count), at least 1). The
// default m = 7 bounds relative error at 1/128 < 0.8% across the full
// uint64 value range in ~58 KB of counters. tests/histogram_test.cc
// asserts the bound against sorted-vector references on uniform,
// lognormal and adversarial two-spike distributions.
//
// Merging adds counter arrays element-wise: merge(h1, h2) is
// indistinguishable from one histogram fed the concatenated samples
// (also asserted in tests), which is what makes per-thread recording +
// end-of-phase aggregation exact rather than approximate.

#ifndef SEMTREE_WORKLOAD_HISTOGRAM_H_
#define SEMTREE_WORKLOAD_HISTOGRAM_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"

namespace semtree {
namespace workload {

class LatencyHistogram {
 public:
  /// `precision_bits` (m above) is clamped to [1, 14]; relative error
  /// of every reported percentile is at most 2^-m.
  explicit LatencyHistogram(uint32_t precision_bits = 7);

  /// Records one observation (any uint64 value; typically integer
  /// microseconds or nanoseconds — the histogram is unit-agnostic).
  void Record(uint64_t value) { RecordMany(value, 1); }

  /// Records `count` identical observations.
  void RecordMany(uint64_t value, uint64_t count);

  /// Adds `other`'s counts into this histogram. The two must have been
  /// built with the same precision (InvalidArgument otherwise).
  Status Merge(const LatencyHistogram& other);

  /// Smallest recorded-bucket upper edge whose cumulative count
  /// reaches rank ceil(q * count()) (q clamped to [0, 1]; rank at
  /// least 1). Returns 0 on an empty histogram.
  uint64_t ValueAtQuantile(double q) const;

  uint64_t count() const { return count_; }
  /// Exact extrema of the recorded values (not bucketized).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Mean of bucket-representative values (upper edges), within the
  /// same relative error bound as the percentiles.
  double ApproximateMean() const;

  uint32_t precision_bits() const { return precision_bits_; }
  /// The documented bound: 2^-precision_bits.
  double MaxRelativeError() const;

  /// True when both histograms have identical precision and counts in
  /// every bucket (and hence identical percentiles at every q).
  bool IdenticalTo(const LatencyHistogram& other) const;

 private:
  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketUpperEdge(size_t index) const;

  uint32_t precision_bits_;
  uint64_t count_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
  std::vector<uint64_t> counts_;
};

}  // namespace workload
}  // namespace semtree

#endif  // SEMTREE_WORKLOAD_HISTOGRAM_H_

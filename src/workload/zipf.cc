// Copyright 2026 The SemTree Authors

#include "workload/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace semtree {
namespace workload {

ZipfianGenerator::ZipfianGenerator(uint64_t num_keys, double s,
                                   uint64_t seed)
    : num_keys_(num_keys), s_(s), rng_(seed) {
  assert(num_keys > 0);
  assert(std::isfinite(s) && s >= 0.0);
  cdf_.resize(num_keys);
  double acc = 0.0;
  for (uint64_t k = 0; k < num_keys; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  harmonic_ = acc;
  for (double& c : cdf_) c /= acc;
  // Guard against the normalization rounding the tail below 1.0, which
  // would make a u drawn just under 1 fall off the table.
  cdf_.back() = 1.0;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.UniformDouble();  // [0, 1)
  // First rank whose cumulative mass exceeds u.
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfianGenerator::Pmf(uint64_t rank) const {
  if (rank >= num_keys_) return 0.0;
  // Analytic form, not adjacent-CDF differences: the cumulative table
  // cancels catastrophically for deep ranks whose mass is tiny.
  return 1.0 / std::pow(static_cast<double>(rank + 1), s_) / harmonic_;
}

}  // namespace workload
}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <thread>

#include "common/mutex.h"

namespace semtree {
namespace workload {

namespace {

using Clock = std::chrono::steady_clock;

struct PendingOp {
  const WorkloadOp* op = nullptr;
  uint64_t scheduled_ns = 0;  // Relative to the run's start instant.
};

// Per-worker, per-phase partial aggregates; workers touch only their
// own row, so the execution path records without any lock.
struct PhaseAcc {
  explicit PhaseAcc(uint32_t bits) : latency(bits) {}

  uint64_t completed = 0, errors = 0, truncated = 0, cache_hits = 0;
  uint64_t knn = 0, range = 0, inserts = 0, removes = 0;
  uint64_t first_ns = std::numeric_limits<uint64_t>::max();
  uint64_t last_ns = 0;
  LatencyHistogram latency;
};

uint64_t SinceNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

Result<DriverReport> RunOpenLoop(QueryEngine* engine,
                                 const WorkloadTrace& trace,
                                 const DriverConfig& config) {
  if (!std::isfinite(config.target_qps) || config.target_qps <= 0.0) {
    return Status::InvalidArgument("target_qps must be finite and > 0");
  }
  const size_t workers = std::max<size_t>(1, config.workers);
  const uint32_t bits = config.histogram_precision_bits;
  const size_t num_phases = std::max<size_t>(1, trace.num_phases);

  DriverReport report;
  report.phases.resize(num_phases);
  for (size_t p = 0; p < num_phases; ++p) {
    report.phases[p].phase = static_cast<uint32_t>(p);
    report.phases[p].latency = LatencyHistogram(bits);
  }
  report.total.latency = LatencyHistogram(bits);
  if (trace.ops.empty()) return report;
  for (const WorkloadOp& op : trace.ops) {
    if (op.phase >= num_phases) {
      return Status::InvalidArgument("op phase out of range");
    }
  }

  // `queue` and `closed` are guarded by `mu`; `issued`/`shed` below are
  // touched only by the issue loop (this thread) and read after the
  // join, and each worker's PhaseAcc row is its own.
  Mutex mu;
  CondVar cv;
  std::deque<PendingOp> queue;
  bool closed = false;
  std::atomic<size_t> pending{0};

  std::vector<std::vector<PhaseAcc>> accs;
  accs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    accs.emplace_back(num_phases, PhaseAcc(bits));
  }

  const Clock::time_point start = Clock::now();

  auto worker_fn = [&](size_t w) {
    std::vector<PhaseAcc>& mine = accs[w];
    for (;;) {
      PendingOp item;
      {
        MutexLock lock(mu);
        while (!closed && queue.empty()) cv.Wait(mu);
        if (queue.empty()) break;  // Closed and drained.
        item = queue.front();
        queue.pop_front();
      }
      const WorkloadOp& op = *item.op;
      PhaseAcc& acc = mine[op.phase];
      bool error = false, trunc = false, hit = false;
      switch (op.kind) {
        case OpKind::kInsert: {
          error = !engine->Insert(op.coords, op.id).ok();
          ++acc.inserts;
          break;
        }
        case OpKind::kRemove: {
          error = !engine->Remove(op.coords, op.id).ok();
          ++acc.removes;
          break;
        }
        case OpKind::kKnn:
        case OpKind::kRange: {
          auto outcome = engine->RunOne(
              op.kind == OpKind::kKnn
                  ? SpatialQuery::Knn(op.coords, op.k, op.budget)
                  : SpatialQuery::Range(op.coords, op.radius, op.budget));
          if (outcome.ok()) {
            trunc = outcome->truncated;
            hit = outcome->from_cache;
          } else {
            error = true;
          }
          ++(op.kind == OpKind::kKnn ? acc.knn : acc.range);
          break;
        }
      }
      const uint64_t completion_ns = SinceNs(start);
      ++acc.completed;
      if (error) ++acc.errors;
      if (trunc) ++acc.truncated;
      if (hit) ++acc.cache_hits;
      // Latency from the SCHEDULED arrival, so queue wait counts
      // (open-loop accounting; see driver.h).
      const uint64_t lat_ns = completion_ns > item.scheduled_ns
                                  ? completion_ns - item.scheduled_ns
                                  : 0;
      acc.latency.Record(lat_ns / 1000);  // Microseconds.
      acc.first_ns = std::min(acc.first_ns, item.scheduled_ns);
      acc.last_ns = std::max(acc.last_ns, completion_ns);
      pending.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);

  // Issue loop: the caller thread paces arrivals.
  std::vector<uint64_t> issued(num_phases, 0), shed(num_phases, 0);
  const double ns_per_op = 1e9 / config.target_qps;
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    const uint64_t scheduled_ns =
        static_cast<uint64_t>(static_cast<double>(i) * ns_per_op);
    std::this_thread::sleep_until(
        start + std::chrono::nanoseconds(scheduled_ns));
    const WorkloadOp& op = trace.ops[i];
    ++issued[op.phase];
    if (config.max_pending > 0 &&
        pending.load(std::memory_order_relaxed) >= config.max_pending) {
      ++shed[op.phase];
      continue;
    }
    pending.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu);
      queue.push_back(PendingOp{&trace.ops[i], scheduled_ns});
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    closed = true;
  }
  cv.NotifyAll();
  for (std::thread& t : threads) t.join();
  report.wall_s = static_cast<double>(SinceNs(start)) / 1e9;

  // Merge the per-worker partials into per-phase and whole-run stats.
  uint64_t run_first = std::numeric_limits<uint64_t>::max();
  uint64_t run_last = 0;
  for (size_t p = 0; p < num_phases; ++p) {
    PhaseStats& ps = report.phases[p];
    ps.issued = issued[p];
    ps.shed = shed[p];
    uint64_t first = std::numeric_limits<uint64_t>::max(), last = 0;
    for (std::vector<PhaseAcc>& rows : accs) {
      const PhaseAcc& acc = rows[p];
      ps.completed += acc.completed;
      ps.errors += acc.errors;
      ps.truncated += acc.truncated;
      ps.cache_hits += acc.cache_hits;
      ps.knn += acc.knn;
      ps.range += acc.range;
      ps.inserts += acc.inserts;
      ps.removes += acc.removes;
      first = std::min(first, acc.first_ns);
      last = std::max(last, acc.last_ns);
      // Infallible: all histograms share config's precision.
      ps.latency.Merge(acc.latency);
    }
    if (ps.completed > 0) {
      ps.duration_s = static_cast<double>(last - first) / 1e9;
      if (ps.duration_s > 0.0) {
        ps.throughput_qps =
            static_cast<double>(ps.completed) / ps.duration_s;
      }
      ps.error_rate = static_cast<double>(ps.errors) /
                      static_cast<double>(ps.completed);
      ps.truncation_rate = static_cast<double>(ps.truncated) /
                           static_cast<double>(ps.completed);
      run_first = std::min(run_first, first);
      run_last = std::max(run_last, last);
    }
    if (ps.issued > 0) {
      ps.shed_rate =
          static_cast<double>(ps.shed) / static_cast<double>(ps.issued);
    }

    PhaseStats& total = report.total;
    total.issued += ps.issued;
    total.shed += ps.shed;
    total.completed += ps.completed;
    total.errors += ps.errors;
    total.truncated += ps.truncated;
    total.cache_hits += ps.cache_hits;
    total.knn += ps.knn;
    total.range += ps.range;
    total.inserts += ps.inserts;
    total.removes += ps.removes;
    total.latency.Merge(ps.latency);
  }
  PhaseStats& total = report.total;
  if (total.completed > 0) {
    total.duration_s = static_cast<double>(run_last - run_first) / 1e9;
    if (total.duration_s > 0.0) {
      total.throughput_qps =
          static_cast<double>(total.completed) / total.duration_s;
    }
    total.error_rate = static_cast<double>(total.errors) /
                       static_cast<double>(total.completed);
    total.truncation_rate = static_cast<double>(total.truncated) /
                            static_cast<double>(total.completed);
  }
  if (total.issued > 0) {
    total.shed_rate =
        static_cast<double>(total.shed) / static_cast<double>(total.issued);
  }
  return report;
}

}  // namespace workload
}  // namespace semtree

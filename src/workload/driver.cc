// Copyright 2026 The SemTree Authors

#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/random.h"

namespace semtree {
namespace workload {

namespace {

using Clock = std::chrono::steady_clock;

struct PendingOp {
  const WorkloadOp* op = nullptr;
  uint64_t scheduled_ns = 0;  // Relative to the run's start instant.
};

// Per-worker, per-phase partial aggregates; workers touch only their
// own row, so the execution path records without any lock.
struct PhaseAcc {
  explicit PhaseAcc(uint32_t bits) : latency(bits) {}

  uint64_t completed = 0, errors = 0, truncated = 0, cache_hits = 0;
  uint64_t knn = 0, range = 0, inserts = 0, removes = 0;
  uint64_t first_ns = std::numeric_limits<uint64_t>::max();
  uint64_t last_ns = 0;
  LatencyHistogram latency;
};

uint64_t SinceNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

// Per-reader partials for the mixed read/write mode; each reader
// thread owns its row, merged after the join.
struct ReaderAcc {
  explicit ReaderAcc(uint32_t bits) : latency(bits) {}
  uint64_t reads = 0, errors = 0;
  LatencyHistogram latency;
};

// Runs one measured phase of the mixed read/write mode: closed-loop
// readers, plus one sustained writer when `with_writer` is set. Both
// phases seed readers identically on purpose — the query streams are
// the same, so the only variable between the phases is the writer.
void RunMixedPhase(QueryEngine* engine, const std::vector<KdPoint>& corpus,
                   const MixedRwConfig& cfg, bool with_writer,
                   MixedRwPhase* out) {
  const uint32_t bits = cfg.histogram_precision_bits;
  const size_t readers = std::max<size_t>(1, cfg.reader_threads);
  const size_t k = std::max<size_t>(1, cfg.k);
  std::atomic<bool> stop{false};

  std::vector<ReaderAcc> accs;
  accs.reserve(readers);
  for (size_t w = 0; w < readers; ++w) accs.emplace_back(bits);

  auto reader_fn = [&](size_t w) {
    Rng rng(cfg.seed ^ (0xA11CEull + w));
    ReaderAcc& acc = accs[w];
    std::vector<double> coords;
    while (!stop.load(std::memory_order_relaxed)) {
      coords = corpus[rng.Uniform(corpus.size())].coords;
      for (double& c : coords) c += cfg.query_noise * rng.Gaussian();
      const Clock::time_point t0 = Clock::now();
      auto outcome = engine->RunOne(SpatialQuery::Knn(coords, k));
      acc.latency.Record(SinceNs(t0) / 1000);  // Microseconds.
      ++acc.reads;
      if (!outcome.ok()) ++acc.errors;
    }
  };

  // The writer paces mutations at writer_qps (see driver.h for why it
  // is not closed-loop). It inserts jittered corpus points under ids
  // disjoint from any corpus id (workload_gen ids are corpus indices),
  // and beyond `writer_window` pairs each insert with a remove of its
  // oldest, so the index size — and hence per-query work — stays
  // comparable across phases and trials.
  const Clock::time_point start = Clock::now();
  uint64_t writes = 0, write_errors = 0;
  auto writer_fn = [&] {
    constexpr PointId kWriterIdBase = PointId{1} << 40;
    Rng rng(cfg.seed ^ 0x5EEDull);
    std::deque<std::pair<PointId, std::vector<double>>> window;
    PointId next_id = kWriterIdBase;
    const double ns_per_op = 1e9 / cfg.writer_qps;
    // Pace in small bursts: one wakeup per kBurst ops instead of one
    // per op. The rate is the same, but on a box with few cores each
    // timed wakeup is a context switch stolen from the readers, and
    // that scheduler tax is not the interference this mode measures.
    constexpr uint64_t kBurst = 8;
    for (uint64_t i = 0; !stop.load(std::memory_order_relaxed);) {
      std::this_thread::sleep_until(
          start + std::chrono::nanoseconds(static_cast<uint64_t>(
                      static_cast<double>(i) * ns_per_op)));
      for (uint64_t b = 0;
           b < kBurst && !stop.load(std::memory_order_relaxed);
           ++b, ++i) {
        if (window.size() >= cfg.writer_window && (i & 1) != 0) {
          if (!engine->Remove(window.front().second, window.front().first)
                   .ok()) {
            ++write_errors;
          }
          window.pop_front();
        } else {
          std::vector<double> coords =
              corpus[rng.Uniform(corpus.size())].coords;
          for (double& c : coords) c += cfg.query_noise * rng.Gaussian();
          if (!engine->Insert(coords, next_id).ok()) ++write_errors;
          window.emplace_back(next_id++, std::move(coords));
        }
        ++writes;
      }
    }
    // Drain the window (uncounted: the phase is over) so repeated
    // trials start from the same index size.
    for (const auto& [id, coords] : window) {
      (void)engine->Remove(coords, id);
    }
  };

  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (size_t w = 0; w < readers; ++w) {
    reader_threads.emplace_back(reader_fn, w);
  }
  std::thread writer_thread;
  if (with_writer) writer_thread = std::thread(writer_fn);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(cfg.phase_duration_s));
  stop.store(true, std::memory_order_relaxed);
  // Join the readers first and take the duration there: every counted
  // read finished inside it. The writer joins after — its post-phase
  // window drain (uncounted removes) must not stretch the window the
  // read rate is computed over.
  for (std::thread& t : reader_threads) t.join();
  const double duration_s = static_cast<double>(SinceNs(start)) / 1e9;
  if (writer_thread.joinable()) writer_thread.join();

  out->read_latency = LatencyHistogram(bits);
  for (const ReaderAcc& acc : accs) {
    out->reads += acc.reads;
    out->read_errors += acc.errors;
    out->read_latency.Merge(acc.latency);  // Infallible: same precision.
  }
  out->writes = writes;
  out->write_errors = write_errors;
  out->duration_s = duration_s;
  if (duration_s > 0.0) {
    out->read_qps = static_cast<double>(out->reads) / duration_s;
    out->write_qps = static_cast<double>(out->writes) / duration_s;
  }
}

}  // namespace

Result<DriverReport> RunOpenLoop(QueryEngine* engine,
                                 const WorkloadTrace& trace,
                                 const DriverConfig& config) {
  if (!std::isfinite(config.target_qps) || config.target_qps <= 0.0) {
    return Status::InvalidArgument("target_qps must be finite and > 0");
  }
  const size_t workers = std::max<size_t>(1, config.workers);
  const uint32_t bits = config.histogram_precision_bits;
  const size_t num_phases = std::max<size_t>(1, trace.num_phases);

  DriverReport report;
  report.phases.resize(num_phases);
  for (size_t p = 0; p < num_phases; ++p) {
    report.phases[p].phase = static_cast<uint32_t>(p);
    report.phases[p].latency = LatencyHistogram(bits);
  }
  report.total.latency = LatencyHistogram(bits);
  if (trace.ops.empty()) return report;
  for (const WorkloadOp& op : trace.ops) {
    if (op.phase >= num_phases) {
      return Status::InvalidArgument("op phase out of range");
    }
  }

  // `queue` and `closed` are guarded by `mu`; `issued`/`shed` below are
  // touched only by the issue loop (this thread) and read after the
  // join, and each worker's PhaseAcc row is its own.
  Mutex mu;
  CondVar cv;
  std::deque<PendingOp> queue;
  bool closed = false;
  std::atomic<size_t> pending{0};

  std::vector<std::vector<PhaseAcc>> accs;
  accs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    accs.emplace_back(num_phases, PhaseAcc(bits));
  }

  const Clock::time_point start = Clock::now();

  auto worker_fn = [&](size_t w) {
    std::vector<PhaseAcc>& mine = accs[w];
    for (;;) {
      PendingOp item;
      {
        MutexLock lock(mu);
        while (!closed && queue.empty()) cv.Wait(mu);
        if (queue.empty()) break;  // Closed and drained.
        item = queue.front();
        queue.pop_front();
      }
      const WorkloadOp& op = *item.op;
      PhaseAcc& acc = mine[op.phase];
      bool error = false, trunc = false, hit = false;
      switch (op.kind) {
        case OpKind::kInsert: {
          error = !engine->Insert(op.coords, op.id).ok();
          ++acc.inserts;
          break;
        }
        case OpKind::kRemove: {
          error = !engine->Remove(op.coords, op.id).ok();
          ++acc.removes;
          break;
        }
        case OpKind::kKnn:
        case OpKind::kRange: {
          auto outcome = engine->RunOne(
              op.kind == OpKind::kKnn
                  ? SpatialQuery::Knn(op.coords, op.k, op.budget)
                  : SpatialQuery::Range(op.coords, op.radius, op.budget));
          if (outcome.ok()) {
            trunc = outcome->truncated;
            hit = outcome->from_cache;
          } else {
            error = true;
          }
          ++(op.kind == OpKind::kKnn ? acc.knn : acc.range);
          break;
        }
      }
      const uint64_t completion_ns = SinceNs(start);
      ++acc.completed;
      if (error) ++acc.errors;
      if (trunc) ++acc.truncated;
      if (hit) ++acc.cache_hits;
      // Latency from the SCHEDULED arrival, so queue wait counts
      // (open-loop accounting; see driver.h).
      const uint64_t lat_ns = completion_ns > item.scheduled_ns
                                  ? completion_ns - item.scheduled_ns
                                  : 0;
      acc.latency.Record(lat_ns / 1000);  // Microseconds.
      acc.first_ns = std::min(acc.first_ns, item.scheduled_ns);
      acc.last_ns = std::max(acc.last_ns, completion_ns);
      pending.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);

  // Issue loop: the caller thread paces arrivals.
  std::vector<uint64_t> issued(num_phases, 0), shed(num_phases, 0);
  const double ns_per_op = 1e9 / config.target_qps;
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    const uint64_t scheduled_ns =
        static_cast<uint64_t>(static_cast<double>(i) * ns_per_op);
    std::this_thread::sleep_until(
        start + std::chrono::nanoseconds(scheduled_ns));
    const WorkloadOp& op = trace.ops[i];
    ++issued[op.phase];
    if (config.max_pending > 0 &&
        pending.load(std::memory_order_relaxed) >= config.max_pending) {
      ++shed[op.phase];
      continue;
    }
    pending.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu);
      queue.push_back(PendingOp{&trace.ops[i], scheduled_ns});
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    closed = true;
  }
  cv.NotifyAll();
  for (std::thread& t : threads) t.join();
  report.wall_s = static_cast<double>(SinceNs(start)) / 1e9;

  // Merge the per-worker partials into per-phase and whole-run stats.
  uint64_t run_first = std::numeric_limits<uint64_t>::max();
  uint64_t run_last = 0;
  for (size_t p = 0; p < num_phases; ++p) {
    PhaseStats& ps = report.phases[p];
    ps.issued = issued[p];
    ps.shed = shed[p];
    uint64_t first = std::numeric_limits<uint64_t>::max(), last = 0;
    for (std::vector<PhaseAcc>& rows : accs) {
      const PhaseAcc& acc = rows[p];
      ps.completed += acc.completed;
      ps.errors += acc.errors;
      ps.truncated += acc.truncated;
      ps.cache_hits += acc.cache_hits;
      ps.knn += acc.knn;
      ps.range += acc.range;
      ps.inserts += acc.inserts;
      ps.removes += acc.removes;
      first = std::min(first, acc.first_ns);
      last = std::max(last, acc.last_ns);
      // Infallible: all histograms share config's precision.
      ps.latency.Merge(acc.latency);
    }
    if (ps.completed > 0) {
      ps.duration_s = static_cast<double>(last - first) / 1e9;
      if (ps.duration_s > 0.0) {
        ps.throughput_qps =
            static_cast<double>(ps.completed) / ps.duration_s;
      }
      ps.error_rate = static_cast<double>(ps.errors) /
                      static_cast<double>(ps.completed);
      ps.truncation_rate = static_cast<double>(ps.truncated) /
                           static_cast<double>(ps.completed);
      run_first = std::min(run_first, first);
      run_last = std::max(run_last, last);
    }
    if (ps.issued > 0) {
      ps.shed_rate =
          static_cast<double>(ps.shed) / static_cast<double>(ps.issued);
    }

    PhaseStats& total = report.total;
    total.issued += ps.issued;
    total.shed += ps.shed;
    total.completed += ps.completed;
    total.errors += ps.errors;
    total.truncated += ps.truncated;
    total.cache_hits += ps.cache_hits;
    total.knn += ps.knn;
    total.range += ps.range;
    total.inserts += ps.inserts;
    total.removes += ps.removes;
    total.latency.Merge(ps.latency);
  }
  PhaseStats& total = report.total;
  if (total.completed > 0) {
    total.duration_s = static_cast<double>(run_last - run_first) / 1e9;
    if (total.duration_s > 0.0) {
      total.throughput_qps =
          static_cast<double>(total.completed) / total.duration_s;
    }
    total.error_rate = static_cast<double>(total.errors) /
                       static_cast<double>(total.completed);
    total.truncation_rate = static_cast<double>(total.truncated) /
                            static_cast<double>(total.completed);
  }
  if (total.issued > 0) {
    total.shed_rate =
        static_cast<double>(total.shed) / static_cast<double>(total.issued);
  }
  return report;
}

Result<MixedRwReport> RunMixedReadWrite(QueryEngine* engine,
                                        const std::vector<KdPoint>& corpus,
                                        const MixedRwConfig& config) {
  if (corpus.empty()) {
    return Status::InvalidArgument("mixed read/write mode needs a corpus");
  }
  if (!std::isfinite(config.phase_duration_s) ||
      config.phase_duration_s <= 0.0) {
    return Status::InvalidArgument(
        "phase_duration_s must be finite and > 0");
  }
  if (!std::isfinite(config.query_noise) || config.query_noise < 0.0) {
    return Status::InvalidArgument("query_noise must be finite and >= 0");
  }
  if (!std::isfinite(config.writer_qps) || config.writer_qps <= 0.0) {
    return Status::InvalidArgument("writer_qps must be finite and > 0");
  }
  MixedRwReport report;
  RunMixedPhase(engine, corpus, config, /*with_writer=*/false,
                &report.read_only);
  RunMixedPhase(engine, corpus, config, /*with_writer=*/true,
                &report.mixed);
  if (report.read_only.read_qps > 0.0) {
    report.read_throughput_ratio =
        report.mixed.read_qps / report.read_only.read_qps;
  }
  return report;
}

}  // namespace workload
}  // namespace semtree

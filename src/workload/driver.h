// Copyright 2026 The SemTree Authors
//
// Open-loop workload driver (DESIGN.md §9): replays a pre-generated
// WorkloadTrace against a QueryEngine at a target qps. Open-loop means
// op i is *issued* at its scheduled time start + i/qps whether or not
// earlier ops have completed — the arrival process is independent of
// service times, unlike the repo's closed-loop benches where a slow op
// silently throttles the load. Latency is therefore measured from the
// op's SCHEDULED issue time to its completion, so queueing delay is
// charged to the system, not hidden (no coordinated omission).
//
// A bounded pending queue models a server's admission control: when
// `max_pending` ops are issued-but-incomplete, further arrivals are
// shed (counted per phase, never executed, never in the latency
// histogram). With max_pending = 0 the queue is unbounded and every op
// executes.
//
// Determinism: the driver never alters the trace — pacing changes
// *when* ops run, not *what* runs. With `workers == 1` execution order
// equals trace order, so every per-op result (error, truncation,
// cache hit) and hence every aggregate counter is identical across
// runs and across target qps (asserted in tests/workload_test.cc and
// by the bench's trace_hash + twin-run JSON diff). With workers > 1,
// ops interleave nondeterministically; for a pure-query trace the
// result multiset is still deterministic, but traces with mutations
// may count truncations/cache hits differently run to run.

#ifndef SEMTREE_WORKLOAD_DRIVER_H_
#define SEMTREE_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/query_engine.h"
#include "workload/histogram.h"
#include "workload/workload_gen.h"

namespace semtree {
namespace workload {

struct DriverConfig {
  /// Target arrival rate; must be finite and > 0.
  double target_qps = 2000.0;

  /// Executor threads draining the pending queue. 1 (default) keeps
  /// execution order == trace order, making every counter
  /// deterministic; raise it to push throughput past one core.
  size_t workers = 1;

  /// Max issued-but-incomplete ops before arrivals are shed;
  /// 0 = unbounded (nothing is ever shed).
  size_t max_pending = 0;

  /// Precision of the latency histograms (workload/histogram.h);
  /// percentile relative error <= 2^-bits.
  uint32_t histogram_precision_bits = 7;
};

/// Per-phase (and whole-run) SLO aggregates.
struct PhaseStats {
  uint32_t phase = 0;
  uint64_t issued = 0;     ///< Arrivals, including shed ones.
  uint64_t completed = 0;  ///< Ops that executed (ok or error).
  uint64_t shed = 0;       ///< Rejected at admission (queue full).
  uint64_t errors = 0;     ///< Executed ops whose Status was not OK.
  uint64_t truncated = 0;  ///< Search ops flagged truncated (PR 4).
  uint64_t cache_hits = 0;
  uint64_t knn = 0, range = 0, inserts = 0, removes = 0;

  /// Completed-op latency, microseconds from scheduled issue to
  /// completion (queue wait included — see file comment).
  LatencyHistogram latency;

  double duration_s = 0.0;       ///< First arrival to last completion.
  double throughput_qps = 0.0;   ///< completed / duration_s.
  double error_rate = 0.0;       ///< errors / completed (0 if none).
  double shed_rate = 0.0;        ///< shed / issued (0 if none).
  double truncation_rate = 0.0;  ///< truncated / completed (0 if none).
};

struct DriverReport {
  std::vector<PhaseStats> phases;  ///< Indexed by phase number.
  PhaseStats total;                ///< Whole-run aggregate (phase 0).
  double wall_s = 0.0;             ///< Issue start to last join.
};

/// Replays `trace` against `engine` open-loop. Blocks until every
/// non-shed op has completed. The engine must outlive the call; its
/// mutations go through QueryEngine::Insert/Remove so the result
/// cache's epoch stays honest.
Result<DriverReport> RunOpenLoop(QueryEngine* engine,
                                 const WorkloadTrace& trace,
                                 const DriverConfig& config);

// ---------------------------------------------------------------------
// Mixed read/write mode (DESIGN.md §11): measures whether a sustained
// writer stalls k-NN readers. Unlike RunOpenLoop the readers are
// CLOSED-loop by design — each issues its next query the moment the
// last one returns, so read throughput directly reflects how long
// reads take under write pressure. (An open-loop run at a fixed qps
// would complete the same op count regardless and mask the effect.)
// The writer, by contrast, is PACED at a fixed rate: an unthrottled
// writer would measure CPU contention (one more runnable thread),
// not the algorithmic interference — readers blocking on writer
// locks, or scanning writer state — that the RCU read path is
// supposed to eliminate and this mode exists to gate.

struct MixedRwConfig {
  /// Measured seconds per phase (baseline and mixed each run this
  /// long, back to back on the same engine).
  double phase_duration_s = 1.0;

  /// Closed-loop reader threads issuing k-NN queries.
  size_t reader_threads = 2;

  /// k of every reader query.
  size_t k = 10;

  /// Gaussian jitter applied around corpus points for reader queries
  /// and writer inserts (same role as WorkloadConfig::query_noise).
  double query_noise = 0.02;

  /// Writer keeps at most this many of its own points live: beyond
  /// it, each insert is paired with a remove of its oldest, so the
  /// index size stays bounded and the phases compare like for like.
  size_t writer_window = 512;

  /// The writer's paced arrival rate, mutation ops (insert or remove)
  /// per second; see the file comment for why the writer is not
  /// closed-loop. Must be finite and > 0.
  double writer_qps = 2000.0;

  /// Seed for the reader/writer coordinate streams.
  uint64_t seed = 42;

  uint32_t histogram_precision_bits = 7;
};

/// One measured phase of the mixed run.
struct MixedRwPhase {
  uint64_t reads = 0;         ///< Completed k-NN queries.
  uint64_t read_errors = 0;
  uint64_t writes = 0;        ///< Inserts + removes (0 in baseline).
  uint64_t write_errors = 0;
  double duration_s = 0.0;
  double read_qps = 0.0;      ///< reads / duration_s.
  double write_qps = 0.0;
  LatencyHistogram read_latency;  ///< Per-query microseconds.
};

struct MixedRwReport {
  MixedRwPhase read_only;  ///< Readers alone (the baseline).
  MixedRwPhase mixed;      ///< Same readers + one sustained writer.
  /// mixed.read_qps / read_only.read_qps — the headline: 1.0 means
  /// the writer cost readers nothing; the bench gate fails below 0.9
  /// (ROADMAP item 3's "flat within ±10%" target).
  double read_throughput_ratio = 0.0;
};

/// Runs the two phases against `engine` (whose target should report
/// lock_free_reads() for the ratio to mean anything — a lock-coupled
/// backend serializes the writer against every reader, which is the
/// regression this measures). Queries draw jittered coordinates from
/// `corpus`; the writer inserts/removes ids disjoint from corpus ids.
/// Disable the engine's cache for honest numbers: a cache hit
/// measures the cache, not the index.
Result<MixedRwReport> RunMixedReadWrite(QueryEngine* engine,
                                        const std::vector<KdPoint>& corpus,
                                        const MixedRwConfig& config);

}  // namespace workload
}  // namespace semtree

#endif  // SEMTREE_WORKLOAD_DRIVER_H_

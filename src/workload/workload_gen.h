// Copyright 2026 The SemTree Authors
//
// Deterministic adversarial workload generation (DESIGN.md §9): a
// seedable trace of mixed insert/remove/k-NN/range operations whose
// key popularity follows a Zipf law and whose hot set rotates on a
// piecewise-constant phase schedule, so benches can measure how the
// system behaves when the keys everyone is hitting *change* — the
// traffic shape the ROADMAP north-star targets, which uniform static
// corpora never exercise.
//
// Determinism contract: GenerateTrace is a pure function of
// (config, corpus). The full op trace — kinds, keys, coordinates,
// ids, budgets, phases — is materialized up front from the seed, and
// the open-loop driver (workload/driver.h) only *paces* it. Two runs
// with the same config therefore execute the identical op sequence at
// any target qps; TraceHash gives a cheap fingerprint to assert it.
//
// Phases are defined in op index space (`ops_per_phase`), not wall
// time, precisely so the trace cannot depend on qps. "The hot set
// rotates every T seconds at Q qps" is expressed as
// ops_per_phase = T * Q; the bench CLI does that arithmetic.

#ifndef SEMTREE_WORKLOAD_WORKLOAD_GEN_H_
#define SEMTREE_WORKLOAD_WORKLOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/point.h"
#include "core/query.h"

namespace semtree {
namespace workload {

enum class OpKind : uint8_t {
  kInsert = 0,
  kRemove = 1,
  kKnn = 2,
  kRange = 3,
};

const char* OpKindName(OpKind kind);

/// Relative frequencies of the op kinds (any non-negative weights with
/// a positive sum; they need not sum to 1).
struct OpMix {
  double insert = 0.05;
  double remove = 0.05;
  double knn = 0.60;
  double range = 0.30;
};

/// One entry of the budget-tier distribution: search ops draw a
/// SearchBudget from these by weight (PR 4's approximation knobs as
/// traffic classes — e.g. 80% exact, 20% capped "degraded" tier).
struct BudgetTier {
  SearchBudget budget;
  double weight = 1.0;
};

struct WorkloadConfig {
  /// Popularity domain; must equal the base corpus size handed to
  /// GenerateTrace. Key k targets corpus point with id == k.
  uint64_t num_keys = 10000;
  size_t dims = 8;

  /// Zipf skew exponent: 0 = uniform, 0.99 = YCSB default.
  double zipf_s = 0.99;

  size_t total_ops = 10000;

  /// Ops per popularity phase; 0 = a single phase. At the phase
  /// boundary the rank->key mapping rotates by `hotset_rotation`.
  size_t ops_per_phase = 0;

  /// Keys the hot set advances by each phase:
  /// key = (rank + phase * hotset_rotation) mod num_keys.
  uint64_t hotset_rotation = 0;

  OpMix mix;

  /// Budget classes for k-NN/range ops; empty = always exact.
  std::vector<BudgetTier> budget_tiers;

  size_t knn_k = 10;
  double range_radius = 0.25;

  /// Stddev of the Gaussian perturbation applied to the targeted
  /// corpus point for query coordinates (and inserted points), so
  /// queries do not trivially coincide with stored points.
  double query_noise = 0.02;

  uint64_t seed = 42;
};

/// One materialized operation of the trace.
struct WorkloadOp {
  OpKind kind = OpKind::kKnn;
  uint32_t phase = 0;
  uint64_t key = 0;  ///< Popularity-mapped corpus key this op targets.
  std::vector<double> coords;
  PointId id = 0;      ///< Insert/remove target id.
  size_t k = 0;        ///< k-NN only.
  double radius = 0.0; ///< Range only.
  SearchBudget budget;

  bool operator==(const WorkloadOp& o) const;
};

struct WorkloadTrace {
  std::vector<WorkloadOp> ops;
  size_t num_phases = 1;
};

/// Deterministic clustered base corpus: `num_keys` points with
/// id == index, drawn around `clusters` Gaussian centers in
/// [-1, 1]^dims. Pure function of its arguments.
std::vector<KdPoint> MakeClusteredCorpus(uint64_t num_keys, size_t dims,
                                         size_t clusters, uint64_t seed);

/// Like MakeClusteredCorpus, but cluster membership is assigned in
/// contiguous key ranges (keys [j*N/C, (j+1)*N/C) share center j)
/// instead of round-robin. Under a Zipfian key popularity the hot key
/// prefix is then spatially coherent — it concentrates on a few
/// subtrees/partitions — which is the skew the online rebalancer
/// (semtree/rebalance.h) is built to dissipate. Pure function of its
/// arguments.
std::vector<KdPoint> MakeContiguousClusteredCorpus(uint64_t num_keys,
                                                   size_t dims,
                                                   size_t clusters,
                                                   uint64_t seed);

/// Materializes the full op trace. Pure function of (config, corpus):
/// byte-identical output for identical inputs, on any machine or
/// thread count. Removes target only workload-inserted ids (drawn
/// deterministically from the live set; a remove with nothing live
/// degrades to an insert), so a generated trace never fails against a
/// corpus-loaded engine. Validates the config up front.
Result<WorkloadTrace> GenerateTrace(const WorkloadConfig& config,
                                    const std::vector<KdPoint>& corpus);

/// FNV-1a fingerprint over the canonical encoding of every op — two
/// traces hash equal iff they are member-wise identical (modulo hash
/// collisions). Used by the determinism tests and stamped into
/// BENCH_workload.json as `trace_hash`.
uint64_t TraceHash(const WorkloadTrace& trace);

}  // namespace workload
}  // namespace semtree

#endif  // SEMTREE_WORKLOAD_WORKLOAD_GEN_H_

// Copyright 2026 The SemTree Authors
//
// ZipfianGenerator: deterministic, seedable sampler of popularity ranks
// under a (truncated) Zipf law, the standard model of skewed key
// popularity in storage/serving workloads. Rank r in [0, n) is drawn
// with probability
//
//   p(r) = (1 / (r+1)^s) / H_{n,s},   H_{n,s} = sum_{k=1..n} 1/k^s
//
// where `s` is the skew exponent: s = 0 degenerates to the uniform
// distribution, s ~ 0.99 matches YCSB's default, larger s concentrates
// almost all mass on the first few ranks.
//
// Sampling is inverse-CDF over a precomputed cumulative table
// (O(n) doubles of memory, O(log n) per sample via binary search), so
// draws follow the *analytic* pmf exactly — no Gray-style rejection
// approximation — which is what the statistical-fit tests in
// tests/zipf_test.cc assert against. The generator owns its Rng: two
// instances built from the same (n, s, seed) produce byte-identical
// rank sequences regardless of what any other thread does (asserted
// across thread counts in tests).

#ifndef SEMTREE_WORKLOAD_ZIPF_H_
#define SEMTREE_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace semtree {
namespace workload {

class ZipfianGenerator {
 public:
  /// `num_keys` must be > 0; `s` must be finite and >= 0 (checked with
  /// assert; callers validate user input before constructing).
  ZipfianGenerator(uint64_t num_keys, double s, uint64_t seed);

  /// Next rank in [0, num_keys), 0 being the most popular.
  uint64_t Next();

  /// Analytic probability of `rank` (the distribution Next() samples
  /// from, exactly). Ranks >= num_keys have probability 0.
  double Pmf(uint64_t rank) const;

  uint64_t num_keys() const { return num_keys_; }
  double s() const { return s_; }

 private:
  uint64_t num_keys_;
  double s_;
  double harmonic_ = 1.0;  // H_{n,s}, the pmf normalizer.
  Rng rng_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r); back() == 1.0.
};

}  // namespace workload
}  // namespace semtree

#endif  // SEMTREE_WORKLOAD_ZIPF_H_

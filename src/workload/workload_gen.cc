// Copyright 2026 The SemTree Authors

#include "workload/workload_gen.h"

#include <bit>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "workload/zipf.h"

namespace semtree {
namespace workload {

namespace {

// Seed-stream separators: the corpus, the popularity sampler and the
// op stream must draw from independent streams so changing, say, the
// op mix never perturbs which points the corpus contains.
constexpr uint64_t kZipfStream = 0x5a1ff00d2121ULL;
constexpr uint64_t kOpStream = 0x09057263a5a5ULL;
constexpr uint64_t kCorpusStream = 0xc0590f5e77ULL;

Status ValidateConfig(const WorkloadConfig& c) {
  if (c.num_keys == 0) return Status::InvalidArgument("num_keys == 0");
  if (c.dims == 0) return Status::InvalidArgument("dims == 0");
  if (!std::isfinite(c.zipf_s) || c.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be finite and >= 0");
  }
  const double weights[] = {c.mix.insert, c.mix.remove, c.mix.knn,
                            c.mix.range};
  double sum = 0.0;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "op-mix weights must be finite and >= 0");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("op mix has no positive weight");
  }
  if (c.mix.knn > 0.0 && c.knn_k == 0) {
    return Status::InvalidArgument("knn_k == 0 with knn ops in the mix");
  }
  if (!std::isfinite(c.range_radius) || c.range_radius < 0.0) {
    return Status::InvalidArgument("range_radius must be finite and >= 0");
  }
  if (!std::isfinite(c.query_noise) || c.query_noise < 0.0) {
    return Status::InvalidArgument("query_noise must be finite and >= 0");
  }
  double tier_sum = 0.0;
  for (const BudgetTier& t : c.budget_tiers) {
    if (!std::isfinite(t.weight) || t.weight < 0.0) {
      return Status::InvalidArgument(
          "budget-tier weights must be finite and >= 0");
    }
    if (!(t.budget.epsilon >= 0.0)) {
      return Status::InvalidArgument(
          "budget-tier epsilon must be >= 0 (and not NaN)");
    }
    tier_sum += t.weight;
  }
  if (!c.budget_tiers.empty() && tier_sum <= 0.0) {
    return Status::InvalidArgument("budget tiers have no positive weight");
  }
  return Status::OK();
}

// Weighted pick over cumulative weights; `u` uniform in [0, sum).
size_t PickWeighted(const double* cumulative, size_t n, double u) {
  for (size_t i = 0; i + 1 < n; ++i) {
    if (u < cumulative[i]) return i;
  }
  return n - 1;
}

void HashBytes(const void* data, size_t n, uint64_t* h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 0x100000001b3ULL;  // FNV-1a prime.
  }
}

void HashU64(uint64_t v, uint64_t* h) { HashBytes(&v, sizeof(v), h); }

void HashDouble(double v, uint64_t* h) {
  // Bit pattern, so -0.0 vs 0.0 and NaN payloads all distinguish.
  HashU64(std::bit_cast<uint64_t>(v), h);
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert:
      return "insert";
    case OpKind::kRemove:
      return "remove";
    case OpKind::kKnn:
      return "knn";
    case OpKind::kRange:
      return "range";
  }
  return "unknown";
}

bool WorkloadOp::operator==(const WorkloadOp& o) const {
  return kind == o.kind && phase == o.phase && key == o.key &&
         coords == o.coords && id == o.id && k == o.k &&
         radius == o.radius && budget == o.budget;
}

std::vector<KdPoint> MakeClusteredCorpus(uint64_t num_keys, size_t dims,
                                         size_t clusters, uint64_t seed) {
  if (clusters == 0) clusters = 1;
  Rng rng(seed ^ kCorpusStream);
  std::vector<std::vector<double>> centers(clusters);
  for (auto& center : centers) {
    center.resize(dims);
    for (double& c : center) c = rng.UniformDouble(-1.0, 1.0);
  }
  std::vector<KdPoint> corpus(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    const std::vector<double>& center = centers[i % clusters];
    corpus[i].id = i;
    corpus[i].coords.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      corpus[i].coords[d] = center[d] + 0.1 * rng.Gaussian();
    }
  }
  return corpus;
}

std::vector<KdPoint> MakeContiguousClusteredCorpus(uint64_t num_keys,
                                                   size_t dims,
                                                   size_t clusters,
                                                   uint64_t seed) {
  if (clusters == 0) clusters = 1;
  Rng rng(seed ^ kCorpusStream);
  std::vector<std::vector<double>> centers(clusters);
  for (auto& center : centers) {
    center.resize(dims);
    for (double& c : center) c = rng.UniformDouble(-1.0, 1.0);
  }
  std::vector<KdPoint> corpus(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    // Contiguous assignment: key range [j*N/C, (j+1)*N/C) forms one
    // spatial cluster, so a Zipf-hot key prefix lands on few subtrees.
    const std::vector<double>& center =
        centers[static_cast<size_t>(i * clusters / num_keys)];
    corpus[i].id = i;
    corpus[i].coords.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      corpus[i].coords[d] = center[d] + 0.1 * rng.Gaussian();
    }
  }
  return corpus;
}

Result<WorkloadTrace> GenerateTrace(const WorkloadConfig& config,
                                    const std::vector<KdPoint>& corpus) {
  SEMTREE_RETURN_NOT_OK(ValidateConfig(config));
  if (corpus.size() != config.num_keys) {
    return Status::InvalidArgument(StringPrintf(
        "corpus has %zu points, config.num_keys is %llu", corpus.size(),
        static_cast<unsigned long long>(config.num_keys)));
  }
  for (const KdPoint& p : corpus) {
    if (p.coords.size() != config.dims) {
      return Status::InvalidArgument("corpus point dimensionality "
                                     "differs from config.dims");
    }
  }

  WorkloadTrace trace;
  trace.ops.reserve(config.total_ops);
  trace.num_phases =
      config.ops_per_phase == 0 || config.total_ops == 0
          ? 1
          : (config.total_ops + config.ops_per_phase - 1) /
                config.ops_per_phase;

  ZipfianGenerator zipf(config.num_keys, config.zipf_s,
                        config.seed ^ kZipfStream);
  Rng rng(config.seed ^ kOpStream);

  const double mix_cum[4] = {
      config.mix.insert, config.mix.insert + config.mix.remove,
      config.mix.insert + config.mix.remove + config.mix.knn,
      config.mix.insert + config.mix.remove + config.mix.knn +
          config.mix.range};
  std::vector<double> tier_cum;
  tier_cum.reserve(config.budget_tiers.size());
  double tier_sum = 0.0;
  for (const BudgetTier& t : config.budget_tiers) {
    tier_sum += t.weight;
    tier_cum.push_back(tier_sum);
  }

  // Live workload-inserted points, so removes always target something
  // that exists at execution time (trace order == program order).
  std::vector<std::pair<PointId, std::vector<double>>> live;
  PointId next_id = config.num_keys;

  for (size_t i = 0; i < config.total_ops; ++i) {
    WorkloadOp op;
    op.phase = config.ops_per_phase == 0
                   ? 0
                   : static_cast<uint32_t>(i / config.ops_per_phase);
    uint64_t rank = zipf.Next();
    op.key = (rank + static_cast<uint64_t>(op.phase) *
                         config.hotset_rotation) %
             config.num_keys;

    size_t kind_idx =
        PickWeighted(mix_cum, 4, rng.UniformDouble() * mix_cum[3]);
    op.kind = static_cast<OpKind>(kind_idx);
    // A remove with nothing live degrades to an insert so the trace
    // never depends on execution-time failures.
    if (op.kind == OpKind::kRemove && live.empty()) {
      op.kind = OpKind::kInsert;
    }

    switch (op.kind) {
      case OpKind::kInsert: {
        op.id = next_id++;
        op.coords = corpus[op.key].coords;
        for (double& c : op.coords) c += config.query_noise * rng.Gaussian();
        live.emplace_back(op.id, op.coords);
        break;
      }
      case OpKind::kRemove: {
        size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
        op.id = live[pick].first;
        op.coords = live[pick].second;
        live[pick] = std::move(live.back());
        live.pop_back();
        break;
      }
      case OpKind::kKnn:
      case OpKind::kRange: {
        op.coords = corpus[op.key].coords;
        for (double& c : op.coords) c += config.query_noise * rng.Gaussian();
        if (op.kind == OpKind::kKnn) {
          op.k = config.knn_k;
        } else {
          op.radius = config.range_radius;
        }
        if (!config.budget_tiers.empty()) {
          size_t tier = PickWeighted(tier_cum.data(), tier_cum.size(),
                                     rng.UniformDouble() * tier_sum);
          op.budget = config.budget_tiers[tier].budget;
        }
        break;
      }
    }
    trace.ops.push_back(std::move(op));
  }
  return trace;
}

uint64_t TraceHash(const WorkloadTrace& trace) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  HashU64(trace.num_phases, &h);
  HashU64(trace.ops.size(), &h);
  for (const WorkloadOp& op : trace.ops) {
    HashU64(static_cast<uint64_t>(op.kind), &h);
    HashU64(op.phase, &h);
    HashU64(op.key, &h);
    HashU64(op.id, &h);
    HashU64(op.k, &h);
    HashDouble(op.radius, &h);
    HashU64(op.budget.max_distance_computations, &h);
    HashU64(op.budget.max_nodes_visited, &h);
    HashDouble(op.budget.epsilon, &h);
    for (double c : op.coords) HashDouble(c, &h);
  }
  return h;
}

}  // namespace workload
}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "workload/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/string_util.h"

namespace semtree {
namespace workload {

namespace {

uint32_t ClampPrecision(uint32_t bits) {
  return std::clamp<uint32_t>(bits, 1, 14);
}

// Unit region [0, 2^(m+1)) plus (63 - m) log buckets of 2^m
// sub-buckets each — enough to cover the full uint64 range.
size_t NumBuckets(uint32_t m) {
  return (size_t{2} << m) + (63 - m) * (size_t{1} << m);
}

}  // namespace

LatencyHistogram::LatencyHistogram(uint32_t precision_bits)
    : precision_bits_(ClampPrecision(precision_bits)),
      counts_(NumBuckets(precision_bits_), 0) {}

size_t LatencyHistogram::BucketIndex(uint64_t value) const {
  const uint32_t m = precision_bits_;
  if (value < (uint64_t{2} << m)) return static_cast<size_t>(value);
  // floor(log2(value)) >= m + 1 here.
  const uint32_t log2v = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t e = log2v - m;
  const uint64_t mantissa = value >> e;  // In [2^m, 2^(m+1)).
  return (size_t{2} << m) + (size_t{e} - 1) * (size_t{1} << m) +
         static_cast<size_t>(mantissa - (uint64_t{1} << m));
}

uint64_t LatencyHistogram::BucketUpperEdge(size_t index) const {
  const uint32_t m = precision_bits_;
  if (index < (size_t{2} << m)) return index;  // Unit region: exact.
  const size_t j = index - (size_t{2} << m);
  const uint32_t e = static_cast<uint32_t>(j >> m) + 1;
  const uint64_t mantissa =
      (uint64_t{1} << m) + (j & ((uint64_t{1} << m) - 1));
  // The topmost bucket's edge is 2^64 - 1; the unsigned wraparound of
  // (2^(m+1) << (63-m)) - 1 lands there exactly.
  return ((mantissa + 1) << e) - 1;
}

void LatencyHistogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  counts_[BucketIndex(value)] += count;
  count_ += count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

Status LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.precision_bits_ != precision_bits_) {
    return Status::InvalidArgument(StringPrintf(
        "cannot merge histograms of precision %u and %u",
        other.precision_bits_, precision_bits_));
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return Status::OK();
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return BucketUpperEdge(i);
  }
  return max_;  // Unreachable: cumulative reaches count_ >= rank.
}

double LatencyHistogram::ApproximateMean() const {
  if (count_ == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      sum += static_cast<double>(counts_[i]) *
             static_cast<double>(BucketUpperEdge(i));
    }
  }
  return sum / static_cast<double>(count_);
}

double LatencyHistogram::MaxRelativeError() const {
  return 1.0 / static_cast<double>(uint64_t{1} << precision_bits_);
}

bool LatencyHistogram::IdenticalTo(const LatencyHistogram& other) const {
  return precision_bits_ == other.precision_bits_ &&
         counts_ == other.counts_;
}

}  // namespace workload
}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "persist/wire.h"

#include <array>

namespace semtree {
namespace persist {

namespace {

// Slicing-by-8 CRC32 (IEEE 802.3 polynomial 0xEDB88320, reflected):
// eight table lookups per 8-byte block instead of one per byte, so
// checksumming runs at multi-GB/s and never dominates a snapshot load.
struct CrcTables {
  uint32_t t[8][256];
};

CrcTables MakeCrcTables() {
  CrcTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables.t[0][i];
    for (int slice = 1; slice < 8; ++slice) {
      c = tables.t[0][c & 0xFF] ^ (c >> 8);
      tables.t[slice][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const CrcTables kTables = MakeCrcTables();
  const auto& t = kTables.t;
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    if constexpr (kHostIsLittleEndian) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
            t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][hi & 0xFF] ^
            t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^
            t[0][hi >> 24];
    } else {
      for (int i = 0; i < 8; ++i) {
        crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
      }
    }
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace persist
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Wire primitives of the binary snapshot format (see DESIGN.md §5):
// a little-endian ByteWriter/ByteReader pair and the CRC32 used to
// checksum snapshot sections. Encoding is explicitly little-endian —
// bytes are assembled with shifts, never by dumping structs — so a
// snapshot written on one machine loads on any other. The reader is
// bounds-checked everywhere: a truncated or malformed buffer yields
// Status::Corruption, never an out-of-range read.
//
// This layer knows nothing about files or sections; snapshot.h builds
// the framed, checksummed container on top of it.

#ifndef SEMTREE_PERSIST_WIRE_H_
#define SEMTREE_PERSIST_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace semtree {
namespace persist {

/// Fixed-width arrays are memcpy'd wholesale on little-endian hosts
/// (every supported target) and fall back to per-element shifts on
/// big-endian ones, so the on-disk bytes are identical either way.
inline constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;

/// CRC32 (IEEE 802.3 polynomial, reflected) of `size` bytes. Pass a
/// previous checksum as `seed` to extend it over several buffers.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Appends little-endian primitives to a growing byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutU64(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Raw bytes, no prefix (container framing, magic numbers).
  void PutRaw(std::string_view s) { buf_.append(s.data(), s.size()); }

  /// `count` doubles with no length prefix (bit-exact); for spans the
  /// reader knows the size of, e.g. arena chunk runs.
  void PutDoublesRaw(const double* data, size_t count) {
    if (count == 0) return;  // Empty spans may carry a null pointer.
    if constexpr (kHostIsLittleEndian) {
      buf_.append(reinterpret_cast<const char*>(data),
                  count * sizeof(double));
    } else {
      for (size_t i = 0; i < count; ++i) PutDouble(data[i]);
    }
  }

  /// Length-prefixed coordinate rows (count doubles, bit-exact).
  void PutDoubleArray(const double* data, size_t count) {
    PutU64(count);
    PutDoublesRaw(data, count);
  }

  void PutU32Array(const std::vector<uint32_t>& v) {
    PutU64(v.size());
    if (v.empty()) return;  // data() may be null on empty vectors.
    if constexpr (kHostIsLittleEndian) {
      buf_.append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(uint32_t));
    } else {
      for (uint32_t x : v) PutU32(x);
    }
  }

  void PutU64Array(const std::vector<uint64_t>& v) {
    PutU64(v.size());
    if (v.empty()) return;  // data() may be null on empty vectors.
    if constexpr (kHostIsLittleEndian) {
      buf_.append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(uint64_t));
    } else {
      for (uint64_t x : v) PutU64(x);
    }
  }

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reads over a non-owned byte span.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8() {
    SEMTREE_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> U32() {
    SEMTREE_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    SEMTREE_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<int32_t> I32() {
    SEMTREE_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }

  Result<double> Double() {
    SEMTREE_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> String() {
    SEMTREE_ASSIGN_OR_RETURN(uint64_t n, U64());
    SEMTREE_RETURN_NOT_OK(Need(n));
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  /// `count` doubles with no length prefix, into `out` (the bulk
  /// counterpart of PutDoublesRaw).
  Status DoublesRaw(double* out, uint64_t count) {
    SEMTREE_RETURN_NOT_OK(NeedElems(count, sizeof(double)));
    if (count == 0) return Status::OK();  // `out` may be null here.
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(out, data_.data() + pos_, count * sizeof(double));
      pos_ += count * sizeof(double);
    } else {
      for (uint64_t i = 0; i < count; ++i) out[i] = *Double();
    }
    return Status::OK();
  }

  Result<std::vector<double>> DoubleArray() {
    SEMTREE_ASSIGN_OR_RETURN(uint64_t n, U64());
    SEMTREE_RETURN_NOT_OK(NeedElems(n, sizeof(double)));
    std::vector<double> out(n);
    SEMTREE_RETURN_NOT_OK(DoublesRaw(out.data(), n));
    return out;
  }

  Result<std::vector<uint32_t>> U32Array() {
    SEMTREE_ASSIGN_OR_RETURN(uint64_t n, U64());
    SEMTREE_RETURN_NOT_OK(NeedElems(n, sizeof(uint32_t)));
    std::vector<uint32_t> out(n);
    if (n == 0) return out;  // out.data() may be null on empty vectors.
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(out.data(), data_.data() + pos_, n * sizeof(uint32_t));
      pos_ += n * sizeof(uint32_t);
    } else {
      for (uint64_t i = 0; i < n; ++i) out[i] = *U32();
    }
    return out;
  }

  Result<std::vector<uint64_t>> U64Array() {
    SEMTREE_ASSIGN_OR_RETURN(uint64_t n, U64());
    SEMTREE_RETURN_NOT_OK(NeedElems(n, sizeof(uint64_t)));
    std::vector<uint64_t> out(n);
    if (n == 0) return out;  // out.data() may be null on empty vectors.
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(out.data(), data_.data() + pos_, n * sizeof(uint64_t));
      pos_ += n * sizeof(uint64_t);
    } else {
      for (uint64_t i = 0; i < n; ++i) out[i] = *U64();
    }
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Overflow-safe sanity bound for a deserialized element count: OK
  /// iff `count` records of at least `min_record_bytes` each could
  /// still fit in the remaining buffer. Loaders call this before
  /// reserve()ing, so a crafted count can neither wrap arithmetic nor
  /// trigger a huge allocation (which would abort, not return Status).
  Status CheckCount(uint64_t count, size_t min_record_bytes) const {
    if (count > (data_.size() - pos_) / min_record_bytes) {
      return Status::Corruption("snapshot count exceeds remaining bytes");
    }
    return Status::OK();
  }

 private:
  Status Need(uint64_t n) const {
    if (n > data_.size() - pos_) {
      return Status::Corruption("snapshot truncated mid-record");
    }
    return Status::OK();
  }

  /// Overflow-safe Need(count * elem_size) for length-prefixed arrays:
  /// a hostile count cannot wrap the multiplication or trigger a huge
  /// allocation — the buffer itself bounds it.
  Status NeedElems(uint64_t count, size_t elem_size) const {
    if (count > (data_.size() - pos_) / elem_size) {
      return Status::Corruption("snapshot truncated mid-record");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace persist
}  // namespace semtree

#endif  // SEMTREE_PERSIST_WIRE_H_

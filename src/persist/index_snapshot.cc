// Copyright 2026 The SemTree Authors

#include "persist/index_snapshot.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "core/backends.h"
#include "kdtree/kdtree.h"
#include "kdtree/linear_scan.h"
#include "ontology/vocabulary_io.h"
#include "persist/snapshot.h"
#include "rdf/turtle.h"

namespace semtree {
namespace persist {

namespace {

// Section tags. Spatial-index and semantic-index snapshots use
// disjoint ranges so a file of one family cannot half-parse as the
// other.
constexpr uint32_t kSecBackendKind = 0x10;
constexpr uint32_t kSecBackendBlob = 0x11;
// Per-index tuning state: the default SearchBudget (DESIGN.md §6)
// followed — since the kernel layer (DESIGN.md §7) — by one Metric
// byte, followed — since the bulk-build pipeline (DESIGN.md §8) — by
// one SplitPolicy byte. All tails are optional on read:
// pre-approximation snapshots have no section and load exact/L2/median;
// pre-metric snapshots have the 24-byte budget-only section and load
// under L2/median; pre-split-policy snapshots stop after the metric
// and load under median.
constexpr uint32_t kSecBackendBudget = 0x12;
constexpr uint32_t kSecSemOptions = 0x20;
constexpr uint32_t kSecSemVocabulary = 0x21;
constexpr uint32_t kSecSemTriples = 0x22;
constexpr uint32_t kSecSemFastMap = 0x23;
constexpr uint32_t kSecSemTree = 0x24;

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StringPrintf("cannot open snapshot '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

// --------------------------------------------------------------------
// Spatial-index snapshots

Result<std::string> SerializeSpatialIndex(const SpatialIndex& index) {
  Snapshot snap;
  BackendKind kind;
  ByteWriter* blob = nullptr;
  if (auto* kd = dynamic_cast<const KdTree*>(&index)) {
    kind = BackendKind::kKdTree;
    blob = snap.AddSection(kSecBackendBlob);
    kd->SaveTo(blob);
  } else if (auto* lin = dynamic_cast<const LinearScanIndex*>(&index)) {
    kind = BackendKind::kLinearScan;
    blob = snap.AddSection(kSecBackendBlob);
    lin->SaveTo(blob);
  } else if (auto* vp = dynamic_cast<const VpTreeIndex*>(&index)) {
    kind = BackendKind::kVpTree;
    blob = snap.AddSection(kSecBackendBlob);
    vp->SaveTo(blob);
  } else if (auto* mt = dynamic_cast<const MTreeIndex*>(&index)) {
    kind = BackendKind::kMTree;
    blob = snap.AddSection(kSecBackendBlob);
    mt->SaveTo(blob);
  } else {
    return Status::NotSupported(StringPrintf(
        "no snapshot support for backend '%.*s'",
        static_cast<int>(index.name().size()), index.name().data()));
  }
  snap.AddSection(kSecBackendKind)->PutU32(static_cast<uint32_t>(kind));
  // The index's default SearchBudget and its Metric are tuning state:
  // a warm-restarted server keeps serving at the approximation level
  // and under the geometry it was configured for. (Per-query budgets
  // are request state and are never persisted.)
  const SearchBudget& budget = index.default_budget();
  ByteWriter* tuning = snap.AddSection(kSecBackendBudget);
  tuning->PutU64(budget.max_distance_computations);
  tuning->PutU64(budget.max_nodes_visited);
  tuning->PutDouble(budget.epsilon);
  tuning->PutU8(static_cast<uint8_t>(index.metric()));
  tuning->PutU8(static_cast<uint8_t>(index.split_policy()));
  return snap.Serialize();
}

Status SaveSpatialIndex(const SpatialIndex& index,
                        const std::string& path) {
  SEMTREE_ASSIGN_OR_RETURN(std::string bytes,
                           SerializeSpatialIndex(index));
  return AtomicWriteFile(path, bytes);
}

namespace {

// Decoded tuning section; defaults describe snapshots that predate it
// (exact budget, L2 metric).
struct BackendTuning {
  bool has_budget = false;
  SearchBudget budget;
  Metric metric = Metric::kL2;
  SplitPolicy split_policy = SplitPolicy::kMedian;
};

// Reads the optional tuning section. The metric must be known *before*
// the backend blob is reconstructed — the metric trees bind their
// distance oracles at load time — so this runs first and the budget is
// applied after.
Result<BackendTuning> ReadTuning(const SnapshotReader& snap) {
  BackendTuning tuning;
  if (!snap.Has(kSecBackendBudget)) return tuning;
  SEMTREE_ASSIGN_OR_RETURN(ByteReader in,
                           snap.Section(kSecBackendBudget));
  tuning.has_budget = true;
  SEMTREE_ASSIGN_OR_RETURN(tuning.budget.max_distance_computations,
                           in.U64());
  SEMTREE_ASSIGN_OR_RETURN(tuning.budget.max_nodes_visited, in.U64());
  SEMTREE_ASSIGN_OR_RETURN(tuning.budget.epsilon, in.Double());
  if (!(tuning.budget.epsilon >= 0.0)) {
    return Status::Corruption("snapshot default budget has bad epsilon");
  }
  // Optional tail: pre-metric snapshots end after the epsilon.
  if (in.remaining() > 0) {
    SEMTREE_ASSIGN_OR_RETURN(uint8_t raw, in.U8());
    if (!MetricFromU8(raw, &tuning.metric)) {
      return Status::Corruption(
          StringPrintf("unknown metric %u in snapshot", raw));
    }
  }
  // Optional tail: pre-split-policy snapshots end after the metric.
  if (in.remaining() > 0) {
    SEMTREE_ASSIGN_OR_RETURN(uint8_t raw, in.U8());
    if (!SplitPolicyFromU8(raw, &tuning.split_policy)) {
      return Status::Corruption(
          StringPrintf("unknown split policy %u in snapshot", raw));
    }
  }
  return tuning;
}

}  // namespace

Result<std::unique_ptr<SpatialIndex>> ParseSpatialIndex(
    std::string bytes) {
  SEMTREE_ASSIGN_OR_RETURN(SnapshotReader snap,
                           SnapshotReader::Parse(std::move(bytes)));
  SEMTREE_ASSIGN_OR_RETURN(ByteReader kind_in,
                           snap.Section(kSecBackendKind));
  SEMTREE_ASSIGN_OR_RETURN(uint32_t kind, kind_in.U32());
  SEMTREE_ASSIGN_OR_RETURN(BackendTuning tuning, ReadTuning(snap));
  SEMTREE_ASSIGN_OR_RETURN(ByteReader blob,
                           snap.Section(kSecBackendBlob));
  std::unique_ptr<SpatialIndex> out;
  switch (static_cast<BackendKind>(kind)) {
    case BackendKind::kKdTree: {
      SEMTREE_ASSIGN_OR_RETURN(KdTree tree, KdTree::LoadFrom(&blob));
      out = std::make_unique<KdTree>(std::move(tree));
      // Coordinate splits are metric-independent, so the metric can be
      // applied to the loaded structure (same for the linear scan).
      SEMTREE_RETURN_NOT_OK(out->set_metric(tuning.metric));
      break;
    }
    case BackendKind::kLinearScan: {
      SEMTREE_ASSIGN_OR_RETURN(LinearScanIndex index,
                               LinearScanIndex::LoadFrom(&blob));
      out = std::make_unique<LinearScanIndex>(std::move(index));
      SEMTREE_RETURN_NOT_OK(out->set_metric(tuning.metric));
      break;
    }
    case BackendKind::kVpTree: {
      SEMTREE_ASSIGN_OR_RETURN(
          std::unique_ptr<VpTreeIndex> index,
          VpTreeIndex::LoadFrom(&blob, tuning.metric));
      out = std::move(index);
      break;
    }
    case BackendKind::kMTree: {
      SEMTREE_ASSIGN_OR_RETURN(
          std::unique_ptr<MTreeIndex> index,
          MTreeIndex::LoadFrom(&blob, tuning.metric));
      out = std::move(index);
      break;
    }
  }
  if (out == nullptr) {
    return Status::Corruption(
        StringPrintf("unknown backend kind %u in snapshot", kind));
  }
  if (tuning.has_budget) out->set_default_budget(tuning.budget);
  // The split policy only shapes *future* bulk builds; applying it to
  // the loaded structure is pure metadata restoration.
  SEMTREE_RETURN_NOT_OK(out->set_split_policy(tuning.split_policy));
  return out;
}

Result<std::unique_ptr<SpatialIndex>> LoadSpatialIndex(
    const std::string& path) {
  SEMTREE_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  return ParseSpatialIndex(std::move(bytes));
}

// --------------------------------------------------------------------
// Semantic-index snapshots

Result<std::string> SerializeIndexSnapshot(const SemanticIndex& index) {
  Snapshot snap;

  const SemanticIndexOptions& opts = index.options();
  ByteWriter* meta = snap.AddSection(kSecSemOptions);
  meta->PutDouble(opts.weights.alpha);
  meta->PutDouble(opts.weights.beta);
  meta->PutDouble(opts.weights.gamma);
  meta->PutU32(static_cast<uint32_t>(opts.element.string_distance));
  meta->PutU32(static_cast<uint32_t>(opts.element.concept_measure));
  meta->PutDouble(opts.element.mixed_kind_distance);
  meta->PutU64(opts.bucket_size);
  meta->PutU8(opts.rerank_by_semantic_distance ? 1 : 0);

  snap.AddSection(kSecSemVocabulary)
      ->PutString(SerializeVocabulary(index.taxonomy()));

  ByteWriter* triples = snap.AddSection(kSecSemTriples);
  triples->PutU64(index.size());
  for (TripleId id = 0; id < index.size(); ++id) {
    triples->PutString(index.triple(id).ToString());
  }

  const FastMap& fm = index.fastmap();
  ByteWriter* fastmap = snap.AddSection(kSecSemFastMap);
  fastmap->PutU64(fm.size());
  fastmap->PutU64(fm.dimensions());
  fastmap->PutU64(fm.effective_dimensions());
  for (size_t axis = 0; axis < fm.effective_dimensions(); ++axis) {
    fastmap->PutU64(fm.pivots()[axis].first);
    fastmap->PutU64(fm.pivots()[axis].second);
    fastmap->PutDouble(fm.pivot_distances()[axis]);
  }
  fastmap->PutDoubleArray(fm.flat_coordinates().data(),
                          fm.flat_coordinates().size());

  SEMTREE_RETURN_NOT_OK(index.tree().SaveTo(snap.AddSection(kSecSemTree)));
  return snap.Serialize();
}

Status SaveIndexSnapshot(const SemanticIndex& index,
                         const std::string& path) {
  SEMTREE_ASSIGN_OR_RETURN(std::string bytes,
                           SerializeIndexSnapshot(index));
  return AtomicWriteFile(path, bytes);
}

Result<IndexBundle> ParseIndexSnapshot(
    std::string bytes, const SemanticIndexOptions& runtime) {
  SEMTREE_ASSIGN_OR_RETURN(SnapshotReader snap,
                           SnapshotReader::Parse(std::move(bytes)));

  SemanticIndexOptions opts = runtime;
  SEMTREE_ASSIGN_OR_RETURN(ByteReader meta, snap.Section(kSecSemOptions));
  SEMTREE_ASSIGN_OR_RETURN(opts.weights.alpha, meta.Double());
  SEMTREE_ASSIGN_OR_RETURN(opts.weights.beta, meta.Double());
  SEMTREE_ASSIGN_OR_RETURN(opts.weights.gamma, meta.Double());
  SEMTREE_ASSIGN_OR_RETURN(uint32_t string_kind, meta.U32());
  SEMTREE_ASSIGN_OR_RETURN(uint32_t measure, meta.U32());
  opts.element.string_distance =
      static_cast<StringDistanceKind>(string_kind);
  opts.element.concept_measure = static_cast<SimilarityMeasure>(measure);
  SEMTREE_ASSIGN_OR_RETURN(opts.element.mixed_kind_distance,
                           meta.Double());
  SEMTREE_ASSIGN_OR_RETURN(opts.bucket_size, meta.U64());
  SEMTREE_ASSIGN_OR_RETURN(uint8_t rerank, meta.U8());
  opts.rerank_by_semantic_distance = rerank != 0;

  SEMTREE_ASSIGN_OR_RETURN(ByteReader vocab_in,
                           snap.Section(kSecSemVocabulary));
  SEMTREE_ASSIGN_OR_RETURN(std::string vocab_text, vocab_in.String());
  SEMTREE_ASSIGN_OR_RETURN(Taxonomy vocab, ParseVocabulary(vocab_text));

  SEMTREE_ASSIGN_OR_RETURN(ByteReader triples_in,
                           snap.Section(kSecSemTriples));
  SEMTREE_ASSIGN_OR_RETURN(uint64_t triple_count, triples_in.U64());
  SEMTREE_RETURN_NOT_OK(triples_in.CheckCount(triple_count, 8));
  std::vector<Triple> corpus;
  corpus.reserve(triple_count);
  for (uint64_t i = 0; i < triple_count; ++i) {
    SEMTREE_ASSIGN_OR_RETURN(std::string line, triples_in.String());
    auto triple = ParseTriple(line);
    if (!triple.ok()) {
      return Status::Corruption(StringPrintf(
          "triple %llu: %s", (unsigned long long)i,
          triple.status().message().c_str()));
    }
    corpus.push_back(std::move(*triple));
  }

  SEMTREE_ASSIGN_OR_RETURN(ByteReader fm_in, snap.Section(kSecSemFastMap));
  SEMTREE_ASSIGN_OR_RETURN(uint64_t fm_n, fm_in.U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t fm_dims, fm_in.U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t fm_eff, fm_in.U64());
  if (fm_n != corpus.size()) {
    return Status::Corruption("embedding size disagrees with corpus");
  }
  SEMTREE_RETURN_NOT_OK(fm_in.CheckCount(fm_eff, 24));
  std::vector<std::pair<size_t, size_t>> pivots;
  std::vector<double> pivot_distances;
  pivots.reserve(fm_eff);
  pivot_distances.reserve(fm_eff);
  for (uint64_t axis = 0; axis < fm_eff; ++axis) {
    SEMTREE_ASSIGN_OR_RETURN(uint64_t a, fm_in.U64());
    SEMTREE_ASSIGN_OR_RETURN(uint64_t b, fm_in.U64());
    SEMTREE_ASSIGN_OR_RETURN(double dist, fm_in.Double());
    pivots.emplace_back(size_t(a), size_t(b));
    pivot_distances.push_back(dist);
  }
  SEMTREE_ASSIGN_OR_RETURN(std::vector<double> flat, fm_in.DoubleArray());
  if (flat.size() != fm_n * fm_dims) {
    return Status::Corruption("embedding coordinate block has wrong size");
  }
  SEMTREE_ASSIGN_OR_RETURN(
      FastMap fastmap,
      FastMap::FromParts(fm_n, fm_dims, std::move(flat), std::move(pivots),
                         std::move(pivot_distances)));

  // Reassemble the SemTree from its partition blobs — runtime knobs
  // (partitions, latency) come from the caller like in the v1 loader.
  SemTreeOptions topts;
  topts.max_partitions = opts.max_partitions;
  topts.partition_capacity = opts.partition_capacity;
  topts.network_latency = opts.network_latency;
  SEMTREE_ASSIGN_OR_RETURN(ByteReader tree_in, snap.Section(kSecSemTree));
  SEMTREE_ASSIGN_OR_RETURN(std::unique_ptr<SemTree> tree,
                           SemTree::LoadFrom(&tree_in, std::move(topts)));

  IndexBundle bundle;
  bundle.vocabulary = std::make_unique<Taxonomy>(std::move(vocab));
  SEMTREE_ASSIGN_OR_RETURN(
      bundle.index,
      SemanticIndex::RestoreWithTree(bundle.vocabulary.get(),
                                     std::move(corpus), std::move(fastmap),
                                     std::move(tree), opts));
  return bundle;
}

Result<IndexBundle> LoadIndexSnapshot(const std::string& path,
                                      const SemanticIndexOptions& runtime) {
  SEMTREE_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  return ParseIndexSnapshot(std::move(bytes), runtime);
}

}  // namespace persist
}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "persist/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/string_util.h"

namespace semtree {
namespace persist {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'M', 'S', 'N', 'A', 'P', '2'};

}  // namespace

bool LooksLikeSnapshot(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

bool FileLooksLikeSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char head[sizeof(kMagic)];
  in.read(head, sizeof(head));
  return in.gcount() == sizeof(head) &&
         LooksLikeSnapshot(std::string_view(head, sizeof(head)));
}

Status AtomicWriteFile(const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
  // POSIX path: fsync the temp file before the rename and the
  // containing directory after it, so the swap survives a system
  // crash, not just a process crash.
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable(
        StringPrintf("cannot write '%s'", tmp.c_str()));
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot sync " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable(
        StringPrintf("cannot rename '%s' into place", tmp.c_str()));
  }
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);  // Durability of the rename itself; best effort.
    ::close(dfd);
  }
  return Status::OK();
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable(
          StringPrintf("cannot write '%s'", tmp.c_str()));
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::Unavailable("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable(
        StringPrintf("cannot rename '%s' into place", tmp.c_str()));
  }
  return Status::OK();
#endif
}

ByteWriter* Snapshot::AddSection(uint32_t tag) {
  sections_.emplace_back(tag, ByteWriter{});
  return &sections_.back().second;
}

std::string Snapshot::Serialize() const {
  ByteWriter out;
  out.PutRaw(std::string_view(kMagic, sizeof(kMagic)));
  out.PutU32(kSnapshotVersion);
  out.PutU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [tag, writer] : sections_) {
    const std::string& payload = writer.bytes();
    out.PutU32(tag);
    out.PutU64(payload.size());
    out.PutRaw(payload);
    out.PutU32(Crc32(payload.data(), payload.size()));
  }
  return out.Take();
}

Status Snapshot::WriteFile(const std::string& path) const {
  return AtomicWriteFile(path, Serialize());
}

Result<SnapshotReader> SnapshotReader::Parse(std::string bytes) {
  SnapshotReader reader;
  reader.bytes_ = std::move(bytes);
  const std::string& buf = reader.bytes_;
  if (!LooksLikeSnapshot(buf)) {
    return Status::Corruption("not a SemTree snapshot (bad magic)");
  }
  if (buf.size() < sizeof(kMagic) + 8) {
    return Status::Corruption("snapshot truncated (no header)");
  }

  auto read_u32 = [&buf](size_t off) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[off + i]))
           << (8 * i);
    }
    return v;
  };
  auto read_u64 = [&buf](size_t off) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[off + i]))
           << (8 * i);
    }
    return v;
  };

  uint32_t version = read_u32(sizeof(kMagic));
  if (version != kSnapshotVersion) {
    return Status::NotSupported(
        StringPrintf("unsupported snapshot version %u", version));
  }
  uint32_t count = read_u32(sizeof(kMagic) + 4);
  const size_t end = buf.size();
  size_t offset = sizeof(kMagic) + 8;
  for (uint32_t i = 0; i < count; ++i) {
    if (offset + 12 > end) {
      return Status::Corruption("snapshot truncated in a section header");
    }
    uint32_t tag = read_u32(offset);
    uint64_t size = read_u64(offset + 4);
    size_t payload_off = offset + 12;
    if (size > end - payload_off || end - payload_off - size < 4) {
      return Status::Corruption(StringPrintf("section %u truncated", tag));
    }
    uint32_t stored_crc = read_u32(payload_off + size);
    uint32_t actual_crc = Crc32(buf.data() + payload_off, size);
    if (stored_crc != actual_crc) {
      return Status::Corruption(
          StringPrintf("section %u checksum mismatch "
                       "(stored %08x, computed %08x)",
                       tag, stored_crc, actual_crc));
    }
    if (!reader.sections_.emplace(tag, std::make_pair(payload_off, size))
             .second) {
      return Status::Corruption(StringPrintf("duplicate section %u", tag));
    }
    offset = payload_off + size + 4;
  }
  if (offset != end) {
    return Status::Corruption("trailing bytes after the last section");
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StringPrintf("cannot open snapshot '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(std::move(buffer).str());
}

Result<ByteReader> SnapshotReader::Section(uint32_t tag) const {
  auto it = sections_.find(tag);
  if (it == sections_.end()) {
    return Status::Corruption(
        StringPrintf("snapshot has no section %u", tag));
  }
  return ByteReader(
      std::string_view(bytes_).substr(it->second.first, it->second.second));
}

std::vector<uint32_t> SnapshotReader::Tags() const {
  std::vector<uint32_t> tags;
  tags.reserve(sections_.size());
  for (const auto& [tag, span] : sections_) tags.push_back(tag);
  return tags;
}

void WritePointStore(const PointStore& store, ByteWriter* out) {
  out->PutU64(store.dimensions());
  out->PutU64(store.chunk_capacity());
  const std::vector<PointId>& ids = store.slot_ids();
  out->PutU64Array(ids);
  out->PutU32Array(store.free_slots());
  // Every allocated row, live or free: free rows are recycled by later
  // appends, and preserving their bytes keeps save→load→save
  // byte-identical. Rows within a chunk are contiguous, so the arena
  // streams out one memcpy-sized span per chunk.
  out->PutU64(store.slot_count() * store.dimensions());
  for (size_t base = 0; base < store.slot_count();
       base += store.chunk_capacity()) {
    size_t run = std::min(store.chunk_capacity(), store.slot_count() - base);
    out->PutDoublesRaw(store.CoordsAt(static_cast<PointStore::Slot>(base)),
                       run * store.dimensions());
  }
}

Result<PointStore> ReadPointStore(ByteReader* in) {
  SEMTREE_ASSIGN_OR_RETURN(uint64_t dims, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t chunk_capacity, in->U64());
  if (dims == 0 || dims > (1u << 20)) {
    return Status::Corruption("point store has implausible dimensions");
  }
  // An absurd chunk capacity would overflow chunk-size arithmetic in
  // AddChunk (heap overflow), spin the constructor's round-up loop, or
  // force one gigantic allocation; bound the per-chunk row count and
  // the per-chunk double count before constructing anything.
  if (chunk_capacity == 0 || chunk_capacity > (1u << 24) ||
      chunk_capacity * dims > (1u << 27)) {
    return Status::Corruption("point store has implausible chunk size");
  }
  SEMTREE_ASSIGN_OR_RETURN(std::vector<uint64_t> ids, in->U64Array());
  SEMTREE_ASSIGN_OR_RETURN(std::vector<uint32_t> free_slots,
                           in->U32Array());
  if (free_slots.size() > ids.size()) {
    return Status::Corruption("point store free list longer than arena");
  }
  for (uint32_t slot : free_slots) {
    if (slot >= ids.size()) {
      return Status::Corruption("point store free slot out of range");
    }
  }
  SEMTREE_ASSIGN_OR_RETURN(uint64_t row_doubles, in->U64());
  if (row_doubles != ids.size() * dims) {
    return Status::Corruption("point store row block has wrong size");
  }
  // Stream the rows straight into the arena chunks — no intermediate
  // buffer; this is the O(read) half of the load-vs-rebuild speedup.
  PointStore store = PointStore::Preallocate(dims, chunk_capacity,
                                             std::move(ids),
                                             std::move(free_slots));
  for (size_t base = 0; base < store.slot_count();
       base += store.chunk_capacity()) {
    size_t run = std::min(store.chunk_capacity(), store.slot_count() - base);
    SEMTREE_RETURN_NOT_OK(in->DoublesRaw(
        store.MutableCoordsAt(static_cast<PointStore::Slot>(base)),
        run * dims));
  }
  return store;
}

}  // namespace persist
}  // namespace semtree

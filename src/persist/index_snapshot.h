// Copyright 2026 The SemTree Authors
//
// Top-level save/load entry points of the v2 snapshot subsystem
// (DESIGN.md §5). Two snapshot families share the container format of
// snapshot.h:
//
//  * Spatial-index snapshots — any of the four SpatialIndex backends
//    (KdTree, LinearScan, VP-tree, M-tree), saved structure-preserving:
//    tree topology and the PointStore arena are written directly, so a
//    load is O(read) with no rebuild and the loaded index answers
//    queries byte-identically (same nodes visited, same tie-breaks).
//    The index's default SearchBudget (DESIGN.md §6) rides along in a
//    tuning section, so a warm-restarted index keeps serving at the
//    approximation level it was configured for; the section is
//    optional on read, so pre-approximation snapshots load as exact.
//    Per-query budgets are request state and are never persisted.
//
//  * Semantic-index snapshots — the full end-to-end SemanticIndex:
//    vocabulary, triple corpus, distance configuration, the trained
//    FastMap (pivots + flat coordinates) and the distributed SemTree,
//    the latter as one blob per partition fanned out and reassembled
//    via the cluster layer.
//
// The v1 line-oriented text format (semtree/index_io.h) stays loadable;
// LoadIndex sniffs the magic and routes here for v2 files.

#ifndef SEMTREE_PERSIST_INDEX_SNAPSHOT_H_
#define SEMTREE_PERSIST_INDEX_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/spatial_index.h"
#include "semtree/index_io.h"

namespace semtree {
namespace persist {

/// Serializes any of the four backends into a v2 snapshot image.
/// Fails with NotSupported on an unknown SpatialIndex implementation.
Result<std::string> SerializeSpatialIndex(const SpatialIndex& index);

/// SerializeSpatialIndex to `path`, atomically.
Status SaveSpatialIndex(const SpatialIndex& index, const std::string& path);

/// Loads a spatial-index snapshot, reconstructing the concrete backend
/// it was saved from (structure-preserving, no rebuild) and restoring
/// its default SearchBudget (exact when the snapshot predates the
/// approximation subsystem).
Result<std::unique_ptr<SpatialIndex>> ParseSpatialIndex(std::string bytes);
Result<std::unique_ptr<SpatialIndex>> LoadSpatialIndex(
    const std::string& path);

/// Serializes a full SemanticIndex — vocabulary, corpus, options,
/// embedding and the SemTree partition blobs — into a v2 snapshot.
Result<std::string> SerializeIndexSnapshot(const SemanticIndex& index);

/// SerializeIndexSnapshot to `path`, atomically.
Status SaveIndexSnapshot(const SemanticIndex& index,
                         const std::string& path);

/// Loads a semantic-index snapshot. Like ParseIndex (v1), `runtime`
/// supplies the deployment knobs that are deliberately not persisted;
/// distance weights, element options, bucket size and the embedding
/// come from the snapshot, and the SemTree is reassembled partition by
/// partition instead of re-bulk-loaded.
Result<IndexBundle> ParseIndexSnapshot(
    std::string bytes, const SemanticIndexOptions& runtime = {});
Result<IndexBundle> LoadIndexSnapshot(
    const std::string& path, const SemanticIndexOptions& runtime = {});

}  // namespace persist
}  // namespace semtree

#endif  // SEMTREE_PERSIST_INDEX_SNAPSHOT_H_

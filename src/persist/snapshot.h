// Copyright 2026 The SemTree Authors
//
// The v2 binary snapshot container (DESIGN.md §5): a versioned,
// checksummed, little-endian file made of tagged sections.
//
//   file    := magic[8]="SEMSNAP2" | u32 version | u32 section_count
//              | section*
//   section := u32 tag | u64 size | payload[size] | u32 payload_crc
//
// Every payload byte is covered by its section's CRC32 and the framing
// is validated end to end (sections must tile the file exactly), so
// both truncation and bit flips surface as Status::Corruption at open
// time — a half-written or damaged snapshot can never be half-loaded.
// One checksum pass per load keeps open O(read). Files are written to
// `<path>.tmp` in binary mode and atomically renamed into place, so a
// crash mid-save leaves the previous snapshot intact.
//
// Snapshot is the writer, SnapshotReader the reader; what goes inside
// the sections is each structure's business (index_snapshot.h).

#ifndef SEMTREE_PERSIST_SNAPSHOT_H_
#define SEMTREE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/point_store.h"
#include "persist/wire.h"

namespace semtree {
namespace persist {

/// On-disk format version written by Snapshot (v1 is the line-oriented
/// text format of semtree/index_io.h, which remains loadable).
inline constexpr uint32_t kSnapshotVersion = 2;

/// Sniffs whether a byte buffer (or file) starts with the v2 magic.
bool LooksLikeSnapshot(std::string_view bytes);
bool FileLooksLikeSnapshot(const std::string& path);

/// Writes a file to `<path>.tmp` in binary mode and atomically renames
/// it over `path`. Shared by the snapshot writer and the v1 text
/// writers so no save path can leave a torn file behind.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Builds a snapshot section by section, then serializes or writes it.
class Snapshot {
 public:
  /// Starts a new section; the returned writer stays valid until the
  /// next AddSection/Serialize call. Tags must be unique per snapshot.
  ByteWriter* AddSection(uint32_t tag);

  /// The complete framed file image (header + sections + checksums).
  std::string Serialize() const;

  /// Serialize() to `path`, atomically.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<uint32_t, ByteWriter>> sections_;
};

/// Opens and validates a snapshot, exposing its sections for reading.
class SnapshotReader {
 public:
  /// Validates magic, version, section framing and every checksum.
  static Result<SnapshotReader> Parse(std::string bytes);
  static Result<SnapshotReader> Open(const std::string& path);

  bool Has(uint32_t tag) const { return sections_.count(tag) > 0; }

  /// A bounds-checked reader over one section's payload. The returned
  /// reader borrows this SnapshotReader's buffer.
  Result<ByteReader> Section(uint32_t tag) const;

  std::vector<uint32_t> Tags() const;

 private:
  std::string bytes_;
  std::map<uint32_t, std::pair<size_t, size_t>> sections_;  // tag -> (off, len)
};

/// Serializes a PointStore arena — slot rows, ids, free list — so a
/// loaded store reproduces the saved one slot-for-slot (row pointers,
/// slot recycling order and all).
void WritePointStore(const PointStore& store, ByteWriter* out);
Result<PointStore> ReadPointStore(ByteReader* in);

}  // namespace persist
}  // namespace semtree

#endif  // SEMTREE_PERSIST_SNAPSHOT_H_

// Copyright 2026 The SemTree Authors

#include "ontology/vocabulary_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "persist/snapshot.h"

namespace semtree {

namespace {

Status LineError(size_t line_no, std::string_view message) {
  return Status::InvalidArgument(
      StringPrintf("line %zu: %.*s", line_no,
                   static_cast<int>(message.size()), message.data()));
}

}  // namespace

Result<Taxonomy> ParseVocabulary(std::string_view text) {
  Taxonomy tax;
  size_t line_no = 0;
  bool saw_directive = false;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(line);
    const std::string& kind = fields[0];
    if (kind == "root") {
      if (saw_directive) {
        return LineError(line_no, "'root' must be the first directive");
      }
      if (fields.size() != 2) return LineError(line_no, "root needs a name");
      tax = Taxonomy(fields[1]);
      saw_directive = true;
      continue;
    }
    saw_directive = true;
    if (kind == "concept") {
      if (fields.size() < 2) return LineError(line_no, "concept needs a name");
      std::vector<std::string> parents(fields.begin() + 2, fields.end());
      auto added = tax.AddConcept(fields[1], parents);
      if (!added.ok()) return LineError(line_no, added.status().message());
    } else if (kind == "synonym") {
      if (fields.size() != 3) {
        return LineError(line_no, "synonym needs <alias> <canonical>");
      }
      auto canonical = tax.Find(fields[2]);
      if (!canonical.ok()) {
        return LineError(line_no, canonical.status().message());
      }
      Status st = tax.AddSynonym(fields[1], *canonical);
      if (!st.ok()) return LineError(line_no, st.message());
    } else if (kind == "antonym") {
      if (fields.size() != 3) {
        return LineError(line_no, "antonym needs <a> <b>");
      }
      auto a = tax.Find(fields[1]);
      if (!a.ok()) return LineError(line_no, a.status().message());
      auto b = tax.Find(fields[2]);
      if (!b.ok()) return LineError(line_no, b.status().message());
      Status st = tax.AddAntonym(*a, *b);
      if (!st.ok()) return LineError(line_no, st.message());
    } else if (kind == "freq") {
      if (fields.size() != 3) {
        return LineError(line_no, "freq needs <name> <count>");
      }
      auto c = tax.Find(fields[1]);
      if (!c.ok()) return LineError(line_no, c.status().message());
      // Locale-independent (string_util.h): strtoull honours the
      // process locale's digit grouping.
      uint64_t count = 0;
      if (!ParseUint64Text(fields[2], &count)) {
        return LineError(line_no, "freq count must be an integer");
      }
      Status st = tax.AddFrequency(*c, count);
      if (!st.ok()) return LineError(line_no, st.message());
    } else {
      return LineError(line_no,
                       StringPrintf("unknown directive '%s'", kind.c_str()));
    }
  }
  SEMTREE_RETURN_NOT_OK(tax.Validate());
  return tax;
}

Result<Taxonomy> LoadVocabularyFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(
        StringPrintf("cannot open vocabulary file '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseVocabulary(buffer.str());
}

std::string SerializeVocabulary(const Taxonomy& tax) {
  std::string out;
  out += "# SemTree vocabulary\n";
  out += "root " + tax.root_name() + "\n";
  // Concepts are emitted in id order, which is a valid topological order
  // because parents always precede children at construction time.
  for (ConceptId c = 1; c < tax.size(); ++c) {
    out += "concept " + tax.name(c);
    for (ConceptId p : tax.parents(c)) {
      out += " " + tax.name(p);
    }
    out += "\n";
  }
  for (const auto& [alias, canonical] : tax.Synonyms()) {
    out += "synonym " + alias + " " + tax.name(canonical) + "\n";
  }
  for (const auto& [a, b] : tax.AntonymPairs()) {
    out += "antonym " + tax.name(a) + " " + tax.name(b) + "\n";
  }
  for (ConceptId c = 0; c < tax.size(); ++c) {
    if (tax.frequency(c) > 0) {
      out += StringPrintf("freq %s %llu\n", tax.name(c).c_str(),
                          (unsigned long long)tax.frequency(c));
    }
  }
  return out;
}

Status SaveVocabularyFile(const Taxonomy& tax, const std::string& path) {
  // Same atomic write-temp-then-rename discipline as every other save
  // path; a crash mid-write cannot leave a torn vocabulary behind.
  return persist::AtomicWriteFile(path, SerializeVocabulary(tax));
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "ontology/requirements_vocabulary.h"

#include <algorithm>
#include <cassert>

namespace semtree {

namespace {

// Helper that asserts on failure: the built-in vocabularies are static
// data, so a failure here is a programming error, not a runtime
// condition.
class Builder {
 public:
  explicit Builder(Taxonomy* tax) : tax_(tax) {}

  ConceptId Concept(const std::string& name,
                    const std::vector<std::string>& parents = {}) {
    auto r = tax_->AddConcept(name, parents);
    assert(r.ok());
    return *r;
  }

  void Antonym(const std::string& a, const std::string& b) {
    auto ia = tax_->Find(a);
    auto ib = tax_->Find(b);
    assert(ia.ok() && ib.ok());
    Status st = tax_->AddAntonym(*ia, *ib);
    assert(st.ok());
    (void)st;
  }

  void Synonym(const std::string& alias, const std::string& canonical) {
    auto ic = tax_->Find(canonical);
    assert(ic.ok());
    Status st = tax_->AddSynonym(alias, *ic);
    assert(st.ok());
    (void)st;
  }

 private:
  Taxonomy* tax_;
};

}  // namespace

Taxonomy RequirementsVocabulary() {
  Taxonomy tax("entity");
  Builder b(&tax);

  // ----------------------------------------------------------------- //
  // Functions (predicates). Each family groups related unary functions
  // of the on-board software; antonym pairs encode the antinomies the
  // paper's inconsistency definition needs.
  b.Concept("function");

  b.Concept("command_function", {"function"});
  b.Concept("accept_cmd", {"command_function"});
  b.Concept("block_cmd", {"command_function"});
  b.Concept("execute_cmd", {"command_function"});
  b.Concept("abort_cmd", {"command_function"});
  b.Concept("validate_cmd", {"command_function"});
  b.Concept("discard_cmd", {"command_function"});
  b.Concept("queue_cmd", {"command_function"});
  b.Antonym("accept_cmd", "block_cmd");
  b.Antonym("execute_cmd", "abort_cmd");
  b.Antonym("validate_cmd", "discard_cmd");
  b.Synonym("reject_cmd", "block_cmd");
  b.Synonym("run_cmd", "execute_cmd");

  b.Concept("message_function", {"function"});
  b.Concept("send_msg", {"message_function"});
  b.Concept("inhibit_msg", {"message_function"});
  b.Concept("broadcast_msg", {"message_function"});
  b.Concept("suppress_msg", {"message_function"});
  b.Concept("forward_msg", {"message_function"});
  b.Concept("drop_msg", {"message_function"});
  b.Concept("log_msg", {"message_function"});
  b.Antonym("send_msg", "inhibit_msg");
  b.Antonym("broadcast_msg", "suppress_msg");
  b.Antonym("forward_msg", "drop_msg");
  b.Synonym("transmit_msg", "send_msg");

  b.Concept("input_function", {"function"});
  b.Concept("acquire_in", {"input_function"});
  b.Concept("ignore_in", {"input_function"});
  b.Concept("sample_in", {"input_function"});
  b.Concept("mask_in", {"input_function"});
  b.Concept("calibrate_in", {"input_function"});
  b.Antonym("acquire_in", "ignore_in");
  b.Antonym("sample_in", "mask_in");
  b.Synonym("read_in", "acquire_in");

  b.Concept("telemetry_function", {"function"});
  b.Concept("enable_tm", {"telemetry_function"});
  b.Concept("disable_tm", {"telemetry_function"});
  b.Concept("transmit_tm", {"telemetry_function"});
  b.Concept("withhold_tm", {"telemetry_function"});
  b.Concept("format_tm", {"telemetry_function"});
  b.Antonym("enable_tm", "disable_tm");
  b.Antonym("transmit_tm", "withhold_tm");

  b.Concept("mode_function", {"function"});
  b.Concept("start_up", {"mode_function"});
  b.Concept("shut_down", {"mode_function"});
  b.Concept("activate", {"mode_function"});
  b.Concept("deactivate", {"mode_function"});
  b.Concept("resume", {"mode_function"});
  b.Concept("suspend", {"mode_function"});
  b.Concept("initialize", {"mode_function"});
  b.Concept("terminate", {"mode_function"});
  b.Antonym("start_up", "shut_down");
  b.Antonym("activate", "deactivate");
  b.Antonym("resume", "suspend");
  b.Antonym("initialize", "terminate");
  b.Synonym("boot", "start_up");
  b.Synonym("halt", "shut_down");

  b.Concept("memory_function", {"function"});
  b.Concept("store_data", {"memory_function"});
  b.Concept("erase_data", {"memory_function"});
  b.Concept("load_data", {"memory_function"});
  b.Concept("dump_data", {"memory_function"});
  b.Concept("lock_mem", {"memory_function"});
  b.Concept("unlock_mem", {"memory_function"});
  b.Antonym("store_data", "erase_data");
  b.Antonym("lock_mem", "unlock_mem");

  b.Concept("power_function", {"function"});
  b.Concept("power_on", {"power_function"});
  b.Concept("power_off", {"power_function"});
  b.Concept("increase_power", {"power_function"});
  b.Concept("decrease_power", {"power_function"});
  b.Antonym("power_on", "power_off");
  b.Antonym("increase_power", "decrease_power");

  b.Concept("safety_function", {"function"});
  b.Concept("arm_device", {"safety_function"});
  b.Concept("disarm_device", {"safety_function"});
  b.Concept("engage_lock", {"safety_function"});
  b.Concept("release_lock", {"safety_function"});
  b.Concept("trigger_alarm", {"safety_function"});
  b.Concept("clear_alarm", {"safety_function"});
  b.Antonym("arm_device", "disarm_device");
  b.Antonym("engage_lock", "release_lock");
  b.Antonym("trigger_alarm", "clear_alarm");

  // ----------------------------------------------------------------- //
  // Parameters (objects). Typed families mirroring the paper's
  // CmdType / MsgType / InType prefixes.
  b.Concept("parameter");

  b.Concept("command_type", {"parameter"});
  for (const char* name :
       {"startup_cmd", "shutdown_cmd", "self_test", "reset", "reboot",
        "safe_mode", "nominal_mode", "standby_mode", "sync_clock",
        "update_config"}) {
    b.Concept(name, {"command_type"});
  }

  b.Concept("message_type", {"parameter"});
  for (const char* name :
       {"power_amplifier", "telemetry_frame", "heartbeat", "status_report",
        "error_report", "ack_message", "nack_message", "event_log"}) {
    b.Concept(name, {"message_type"});
  }

  b.Concept("input_type", {"parameter"});
  for (const char* name :
       {"pre_launch_phase", "ascent_phase", "orbit_phase", "descent_phase",
        "ground_phase", "sensor_temperature", "sensor_pressure",
        "sensor_attitude", "sensor_voltage"}) {
    b.Concept(name, {"input_type"});
  }

  b.Concept("telemetry_type", {"parameter"});
  for (const char* name :
       {"housekeeping", "payload_data", "diagnostics", "orbit_data",
        "thermal_data"}) {
    b.Concept(name, {"telemetry_type"});
  }

  b.Concept("memory_type", {"parameter"});
  for (const char* name :
       {"boot_image", "config_table", "event_buffer", "science_archive",
        "patch_segment"}) {
    b.Concept(name, {"memory_type"});
  }

  b.Concept("device_type", {"parameter"});
  for (const char* name :
       {"antenna", "gyroscope", "star_tracker", "thruster", "battery",
        "heater", "valve", "pump", "transponder", "solar_array"}) {
    b.Concept(name, {"device_type"});
  }

  // ----------------------------------------------------------------- //
  // Actors. Specific instances (OBSW001, ...) are identifiers and are
  // treated as literals by the distance; these are their classes.
  b.Concept("actor");
  b.Concept("software_component", {"actor"});
  for (const char* name :
       {"obsw_component", "scheduler", "command_handler",
        "telemetry_manager", "fdir_monitor", "device_driver"}) {
    b.Concept(name, {"software_component"});
  }
  b.Concept("hardware_unit", {"actor"});
  for (const char* name :
       {"processor_board", "io_board", "power_unit", "rf_unit"}) {
    b.Concept(name, {"hardware_unit"});
  }

  Status st = tax.Validate();
  assert(st.ok());
  (void)st;
  return tax;
}

namespace {

std::vector<std::string> LeafNamesUnder(const Taxonomy& tax,
                                        const std::string& root_name) {
  std::vector<std::string> out;
  auto root = tax.Find(root_name);
  if (!root.ok()) return out;
  std::vector<ConceptId> stack = {*root};
  while (!stack.empty()) {
    ConceptId c = stack.back();
    stack.pop_back();
    if (tax.children(c).empty()) {
      out.push_back(tax.name(c));
    } else {
      for (ConceptId child : tax.children(c)) stack.push_back(child);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<std::string> RequirementsFunctionNames() {
  Taxonomy tax = RequirementsVocabulary();
  return LeafNamesUnder(tax, "function");
}

std::vector<std::string> RequirementsParameterNames() {
  Taxonomy tax = RequirementsVocabulary();
  return LeafNamesUnder(tax, "parameter");
}

std::vector<std::string> ParameterNamesForFunction(
    const Taxonomy& tax, const std::string& function_name) {
  // Function families map onto parameter families by position in the
  // vocabulary: command functions take command types, etc.
  static const std::pair<const char*, const char*> kFamilyToParam[] = {
      {"command_function", "command_type"},
      {"message_function", "message_type"},
      {"input_function", "input_type"},
      {"telemetry_function", "telemetry_type"},
      {"mode_function", "command_type"},
      {"memory_function", "memory_type"},
      {"power_function", "device_type"},
      {"safety_function", "device_type"},
  };
  auto fn = tax.Find(function_name);
  if (!fn.ok()) return {};
  for (const auto& [family, param_family] : kFamilyToParam) {
    auto fam = tax.Find(family);
    if (fam.ok() && tax.IsAncestor(*fam, *fn)) {
      return LeafNamesUnder(tax, param_family);
    }
  }
  return LeafNamesUnder(tax, "parameter");
}

Taxonomy MiniWordNet() {
  Taxonomy tax("entity");
  Builder b(&tax);

  b.Concept("physical_entity");
  b.Concept("abstract_entity");

  b.Concept("living_thing", {"physical_entity"});
  b.Concept("animal", {"living_thing"});
  b.Concept("mammal", {"animal"});
  b.Concept("dog", {"mammal"});
  b.Concept("cat", {"mammal"});
  b.Concept("horse", {"mammal"});
  b.Concept("whale", {"mammal"});
  b.Concept("bird", {"animal"});
  b.Concept("eagle", {"bird"});
  b.Concept("sparrow", {"bird"});
  b.Concept("penguin", {"bird"});
  b.Concept("fish", {"animal"});
  b.Concept("salmon", {"fish"});
  b.Concept("shark", {"fish"});
  b.Concept("plant", {"living_thing"});
  b.Concept("tree", {"plant"});
  b.Concept("oak", {"tree"});
  b.Concept("pine", {"tree"});
  b.Concept("flower", {"plant"});
  b.Concept("rose", {"flower"});
  b.Concept("person", {"living_thing"});
  b.Concept("engineer", {"person"});
  b.Concept("doctor", {"person"});
  b.Concept("teacher", {"person"});
  b.Concept("pilot", {"person"});

  b.Concept("artifact", {"physical_entity"});
  b.Concept("vehicle", {"artifact"});
  b.Concept("car", {"vehicle"});
  b.Concept("truck", {"vehicle"});
  b.Concept("bicycle", {"vehicle"});
  b.Concept("airplane", {"vehicle"});
  b.Concept("boat", {"vehicle"});
  b.Concept("building", {"artifact"});
  b.Concept("house", {"building"});
  b.Concept("hospital", {"building"});
  b.Concept("school", {"building"});
  b.Concept("tool", {"artifact"});
  b.Concept("hammer", {"tool"});
  b.Concept("saw", {"tool"});
  b.Concept("computer", {"artifact"});
  b.Concept("laptop", {"computer"});
  b.Concept("server", {"computer"});

  b.Concept("location", {"physical_entity"});
  b.Concept("city", {"location"});
  b.Concept("mountain", {"location"});
  b.Concept("river", {"location"});

  b.Concept("action", {"abstract_entity"});
  b.Concept("motion", {"action"});
  b.Concept("walk", {"motion"});
  b.Concept("run", {"motion"});
  b.Concept("fly", {"motion"});
  b.Concept("swim", {"motion"});
  b.Concept("communication", {"action"});
  b.Concept("speak", {"communication"});
  b.Concept("write", {"communication"});
  b.Concept("read", {"communication"});
  b.Concept("possession", {"action"});
  b.Concept("buy", {"possession"});
  b.Concept("sell", {"possession"});
  b.Concept("own", {"possession"});
  b.Concept("lend", {"possession"});
  b.Concept("borrow", {"possession"});
  b.Antonym("buy", "sell");
  b.Antonym("lend", "borrow");

  b.Concept("property", {"abstract_entity"});
  b.Concept("hot", {"property"});
  b.Concept("cold", {"property"});
  b.Concept("big", {"property"});
  b.Concept("small", {"property"});
  b.Concept("fast", {"property"});
  b.Concept("slow", {"property"});
  b.Antonym("hot", "cold");
  b.Antonym("big", "small");
  b.Antonym("fast", "slow");
  b.Synonym("large", "big");
  b.Synonym("quick", "fast");
  b.Synonym("canine", "dog");
  b.Synonym("feline", "cat");
  b.Synonym("automobile", "car");

  Status st = tax.Validate();
  assert(st.ok());
  (void)st;
  return tax;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// A plain-text vocabulary format so domain vocabularies can be shipped
// next to the corpus instead of being compiled in. Line-oriented:
//
//   # comment
//   root <name>                      # optional, must come first
//   concept <name> [parent ...]      # parents default to the root
//   synonym <alias> <canonical>
//   antonym <a> <b>
//   freq <name> <count>
//
// Declarations must appear after the concepts they reference.

#ifndef SEMTREE_ONTOLOGY_VOCABULARY_IO_H_
#define SEMTREE_ONTOLOGY_VOCABULARY_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "ontology/taxonomy.h"

namespace semtree {

/// Parses a vocabulary from text. Returns InvalidArgument with the line
/// number on malformed input.
Result<Taxonomy> ParseVocabulary(std::string_view text);

/// Loads a vocabulary file from disk.
Result<Taxonomy> LoadVocabularyFile(const std::string& path);

/// Serializes a taxonomy in the format ParseVocabulary accepts;
/// round-trips exactly (up to ordering).
std::string SerializeVocabulary(const Taxonomy& tax);

/// Writes SerializeVocabulary(tax) to `path`.
Status SaveVocabularyFile(const Taxonomy& tax, const std::string& path);

}  // namespace semtree

#endif  // SEMTREE_ONTOLOGY_VOCABULARY_IO_H_

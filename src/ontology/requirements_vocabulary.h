// Copyright 2026 The SemTree Authors
//
// Built-in vocabularies.
//
// RequirementsVocabulary() reconstructs the paper's "ad-hoc requirements
// vocabulary" for on-board software (OBSW) requirements: a taxonomy of
// unary functions (the triple predicates, e.g. Fun:accept_cmd), parameter
// types (CmdType/MsgType/InType/... objects) and actor classes, with the
// antinomy pairs that drive the inconsistency case study (§II, §IV-B).
//
// MiniWordNet() is a small general-purpose taxonomy used by tests and the
// semantic-search example, standing in for "a standard vocabulary".

#ifndef SEMTREE_ONTOLOGY_REQUIREMENTS_VOCABULARY_H_
#define SEMTREE_ONTOLOGY_REQUIREMENTS_VOCABULARY_H_

#include <string>
#include <vector>

#include "ontology/taxonomy.h"

namespace semtree {

/// The aerospace requirements vocabulary. Never fails: the content is
/// static and covered by tests.
Taxonomy RequirementsVocabulary();

/// Names of all function (predicate) concepts in the requirements
/// vocabulary, sorted.
std::vector<std::string> RequirementsFunctionNames();

/// Names of all parameter concepts, sorted.
std::vector<std::string> RequirementsParameterNames();

/// Parameter concepts that are plausible objects for the given function
/// concept (e.g. command functions take command-type parameters).
std::vector<std::string> ParameterNamesForFunction(
    const Taxonomy& tax, const std::string& function_name);

/// A ~70-concept general-purpose taxonomy (animals, artifacts, people,
/// places) with a handful of antonyms.
Taxonomy MiniWordNet();

}  // namespace semtree

#endif  // SEMTREE_ONTOLOGY_REQUIREMENTS_VOCABULARY_H_

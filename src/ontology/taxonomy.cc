// Copyright 2026 The SemTree Authors

#include "ontology/taxonomy.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/string_util.h"

namespace semtree {

Taxonomy::Taxonomy(std::string root_name) {
  Node root;
  root.name = std::move(root_name);
  nodes_.push_back(std::move(root));
  by_name_[nodes_[0].name] = 0;
}

Result<ConceptId> Taxonomy::AddConcept(
    std::string_view name, const std::vector<std::string>& parents) {
  std::vector<ConceptId> parent_ids;
  parent_ids.reserve(parents.size());
  for (const std::string& p : parents) {
    SEMTREE_ASSIGN_OR_RETURN(ConceptId id, Find(p));
    parent_ids.push_back(id);
  }
  return AddConceptUnder(name, parent_ids);
}

Result<ConceptId> Taxonomy::AddConceptUnder(
    std::string_view name, const std::vector<ConceptId>& parents) {
  std::string key(name);
  if (key.empty()) {
    return Status::InvalidArgument("concept name must be non-empty");
  }
  if (by_name_.count(key) || aliases_.count(key)) {
    return Status::AlreadyExists(
        StringPrintf("concept '%s' already exists", key.c_str()));
  }
  for (ConceptId p : parents) {
    if (p >= nodes_.size()) {
      return Status::NotFound("unknown parent concept id");
    }
  }
  ConceptId id = static_cast<ConceptId>(nodes_.size());
  Node node;
  node.name = key;
  node.parents = parents;
  if (node.parents.empty()) node.parents.push_back(root());
  // Deduplicate parents while preserving order.
  std::vector<ConceptId> dedup;
  for (ConceptId p : node.parents) {
    if (std::find(dedup.begin(), dedup.end(), p) == dedup.end()) {
      dedup.push_back(p);
    }
  }
  node.parents = std::move(dedup);
  nodes_.push_back(std::move(node));
  by_name_[key] = id;
  for (ConceptId p : nodes_[id].parents) nodes_[p].children.push_back(id);
  InvalidateCaches();
  return id;
}

Status Taxonomy::AddParent(ConceptId child, ConceptId parent) {
  if (child >= nodes_.size() || parent >= nodes_.size()) {
    return Status::NotFound("unknown concept id");
  }
  if (child == root()) {
    return Status::InvalidArgument("the root cannot gain a parent");
  }
  auto& parents = nodes_[child].parents;
  if (std::find(parents.begin(), parents.end(), parent) != parents.end()) {
    return Status::AlreadyExists("edge already present");
  }
  if (WouldCreateCycle(child, parent)) {
    return Status::FailedPrecondition(StringPrintf(
        "adding %s -> %s would create a cycle",
        nodes_[child].name.c_str(), nodes_[parent].name.c_str()));
  }
  parents.push_back(parent);
  nodes_[parent].children.push_back(child);
  InvalidateCaches();
  return Status::OK();
}

Status Taxonomy::AddSynonym(std::string_view alias, ConceptId canonical) {
  if (canonical >= nodes_.size()) {
    return Status::NotFound("unknown canonical concept");
  }
  std::string key(alias);
  if (key.empty()) {
    return Status::InvalidArgument("alias must be non-empty");
  }
  if (by_name_.count(key) || aliases_.count(key)) {
    return Status::AlreadyExists(
        StringPrintf("name '%s' already taken", key.c_str()));
  }
  aliases_[key] = canonical;
  return Status::OK();
}

Status Taxonomy::AddAntonym(ConceptId a, ConceptId b) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return Status::NotFound("unknown concept id");
  }
  if (a == b) {
    return Status::InvalidArgument("a concept cannot be its own antonym");
  }
  if (AreAntonyms(a, b)) {
    return Status::AlreadyExists("antonym pair already present");
  }
  nodes_[a].antonyms.push_back(b);
  nodes_[b].antonyms.push_back(a);
  return Status::OK();
}

Status Taxonomy::AddFrequency(ConceptId c, uint64_t count) {
  if (c >= nodes_.size()) return Status::NotFound("unknown concept id");
  nodes_[c].frequency += count;
  ic_valid_ = false;
  return Status::OK();
}

Result<ConceptId> Taxonomy::Find(std::string_view name) const {
  std::string key(name);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) return it->second;
  auto alias_it = aliases_.find(key);
  if (alias_it != aliases_.end()) return alias_it->second;
  return Status::NotFound(
      StringPrintf("concept '%s' not in taxonomy", key.c_str()));
}

bool Taxonomy::Contains(std::string_view name) const {
  return Find(name).ok();
}

std::vector<std::string> Taxonomy::ConceptNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const Node& node : nodes_) names.push_back(node.name);
  return names;
}

std::vector<std::pair<std::string, ConceptId>> Taxonomy::Synonyms() const {
  std::vector<std::pair<std::string, ConceptId>> out(aliases_.begin(),
                                                     aliases_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<ConceptId, ConceptId>> Taxonomy::AntonymPairs()
    const {
  std::vector<std::pair<ConceptId, ConceptId>> pairs;
  for (ConceptId c = 0; c < nodes_.size(); ++c) {
    for (ConceptId other : nodes_[c].antonyms) {
      if (c < other) pairs.emplace_back(c, other);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

void Taxonomy::InvalidateCaches() {
  depths_valid_ = false;
  ic_valid_ = false;
}

void Taxonomy::EnsureDepths() const {
  if (depths_valid_) return;
  depths_.assign(nodes_.size(), std::numeric_limits<uint32_t>::max());
  std::deque<ConceptId> queue;
  depths_[root()] = 0;
  queue.push_back(root());
  max_depth_ = 0;
  while (!queue.empty()) {
    ConceptId c = queue.front();
    queue.pop_front();
    for (ConceptId child : nodes_[c].children) {
      if (depths_[child] > depths_[c] + 1) {
        depths_[child] = depths_[c] + 1;
        max_depth_ = std::max<size_t>(max_depth_, depths_[child]);
        queue.push_back(child);
      }
    }
  }
  depths_valid_ = true;
}

size_t Taxonomy::Depth(ConceptId c) const {
  EnsureDepths();
  return depths_[c];
}

size_t Taxonomy::MaxDepth() const {
  EnsureDepths();
  return max_depth_;
}

bool Taxonomy::IsAncestor(ConceptId ancestor, ConceptId descendant) const {
  if (ancestor == descendant) return true;
  // Walk up from the descendant; taxonomies are shallow, so DFS is fine.
  std::vector<ConceptId> stack = {descendant};
  std::unordered_set<ConceptId> seen;
  while (!stack.empty()) {
    ConceptId c = stack.back();
    stack.pop_back();
    for (ConceptId p : nodes_[c].parents) {
      if (p == ancestor) return true;
      if (seen.insert(p).second) stack.push_back(p);
    }
  }
  return false;
}

std::vector<ConceptId> Taxonomy::Ancestors(ConceptId c) const {
  std::vector<ConceptId> out;
  std::unordered_set<ConceptId> seen;
  std::deque<ConceptId> queue = {c};
  seen.insert(c);
  while (!queue.empty()) {
    ConceptId cur = queue.front();
    queue.pop_front();
    out.push_back(cur);
    for (ConceptId p : nodes_[cur].parents) {
      if (seen.insert(p).second) queue.push_back(p);
    }
  }
  return out;
}

ConceptId Taxonomy::LowestCommonSubsumer(ConceptId a, ConceptId b) const {
  EnsureDepths();
  std::vector<ConceptId> a_up = Ancestors(a);
  std::unordered_set<ConceptId> a_set(a_up.begin(), a_up.end());
  ConceptId best = root();
  size_t best_depth = 0;
  for (ConceptId c : Ancestors(b)) {
    if (!a_set.count(c)) continue;
    size_t d = depths_[c];
    if (d >= best_depth) {
      // Ties broken toward the smaller id for determinism.
      if (d > best_depth || c < best) best = c;
      best_depth = d;
    }
  }
  return best;
}

size_t Taxonomy::ShortestPathEdges(ConceptId a, ConceptId b) const {
  if (a == b) return 0;
  // BFS upward from both endpoints; the shortest connecting path goes
  // through a common ancestor, so dist = min over common c of
  // up_a(c) + up_b(c).
  auto up_distances = [this](ConceptId from) {
    std::unordered_map<ConceptId, size_t> dist;
    std::deque<ConceptId> queue = {from};
    dist[from] = 0;
    while (!queue.empty()) {
      ConceptId c = queue.front();
      queue.pop_front();
      for (ConceptId p : nodes_[c].parents) {
        if (!dist.count(p)) {
          dist[p] = dist[c] + 1;
          queue.push_back(p);
        }
      }
    }
    return dist;
  };
  auto da = up_distances(a);
  auto db = up_distances(b);
  size_t best = std::numeric_limits<size_t>::max();
  for (const auto& [c, d] : da) {
    auto it = db.find(c);
    if (it != db.end()) best = std::min(best, d + it->second);
  }
  return best;
}

size_t Taxonomy::UpEdges(ConceptId descendant, ConceptId ancestor) const {
  if (descendant == ancestor) return 0;
  std::unordered_map<ConceptId, size_t> dist;
  std::deque<ConceptId> queue = {descendant};
  dist[descendant] = 0;
  while (!queue.empty()) {
    ConceptId c = queue.front();
    queue.pop_front();
    for (ConceptId p : nodes_[c].parents) {
      if (!dist.count(p)) {
        dist[p] = dist[c] + 1;
        if (p == ancestor) return dist[p];
        queue.push_back(p);
      }
    }
  }
  return std::numeric_limits<size_t>::max();
}

void Taxonomy::EnsureInformationContent() const {
  if (ic_valid_) return;
  // Subtree mass: each concept contributes its own frequency (or 1 under
  // the uniform fallback) to itself and every ancestor.
  uint64_t total_observed = 0;
  for (const Node& node : nodes_) total_observed += node.frequency;
  const bool uniform = total_observed == 0;

  std::vector<double> mass(nodes_.size(), 0.0);
  for (ConceptId c = 0; c < nodes_.size(); ++c) {
    double own = uniform ? 1.0 : static_cast<double>(nodes_[c].frequency);
    if (own == 0.0) continue;
    for (ConceptId anc : Ancestors(c)) mass[anc] += own;
  }
  double root_mass = mass[root()];
  information_content_.assign(nodes_.size(), 0.0);
  max_ic_ = 0.0;
  for (ConceptId c = 0; c < nodes_.size(); ++c) {
    double p = (root_mass > 0.0) ? mass[c] / root_mass : 0.0;
    // Unobserved concepts get the maximal finite IC via Laplace-style
    // smoothing with half a count.
    if (p <= 0.0) p = 0.5 / (root_mass + 1.0);
    information_content_[c] = -std::log(p);
    max_ic_ = std::max(max_ic_, information_content_[c]);
  }
  ic_valid_ = true;
}

double Taxonomy::InformationContent(ConceptId c) const {
  EnsureInformationContent();
  return information_content_[c];
}

double Taxonomy::MaxInformationContent() const {
  EnsureInformationContent();
  return max_ic_;
}

bool Taxonomy::AreAntonyms(ConceptId a, ConceptId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) return false;
  const auto& ants = nodes_[a].antonyms;
  return std::find(ants.begin(), ants.end(), b) != ants.end();
}

std::vector<ConceptId> Taxonomy::AntonymsOf(ConceptId c) const {
  if (c >= nodes_.size()) return {};
  return nodes_[c].antonyms;
}

std::vector<std::string> Taxonomy::AntonymNamesOf(
    std::string_view name) const {
  auto id = Find(name);
  if (!id.ok()) return {};
  std::vector<std::string> out;
  for (ConceptId a : AntonymsOf(*id)) out.push_back(nodes_[a].name);
  std::sort(out.begin(), out.end());
  return out;
}

bool Taxonomy::WouldCreateCycle(ConceptId child, ConceptId parent) const {
  // A cycle appears iff child is already an ancestor of parent.
  return IsAncestor(child, parent);
}

Status Taxonomy::Validate() const {
  // Parent/child edge symmetry.
  for (ConceptId c = 0; c < nodes_.size(); ++c) {
    for (ConceptId p : nodes_[c].parents) {
      if (p >= nodes_.size()) {
        return Status::Corruption("dangling parent id");
      }
      const auto& siblings = nodes_[p].children;
      if (std::find(siblings.begin(), siblings.end(), c) ==
          siblings.end()) {
        return Status::Corruption(StringPrintf(
            "edge %s->%s missing child link", nodes_[c].name.c_str(),
            nodes_[p].name.c_str()));
      }
    }
    if (c != root() && nodes_[c].parents.empty()) {
      return Status::Corruption(
          StringPrintf("concept '%s' is disconnected",
                       nodes_[c].name.c_str()));
    }
  }
  // Acyclicity: every concept must reach the root.
  for (ConceptId c = 0; c < nodes_.size(); ++c) {
    if (!IsAncestor(root(), c)) {
      return Status::Corruption(StringPrintf(
          "concept '%s' cannot reach the root", nodes_[c].name.c_str()));
    }
  }
  // Antonym symmetry.
  for (ConceptId c = 0; c < nodes_.size(); ++c) {
    for (ConceptId other : nodes_[c].antonyms) {
      if (!AreAntonyms(other, c)) {
        return Status::Corruption("asymmetric antonym relation");
      }
    }
  }
  // Aliases resolve to live concepts and do not shadow concepts.
  for (const auto& [alias, target] : aliases_) {
    if (target >= nodes_.size()) {
      return Status::Corruption("alias targets unknown concept");
    }
    if (by_name_.count(alias)) {
      return Status::Corruption("alias shadows a concept name");
    }
  }
  return Status::OK();
}

}  // namespace semtree

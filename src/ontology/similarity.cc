// Copyright 2026 The SemTree Authors

#include "ontology/similarity.h"

#include <algorithm>
#include <cmath>

namespace semtree {

const char* SimilarityMeasureName(SimilarityMeasure m) {
  switch (m) {
    case SimilarityMeasure::kWuPalmer:
      return "wu-palmer";
    case SimilarityMeasure::kPath:
      return "path";
    case SimilarityMeasure::kLeacockChodorow:
      return "leacock-chodorow";
    case SimilarityMeasure::kResnik:
      return "resnik";
    case SimilarityMeasure::kLin:
      return "lin";
  }
  return "unknown";
}

double WuPalmerSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b) {
  if (a == b) return 1.0;
  ConceptId lcs = tax.LowestCommonSubsumer(a, b);
  // Classic edge-counting formulation 2*N3 / (N1 + N2 + 2*N3), with
  // N1/N2 the upward edges from a/b to the LCS and N3 the LCS depth
  // (from 1 at the root). Unlike the naive 2*d(lcs)/(d(a)+d(b)) it
  // stays within (0, 1] under multiple inheritance, where the LCS's
  // shortest-chain depth can exceed a node's own.
  double n1 = static_cast<double>(tax.UpEdges(a, lcs));
  double n2 = static_cast<double>(tax.UpEdges(b, lcs));
  double n3 = static_cast<double>(tax.Depth(lcs)) + 1.0;
  return 2.0 * n3 / (n1 + n2 + 2.0 * n3);
}

double PathSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b) {
  size_t edges = tax.ShortestPathEdges(a, b);
  return 1.0 / (1.0 + static_cast<double>(edges));
}

double LeacockChodorowSimilarity(const Taxonomy& tax, ConceptId a,
                                 ConceptId b) {
  double depth = static_cast<double>(std::max<size_t>(tax.MaxDepth(), 1));
  // Path length in nodes (edges + 1), as in the original formulation.
  double len = static_cast<double>(tax.ShortestPathEdges(a, b)) + 1.0;
  double raw = -std::log(len / (2.0 * depth));
  double max_raw = -std::log(1.0 / (2.0 * depth));  // len == 1 (a == b)
  if (max_raw <= 0.0) return a == b ? 1.0 : 0.0;
  return std::clamp(raw / max_raw, 0.0, 1.0);
}

double ResnikSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b) {
  // Normalized Resnik does not reach 1 at IC(a) < max IC; force the
  // identity axiom so 1 - similarity is a usable distance.
  if (a == b) return 1.0;
  ConceptId lcs = tax.LowestCommonSubsumer(a, b);
  double max_ic = tax.MaxInformationContent();
  if (max_ic <= 0.0) return a == b ? 1.0 : 0.0;
  return std::clamp(tax.InformationContent(lcs) / max_ic, 0.0, 1.0);
}

double LinSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b) {
  if (a == b) return 1.0;
  ConceptId lcs = tax.LowestCommonSubsumer(a, b);
  double denom = tax.InformationContent(a) + tax.InformationContent(b);
  if (denom <= 0.0) return 1.0;  // Both are the root.
  return std::clamp(2.0 * tax.InformationContent(lcs) / denom, 0.0, 1.0);
}

double ConceptSimilarity(SimilarityMeasure m, const Taxonomy& tax,
                         ConceptId a, ConceptId b) {
  switch (m) {
    case SimilarityMeasure::kWuPalmer:
      return WuPalmerSimilarity(tax, a, b);
    case SimilarityMeasure::kPath:
      return PathSimilarity(tax, a, b);
    case SimilarityMeasure::kLeacockChodorow:
      return LeacockChodorowSimilarity(tax, a, b);
    case SimilarityMeasure::kResnik:
      return ResnikSimilarity(tax, a, b);
    case SimilarityMeasure::kLin:
      return LinSimilarity(tax, a, b);
  }
  return 0.0;
}

double ConceptDistance(SimilarityMeasure m, const Taxonomy& tax,
                       ConceptId a, ConceptId b) {
  return 1.0 - ConceptSimilarity(m, tax, a, b);
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// An IS-A concept taxonomy (directed acyclic graph) with synonym and
// antonym relations. This is the "domain specific and/or general
// vocabulary" substrate the paper's semantic distance relies on
// (§III-A), and the source of the "antinomy relationship" used by the
// inconsistency case study (§II).

#ifndef SEMTREE_ONTOLOGY_TAXONOMY_H_
#define SEMTREE_ONTOLOGY_TAXONOMY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace semtree {

/// Dense handle for a concept inside a Taxonomy.
using ConceptId = uint32_t;

/// Sentinel for "no concept".
inline constexpr ConceptId kInvalidConcept =
    std::numeric_limits<ConceptId>::max();

/// A multiple-inheritance IS-A taxonomy rooted at a single top concept
/// ("entity"). Concepts are identified by unique lowercase names; aliases
/// (synonyms) resolve to their canonical concept. Antonymy is a symmetric
/// relation between concepts (the paper's "antinomy").
///
/// Not thread-safe for mutation; concurrent reads are safe once built.
class Taxonomy {
 public:
  /// Creates a taxonomy containing only the root concept.
  explicit Taxonomy(std::string root_name = "entity");

  ConceptId root() const { return 0; }
  const std::string& root_name() const { return nodes_[0].name; }

  /// Number of concepts (aliases excluded).
  size_t size() const { return nodes_.size(); }

  // ---------------------------------------------------------------------
  // Construction

  /// Adds a concept below the given parents (root if `parents` empty).
  /// Fails with AlreadyExists if the name (or an alias with that name)
  /// is taken, NotFound if a parent is unknown.
  Result<ConceptId> AddConcept(std::string_view name,
                               const std::vector<std::string>& parents = {});

  /// Adds a concept below parent ids.
  Result<ConceptId> AddConceptUnder(std::string_view name,
                                    const std::vector<ConceptId>& parents);

  /// Adds an extra IS-A edge child -> parent. Fails with
  /// FailedPrecondition if the edge would create a cycle.
  Status AddParent(ConceptId child, ConceptId parent);

  /// Registers `alias` as a synonym resolving to `canonical`.
  Status AddSynonym(std::string_view alias, ConceptId canonical);

  /// Declares `a` and `b` antonyms (symmetric).
  Status AddAntonym(ConceptId a, ConceptId b);

  /// Accumulates observed corpus frequency for a concept; drives the
  /// information-content (Resnik/Lin) measures.
  Status AddFrequency(ConceptId c, uint64_t count);

  // ---------------------------------------------------------------------
  // Lookup

  /// Resolves a name or alias to a ConceptId.
  Result<ConceptId> Find(std::string_view name) const;
  bool Contains(std::string_view name) const;

  const std::string& name(ConceptId c) const { return nodes_[c].name; }
  const std::vector<ConceptId>& parents(ConceptId c) const {
    return nodes_[c].parents;
  }
  const std::vector<ConceptId>& children(ConceptId c) const {
    return nodes_[c].children;
  }
  uint64_t frequency(ConceptId c) const { return nodes_[c].frequency; }

  /// All concept names in id order (stable across runs).
  std::vector<std::string> ConceptNames() const;

  /// All (alias, canonical) synonym pairs.
  std::vector<std::pair<std::string, ConceptId>> Synonyms() const;

  /// All antonym pairs with a < b.
  std::vector<std::pair<ConceptId, ConceptId>> AntonymPairs() const;

  // ---------------------------------------------------------------------
  // Structure queries

  /// Depth of `c`: length of the shortest IS-A chain to the root
  /// (root has depth 0).
  size_t Depth(ConceptId c) const;

  /// Largest depth over all concepts.
  size_t MaxDepth() const;

  /// True if `ancestor` lies on some IS-A chain above `descendant`
  /// (reflexive: a concept is its own ancestor).
  bool IsAncestor(ConceptId ancestor, ConceptId descendant) const;

  /// All ancestors of `c`, inclusive of `c` itself.
  std::vector<ConceptId> Ancestors(ConceptId c) const;

  /// The deepest common ancestor of `a` and `b` (the "least common
  /// subsumer"). Always exists because the taxonomy is rooted.
  ConceptId LowestCommonSubsumer(ConceptId a, ConceptId b) const;

  /// Number of IS-A edges on the shortest path between `a` and `b`
  /// going through their least common subsumer.
  size_t ShortestPathEdges(ConceptId a, ConceptId b) const;

  /// Minimum number of upward IS-A edges from `descendant` to
  /// `ancestor`; SIZE_MAX when `ancestor` is not an ancestor.
  size_t UpEdges(ConceptId descendant, ConceptId ancestor) const;

  /// Information content -log p(c), where p is the corpus probability
  /// mass of the concept's subtree. With no recorded frequencies every
  /// concept counts once (uniform fallback). IC(root) == 0.
  double InformationContent(ConceptId c) const;

  /// Largest information content over all concepts.
  double MaxInformationContent() const;

  // ---------------------------------------------------------------------
  // Antonymy

  bool AreAntonyms(ConceptId a, ConceptId b) const;
  std::vector<ConceptId> AntonymsOf(ConceptId c) const;

  /// Convenience: antonyms of a concept looked up by name; empty vector
  /// if the name is unknown.
  std::vector<std::string> AntonymNamesOf(std::string_view name) const;

  /// Validates internal invariants (acyclicity, bidirectional edges,
  /// alias targets). Intended for tests and after file loads.
  Status Validate() const;

 private:
  struct Node {
    std::string name;
    std::vector<ConceptId> parents;
    std::vector<ConceptId> children;
    std::vector<ConceptId> antonyms;
    uint64_t frequency = 0;
  };

  void InvalidateCaches();
  void EnsureDepths() const;
  void EnsureInformationContent() const;
  bool WouldCreateCycle(ConceptId child, ConceptId parent) const;

  std::vector<Node> nodes_;
  std::unordered_map<std::string, ConceptId> by_name_;
  std::unordered_map<std::string, ConceptId> aliases_;

  // Lazily computed caches, invalidated on mutation.
  mutable bool depths_valid_ = false;
  mutable std::vector<uint32_t> depths_;
  mutable size_t max_depth_ = 0;
  mutable bool ic_valid_ = false;
  mutable std::vector<double> information_content_;
  mutable double max_ic_ = 0.0;
};

}  // namespace semtree

#endif  // SEMTREE_ONTOLOGY_TAXONOMY_H_

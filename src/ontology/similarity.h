// Copyright 2026 The SemTree Authors
//
// Taxonomy-based semantic similarity measures. The paper (§III-A) names
// Wu & Palmer as the concept-to-concept measure and cites Resnik [9];
// we implement the widely used family so the distance is configurable:
// Wu & Palmer, path, Leacock–Chodorow, Resnik, Lin.
//
// Every measure returns a similarity in [0,1] (1 = same concept), so
// 1 - similarity is a normalized distance usable by Eq. (1).

#ifndef SEMTREE_ONTOLOGY_SIMILARITY_H_
#define SEMTREE_ONTOLOGY_SIMILARITY_H_

#include "ontology/taxonomy.h"

namespace semtree {

/// The selectable concept similarity measures.
enum class SimilarityMeasure {
  kWuPalmer,
  kPath,
  kLeacockChodorow,
  kResnik,
  kLin,
};

const char* SimilarityMeasureName(SimilarityMeasure m);

/// Wu & Palmer: 2*depth(lcs) / (depth(a) + depth(b)), with depths
/// counted from 1 at the root so the measure is defined everywhere.
double WuPalmerSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b);

/// Path measure: 1 / (1 + shortest_path_edges(a, b)).
double PathSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b);

/// Leacock–Chodorow: -log(len / (2*D)) scaled into [0,1], where len is
/// the node count of the shortest path and D the taxonomy depth.
double LeacockChodorowSimilarity(const Taxonomy& tax, ConceptId a,
                                 ConceptId b);

/// Resnik: IC(lcs), normalized by the taxonomy's maximal information
/// content so the value lands in [0,1]; defined as 1 when a == b so the
/// identity axiom holds for the derived distance.
double ResnikSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b);

/// Lin: 2*IC(lcs) / (IC(a) + IC(b)); defined as 1 when both a and b are
/// the root (zero IC).
double LinSimilarity(const Taxonomy& tax, ConceptId a, ConceptId b);

/// Dispatches on the chosen measure.
double ConceptSimilarity(SimilarityMeasure m, const Taxonomy& tax,
                         ConceptId a, ConceptId b);

/// 1 - ConceptSimilarity, in [0,1].
double ConceptDistance(SimilarityMeasure m, const Taxonomy& tax,
                       ConceptId a, ConceptId b);

}  // namespace semtree

#endif  // SEMTREE_ONTOLOGY_SIMILARITY_H_

// Copyright 2026 The SemTree Authors

#include "nlp/triple_extractor.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace semtree {

TripleExtractor::TripleExtractor(const Taxonomy* vocabulary)
    : vocabulary_(vocabulary) {
  for (const FunctionPhrase& p : FunctionPhrases()) {
    verb_to_function_[p.verb_phrase] = p.function;
  }
}

Result<Triple> TripleExtractor::ExtractFromSentence(
    std::string_view sentence) const {
  // Grammar: The <ACTOR> component shall <verb...> the <param> <kind> .
  std::vector<std::string> tokens = TokenizePreservingCase(sentence);
  if (tokens.size() < 8) {
    return Status::InvalidArgument("sentence too short for the grammar");
  }
  if (ToLower(tokens[0]) != "the" || ToLower(tokens[2]) != "component" ||
      ToLower(tokens[3]) != "shall") {
    return Status::InvalidArgument(
        "sentence does not match 'The <actor> component shall ...'");
  }
  const std::string& actor = tokens[1];

  // The verb phrase spans tokens[4..article), where `article` is the
  // next "the".
  size_t article = 0;
  for (size_t i = 4; i < tokens.size(); ++i) {
    if (ToLower(tokens[i]) == "the") {
      article = i;
      break;
    }
  }
  if (article == 0 || article + 2 >= tokens.size()) {
    return Status::InvalidArgument("missing '... the <parameter> <kind>'");
  }
  std::vector<std::string> verb_tokens;
  for (size_t i = 4; i < article; ++i) {
    verb_tokens.push_back(ToLower(tokens[i]));
  }
  if (verb_tokens.empty()) {
    return Status::InvalidArgument("missing verb phrase");
  }
  std::string verb = Join(verb_tokens, " ");
  auto fn = verb_to_function_.find(verb);
  if (fn == verb_to_function_.end()) {
    return Status::NotFound(
        StringPrintf("unknown verb phrase '%s'", verb.c_str()));
  }

  std::string parameter =
      ParameterNameFromPhrase(ToLower(tokens[article + 1]));
  if (!vocabulary_->Contains(parameter)) {
    return Status::NotFound(
        StringPrintf("unknown parameter '%s'", parameter.c_str()));
  }

  Requirement req;
  req.actor = actor;
  req.function = fn->second;
  req.parameter = parameter;
  return RequirementTriple(req, *vocabulary_);
}

std::vector<Triple> TripleExtractor::ExtractFromDocument(
    const RequirementsDocument& document,
    std::vector<std::string>* errors) const {
  std::vector<Triple> out;
  for (const std::string& sentence : SplitSentences(document.FullText())) {
    auto triple = ExtractFromSentence(sentence);
    if (triple.ok()) {
      out.push_back(std::move(*triple));
    } else if (errors != nullptr) {
      errors->push_back(triple.status().ToString() + " in: " + sentence);
    }
  }
  return out;
}

Result<size_t> TripleExtractor::ExtractCorpus(
    const std::vector<RequirementsDocument>& documents,
    TripleStore* store) const {
  if (store == nullptr) {
    return Status::InvalidArgument("store must not be null");
  }
  size_t count = 0;
  for (const RequirementsDocument& doc : documents) {
    std::vector<std::string> errors;
    for (Triple& t : ExtractFromDocument(doc, &errors)) {
      store->Add(std::move(t), doc.id);
      ++count;
    }
    if (!errors.empty()) {
      return Status::InvalidArgument(StringPrintf(
          "document %u: %zu unparseable sentences (first: %s)", doc.id,
          errors.size(), errors[0].c_str()));
    }
  }
  return count;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Pattern-based SVO triple extraction from the controlled requirements
// language. The paper treats NLP extraction as an external facility
// ([6], §III-A: "we are not interested in how it is possible to
// transform documents into a set of assertions"); this extractor covers
// exactly the controlled grammar the corpus generator emits, closing
// the documents -> triples loop end to end.

#ifndef SEMTREE_NLP_TRIPLE_EXTRACTOR_H_
#define SEMTREE_NLP_TRIPLE_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "nlp/requirements_corpus.h"
#include "ontology/taxonomy.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace semtree {

/// Extracts (actor, Fun:function, Type:parameter) triples from
/// requirement sentences of the form
/// "The <ACTOR> component shall <verb phrase> the <parameter> <kind>."
class TripleExtractor {
 public:
  /// `vocabulary` must contain the function/parameter concepts and
  /// outlive the extractor.
  explicit TripleExtractor(const Taxonomy* vocabulary);

  /// Parses one sentence. Fails with InvalidArgument on text outside
  /// the controlled grammar, NotFound on unknown vocabulary.
  Result<Triple> ExtractFromSentence(std::string_view sentence) const;

  /// Extracts every sentence of a document; unparseable sentences are
  /// reported in `errors` (if non-null) and skipped.
  std::vector<Triple> ExtractFromDocument(
      const RequirementsDocument& document,
      std::vector<std::string>* errors = nullptr) const;

  /// Extracts a whole corpus into `store`, tagging provenance; returns
  /// the number of triples extracted.
  Result<size_t> ExtractCorpus(
      const std::vector<RequirementsDocument>& documents,
      TripleStore* store) const;

 private:
  const Taxonomy* vocabulary_;
  // "accept" / "start up" -> function concept name.
  std::unordered_map<std::string, std::string> verb_to_function_;
};

}  // namespace semtree

#endif  // SEMTREE_NLP_TRIPLE_EXTRACTOR_H_

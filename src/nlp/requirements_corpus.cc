// Copyright 2026 The SemTree Authors

#include "nlp/requirements_corpus.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "ontology/requirements_vocabulary.h"

namespace semtree {

std::string RequirementsDocument::FullText() const {
  std::string out;
  for (const Requirement& r : requirements) {
    out += r.text;
    out += '\n';
  }
  return out;
}

const std::vector<FunctionPhrase>& FunctionPhrases() {
  static const std::vector<FunctionPhrase> kPhrases = {
      // Command handling.
      {"accept_cmd", "accept", "command"},
      {"block_cmd", "block", "command"},
      {"execute_cmd", "execute", "command"},
      {"abort_cmd", "abort", "command"},
      {"validate_cmd", "validate", "command"},
      {"discard_cmd", "discard", "command"},
      {"queue_cmd", "queue", "command"},
      // Messaging.
      {"send_msg", "send", "message"},
      {"inhibit_msg", "inhibit", "message"},
      {"broadcast_msg", "broadcast", "message"},
      {"suppress_msg", "suppress", "message"},
      {"forward_msg", "forward", "message"},
      {"drop_msg", "drop", "message"},
      {"log_msg", "log", "message"},
      // Input acquisition.
      {"acquire_in", "acquire", "input"},
      {"ignore_in", "ignore", "input"},
      {"sample_in", "sample", "input"},
      {"mask_in", "mask", "input"},
      {"calibrate_in", "calibrate", "input"},
      // Telemetry.
      {"enable_tm", "enable", "telemetry"},
      {"disable_tm", "disable", "telemetry"},
      {"transmit_tm", "transmit", "telemetry"},
      {"withhold_tm", "withhold", "telemetry"},
      {"format_tm", "format", "telemetry"},
      // Modes.
      {"start_up", "start up", "procedure"},
      {"shut_down", "shut down", "procedure"},
      {"activate", "activate", "procedure"},
      {"deactivate", "deactivate", "procedure"},
      {"resume", "resume", "procedure"},
      {"suspend", "suspend", "procedure"},
      {"initialize", "initialize", "procedure"},
      {"terminate", "terminate", "procedure"},
      // Memory.
      {"store_data", "store", "segment"},
      {"erase_data", "erase", "segment"},
      {"load_data", "load", "segment"},
      {"dump_data", "dump", "segment"},
      {"lock_mem", "lock", "segment"},
      {"unlock_mem", "unlock", "segment"},
      // Power.
      {"power_on", "power on", "unit"},
      {"power_off", "power off", "unit"},
      {"increase_power", "boost", "unit"},
      {"decrease_power", "throttle", "unit"},
      // Safety.
      {"arm_device", "arm", "device"},
      {"disarm_device", "disarm", "device"},
      {"engage_lock", "engage", "device"},
      {"release_lock", "release", "device"},
      {"trigger_alarm", "trigger", "device"},
      {"clear_alarm", "clear", "device"},
  };
  return kPhrases;
}

namespace {

const FunctionPhrase* FindPhrase(const std::string& function) {
  for (const FunctionPhrase& p : FunctionPhrases()) {
    if (function == p.function) return &p;
  }
  return nullptr;
}

// Parameter family -> object prefix (the paper's CmdType / MsgType /
// InType notation).
const std::unordered_map<std::string, std::string>& FamilyPrefixes() {
  static const std::unordered_map<std::string, std::string> kPrefixes = {
      {"command_type", "CmdType"}, {"message_type", "MsgType"},
      {"input_type", "InType"},    {"telemetry_type", "TmType"},
      {"memory_type", "MemType"},  {"device_type", "DevType"},
  };
  return kPrefixes;
}

}  // namespace

std::string ParameterPhrase(const std::string& parameter_name) {
  std::string out = parameter_name;
  std::replace(out.begin(), out.end(), '_', '-');
  return out;
}

std::string ParameterNameFromPhrase(const std::string& phrase) {
  std::string out = phrase;
  std::replace(out.begin(), out.end(), '-', '_');
  return out;
}

Result<std::string> RenderRequirementSentence(const Requirement& req) {
  const FunctionPhrase* phrase = FindPhrase(req.function);
  if (phrase == nullptr) {
    return Status::NotFound(
        StringPrintf("no phrase for function '%s'", req.function.c_str()));
  }
  return StringPrintf("The %s component shall %s the %s %s.",
                      req.actor.c_str(), phrase->verb_phrase,
                      ParameterPhrase(req.parameter).c_str(),
                      phrase->kind_noun);
}

Result<Triple> RequirementTriple(const Requirement& req,
                                 const Taxonomy& vocabulary) {
  SEMTREE_ASSIGN_OR_RETURN(ConceptId param,
                           vocabulary.Find(req.parameter));
  std::string prefix = "Type";
  for (ConceptId parent : vocabulary.parents(param)) {
    auto it = FamilyPrefixes().find(vocabulary.name(parent));
    if (it != FamilyPrefixes().end()) {
      prefix = it->second;
      break;
    }
  }
  if (!vocabulary.Contains(req.function)) {
    return Status::NotFound(
        StringPrintf("function '%s' not in vocabulary",
                     req.function.c_str()));
  }
  return Triple(Term::Literal(req.actor),
                Term::Concept(req.function, "Fun"),
                Term::Concept(req.parameter, prefix));
}

RequirementsCorpusGenerator::RequirementsCorpusGenerator(
    const Taxonomy* vocabulary, CorpusOptions options)
    : vocabulary_(vocabulary),
      options_(options),
      rng_(options.seed) {
  actors_.reserve(options_.num_actors);
  for (size_t i = 0; i < std::max<size_t>(1, options_.num_actors); ++i) {
    actors_.push_back(StringPrintf("OBSW%03zu", i + 1));
  }
  // Only functions that have both a phrase and a vocabulary entry are
  // eligible (with the built-in vocabulary that is all of them).
  for (const FunctionPhrase& p : FunctionPhrases()) {
    if (vocabulary_->Contains(p.function)) functions_.push_back(p.function);
  }
}

bool RequirementsCorpusGenerator::TryMakeInconsistent(uint32_t id,
                                                      Requirement* out) {
  if (history_.empty()) return false;
  // Pick a past requirement whose function has an antonym and negate it.
  for (size_t attempt = 0; attempt < 8; ++attempt) {
    const Requirement& past = rng_.Choice(history_);
    std::vector<std::string> antonyms =
        vocabulary_->AntonymNamesOf(past.function);
    if (antonyms.empty()) continue;
    const std::string& antonym =
        antonyms[rng_.Uniform(antonyms.size())];
    if (FindPhrase(antonym) == nullptr) continue;
    out->id = id;
    out->actor = past.actor;
    out->function = antonym;
    out->parameter = past.parameter;
    return true;
  }
  return false;
}

Requirement RequirementsCorpusGenerator::MakeRequirement(uint32_t id) {
  Requirement req;
  if (options_.inconsistency_rate > 0.0 &&
      rng_.Bernoulli(options_.inconsistency_rate) &&
      TryMakeInconsistent(id, &req)) {
    // Seeded contradiction of an earlier requirement.
  } else {
    req.id = id;
    req.actor = actors_[rng_.Uniform(actors_.size())];
    size_t f = options_.zipf_skew > 0.0
                   ? rng_.Zipf(functions_.size(), options_.zipf_skew)
                   : rng_.Uniform(functions_.size());
    req.function = functions_[f];
    std::vector<std::string> params =
        ParameterNamesForFunction(*vocabulary_, req.function);
    req.parameter = params[rng_.Uniform(params.size())];
  }
  auto text = RenderRequirementSentence(req);
  req.text = text.ok() ? *text : "";
  history_.push_back(req);
  return req;
}

std::vector<RequirementsDocument>
RequirementsCorpusGenerator::Generate() {
  std::vector<RequirementsDocument> docs;
  docs.reserve(options_.num_documents);
  uint32_t next_req_id = 1;
  size_t lo = std::max<size_t>(1, options_.min_requirements_per_doc);
  size_t hi = std::max(lo, options_.max_requirements_per_doc);
  for (size_t d = 0; d < options_.num_documents; ++d) {
    RequirementsDocument doc;
    doc.id = static_cast<DocumentId>(d);
    doc.title = StringPrintf("On-Board Software Requirements, Part %zu",
                             d + 1);
    size_t count = lo + rng_.Uniform(hi - lo + 1);
    doc.requirements.reserve(count);
    for (size_t r = 0; r < count; ++r) {
      doc.requirements.push_back(MakeRequirement(next_req_id++));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

Result<std::vector<Triple>> RequirementsCorpusGenerator::GenerateTriples() {
  std::vector<Triple> out;
  for (const RequirementsDocument& doc : Generate()) {
    for (const Requirement& req : doc.requirements) {
      SEMTREE_ASSIGN_OR_RETURN(Triple t,
                               RequirementTriple(req, *vocabulary_));
      out.push_back(std::move(t));
    }
  }
  return out;
}

Status RequirementsCorpusGenerator::AccumulateFrequencies(
    const std::vector<RequirementsDocument>& documents,
    Taxonomy* vocabulary) {
  for (const RequirementsDocument& doc : documents) {
    for (const Requirement& req : doc.requirements) {
      SEMTREE_ASSIGN_OR_RETURN(ConceptId fn,
                               vocabulary->Find(req.function));
      SEMTREE_RETURN_NOT_OK(vocabulary->AddFrequency(fn, 1));
      SEMTREE_ASSIGN_OR_RETURN(ConceptId param,
                               vocabulary->Find(req.parameter));
      SEMTREE_RETURN_NOT_OK(vocabulary->AddFrequency(param, 1));
    }
  }
  return Status::OK();
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Synthetic on-board-software requirements corpus. The paper evaluates
// on several hundred proprietary CIRA documents yielding ~100,000
// triples (§IV); this generator reproduces that corpus' *shape*: the
// same triple schema (Actor, Function:..., Type:...), a controlled
// natural-language rendering, and injected inconsistencies (antonymic
// requirement pairs) at a configurable rate. See DESIGN.md §2.

#ifndef SEMTREE_NLP_REQUIREMENTS_CORPUS_H_
#define SEMTREE_NLP_REQUIREMENTS_CORPUS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "ontology/taxonomy.h"
#include "rdf/triple.h"

namespace semtree {

/// One software requirement: "actor shall function parameter".
struct Requirement {
  uint32_t id = 0;
  std::string actor;      ///< e.g. "OBSW001" (a literal identifier).
  std::string function;   ///< Canonical function concept name.
  std::string parameter;  ///< Canonical parameter concept name.
  std::string text;       ///< Controlled natural-language sentence.
};

/// A requirements document: a titled set of requirement sections.
struct RequirementsDocument {
  DocumentId id = 0;
  std::string title;
  std::vector<Requirement> requirements;

  /// All requirement sentences concatenated.
  std::string FullText() const;
};

/// NL rendering of one function concept.
struct FunctionPhrase {
  const char* function;    ///< Concept name, e.g. "accept_cmd".
  const char* verb_phrase; ///< e.g. "accept" or "start up".
  const char* kind_noun;   ///< e.g. "command".
};

/// The full phrase table covering every leaf function of
/// RequirementsVocabulary(). Verb phrases are unique, so extraction is
/// unambiguous.
const std::vector<FunctionPhrase>& FunctionPhrases();

/// "power_amplifier" -> "power-amplifier" (single NL token).
std::string ParameterPhrase(const std::string& parameter_name);

/// Inverse of ParameterPhrase.
std::string ParameterNameFromPhrase(const std::string& phrase);

/// Renders the controlled sentence for a requirement:
/// "The OBSW001 component shall accept the startup-cmd command."
Result<std::string> RenderRequirementSentence(const Requirement& req);

/// The triple a requirement denotes: ('actor', Fun:function,
/// Type:parameter). The object prefix is derived from the parameter's
/// family in the vocabulary (CmdType, MsgType, InType, ...).
Result<Triple> RequirementTriple(const Requirement& req,
                                 const Taxonomy& vocabulary);

struct CorpusOptions {
  size_t num_documents = 100;
  size_t min_requirements_per_doc = 8;
  size_t max_requirements_per_doc = 20;

  /// Distinct actor identifiers (OBSW001...).
  size_t num_actors = 40;

  /// Probability that a new requirement contradicts an earlier one
  /// (same actor and parameter, antonymic function) — the seeded
  /// inconsistencies the case study must find.
  double inconsistency_rate = 0.05;

  /// Zipf skew of function popularity (0 = uniform).
  double zipf_skew = 0.8;

  uint64_t seed = 42;
};

/// Deterministic generator over the requirements vocabulary.
class RequirementsCorpusGenerator {
 public:
  /// `vocabulary` must be (a superset of) RequirementsVocabulary() and
  /// outlive the generator.
  RequirementsCorpusGenerator(const Taxonomy* vocabulary,
                              CorpusOptions options);

  /// Generates the documents. Every requirement renders to a sentence
  /// and back-translates to a triple without loss.
  std::vector<RequirementsDocument> Generate();

  /// Convenience: generates documents and flattens them to triples
  /// (one per requirement, in document order).
  Result<std::vector<Triple>> GenerateTriples();

  /// Records concept frequencies (functions + parameters) observed in
  /// `documents` into `vocabulary`, enabling corpus-driven information
  /// content for the Resnik/Lin measures.
  static Status AccumulateFrequencies(
      const std::vector<RequirementsDocument>& documents,
      Taxonomy* vocabulary);

 private:
  Requirement MakeRequirement(uint32_t id);
  bool TryMakeInconsistent(uint32_t id, Requirement* out);

  const Taxonomy* vocabulary_;
  CorpusOptions options_;
  Rng rng_;
  std::vector<std::string> actors_;
  std::vector<std::string> functions_;  // Leaf function names.
  std::vector<Requirement> history_;    // For inconsistency injection.
};

}  // namespace semtree

#endif  // SEMTREE_NLP_REQUIREMENTS_CORPUS_H_

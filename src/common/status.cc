// Copyright 2026 The SemTree Authors

#include "common/status.h"

namespace semtree {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace semtree {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
// Serializes the final fprintf only, so interleaved messages from
// concurrent threads stay line-atomic; the stream formatting happens
// unlocked in each LogMessage.
Mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lock(g_emit_mu);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace semtree

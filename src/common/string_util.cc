// Copyright 2026 The SemTree Authors

#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace semtree {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringPrintf("%llu B", (unsigned long long)bytes);
  return StringPrintf("%.1f %s", value, kUnits[unit]);
}

std::string HumanCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  int pos = 0;
  for (int i = static_cast<int>(digits.size()) - 1; i >= 0; --i) {
    out.push_back(digits[static_cast<size_t>(i)]);
    if (++pos % 3 == 0 && i != 0) out.push_back(',');
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <clocale>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace semtree {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

namespace {

// The decimal separator LC_NUMERIC currently imposes on strtod and
// printf ('.' in the classic locale).
char LocaleDecimalPoint() {
  const struct lconv* lc = std::localeconv();
  return (lc != nullptr && lc->decimal_point != nullptr &&
          lc->decimal_point[0] != '\0')
             ? lc->decimal_point[0]
             : '.';
}

}  // namespace

bool ParseDoubleText(std::string_view s, double* out) {
  if (s.empty()) return false;
#if defined(__cpp_lib_to_chars)
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
#else
  // strtod fallback: only trustworthy under the classic numeric
  // locale; otherwise rewrite '.' to the active decimal point first.
  std::string buf(s);
  char point = LocaleDecimalPoint();
  if (point != '.') {
    for (char& c : buf) {
      if (c == '.') c = point;
    }
  }
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end != buf.c_str() && *end == '\0';
#endif
}

bool ParseUint64Text(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out, 10);
  return ec == std::errc() && ptr == last;
}

std::string FormatDouble(double v) {
#if defined(__cpp_lib_to_chars)
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) return std::string(buf, ptr);
#endif
  // printf fallback: %.17g round-trips every double but writes the
  // locale's decimal point; normalize it back to '.'.
  std::string out = StringPrintf("%.17g", v);
  char point = LocaleDecimalPoint();
  if (point != '.') {
    for (char& c : out) {
      if (c == point) c = '.';
    }
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringPrintf("%llu B", (unsigned long long)bytes);
  return StringPrintf("%.1f %s", value, kUnits[unit]);
}

std::string HumanCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  int pos = 0;
  for (int i = static_cast<int>(digits.size()) - 1; i >= 0; --i) {
    out.push_back(digits[static_cast<size_t>(i)]);
    if (++pos % 3 == 0 && i != 0) out.push_back(',');
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Stopwatch is header-only; this translation unit exists so the target has
// a stable archive member and to hold future timing utilities.

#include "common/stopwatch.h"

namespace semtree {}  // namespace semtree

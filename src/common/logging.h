// Copyright 2026 The SemTree Authors
//
// Minimal leveled logging. The library logs nothing by default; verbosity
// is opt-in so benchmark timings stay clean.

#ifndef SEMTREE_COMMON_LOGGING_H_
#define SEMTREE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace semtree {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
/// Defaults to kWarning.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SEMTREE_LOG(level)                                        \
  ::semtree::internal::LogMessage(::semtree::LogLevel::k##level,  \
                                  __FILE__, __LINE__)

}  // namespace semtree

#endif  // SEMTREE_COMMON_LOGGING_H_

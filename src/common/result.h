// Copyright 2026 The SemTree Authors
//
// Result<T>: a value-or-Status return type, in the spirit of
// arrow::Result / absl::StatusOr.

#ifndef SEMTREE_COMMON_RESULT_H_
#define SEMTREE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace semtree {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Constructing a Result from an OK Status is a
/// programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Assigns the value of a Result expression to `lhs`, or returns its
/// Status from the enclosing function on error.
#define SEMTREE_ASSIGN_OR_RETURN(lhs, rexpr)       \
  SEMTREE_ASSIGN_OR_RETURN_IMPL_(                  \
      SEMTREE_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define SEMTREE_CONCAT_INNER_(a, b) a##b
#define SEMTREE_CONCAT_(a, b) SEMTREE_CONCAT_INNER_(a, b)
#define SEMTREE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace semtree

#endif  // SEMTREE_COMMON_RESULT_H_

// Copyright 2026 The SemTree Authors
//
// Small string helpers shared across modules (parsing, formatting, CSV
// output for the benchmark harness).

#ifndef SEMTREE_COMMON_STRING_UTIL_H_
#define SEMTREE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace semtree {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Locale-independent parse of a decimal floating-point number (the
/// whole string must be consumed). strtod honours LC_NUMERIC, so under
/// a de_DE-style locale it stops at the '.' of "1.5" and a persisted
/// index fails to round-trip; these helpers always read and write the
/// C-locale "1.5" form regardless of the process locale.
bool ParseDoubleText(std::string_view s, double* out);

/// Locale-independent parse of a base-10 unsigned integer.
bool ParseUint64Text(std::string_view s, uint64_t* out);

/// Locale-independent shortest round-trip formatting of a double
/// (always '.' as the decimal separator; ParseDoubleText inverts it
/// bit-exactly).
std::string FormatDouble(double v);

/// Formats a byte count as a human-readable string ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

/// Formats a count with thousands separators ("1,234,567").
std::string HumanCount(uint64_t count);

}  // namespace semtree

#endif  // SEMTREE_COMMON_STRING_UTIL_H_

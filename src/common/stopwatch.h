// Copyright 2026 The SemTree Authors
//
// Wall-clock timing for benchmarks and the experiment harness.

#ifndef SEMTREE_COMMON_STOPWATCH_H_
#define SEMTREE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace semtree {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace semtree

#endif  // SEMTREE_COMMON_STOPWATCH_H_

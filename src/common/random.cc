// Copyright 2026 The SemTree Authors

#include "common/random.h"

#include <cassert>
#include <cmath>

namespace semtree {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands a single seed into the four xoshiro words.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::string Rng::Identifier(size_t length) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[Uniform(26)]);
  }
  return out;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over the (truncated) harmonic series; adequate for
  // workload generation where n is a vocabulary size, not millions.
  double h = 0.0;
  for (uint64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(double(k), s);
  double u = UniformDouble() * h;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (acc >= u) return k - 1;
  }
  return n - 1;
}

}  // namespace semtree

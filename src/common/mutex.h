// Copyright 2026 The SemTree Authors
//
// Thin annotated wrappers over the std synchronization primitives.
// These exist so Clang's thread-safety analysis can see every lock in
// the tree: std::mutex and friends carry no capability attributes, so
// code using them raw is invisible to -Wthread-safety. The wrappers
// add the attributes and nothing else — each method is a single
// forwarded call, so the generated code is identical to using the std
// types directly.
//
// Usage pattern (see DESIGN.md §10 for the full lock inventory):
//
//   class Queue {
//     ...
//    private:
//     Mutex mu_;
//     std::deque<Item> items_ GUARDED_BY(mu_);
//   };
//
//   void Queue::Push(Item item) {
//     MutexLock lock(mu_);
//     items_.push_back(std::move(item));   // OK: mu_ held.
//   }
//
// Accessing `items_` without the lock is a compile error under
// -Wthread-safety. Condition waits go through CondVar::Wait(mu), which
// REQUIRES(mu) — write them as explicit while loops, not predicate
// lambdas, so the analysis can track the lock through the wait:
//
//   MutexLock lock(mu_);
//   while (items_.empty() && !closed_) cv_.Wait(mu_);
//
// scripts/check_source.sh enforces that src/ uses these wrappers
// instead of the raw std types (this file is the single allowed
// exception).

#ifndef SEMTREE_COMMON_MUTEX_H_
#define SEMTREE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace semtree {

/// Annotated std::mutex. Prefer the RAII MutexLock; Lock/Unlock are
/// for the rare hand-over-hand or drop-while-working patterns (e.g.
/// Cluster::NetworkLoop) where a scope cannot express the region.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spelling, so std facilities (condition_variable_any)
  /// can drive the same annotated mutex.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::shared_mutex: one writer or many readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexLock() RELEASE() { mu_.Unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  // Generic release: the scoped object held a shared capability, and
  // the analysis tracks which flavor was acquired at construction.
  ~SharedReaderLock() RELEASE() { mu_.UnlockShared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Implemented over
/// std::condition_variable_any, which accepts any BasicLockable — the
/// unlock/relock inside Wait happens through Mutex's own annotated
/// lock()/unlock(), so TSan observes the same acquire/release pairs as
/// with std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires before returning.
  /// The caller must hold `mu` (compile-checked) and, as with any
  /// condition variable, must re-test its predicate in a loop.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Wait with a deadline; returns std::cv_status::timeout if the
  /// deadline passed without a notification.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace semtree

#endif  // SEMTREE_COMMON_MUTEX_H_

// Copyright 2026 The SemTree Authors
//
// Clang thread-safety annotation macros (the Abseil/GUARDED_BY
// capability model). Annotations turn the repo's lock discipline —
// "partitions_ is protected by partitions_mu_", "CondVar::Wait requires
// the mutex held" — into compile-time contracts: building with
//
//   clang++ -Wthread-safety -Wthread-safety-beta -Werror
//
// rejects any access to a guarded field without its mutex, any double
// acquire, and any scope that exits with a lock it should have
// released. The CI static-analysis job does exactly that over the
// whole src/ tree (see DESIGN.md §10).
//
// On compilers without the attributes (GCC, MSVC) every macro expands
// to nothing, so annotated code builds everywhere; the analysis is
// purely additive. Use these through the annotated wrappers in
// common/mutex.h — scripts/check_source.sh forbids raw standard-library
// lock types in src/ precisely so that every lock in the tree is
// visible to the analysis.

#ifndef SEMTREE_COMMON_THREAD_ANNOTATIONS_H_
#define SEMTREE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define SEMTREE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEMTREE_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lockable). `name` appears in
/// diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(name) SEMTREE_THREAD_ANNOTATION(capability(name))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY SEMTREE_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field/variable is protected by the given mutex:
/// reads require the mutex held (shared or exclusive), writes require
/// it held exclusively.
#define GUARDED_BY(x) SEMTREE_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY, but for pointers: the pointer itself is
/// unrestricted, the pointed-to data requires the mutex.
#define PT_GUARDED_BY(x) SEMTREE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that the annotated mutex must be acquired before/after the
/// listed ones (lock-ordering, checked by the analysis).
#define ACQUIRED_BEFORE(...) \
  SEMTREE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SEMTREE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function attribute: the caller must hold the listed capabilities
/// (exclusively / at least shared) on entry; they stay held on exit.
#define REQUIRES(...) \
  SEMTREE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SEMTREE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: the function acquires the capability and holds
/// it on return (exclusive / shared).
#define ACQUIRE(...) \
  SEMTREE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SEMTREE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: the function releases the capability, which must
/// be held on entry.
#define RELEASE(...) \
  SEMTREE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SEMTREE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SEMTREE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attribute: acquires the capability only when returning the
/// given value (try-lock idiom).
#define TRY_ACQUIRE(...) \
  SEMTREE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SEMTREE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function attribute: the listed capabilities must NOT be held on
/// entry (deadlock prevention for self-locking APIs).
#define EXCLUDES(...) SEMTREE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: the function asserts (at runtime) that the
/// capability is held; the analysis assumes it afterwards.
#define ASSERT_CAPABILITY(x) \
  SEMTREE_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SEMTREE_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function attribute: returns a reference to the given capability
/// (for mutex accessors).
#define RETURN_CAPABILITY(x) SEMTREE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use in
/// src/ must carry an inline comment justifying why the discipline
/// cannot be expressed (the CI gate reviews these like NOLINTs).
#define NO_THREAD_SAFETY_ANALYSIS \
  SEMTREE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SEMTREE_COMMON_THREAD_ANNOTATIONS_H_

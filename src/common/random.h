// Copyright 2026 The SemTree Authors
//
// Deterministic pseudo-random generation used across workload generators,
// tests and benchmarks. All SemTree experiments are reproducible given a
// seed.

#ifndef SEMTREE_COMMON_RANDOM_H_
#define SEMTREE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace semtree {

/// A small, fast, deterministic PRNG (xoshiro256**). Not cryptographic.
///
/// Distinct from std::mt19937 so that streams are stable across standard
/// library implementations — benchmark workloads must not change when the
/// toolchain does.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Box–Muller).
  double Gaussian();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly chosen index, then element, of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Random lowercase ASCII identifier of the given length.
  std::string Identifier(size_t length);

  /// Zipf-distributed rank in [0, n) with exponent s. Used to give corpus
  /// generators realistic skew.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace semtree

#endif  // SEMTREE_COMMON_RANDOM_H_

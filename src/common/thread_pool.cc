// Copyright 2026 The SemTree Authors

#include "common/thread_pool.h"

#include <memory>

namespace semtree {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  // Idempotent: a second call finds no workers left to join. Workers
  // drain the queue before exiting (see WorkerLoop), so every task
  // submitted before Shutdown still runs to completion.
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  // Shared ownership so the task survives whichever path runs it: the
  // enqueued wrapper, or the inline fallback when the pool refused it.
  auto task = std::make_shared<std::function<void()>>(std::move(fn));
  // The wrapper decrements under the group mutex, so a Wait that saw
  // pending_ > 0 is guaranteed a wake-up for this completion.
  bool queued = pool_->TrySubmit([this, task]() {
    (*task)();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      ++completions_;
    }
    cv_.notify_all();
  });
  if (!queued) {
    // Pool shut down: run inline rather than leaving the group waiting
    // on a task that will never execute.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    (*task)();
  }
}

void TaskGroup::Wait() {
  for (;;) {
    // Drain whatever is queued on the calling thread first. This is
    // what makes recursive fan-out safe on a saturated pool: the
    // waiter is itself a worker.
    if (pool_ != nullptr) {
      while (pool_->TryRunOne()) {
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_ == 0) return;
    // Sleep until either the group drains or *any* task completes —
    // a completing task may have enqueued subtasks worth stealing.
    uint64_t seen = completions_;
    cv_.wait(lock, [this, seen]() {
      return pending_ == 0 || completions_ != seen;
    });
    if (pending_ == 0) return;
  }
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "common/thread_pool.h"

#include <memory>

namespace semtree {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  // Constructor: no other thread can hold mu_ yet, but the workers
  // spawned below immediately lock it, so reserve/emplace stay inside
  // the critical section for the analysis' sake.
  MutexLock lock(mu_);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  // Swap the workers out under the lock, join outside it (a worker
  // needs mu_ to observe shutdown_ and exit). Concurrent Shutdown
  // calls each reap a disjoint (possibly empty) set — the second
  // caller finds an empty vector instead of joining threads the first
  // is still joining.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  cv_.NotifyAll();
  // Workers drain the queue before exiting (see WorkerLoop), so every
  // task submitted before Shutdown still runs to completion.
  for (auto& worker : workers) worker.join();
}

size_t ThreadPool::num_threads() const {
  MutexLock lock(mu_);
  return workers_.size();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
  }
  task();
  {
    MutexLock lock(mu_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
  }
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // Shutdown and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  // Shared ownership so the task survives whichever path runs it: the
  // enqueued wrapper, or the inline fallback when the pool refused it.
  auto task = std::make_shared<std::function<void()>>(std::move(fn));
  // The wrapper decrements under the group mutex, so a Wait that saw
  // pending_ > 0 is guaranteed a wake-up for this completion.
  bool queued = pool_->TrySubmit([this, task]() {
    (*task)();
    {
      MutexLock lock(mu_);
      --pending_;
      ++completions_;
    }
    cv_.NotifyAll();
  });
  if (!queued) {
    // Pool shut down: run inline rather than leaving the group waiting
    // on a task that will never execute.
    {
      MutexLock lock(mu_);
      --pending_;
    }
    (*task)();
  }
}

void TaskGroup::Wait() {
  for (;;) {
    // Drain whatever is queued on the calling thread first. This is
    // what makes recursive fan-out safe on a saturated pool: the
    // waiter is itself a worker.
    if (pool_ != nullptr) {
      while (pool_->TryRunOne()) {
      }
    }
    MutexLock lock(mu_);
    if (pending_ == 0) return;
    // Sleep until either the group drains or *any* task completes —
    // a completing task may have enqueued subtasks worth stealing.
    const uint64_t seen = completions_;
    while (pending_ != 0 && completions_ == seen) cv_.Wait(mu_);
    if (pending_ == 0) return;
  }
}

}  // namespace semtree

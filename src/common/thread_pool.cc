// Copyright 2026 The SemTree Authors

#include "common/thread_pool.h"

namespace semtree {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  // Idempotent: a second call finds no workers left to join. Workers
  // drain the queue before exiting (see WorkerLoop), so every task
  // submitted before Shutdown still runs to completion.
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace semtree

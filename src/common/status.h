// Copyright 2026 The SemTree Authors
//
// Status: RocksDB-style error propagation for library code paths.
// SemTree library code never throws; every fallible operation returns a
// Status (or a Result<T>, see result.h) that the caller must inspect.

#ifndef SEMTREE_COMMON_STATUS_H_
#define SEMTREE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace semtree {

/// Outcome of a fallible operation.
///
/// A Status is either OK (the default) or carries an error code plus a
/// human-readable message. Statuses are cheap to copy when OK (no
/// allocation) and cheap to move always.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kResourceExhausted,
    kFailedPrecondition,
    kCorruption,
    kUnavailable,
    kInternal,
    kNotSupported,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Returns from the enclosing function if `expr` evaluates to a non-OK
/// Status. Usage: SEMTREE_RETURN_NOT_OK(DoThing());
#define SEMTREE_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::semtree::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace semtree

#endif  // SEMTREE_COMMON_STATUS_H_

// Copyright 2026 The SemTree Authors
//
// A fixed-size thread pool. Used by the distributed range search to fan
// out parallel sub-queries and by benches to drive concurrent clients.

#ifndef SEMTREE_COMMON_THREAD_POOL_H_
#define SEMTREE_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace semtree {

/// Fixed-size worker pool executing submitted tasks FIFO.
///
/// Thread-safe. Destruction waits for queued tasks to finish.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  ///
  /// After Shutdown (or during destruction) the task is NOT enqueued:
  /// it would never run, so a caller blocking on the future would hang
  /// forever. Instead the returned future reports
  /// std::future_errc::broken_promise from get() — the enqueue-after-
  /// shutdown surfaces as an exception at the waiter, never as a
  /// deadlock.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mu_);
      if (shutdown_) {
        // Dropping `task` here abandons its shared state; the future
        // throws broken_promise when queried.
        return future;
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.NotifyOne();
    return future;
  }

  /// Fire-and-forget enqueue. Returns false (without enqueuing) after
  /// Shutdown, so callers that track their own completion state can
  /// fall back to running the task inline instead of waiting on work
  /// that will never happen.
  bool TrySubmit(std::function<void()> task);

  /// Dequeues one pending task and runs it on the *calling* thread;
  /// returns false if the queue was empty. This is the work-stealing
  /// escape hatch that makes nested submission deadlock-free: a thread
  /// blocked on subtasks (TaskGroup::Wait) drains the queue itself
  /// instead of sleeping while the only workers sit beneath it on the
  /// stack.
  bool TryRunOne();

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Drains the queue, stops and joins every worker. Idempotent; the
  /// destructor calls it. Submit afterwards returns broken-promise
  /// futures (see Submit).
  void Shutdown();

  /// Worker count; 0 once Shutdown has reaped the threads.
  size_t num_threads() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar cv_;       // Signals queued work (or shutdown) to workers.
  CondVar idle_cv_;  // Signals "queue drained, nothing running" to Wait.
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // Guarded: Shutdown swaps the vector out under the lock (joining
  // happens outside it — a worker exiting needs mu_), so concurrent
  // Shutdown calls cannot double-join and num_threads() cannot read a
  // vector being cleared.
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// Tracks a batch of related tasks on a ThreadPool so recursive
/// fan-out (the parallel bulk builders) cannot deadlock: tasks spawn
/// subtasks through the same group without ever blocking on them, and
/// only the top-level caller calls Wait(), which *helps drain the
/// queue* (ThreadPool::TryRunOne) instead of merely sleeping. A
/// saturated pool — even a single worker stuck beneath the waiting
/// frame — therefore always makes progress; common_test pins this with
/// a one-worker recursive-submission regression.
///
/// With a null pool every Run executes inline, which is also the
/// fallback when the pool is shutting down. Thread-safe; Run may be
/// called from inside group tasks.
class TaskGroup {
 public:
  /// `pool` may be null (everything runs inline); not owned.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Not copyable: pending tasks hold `this`.
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { Wait(); }

  /// Runs `fn` on the pool, or inline when there is no pool (or it is
  /// shut down). Never blocks.
  void Run(std::function<void()> fn);

  /// Blocks until every task Run so far (including tasks spawned by
  /// tasks) has finished, stealing queued work while it waits.
  void Wait();

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar cv_;
  size_t pending_ GUARDED_BY(mu_) = 0;
  uint64_t completions_ GUARDED_BY(mu_) = 0;
};

}  // namespace semtree

#endif  // SEMTREE_COMMON_THREAD_POOL_H_

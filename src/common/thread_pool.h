// Copyright 2026 The SemTree Authors
//
// A fixed-size thread pool. Used by the distributed range search to fan
// out parallel sub-queries and by benches to drive concurrent clients.

#ifndef SEMTREE_COMMON_THREAD_POOL_H_
#define SEMTREE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace semtree {

/// Fixed-size worker pool executing submitted tasks FIFO.
///
/// Thread-safe. Destruction waits for queued tasks to finish.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  ///
  /// After Shutdown (or during destruction) the task is NOT enqueued:
  /// it would never run, so a caller blocking on the future would hang
  /// forever. Instead the returned future reports
  /// std::future_errc::broken_promise from get() — the enqueue-after-
  /// shutdown surfaces as an exception at the waiter, never as a
  /// deadlock.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        // Dropping `task` here abandons its shared state; the future
        // throws broken_promise when queried.
        return future;
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Drains the queue, stops and joins every worker. Idempotent; the
  /// destructor calls it. Submit afterwards returns broken-promise
  /// futures (see Submit).
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace semtree

#endif  // SEMTREE_COMMON_THREAD_POOL_H_

// Copyright 2026 The SemTree Authors
//
// The effectiveness experiment of the paper (§IV-B, Fig. 8): for a set
// of requirements, build antinomic target triples, run K-nearest
// queries on SemTree, and score the returned sets against the
// annotator ground truth with Precision / Recall:
//
//   P = |T ∩ T*| / |T|     R = |T ∩ T*| / |T*|

#ifndef SEMTREE_REQVERIFY_EVALUATION_H_
#define SEMTREE_REQVERIFY_EVALUATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "reqverify/inconsistency.h"
#include "semtree/semantic_index.h"

namespace semtree {

/// Averages over the query set for one value of K.
struct EffectivenessPoint {
  size_t k = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t queries = 0;  ///< Queries contributing (non-empty T*).

  std::string ToString() const;
};

struct EffectivenessOptions {
  /// K values to sweep (Fig. 8's x axis).
  std::vector<size_t> ks = {1, 2, 3, 5, 8, 12, 16, 20, 25};

  /// Query triples to sample (the paper uses 100).
  size_t num_queries = 100;

  uint64_t seed = 42;

  /// Annotator imperfection model (0/0 = exact oracle, as the formal
  /// definition prescribes).
  AnnotatorOptions annotator;
};

/// Runs the Fig. 8 experiment. `index` must be built over exactly
/// `store.triples()` so ids coincide. Queries whose ground truth is
/// empty are skipped (recall undefined) and do not count in `queries`.
Result<std::vector<EffectivenessPoint>> EvaluateEffectiveness(
    const SemanticIndex& index, const TripleStore& store,
    const Taxonomy& vocab, const EffectivenessOptions& options = {});

}  // namespace semtree

#endif  // SEMTREE_REQVERIFY_EVALUATION_H_

// Copyright 2026 The SemTree Authors
//
// Requirements inconsistency detection (paper §II): two triples ti, tj
// are inconsistent iff (i) same subject, (ii) same object, (iii) their
// predicates are linked by an antinomy relationship in the vocabulary.
// Queries are built by replacing a requirement's predicate with an
// antinomic term; semantically close triples in the index are candidate
// contradictions.

#ifndef SEMTREE_REQVERIFY_INCONSISTENCY_H_
#define SEMTREE_REQVERIFY_INCONSISTENCY_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "ontology/taxonomy.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace semtree {

/// True if `a` and `b` denote the same concept (synonyms resolve) or
/// are equal literals.
bool SameElement(const Term& a, const Term& b, const Taxonomy& vocab);

/// The paper's inconsistency predicate.
bool AreInconsistent(const Triple& a, const Triple& b,
                     const Taxonomy& vocab);

/// Builds the target (query) triple for `source`: same subject and
/// object, predicate replaced by an antinomic term from the vocabulary
/// (chosen with `rng` when several exist; deterministically first if
/// rng is null). Fails with NotFound when the predicate has no antonym.
Result<Triple> MakeTargetTriple(const Triple& source,
                                const Taxonomy& vocab, Rng* rng = nullptr);

/// The annotator oracle: every triple in `store` inconsistent with
/// `source` (the exact ground truth T*, per the formal definition).
std::vector<TripleId> GroundTruthInconsistencies(const TripleStore& store,
                                                 const Triple& source,
                                                 const Taxonomy& vocab);

/// Imperfect-annotator model: drops each true inconsistency with
/// `miss_rate` and adds spurious same-subject triples with
/// `spurious_rate` — lets experiments probe sensitivity to annotation
/// quality (the paper's ground truth came from 5 human engineers).
struct AnnotatorOptions {
  double miss_rate = 0.0;
  double spurious_rate = 0.0;
  uint64_t seed = 42;
};
std::vector<TripleId> NoisyGroundTruth(const TripleStore& store,
                                       const Triple& source,
                                       const Taxonomy& vocab,
                                       const AnnotatorOptions& options);

}  // namespace semtree

#endif  // SEMTREE_REQVERIFY_INCONSISTENCY_H_

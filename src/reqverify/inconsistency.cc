// Copyright 2026 The SemTree Authors

#include "reqverify/inconsistency.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace semtree {

bool SameElement(const Term& a, const Term& b, const Taxonomy& vocab) {
  if (a == b) return true;
  if (a.kind() != b.kind()) return false;
  if (a.is_literal()) return a.value() == b.value();
  auto ca = vocab.Find(a.value());
  auto cb = vocab.Find(b.value());
  return ca.ok() && cb.ok() && *ca == *cb;
}

bool AreInconsistent(const Triple& a, const Triple& b,
                     const Taxonomy& vocab) {
  if (!SameElement(a.subject, b.subject, vocab)) return false;
  if (!SameElement(a.object, b.object, vocab)) return false;
  if (!a.predicate.is_concept() || !b.predicate.is_concept()) return false;
  auto pa = vocab.Find(a.predicate.value());
  auto pb = vocab.Find(b.predicate.value());
  if (!pa.ok() || !pb.ok()) return false;
  return vocab.AreAntonyms(*pa, *pb);
}

Result<Triple> MakeTargetTriple(const Triple& source,
                                const Taxonomy& vocab, Rng* rng) {
  if (!source.predicate.is_concept()) {
    return Status::InvalidArgument("predicate must be a concept");
  }
  SEMTREE_ASSIGN_OR_RETURN(ConceptId pred,
                           vocab.Find(source.predicate.value()));
  std::vector<ConceptId> antonyms = vocab.AntonymsOf(pred);
  if (antonyms.empty()) {
    return Status::NotFound(StringPrintf(
        "predicate '%s' has no antinomic term in the vocabulary",
        source.predicate.value().c_str()));
  }
  std::sort(antonyms.begin(), antonyms.end());
  ConceptId chosen =
      rng ? antonyms[rng->Uniform(antonyms.size())] : antonyms[0];
  return Triple(source.subject,
                Term::Concept(vocab.name(chosen), source.predicate.prefix()),
                source.object);
}

std::vector<TripleId> GroundTruthInconsistencies(const TripleStore& store,
                                                 const Triple& source,
                                                 const Taxonomy& vocab) {
  // The store's subject+object indexes prune by exact term equality;
  // the full predicate (antinomy + synonym resolution) test runs on the
  // survivors. Subjects and objects in requirement corpora are
  // canonical terms, so the exact-match prune loses nothing.
  std::vector<TripleId> out;
  for (TripleId id : store.Match(source.subject, std::nullopt,
                                 source.object)) {
    if (AreInconsistent(source, store.Get(id), vocab)) out.push_back(id);
  }
  return out;
}

std::vector<TripleId> NoisyGroundTruth(const TripleStore& store,
                                       const Triple& source,
                                       const Taxonomy& vocab,
                                       const AnnotatorOptions& options) {
  Rng rng(options.seed);
  std::vector<TripleId> truth =
      GroundTruthInconsistencies(store, source, vocab);
  std::vector<TripleId> out;
  std::unordered_set<TripleId> kept;
  for (TripleId id : truth) {
    if (rng.Bernoulli(options.miss_rate)) continue;
    out.push_back(id);
    kept.insert(id);
  }
  if (options.spurious_rate > 0.0) {
    // Spurious labels: same-subject triples the formal definition
    // rejects, as a distracted annotator might mark.
    for (TripleId id :
         store.Match(source.subject, std::nullopt, std::nullopt)) {
      if (kept.count(id)) continue;
      if (rng.Bernoulli(options.spurious_rate)) {
        out.push_back(id);
        kept.insert(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "reqverify/evaluation.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace semtree {

std::string EffectivenessPoint::ToString() const {
  return StringPrintf("k=%zu P=%.3f R=%.3f F1=%.3f (n=%zu)", k, precision,
                      recall, f1, queries);
}

Result<std::vector<EffectivenessPoint>> EvaluateEffectiveness(
    const SemanticIndex& index, const TripleStore& store,
    const Taxonomy& vocab, const EffectivenessOptions& options) {
  if (index.size() != store.size()) {
    return Status::InvalidArgument(
        "index and store must cover the same triples");
  }
  if (options.ks.empty()) {
    return Status::InvalidArgument("ks must not be empty");
  }
  Rng rng(options.seed);

  // Sample query triples: requirements whose predicate has an antonym
  // (so a target triple exists), mirroring §IV-B.
  struct QueryCase {
    Triple target;
    std::unordered_set<TripleId> truth;
  };
  std::vector<QueryCase> cases;
  size_t attempts = 0;
  const size_t max_attempts = options.num_queries * 50 + 1000;
  while (cases.size() < options.num_queries && attempts < max_attempts) {
    ++attempts;
    TripleId id = rng.Uniform(store.size());
    const Triple& source = store.Get(id);
    auto target = MakeTargetTriple(source, vocab, &rng);
    if (!target.ok()) continue;
    std::vector<TripleId> truth =
        (options.annotator.miss_rate > 0.0 ||
         options.annotator.spurious_rate > 0.0)
            ? NoisyGroundTruth(store, source, vocab, options.annotator)
            : GroundTruthInconsistencies(store, source, vocab);
    if (truth.empty()) continue;  // Recall undefined: skip, as documented.
    cases.push_back(QueryCase{std::move(*target),
                              {truth.begin(), truth.end()}});
  }
  if (cases.empty()) {
    return Status::FailedPrecondition(
        "no query case has a non-empty ground truth");
  }

  std::vector<EffectivenessPoint> points;
  points.reserve(options.ks.size());
  for (size_t k : options.ks) {
    EffectivenessPoint point;
    point.k = k;
    double sum_p = 0.0;
    double sum_r = 0.0;
    for (const QueryCase& qc : cases) {
      SEMTREE_ASSIGN_OR_RETURN(std::vector<SemanticIndex::Hit> hits,
                               index.KnnQuery(qc.target, k));
      if (hits.empty()) continue;
      size_t correct = 0;
      for (const SemanticIndex::Hit& hit : hits) {
        if (qc.truth.count(hit.id)) ++correct;
      }
      sum_p += static_cast<double>(correct) /
               static_cast<double>(hits.size());
      sum_r += static_cast<double>(correct) /
               static_cast<double>(qc.truth.size());
      ++point.queries;
    }
    if (point.queries > 0) {
      point.precision = sum_p / static_cast<double>(point.queries);
      point.recall = sum_r / static_cast<double>(point.queries);
      if (point.precision + point.recall > 0.0) {
        point.f1 = 2.0 * point.precision * point.recall /
                   (point.precision + point.recall);
      }
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Whole-corpus inconsistency detection: instead of checking one target
// triple at a time (§IV-B), sweep the corpus — for every requirement
// whose predicate has antinomic terms, query the index with each target
// triple and verify the candidates against the formal definition. An
// exact group-by scan provides the ground truth the index-driven sweep
// is scored against.

#ifndef SEMTREE_REQVERIFY_BATCH_DETECTOR_H_
#define SEMTREE_REQVERIFY_BATCH_DETECTOR_H_

#include <string>
#include <vector>

#include "reqverify/inconsistency.h"
#include "semtree/semantic_index.h"

namespace semtree {

/// One detected contradictory pair; `a < b` always.
struct InconsistentPair {
  TripleId a = 0;
  TripleId b = 0;

  bool operator==(const InconsistentPair& o) const {
    return a == o.a && b == o.b;
  }
  bool operator<(const InconsistentPair& o) const {
    if (a != o.a) return a < o.a;
    return b < o.b;
  }
};

struct BatchDetectorOptions {
  /// Candidates fetched per target-triple query.
  size_t k = 10;

  /// Cap on the number of source triples swept (SIZE_MAX = all).
  size_t max_sources = SIZE_MAX;
};

struct BatchDetectionReport {
  std::vector<InconsistentPair> detected;  ///< Sorted, deduplicated.
  size_t sources_swept = 0;
  size_t queries_run = 0;

  /// Against the exact scan: how much of the true pair set the
  /// index-driven sweep recovered. Precision is 1 by construction
  /// (candidates are verified with the formal definition), so only
  /// recall is interesting.
  size_t true_pairs = 0;
  double recall = 0.0;

  std::string ToString() const;
};

/// Exact ground truth: all inconsistent pairs, found by grouping the
/// store on (subject, object) and testing predicate antinomy pairwise.
std::vector<InconsistentPair> ExactInconsistencyScan(
    const TripleStore& store, const Taxonomy& vocab);

/// Index-driven sweep. `index` must be built over `store.triples()`.
Result<BatchDetectionReport> DetectAllInconsistencies(
    const SemanticIndex& index, const TripleStore& store,
    const Taxonomy& vocab, const BatchDetectorOptions& options = {});

}  // namespace semtree

#endif  // SEMTREE_REQVERIFY_BATCH_DETECTOR_H_

// Copyright 2026 The SemTree Authors

#include "reqverify/batch_detector.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace semtree {

std::string BatchDetectionReport::ToString() const {
  return StringPrintf(
      "BatchDetection{detected=%zu true=%zu recall=%.3f sources=%zu "
      "queries=%zu}",
      detected.size(), true_pairs, recall, sources_swept, queries_run);
}

std::vector<InconsistentPair> ExactInconsistencyScan(
    const TripleStore& store, const Taxonomy& vocab) {
  // Group ids by (canonical subject, canonical object); only triples in
  // the same group can be inconsistent.
  std::map<std::pair<std::string, std::string>, std::vector<TripleId>>
      groups;
  for (TripleId id = 0; id < store.size(); ++id) {
    const Triple& t = store.Get(id);
    std::string subject = t.subject.ToString();
    std::string object = t.object.ToString();
    // Canonicalize concepts through the vocabulary so synonyms group
    // together.
    if (t.object.is_concept()) {
      auto c = vocab.Find(t.object.value());
      if (c.ok()) object = vocab.name(*c);
    }
    groups[{subject, object}].push_back(id);
  }
  std::vector<InconsistentPair> pairs;
  for (const auto& [key, ids] : groups) {
    (void)key;
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        if (AreInconsistent(store.Get(ids[i]), store.Get(ids[j]),
                            vocab)) {
          pairs.push_back({std::min(ids[i], ids[j]),
                           std::max(ids[i], ids[j])});
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

Result<BatchDetectionReport> DetectAllInconsistencies(
    const SemanticIndex& index, const TripleStore& store,
    const Taxonomy& vocab, const BatchDetectorOptions& options) {
  if (index.size() != store.size()) {
    return Status::InvalidArgument(
        "index and store must cover the same triples");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  BatchDetectionReport report;
  std::set<InconsistentPair> found;

  for (TripleId id = 0; id < store.size(); ++id) {
    if (report.sources_swept >= options.max_sources) break;
    const Triple& source = store.Get(id);
    if (!source.predicate.is_concept()) continue;
    auto pred = vocab.Find(source.predicate.value());
    if (!pred.ok()) continue;
    std::vector<ConceptId> antonyms = vocab.AntonymsOf(*pred);
    if (antonyms.empty()) continue;
    ++report.sources_swept;

    // One target triple per antinomic term (a predicate can have
    // several antonyms; each defines its own contradiction pattern).
    std::sort(antonyms.begin(), antonyms.end());
    for (ConceptId antonym : antonyms) {
      Triple target(source.subject,
                    Term::Concept(vocab.name(antonym),
                                  source.predicate.prefix()),
                    source.object);
      SEMTREE_ASSIGN_OR_RETURN(std::vector<SemanticIndex::Hit> hits,
                               index.KnnQuery(target, options.k));
      ++report.queries_run;
      for (const SemanticIndex::Hit& hit : hits) {
        if (hit.id == id) continue;
        if (AreInconsistent(source, store.Get(hit.id), vocab)) {
          found.insert({std::min<TripleId>(id, hit.id),
                        std::max<TripleId>(id, hit.id)});
        }
      }
    }
  }

  report.detected.assign(found.begin(), found.end());
  std::vector<InconsistentPair> truth =
      ExactInconsistencyScan(store, vocab);
  report.true_pairs = truth.size();
  if (!truth.empty() && options.max_sources == SIZE_MAX) {
    size_t recovered = 0;
    for (const InconsistentPair& p : truth) {
      recovered += found.count(p);
    }
    report.recall = double(recovered) / double(truth.size());
  }
  return report;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "distance/distance_matrix.h"

#include <algorithm>
#include <thread>

#include "common/thread_pool.h"

namespace semtree {

DistanceMatrix::DistanceMatrix(const std::vector<Triple>& triples,
                               const TripleDistanceFn& distance,
                               size_t threads)
    : n_(triples.size()) {
  upper_.assign(n_ < 2 ? 0 : n_ * (n_ - 1) / 2, 0.0);
  if (n_ < 2) return;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  auto compute_row = [&](size_t i) {
    for (size_t j = i + 1; j < n_; ++j) {
      upper_[Index(i, j)] = distance(triples[i], triples[j]);
    }
  };
  if (threads <= 1) {
    for (size_t i = 0; i + 1 < n_; ++i) compute_row(i);
    return;
  }
  ThreadPool pool(threads);
  for (size_t i = 0; i + 1 < n_; ++i) {
    pool.Submit([&compute_row, i]() { compute_row(i); });
  }
  pool.Wait();
}

size_t DistanceMatrix::Index(size_t i, size_t j) const {
  // Requires i < j. Offset of row i in the packed upper triangle.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::At(size_t i, size_t j) const {
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  return upper_[Index(i, j)];
}

double DistanceMatrix::Mean() const {
  if (upper_.empty()) return 0.0;
  double sum = 0.0;
  for (double d : upper_) sum += d;
  return sum / static_cast<double>(upper_.size());
}

double DistanceMatrix::Max() const {
  if (upper_.empty()) return 0.0;
  return *std::max_element(upper_.begin(), upper_.end());
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Dense symmetric distance matrix over a set of triples. Used by the
// metric audit, by tests, and by benches that compare FastMap's
// embedded distances against the original semantic distances.

#ifndef SEMTREE_DISTANCE_DISTANCE_MATRIX_H_
#define SEMTREE_DISTANCE_DISTANCE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "distance/triple_distance.h"
#include "rdf/triple.h"

namespace semtree {

/// Symmetric matrix storing only the strict upper triangle.
class DistanceMatrix {
 public:
  /// Computes all pairwise distances, optionally with `threads` workers
  /// (0 = hardware concurrency).
  DistanceMatrix(const std::vector<Triple>& triples,
                 const TripleDistanceFn& distance, size_t threads = 1);

  size_t size() const { return n_; }

  /// d(i, j); 0 on the diagonal.
  double At(size_t i, size_t j) const;

  /// Mean of all off-diagonal entries (0 when n < 2).
  double Mean() const;
  /// Maximum off-diagonal entry (0 when n < 2).
  double Max() const;

 private:
  size_t Index(size_t i, size_t j) const;

  size_t n_;
  std::vector<double> upper_;  // Row-major strict upper triangle.
};

}  // namespace semtree

#endif  // SEMTREE_DISTANCE_DISTANCE_MATRIX_H_

// Copyright 2026 The SemTree Authors
//
// Distance between two triple *elements* (paper §III-A): literals and
// constants are compared with a string distance (Levenshtein by
// default); concepts are compared with a taxonomy-based semantic
// distance (Wu & Palmer by default).

#ifndef SEMTREE_DISTANCE_ELEMENT_DISTANCE_H_
#define SEMTREE_DISTANCE_ELEMENT_DISTANCE_H_

#include "ontology/similarity.h"
#include "ontology/taxonomy.h"
#include "rdf/term.h"
#include "text/string_distance.h"

namespace semtree {

/// Configuration of the element-level distance.
struct ElementDistanceOptions {
  /// Distance for literal/constant pairs.
  StringDistanceKind string_distance =
      StringDistanceKind::kNormalizedLevenshtein;

  /// Similarity measure for concept pairs (distance = 1 - similarity).
  SimilarityMeasure concept_measure = SimilarityMeasure::kWuPalmer;

  /// Distance charged when one element is a literal and the other a
  /// concept (incomparable kinds). The paper's two cases are
  /// literal/literal and concept/concept; mixed pairs get the maximum.
  double mixed_kind_distance = 1.0;
};

/// Computes the distance between two elements; always in [0,1].
///
/// Concepts that cannot be resolved in the taxonomy fall back to the
/// string distance over their qualified names, so unknown vocabulary
/// degrades gracefully rather than failing the query.
class ElementDistance {
 public:
  ElementDistance(const Taxonomy* taxonomy, ElementDistanceOptions options)
      : taxonomy_(taxonomy), options_(options) {}

  double operator()(const Term& a, const Term& b) const;

  const ElementDistanceOptions& options() const { return options_; }
  const Taxonomy& taxonomy() const { return *taxonomy_; }

 private:
  const Taxonomy* taxonomy_;  // Not owned; must outlive this object.
  ElementDistanceOptions options_;
};

}  // namespace semtree

#endif  // SEMTREE_DISTANCE_ELEMENT_DISTANCE_H_

// Copyright 2026 The SemTree Authors

#include "distance/metric_audit.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace semtree {

std::string MetricAuditReport::ToString() const {
  return StringPrintf(
      "MetricAudit{points=%zu pairs=%zu triangles=%zu "
      "identity=%zu symmetry=%zu range=%zu triangle=%zu "
      "worst_excess=%.6f}",
      points, pair_samples, triangle_samples, identity_violations,
      symmetry_violations, range_violations, triangle_violations,
      worst_triangle_excess);
}

MetricAuditReport AuditMetric(const std::vector<Triple>& triples,
                              const TripleDistanceFn& distance,
                              size_t max_triangles, uint64_t seed) {
  constexpr double kEps = 1e-9;
  MetricAuditReport report;
  report.points = triples.size();
  if (triples.empty()) return report;
  Rng rng(seed);

  // Identity on every point.
  for (const Triple& t : triples) {
    if (std::fabs(distance(t, t)) > kEps) ++report.identity_violations;
  }

  const size_t n = triples.size();
  const size_t pair_budget = std::min<size_t>(max_triangles, n * n);
  for (size_t s = 0; s < pair_budget; ++s) {
    size_t i = rng.Uniform(n);
    size_t j = rng.Uniform(n);
    double dij = distance(triples[i], triples[j]);
    double dji = distance(triples[j], triples[i]);
    ++report.pair_samples;
    if (std::fabs(dij - dji) > kEps) ++report.symmetry_violations;
    if (dij < -kEps || dij > 1.0 + kEps) ++report.range_violations;
  }

  for (size_t s = 0; s < max_triangles; ++s) {
    size_t i = rng.Uniform(n);
    size_t j = rng.Uniform(n);
    size_t k = rng.Uniform(n);
    double dik = distance(triples[i], triples[k]);
    double dij = distance(triples[i], triples[j]);
    double djk = distance(triples[j], triples[k]);
    ++report.triangle_samples;
    double excess = dik - (dij + djk);
    if (excess > kEps) {
      ++report.triangle_violations;
      report.worst_triangle_excess =
          std::max(report.worst_triangle_excess, excess);
    }
  }
  return report;
}

}  // namespace semtree

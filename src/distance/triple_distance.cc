// Copyright 2026 The SemTree Authors

#include "distance/triple_distance.h"

#include <cmath>

#include "common/string_util.h"

namespace semtree {

Status TripleDistanceWeights::Validate() const {
  if (alpha < 0.0 || beta < 0.0 || gamma < 0.0) {
    return Status::InvalidArgument("weights must be non-negative");
  }
  double sum = alpha + beta + gamma;
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StringPrintf("weights must sum to 1, got %.12f", sum));
  }
  return Status::OK();
}

Result<TripleDistance> TripleDistance::Make(
    const Taxonomy* taxonomy, TripleDistanceWeights weights,
    ElementDistanceOptions element_options) {
  if (taxonomy == nullptr) {
    return Status::InvalidArgument("taxonomy must not be null");
  }
  SEMTREE_RETURN_NOT_OK(weights.Validate());
  return TripleDistance(taxonomy, weights, element_options);
}

double TripleDistance::operator()(const Triple& a, const Triple& b) const {
  Components c = ComponentDistances(a, b);
  return weights_.alpha * c.subject + weights_.beta * c.predicate +
         weights_.gamma * c.object;
}

TripleDistance::Components TripleDistance::ComponentDistances(
    const Triple& a, const Triple& b) const {
  return Components{element_(a.subject, b.subject),
                    element_(a.predicate, b.predicate),
                    element_(a.object, b.object)};
}

double CachingTripleDistance::ElementCached(char position, const Term& a,
                                            const Term& b) {
  // Symmetric key: order the operands so (a,b) and (b,a) share an entry.
  std::string ka = a.ToString();
  std::string kb = b.ToString();
  if (kb < ka) std::swap(ka, kb);
  std::string key;
  key.reserve(ka.size() + kb.size() + 3);
  key.push_back(position);
  key += ka;
  key.push_back('\x1f');
  key += kb;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  double d = base_.element_distance()(a, b);
  cache_.emplace(std::move(key), d);
  return d;
}

double CachingTripleDistance::operator()(const Triple& a,
                                         const Triple& b) {
  const TripleDistanceWeights& w = base_.weights();
  return w.alpha * ElementCached('s', a.subject, b.subject) +
         w.beta * ElementCached('p', a.predicate, b.predicate) +
         w.gamma * ElementCached('o', a.object, b.object);
}

}  // namespace semtree

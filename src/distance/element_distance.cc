// Copyright 2026 The SemTree Authors

#include "distance/element_distance.h"

#include <algorithm>

namespace semtree {

double ElementDistance::operator()(const Term& a, const Term& b) const {
  if (a == b) return 0.0;
  if (a.kind() != b.kind()) {
    return std::clamp(options_.mixed_kind_distance, 0.0, 1.0);
  }
  if (a.is_literal()) {
    return StringDistance(options_.string_distance, a.value(), b.value());
  }
  // Both concepts: resolve in the taxonomy (aliases included).
  auto ca = taxonomy_->Find(a.value());
  auto cb = taxonomy_->Find(b.value());
  if (ca.ok() && cb.ok()) {
    return ConceptDistance(options_.concept_measure, *taxonomy_, *ca, *cb);
  }
  // Out-of-vocabulary concepts: compare qualified names as strings so
  // the distance stays total.
  return StringDistance(options_.string_distance, a.ToString(),
                        b.ToString());
}

}  // namespace semtree

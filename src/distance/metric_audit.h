// Copyright 2026 The SemTree Authors
//
// Audits whether a triple distance behaves like a metric on a sample.
// The semantic distance of Eq. (1) is symmetric and satisfies
// d(x,x) = 0 by construction, but taxonomy similarities can violate
// the triangle inequality; FastMap tolerates mild violations (it clamps
// negative residuals), and this audit quantifies them so EXPERIMENTS.md
// can report the observed violation rate.

#ifndef SEMTREE_DISTANCE_METRIC_AUDIT_H_
#define SEMTREE_DISTANCE_METRIC_AUDIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "distance/triple_distance.h"
#include "rdf/triple.h"

namespace semtree {

/// Findings of a metric audit over a triple sample.
struct MetricAuditReport {
  size_t points = 0;
  size_t pair_samples = 0;
  size_t triangle_samples = 0;

  size_t identity_violations = 0;   ///< d(x,x) != 0
  size_t symmetry_violations = 0;   ///< d(x,y) != d(y,x)
  size_t range_violations = 0;      ///< d outside [0,1]
  size_t triangle_violations = 0;   ///< d(x,z) > d(x,y)+d(y,z)+eps
  double worst_triangle_excess = 0.0;

  bool IsMetricOnSample() const {
    return identity_violations == 0 && symmetry_violations == 0 &&
           range_violations == 0 && triangle_violations == 0;
  }
  std::string ToString() const;
};

/// Samples pairs/triangles uniformly (with the given seed) and checks
/// the metric axioms; `max_triangles` bounds the cubic check.
MetricAuditReport AuditMetric(const std::vector<Triple>& triples,
                              const TripleDistanceFn& distance,
                              size_t max_triangles = 100000,
                              uint64_t seed = 42);

}  // namespace semtree

#endif  // SEMTREE_DISTANCE_METRIC_AUDIT_H_

// Copyright 2026 The SemTree Authors
//
// The semantic triple distance of the paper, Eq. (1):
//
//   d(ti, tj) = alpha * ds(ti_s, tj_s)
//             + beta  * dp(ti_p, tj_p)
//             + gamma * do(ti_o, tj_o),     alpha + beta + gamma = 1
//
// where ds/dp/do are element distances over subjects, predicates and
// objects respectively.

#ifndef SEMTREE_DISTANCE_TRIPLE_DISTANCE_H_
#define SEMTREE_DISTANCE_TRIPLE_DISTANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "distance/element_distance.h"
#include "rdf/triple.h"

namespace semtree {

/// Weights of Eq. (1). Must be non-negative and sum to 1.
struct TripleDistanceWeights {
  double alpha = 1.0 / 3.0;  ///< subject weight
  double beta = 1.0 / 3.0;   ///< predicate weight
  double gamma = 1.0 / 3.0;  ///< object weight

  /// OK iff weights are non-negative and sum to 1 within 1e-9.
  Status Validate() const;
};

/// The composite semantic distance between triples; values in [0,1].
///
/// Copyable and cheap to pass by value; the taxonomy is shared, not
/// owned, and must outlive every TripleDistance referencing it.
class TripleDistance {
 public:
  /// Builds a distance; fails if the weights are invalid or the
  /// taxonomy pointer is null.
  static Result<TripleDistance> Make(
      const Taxonomy* taxonomy,
      TripleDistanceWeights weights = {},
      ElementDistanceOptions element_options = {});

  double operator()(const Triple& a, const Triple& b) const;

  /// The three sub-distances of Eq. (1), unweighted (ds, dp, do).
  struct Components {
    double subject;
    double predicate;
    double object;
  };
  Components ComponentDistances(const Triple& a, const Triple& b) const;

  const TripleDistanceWeights& weights() const { return weights_; }
  const ElementDistance& element_distance() const { return element_; }

 private:
  TripleDistance(const Taxonomy* taxonomy, TripleDistanceWeights weights,
                 ElementDistanceOptions element_options)
      : weights_(weights), element_(taxonomy, element_options) {}

  TripleDistanceWeights weights_;
  ElementDistance element_;
};

/// Type-erased distance over triples; what FastMap and the exact
/// baseline consume.
using TripleDistanceFn =
    std::function<double(const Triple&, const Triple&)>;

/// Memoizes element-level distances of a TripleDistance.
///
/// Real corpora draw subjects/predicates/objects from small
/// vocabularies, so the number of distinct term pairs is far below the
/// number of triple pairs; caching turns FastMap training from
/// taxonomy-bound into hash-lookup-bound.
///
/// NOT thread-safe: intended for single-threaded build paths.
class CachingTripleDistance {
 public:
  explicit CachingTripleDistance(TripleDistance base)
      : base_(std::move(base)) {}

  double operator()(const Triple& a, const Triple& b);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  double ElementCached(char position, const Term& a, const Term& b);

  TripleDistance base_;
  std::unordered_map<std::string, double> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace semtree

#endif  // SEMTREE_DISTANCE_TRIPLE_DISTANCE_H_

// Copyright 2026 The SemTree Authors

#include "kdtree/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace semtree {

namespace {

// Max-heap ordering on distance (worst candidate on top), ties by id so
// results are deterministic.
bool HeapLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

void SortResult(std::vector<Neighbor>* result) {
  std::sort(result->begin(), result->end(), HeapLess);
}

// Widest-spread dimension of a point span; returns the spread too.
std::pair<uint32_t, double> WidestSpread(const std::vector<KdPoint>& pts,
                                         size_t lo, size_t hi,
                                         size_t dimensions) {
  uint32_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dimensions; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (size_t i = lo; i < hi; ++i) {
      mn = std::min(mn, pts[i].coords[d]);
      mx = std::max(mx, pts[i].coords[d]);
    }
    double spread = mx - mn;
    if (spread > best_spread) {
      best_spread = spread;
      best_dim = static_cast<uint32_t>(d);
    }
  }
  return {best_dim, best_spread};
}

}  // namespace

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double sum = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

KdTree::KdTree(size_t dimensions, KdTreeOptions options)
    : dimensions_(std::max<size_t>(1, dimensions)), options_(options) {
  if (options_.bucket_size == 0) options_.bucket_size = 1;
  NewLeaf();  // Root.
}

int32_t KdTree::NewLeaf() {
  nodes_.emplace_back();
  return static_cast<int32_t>(nodes_.size() - 1);
}

Status KdTree::Insert(const std::vector<double>& coords, PointId id) {
  if (coords.size() != dimensions_) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, tree has %zu",
                     coords.size(), dimensions_));
  }
  // Navigate by (Sr, Sv) as in the standard Kd-Tree: left holds
  // coords[Sr] <= Sv, right holds coords[Sr] > Sv.
  int32_t node = 0;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    node = (coords[n.split_dim] <= n.split_value) ? n.left : n.right;
  }
  nodes_[node].bucket.push_back(KdPoint{coords, id});
  ++size_;
  if (nodes_[node].bucket.size() > options_.bucket_size) {
    MaybeSplitLeaf(node);
  }
  return Status::OK();
}

Status KdTree::Remove(const std::vector<double>& coords, PointId id) {
  if (coords.size() != dimensions_) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, tree has %zu",
                     coords.size(), dimensions_));
  }
  int32_t node = 0;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    node = (coords[n.split_dim] <= n.split_value) ? n.left : n.right;
  }
  std::vector<KdPoint>& bucket = nodes_[node].bucket;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].id == id && bucket[i].coords == coords) {
      bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(i));
      --size_;
      return Status::OK();
    }
  }
  return Status::NotFound(StringPrintf(
      "point %llu not stored at the given coordinates",
      (unsigned long long)id));
}

void KdTree::MaybeSplitLeaf(int32_t node) {
  std::vector<KdPoint>& bucket = nodes_[node].bucket;
  // Try dimensions in order of decreasing spread until one separates
  // the bucket; identical points cannot be separated and overflow.
  std::vector<std::pair<double, uint32_t>> dims;
  dims.reserve(dimensions_);
  for (size_t d = 0; d < dimensions_; ++d) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -mn;
    for (const KdPoint& p : bucket) {
      mn = std::min(mn, p.coords[d]);
      mx = std::max(mx, p.coords[d]);
    }
    dims.emplace_back(mx - mn, static_cast<uint32_t>(d));
  }
  std::sort(dims.begin(), dims.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [spread, dim] : dims) {
    if (spread <= 0.0) break;  // No remaining dimension separates.
    // Median split: midpoint between the two central distinct values.
    std::vector<double> values;
    values.reserve(bucket.size());
    for (const KdPoint& p : bucket) values.push_back(p.coords[dim]);
    std::sort(values.begin(), values.end());
    size_t mid = values.size() / 2;
    // Find a boundary as close to the middle as possible where
    // consecutive values differ.
    size_t split_pos = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i - 1] < values[i]) {
        double dist = std::fabs(static_cast<double>(i) -
                                static_cast<double>(mid));
        if (dist < best_dist) {
          best_dist = dist;
          split_pos = i;
        }
      }
    }
    if (split_pos == 0) continue;  // All values equal on this dim.
    double sv = (values[split_pos - 1] + values[split_pos]) / 2.0;

    int32_t left = NewLeaf();
    int32_t right = NewLeaf();
    // NewLeaf may reallocate nodes_; re-take the reference.
    Node& n = nodes_[node];
    for (KdPoint& p : n.bucket) {
      (p.coords[dim] <= sv ? nodes_[left] : nodes_[right])
          .bucket.push_back(std::move(p));
    }
    n.bucket.clear();
    n.bucket.shrink_to_fit();
    n.is_leaf = false;
    n.split_dim = dim;
    n.split_value = sv;
    n.left = left;
    n.right = right;
    return;
  }
}

Result<KdTree> KdTree::BulkLoadBalanced(size_t dimensions,
                                        std::vector<KdPoint> points,
                                        KdTreeOptions options) {
  for (const KdPoint& p : points) {
    if (p.coords.size() != dimensions) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  KdTree tree(dimensions, options);
  tree.size_ = points.size();
  if (points.empty()) return tree;
  tree.nodes_.clear();
  BuildBalancedRec(&tree, points, 0, points.size());
  return tree;
}

int32_t KdTree::BuildBalancedRec(KdTree* tree, std::vector<KdPoint>& pts,
                                 size_t lo, size_t hi) {
  int32_t node = tree->NewLeaf();
  size_t count = hi - lo;
  if (count <= tree->options_.bucket_size) {
    auto& bucket = tree->nodes_[node].bucket;
    bucket.assign(std::make_move_iterator(pts.begin() + lo),
                  std::make_move_iterator(pts.begin() + hi));
    return node;
  }
  auto [dim, spread] = WidestSpread(pts, lo, hi, tree->dimensions_);
  if (spread <= 0.0) {
    // All points identical: a single (overflowing) leaf.
    auto& bucket = tree->nodes_[node].bucket;
    bucket.assign(std::make_move_iterator(pts.begin() + lo),
                  std::make_move_iterator(pts.begin() + hi));
    return node;
  }
  std::sort(pts.begin() + lo, pts.begin() + hi,
            [dim](const KdPoint& a, const KdPoint& b) {
              return a.coords[dim] < b.coords[dim];
            });
  size_t mid = lo + count / 2;
  // Move the boundary to the closest position separating distinct
  // values (spread > 0 guarantees one exists).
  size_t split = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = lo + 1; i < hi; ++i) {
    if (pts[i - 1].coords[dim] < pts[i].coords[dim]) {
      double dist = std::fabs(static_cast<double>(i) -
                              static_cast<double>(mid));
      if (dist < best) {
        best = dist;
        split = i;
      }
    }
  }
  double sv = (pts[split - 1].coords[dim] + pts[split].coords[dim]) / 2.0;
  int32_t left = BuildBalancedRec(tree, pts, lo, split);
  int32_t right = BuildBalancedRec(tree, pts, split, hi);
  Node& n = tree->nodes_[node];
  n.is_leaf = false;
  n.split_dim = dim;
  n.split_value = sv;
  n.left = left;
  n.right = right;
  return node;
}

Result<KdTree> KdTree::BuildChain(size_t dimensions,
                                  std::vector<KdPoint> points,
                                  KdTreeOptions options) {
  for (const KdPoint& p : points) {
    if (p.coords.size() != dimensions) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  KdTree tree(dimensions, options);
  tree.size_ = points.size();
  if (points.empty()) return tree;

  // Sort on dimension 0 and group equal values; each group becomes a
  // one-leaf step of the chain.
  std::sort(points.begin(), points.end(),
            [](const KdPoint& a, const KdPoint& b) {
              if (a.coords[0] != b.coords[0]) {
                return a.coords[0] < b.coords[0];
              }
              return a.id < b.id;
            });
  tree.nodes_.clear();
  tree.NewLeaf();  // Node 0, rebuilt below.

  // Build iteratively from the back: tail = leaf of the last group;
  // every earlier group adds a routing node (left = group leaf,
  // right = tail so far).
  std::vector<std::pair<size_t, size_t>> groups;  // [lo, hi) ranges.
  size_t start = 0;
  for (size_t i = 1; i <= points.size(); ++i) {
    if (i == points.size() || points[i].coords[0] != points[start].coords[0]) {
      groups.emplace_back(start, i);
      start = i;
    }
  }

  auto fill_leaf = [&](int32_t leaf, size_t lo, size_t hi) {
    auto& bucket = tree.nodes_[leaf].bucket;
    bucket.assign(std::make_move_iterator(points.begin() + lo),
                  std::make_move_iterator(points.begin() + hi));
  };

  if (groups.size() == 1) {
    fill_leaf(0, groups[0].first, groups[0].second);
    return tree;
  }

  // Chain from the tail upward; node 0 must end up as the chain head,
  // so build heads for groups in reverse and splice the first into 0.
  int32_t tail = tree.NewLeaf();
  fill_leaf(tail, groups.back().first, groups.back().second);
  for (size_t gi = groups.size() - 1; gi-- > 0;) {
    int32_t leaf = tree.NewLeaf();
    fill_leaf(leaf, groups[gi].first, groups[gi].second);
    int32_t routing = (gi == 0) ? 0 : tree.NewLeaf();
    Node& n = tree.nodes_[routing];
    n.is_leaf = false;
    n.split_dim = 0;
    n.split_value = points.empty() ? 0.0
                                   : tree.nodes_[leaf].bucket[0].coords[0];
    n.left = leaf;
    n.right = tail;
    tail = routing;
  }
  return tree;
}

std::vector<Neighbor> KdTree::KnnSearch(const std::vector<double>& query,
                                        size_t k,
                                        SearchStats* stats) const {
  std::vector<Neighbor> heap;
  if (k == 0 || size_ == 0) return heap;
  heap.reserve(k + 1);
  SearchStats local;
  KnnRec(0, query, k, &heap, stats ? stats : &local);
  std::sort_heap(heap.begin(), heap.end(), HeapLess);
  return heap;
}

void KdTree::KnnRec(int32_t node, const std::vector<double>& query,
                    size_t k, std::vector<Neighbor>* heap,
                    SearchStats* stats) const {
  ++stats->nodes_visited;
  const Node& n = nodes_[node];
  if (n.is_leaf) {
    ++stats->leaves_visited;
    for (const KdPoint& p : n.bucket) {
      ++stats->points_examined;
      double d = EuclideanDistance(query, p.coords);
      heap->push_back(Neighbor{p.id, d});
      std::push_heap(heap->begin(), heap->end(), HeapLess);
      if (heap->size() > k) {
        std::pop_heap(heap->begin(), heap->end(), HeapLess);
        heap->pop_back();
      }
    }
    return;
  }
  double diff = query[n.split_dim] - n.split_value;
  int32_t near = (diff <= 0.0) ? n.left : n.right;
  int32_t far = (diff <= 0.0) ? n.right : n.left;
  KnnRec(near, query, k, heap, stats);
  // Backward visit: enter the far subtree when the splitting plane is
  // closer than the current k-th distance, or the result set is not
  // full yet (the disjunction of §III-B.3).
  if (heap->size() < k || std::fabs(diff) < heap->front().distance) {
    KnnRec(far, query, k, heap, stats);
  }
}

std::vector<Neighbor> KdTree::RangeSearch(const std::vector<double>& query,
                                          double radius,
                                          SearchStats* stats) const {
  std::vector<Neighbor> out;
  if (size_ == 0 || radius < 0.0) return out;
  SearchStats local;
  RangeRec(0, query, radius, &out, stats ? stats : &local);
  SortResult(&out);
  return out;
}

void KdTree::RangeRec(int32_t node, const std::vector<double>& query,
                      double radius, std::vector<Neighbor>* out,
                      SearchStats* stats) const {
  ++stats->nodes_visited;
  const Node& n = nodes_[node];
  if (n.is_leaf) {
    ++stats->leaves_visited;
    for (const KdPoint& p : n.bucket) {
      ++stats->points_examined;
      double d = EuclideanDistance(query, p.coords);
      if (d <= radius) out->push_back(Neighbor{p.id, d});
    }
    return;
  }
  double diff = query[n.split_dim] - n.split_value;
  if (std::fabs(diff) <= radius) {
    // |P[SI] - Sv| < D: both children may contain results (§III-B.4).
    RangeRec(n.left, query, radius, out, stats);
    RangeRec(n.right, query, radius, out, stats);
  } else if (diff <= 0.0) {
    RangeRec(n.left, query, radius, out, stats);
  } else {
    RangeRec(n.right, query, radius, out, stats);
  }
}

size_t KdTree::LeafCount() const {
  size_t leaves = 0;
  for (const Node& n : nodes_) leaves += n.is_leaf ? 1 : 0;
  return leaves;
}

size_t KdTree::Depth() const {
  // Iterative DFS carrying depth.
  size_t max_depth = 0;
  std::vector<std::pair<int32_t, size_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& n = nodes_[node];
    if (!n.is_leaf) {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

Status KdTree::CheckInvariants() const {
  struct Frame {
    int32_t node;
    std::vector<std::pair<uint32_t, std::pair<bool, double>>> bounds;
  };
  // bounds entries: (dim, (is_upper, value)): is_upper means
  // coord[dim] <= value must hold, else coord[dim] > value.
  size_t seen_points = 0;
  std::vector<Frame> stack = {{0, {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.node < 0 || static_cast<size_t>(f.node) >= nodes_.size()) {
      return Status::Corruption("child index out of range");
    }
    const Node& n = nodes_[f.node];
    if (n.is_leaf) {
      for (const KdPoint& p : n.bucket) {
        ++seen_points;
        if (p.coords.size() != dimensions_) {
          return Status::Corruption("stored point dimension mismatch");
        }
        for (const auto& [dim, constraint] : f.bounds) {
          const auto& [is_upper, value] = constraint;
          double c = p.coords[dim];
          if (is_upper ? (c > value) : (c <= value)) {
            return Status::Corruption(StringPrintf(
                "point %llu violates split on dim %u",
                (unsigned long long)p.id, dim));
          }
        }
      }
      continue;
    }
    if (!n.bucket.empty()) {
      return Status::Corruption("routing node holds points");
    }
    Frame left{n.left, f.bounds};
    left.bounds.push_back({n.split_dim, {true, n.split_value}});
    Frame right{n.right, std::move(f.bounds)};
    right.bounds.push_back({n.split_dim, {false, n.split_value}});
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  if (seen_points != size_) {
    return Status::Corruption(
        StringPrintf("size_ is %zu but %zu points reachable", size_,
                     seen_points));
  }
  return Status::OK();
}

}  // namespace semtree

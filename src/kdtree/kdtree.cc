// Copyright 2026 The SemTree Authors

#include "kdtree/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "core/best_first.h"
#include "core/bulk_build.h"
#include "core/split.h"
#include "persist/snapshot.h"

namespace semtree {

KdTree::KdTree(size_t dimensions, KdTreeOptions options)
    : dimensions_(std::max<size_t>(1, dimensions)),
      options_(options),
      store_(dimensions_) {
  if (options_.bucket_size == 0) options_.bucket_size = 1;
  // Base setters; cannot fail here.
  (void)set_metric(options_.metric);
  (void)set_split_policy(options_.split_policy);
  NewLeaf();  // Root.
}

int32_t KdTree::NewLeaf() {
  nodes_.emplace_back();
  return static_cast<int32_t>(nodes_.size() - 1);
}

Status KdTree::Insert(const std::vector<double>& coords, PointId id) {
  if (coords.size() != dimensions_) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, tree has %zu",
                     coords.size(), dimensions_));
  }
  SEMTREE_RETURN_NOT_OK(CheckFiniteCoords(coords));
  // Navigate by (Sr, Sv) as in the standard Kd-Tree: left holds
  // coords[Sr] <= Sv, right holds coords[Sr] > Sv.
  int32_t node = 0;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    node = (coords[n.split_dim] <= n.split_value) ? n.left : n.right;
  }
  nodes_[node].bucket.push_back(store_.Append(coords.data(), id));
  if (nodes_[node].bucket.size() > options_.bucket_size) {
    MaybeSplitLeaf(node);
  }
  BumpEpoch();
  return Status::OK();
}

Status KdTree::Remove(const std::vector<double>& coords, PointId id) {
  if (coords.size() != dimensions_) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, tree has %zu",
                     coords.size(), dimensions_));
  }
  int32_t node = 0;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    node = (coords[n.split_dim] <= n.split_value) ? n.left : n.right;
  }
  std::vector<Slot>& bucket = nodes_[node].bucket;
  for (size_t i = 0; i < bucket.size(); ++i) {
    Slot slot = bucket[i];
    if (store_.IdAt(slot) == id &&
        std::equal(coords.begin(), coords.end(), store_.CoordsAt(slot))) {
      bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(i));
      store_.Release(slot);
      BumpEpoch();
      return Status::OK();
    }
  }
  return Status::NotFound(StringPrintf(
      "point %llu not stored at the given coordinates",
      (unsigned long long)id));
}

void KdTree::MaybeSplitLeaf(int32_t node) {
  BucketSplit split;
  if (!ChooseBucketSplit(nodes_[node].bucket, dimensions_,
                         [this](Slot s) { return store_.CoordsAt(s); },
                         &split)) {
    return;  // Identical points: allow overflow.
  }
  int32_t left = NewLeaf();
  int32_t right = NewLeaf();
  // NewLeaf may reallocate nodes_; re-take the reference.
  Node& n = nodes_[node];
  for (Slot s : n.bucket) {
    (store_.CoordsAt(s)[split.dim] <= split.value ? nodes_[left]
                                                  : nodes_[right])
        .bucket.push_back(s);
  }
  n.bucket.clear();
  n.bucket.shrink_to_fit();
  n.is_leaf = false;
  n.split_dim = split.dim;
  n.split_value = split.value;
  n.left = left;
  n.right = right;
}

Result<std::vector<KdTree::Slot>> KdTree::StoreAll(
    const std::vector<KdPoint>& points) {
  for (const KdPoint& p : points) {
    if (p.coords.size() != dimensions_) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
    SEMTREE_RETURN_NOT_OK(CheckFiniteCoords(p.coords));
  }
  store_.Reserve(points.size());
  std::vector<Slot> slots;
  slots.reserve(points.size());
  for (const KdPoint& p : points) {
    slots.push_back(store_.Append(p.coords.data(), p.id));
  }
  return slots;
}

Result<KdTree> KdTree::BulkLoadBalanced(size_t dimensions,
                                        const std::vector<KdPoint>& points,
                                        KdTreeOptions options) {
  KdTree tree(dimensions, options);
  SEMTREE_ASSIGN_OR_RETURN(std::vector<Slot> slots,
                           tree.StoreAll(points));
  if (slots.empty()) return tree;
  tree.BuildFromPlan(slots);
  return tree;
}

Status KdTree::BulkLoad(const std::vector<KdPoint>& points) {
  if (points.empty()) return Status::OK();
  if (size() != 0) return SpatialIndex::BulkLoad(points);  // Insert loop.
  SEMTREE_ASSIGN_OR_RETURN(std::vector<Slot> slots, StoreAll(points));
  BuildFromPlan(slots);
  BumpEpoch();
  return Status::OK();
}

// Phase 2 of the bulk build (core/bulk_build.h): emit nodes from the
// plan in exactly the order the historical serial builder allocated
// them — this node, the whole left subtree, the whole right subtree —
// so plan-built trees (serial or parallel, either policy) snapshot
// byte-identically to a serial recursive build.
void KdTree::BuildFromPlan(std::vector<Slot>& slots) {
  const PointStore& store = store_;
  BulkBuildOptions opts;
  opts.policy = options_.split_policy;
  opts.build_threads = options_.build_threads;
  opts.bucket_size = options_.bucket_size;
  std::unique_ptr<KdPlanNode> plan = BuildKdPlan(
      slots, dimensions_,
      [&store](Slot s) { return store.CoordsAt(s); }, opts);
  nodes_.clear();
  if (plan == nullptr) {
    NewLeaf();  // Empty tree: a single empty root leaf.
    return;
  }
  // Iterative pre-order emission replicating the serial recursion's
  // allocation order (node, left subtree, right subtree). `fixup`
  // frames record where the parent's child indices go once known —
  // pre-order means left == parent + 1, and right is patched when its
  // subtree is reached.
  struct Frame {
    const KdPlanNode* plan;
    int32_t parent;   // Node awaiting a child index, -1 for the root.
    bool is_right;    // Which child of `parent` this subtree is.
  };
  std::vector<Frame> stack = {{plan.get(), -1, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    int32_t node = NewLeaf();
    if (f.parent >= 0) {
      (f.is_right ? nodes_[f.parent].right : nodes_[f.parent].left) = node;
    }
    const KdPlanNode* p = f.plan;
    if (p->is_leaf) {
      nodes_[node].bucket.assign(
          slots.begin() + static_cast<ptrdiff_t>(p->lo),
          slots.begin() + static_cast<ptrdiff_t>(p->hi));
      continue;
    }
    Node& n = nodes_[node];
    n.is_leaf = false;
    n.split_dim = p->split_dim;
    n.split_value = p->split_value;
    // Left subtree is emitted before the right one: push right first.
    stack.push_back({p->right.get(), node, true});
    stack.push_back({p->left.get(), node, false});
  }
}

Result<KdTree> KdTree::BuildChain(size_t dimensions,
                                  const std::vector<KdPoint>& points,
                                  KdTreeOptions options) {
  KdTree tree(dimensions, options);
  SEMTREE_ASSIGN_OR_RETURN(std::vector<Slot> slots,
                           tree.StoreAll(points));
  if (slots.empty()) return tree;
  const PointStore& store = tree.store_;

  // Sort on dimension 0 and group equal values; each group becomes a
  // one-leaf step of the chain.
  std::sort(slots.begin(), slots.end(), [&store](Slot a, Slot b) {
    double ca = store.CoordsAt(a)[0];
    double cb = store.CoordsAt(b)[0];
    if (ca != cb) return ca < cb;
    return store.IdAt(a) < store.IdAt(b);
  });
  tree.nodes_.clear();
  tree.NewLeaf();  // Node 0, rebuilt below.

  // Build iteratively from the back: tail = leaf of the last group;
  // every earlier group adds a routing node (left = group leaf,
  // right = tail so far).
  std::vector<std::pair<size_t, size_t>> groups;  // [lo, hi) ranges.
  size_t start = 0;
  for (size_t i = 1; i <= slots.size(); ++i) {
    if (i == slots.size() ||
        store.CoordsAt(slots[i])[0] != store.CoordsAt(slots[start])[0]) {
      groups.emplace_back(start, i);
      start = i;
    }
  }

  auto fill_leaf = [&](int32_t leaf, size_t lo, size_t hi) {
    tree.nodes_[leaf].bucket.assign(slots.begin() + lo,
                                    slots.begin() + hi);
  };

  if (groups.size() == 1) {
    fill_leaf(0, groups[0].first, groups[0].second);
    return tree;
  }

  // Chain from the tail upward; node 0 must end up as the chain head,
  // so build heads for groups in reverse and splice the first into 0.
  int32_t tail = tree.NewLeaf();
  fill_leaf(tail, groups.back().first, groups.back().second);
  for (size_t gi = groups.size() - 1; gi-- > 0;) {
    int32_t leaf = tree.NewLeaf();
    fill_leaf(leaf, groups[gi].first, groups[gi].second);
    int32_t routing = (gi == 0) ? 0 : tree.NewLeaf();
    Node& n = tree.nodes_[routing];
    n.is_leaf = false;
    n.split_dim = 0;
    n.split_value = store.CoordsAt(tree.nodes_[leaf].bucket[0])[0];
    n.left = leaf;
    n.right = tail;
    tail = routing;
  }
  return tree;
}

std::vector<Neighbor> KdTree::KnnSearch(const std::vector<double>& query,
                                        size_t k,
                                        const SearchBudget& budget,
                                        SearchStats* stats) const {
  // Wrong-arity and non-finite queries return empty rather than
  // reading out of bounds or poisoning the frontier ordering (the
  // raw-pointer kernel consumes exactly dimensions_ doubles).
  if (k == 0 || size() == 0 || query.size() != dimensions_ ||
      !AllFinite(query)) {
    return {};
  }
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  KnnAccumulator acc(k);
  double scale = budget.pruning_scale();
  const Metric m = metric();
  BestFirstSearch(
      0, &gauge, [&] { return acc.tau() * scale; }, [&] { return acc.tau(); },
      [&](int32_t nd, double bound, Frontier* frontier) {
        const Node& n = nodes_[size_t(nd)];
        if (n.is_leaf) {
          ++st->leaves_visited;
          // Batched leaf scan (core/kernels.h): the bulk charge grants
          // exactly what a per-point loop would have computed, so
          // budgeted results and stats are unchanged.
          size_t granted = gauge.ChargeDistances(n.bucket.size());
          BatchScan(
              m, query.data(), dimensions_, granted,
              [&](size_t j) { return store_.CoordsAt(n.bucket[j]); },
              [&](size_t j, double d) {
                acc.Offer(store_.IdAt(n.bucket[j]), d);
              });
          return;
        }
        // The near child inherits this region's bound; the far child's
        // region lies beyond the splitting plane, so its distance is at
        // least the plane gap (|query[Sr] - Sv| under L2/L1 — the
        // backward-visit quantity of §III-B.3) as well as the
        // inherited bound.
        double diff = query[n.split_dim] - n.split_value;
        int32_t near = (diff <= 0.0) ? n.left : n.right;
        int32_t far = (diff <= 0.0) ? n.right : n.left;
        frontier->Push(bound, near);
        frontier->Push(std::max(bound, KdPlaneLowerBound(m, diff)), far);
      });
  return acc.Take();
}

std::vector<Neighbor> KdTree::RangeSearch(const std::vector<double>& query,
                                          double radius,
                                          const SearchBudget& budget,
                                          SearchStats* stats) const {
  std::vector<Neighbor> out;
  // !(radius >= 0) also rejects a NaN radius, which would otherwise
  // defeat every pruning comparison and walk the whole tree.
  if (size() == 0 || !(radius >= 0.0) || query.size() != dimensions_ ||
      !AllFinite(query)) {
    return out;
  }
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  double limit = radius * budget.pruning_scale();
  const Metric m = metric();
  BestFirstSearch(
      0, &gauge, [&] { return limit; }, [&] { return radius; },
      [&](int32_t nd, double bound, Frontier* frontier) {
        const Node& n = nodes_[size_t(nd)];
        if (n.is_leaf) {
          ++st->leaves_visited;
          size_t granted = gauge.ChargeDistances(n.bucket.size());
          BatchScan(
              m, query.data(), dimensions_, granted,
              [&](size_t j) { return store_.CoordsAt(n.bucket[j]); },
              [&](size_t j, double d) {
                if (d <= radius) {
                  out.push_back(Neighbor{store_.IdAt(n.bucket[j]), d});
                }
              });
          return;
        }
        // |P[SI] - Sv| <= D admits both children (§III-B.4); the walker
        // prunes the far child through its plane-gap bound.
        double diff = query[n.split_dim] - n.split_value;
        int32_t near = (diff <= 0.0) ? n.left : n.right;
        int32_t far = (diff <= 0.0) ? n.right : n.left;
        frontier->Push(bound, near);
        frontier->Push(std::max(bound, KdPlaneLowerBound(m, diff)), far);
      });
  std::sort(out.begin(), out.end(), NeighborDistanceThenId);
  return out;
}

void KdTree::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(dimensions_);
  out->PutU64(options_.bucket_size);
  out->PutU64(epoch());
  persist::WritePointStore(store_, out);
  out->PutU64(nodes_.size());
  for (const Node& n : nodes_) {
    out->PutU8(n.is_leaf ? 1 : 0);
    out->PutU32(n.split_dim);
    out->PutDouble(n.split_value);
    out->PutI32(n.left);
    out->PutI32(n.right);
    out->PutU32Array(n.bucket);
  }
}

Result<KdTree> KdTree::LoadFrom(persist::ByteReader* in) {
  SEMTREE_ASSIGN_OR_RETURN(uint64_t dimensions, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t bucket_size, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t epoch, in->U64());
  KdTreeOptions options;
  options.bucket_size = bucket_size;
  KdTree tree(dimensions, options);
  SEMTREE_ASSIGN_OR_RETURN(tree.store_, persist::ReadPointStore(in));
  if (tree.store_.dimensions() != tree.dimensions_) {
    return Status::Corruption("kd-tree arena dimensionality mismatch");
  }
  SEMTREE_ASSIGN_OR_RETURN(uint64_t node_count, in->U64());
  if (node_count == 0) {
    return Status::Corruption("kd-tree snapshot has no nodes");
  }
  // 29 = serialized bytes of an empty node (flag, split, children,
  // bucket length).
  SEMTREE_RETURN_NOT_OK(in->CheckCount(node_count, 29));
  tree.nodes_.clear();
  tree.nodes_.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Node n;
    SEMTREE_ASSIGN_OR_RETURN(uint8_t is_leaf, in->U8());
    n.is_leaf = is_leaf != 0;
    SEMTREE_ASSIGN_OR_RETURN(n.split_dim, in->U32());
    SEMTREE_ASSIGN_OR_RETURN(n.split_value, in->Double());
    SEMTREE_ASSIGN_OR_RETURN(n.left, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.right, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.bucket, in->U32Array());
    if (n.is_leaf) {
      for (Slot s : n.bucket) {
        if (s >= tree.store_.slot_count()) {
          return Status::Corruption("kd-tree bucket slot out of range");
        }
      }
    } else if (n.split_dim >= tree.dimensions_ || n.left < 0 ||
               n.right < 0 || uint64_t(n.left) >= node_count ||
               uint64_t(n.right) >= node_count) {
      return Status::Corruption("kd-tree routing node malformed");
    }
    tree.nodes_.push_back(std::move(n));
  }
  // Range checks alone admit cycles, which would overflow the search
  // recursion; require the children to form a tree below node 0.
  std::vector<bool> visited(node_count, false);
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    int32_t node = stack.back();
    stack.pop_back();
    if (visited[size_t(node)]) {
      return Status::Corruption("kd-tree snapshot topology has a cycle");
    }
    visited[size_t(node)] = true;
    const Node& n = tree.nodes_[size_t(node)];
    if (!n.is_leaf) {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  tree.RestoreEpoch(epoch);
  return tree;
}

size_t KdTree::LeafCount() const {
  size_t leaves = 0;
  for (const Node& n : nodes_) leaves += n.is_leaf ? 1 : 0;
  return leaves;
}

size_t KdTree::Depth() const {
  // Iterative DFS carrying depth.
  size_t max_depth = 0;
  std::vector<std::pair<int32_t, size_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& n = nodes_[node];
    if (!n.is_leaf) {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

Status KdTree::CheckInvariants() const {
  struct Frame {
    int32_t node;
    std::vector<std::pair<uint32_t, std::pair<bool, double>>> bounds;
  };
  // bounds entries: (dim, (is_upper, value)): is_upper means
  // coord[dim] <= value must hold, else coord[dim] > value.
  size_t seen_points = 0;
  std::vector<Frame> stack = {{0, {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.node < 0 || static_cast<size_t>(f.node) >= nodes_.size()) {
      return Status::Corruption("child index out of range");
    }
    const Node& n = nodes_[f.node];
    if (n.is_leaf) {
      for (Slot s : n.bucket) {
        ++seen_points;
        if (s >= store_.slot_count()) {
          return Status::Corruption("bucket slot out of range");
        }
        const double* coords = store_.CoordsAt(s);
        for (const auto& [dim, constraint] : f.bounds) {
          const auto& [is_upper, value] = constraint;
          double c = coords[dim];
          if (is_upper ? (c > value) : (c <= value)) {
            return Status::Corruption(StringPrintf(
                "point %llu violates split on dim %u",
                (unsigned long long)store_.IdAt(s), dim));
          }
        }
      }
      continue;
    }
    if (!n.bucket.empty()) {
      return Status::Corruption("routing node holds points");
    }
    Frame left{n.left, f.bounds};
    left.bounds.push_back({n.split_dim, {true, n.split_value}});
    Frame right{n.right, std::move(f.bounds)};
    right.bounds.push_back({n.split_dim, {false, n.split_value}});
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  if (seen_points != store_.size()) {
    return Status::Corruption(
        StringPrintf("store holds %zu points but %zu reachable",
                     store_.size(), seen_points));
  }
  return Status::OK();
}

}  // namespace semtree

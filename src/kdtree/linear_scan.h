// Copyright 2026 The SemTree Authors
//
// Exact linear-scan baseline over embedded points. Tests use it as the
// gold standard for KD-tree and SemTree searches; benches use it as the
// brute-force comparator. Points live in a flat PointStore arena, so a
// scan is one sequential sweep over contiguous rows.

#ifndef SEMTREE_KDTREE_LINEAR_SCAN_H_
#define SEMTREE_KDTREE_LINEAR_SCAN_H_

#include <vector>

#include "common/result.h"
#include "core/point.h"
#include "core/point_store.h"
#include "core/spatial_index.h"
#include "persist/wire.h"

namespace semtree {

/// Stores points in a flat arena; every query scans all of them.
class LinearScanIndex : public SpatialIndex {
 public:
  explicit LinearScanIndex(size_t dimensions,
                           Metric metric = Metric::kL2)
      : store_(dimensions < 1 ? 1 : dimensions) {
    (void)set_metric(metric);  // Base setter; cannot fail here.
  }

  Status Insert(const std::vector<double>& coords, PointId id) override;

  /// Removes the point with the given coordinates and id.
  Status Remove(const std::vector<double>& coords, PointId id) override;

  using SpatialIndex::KnnSearch;
  using SpatialIndex::RangeSearch;

  /// K nearest neighbours, sorted by (distance, id). A distance budget
  /// stops the sweep after that many points (insertion order, flagged
  /// truncated); a scan has no pruning bound, so epsilon is a no-op
  /// and exact budgets stay the gold standard.
  std::vector<Neighbor> KnnSearch(
      const std::vector<double>& query, size_t k, const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;

  /// Range search, sorted by (distance, id); budget semantics as above.
  std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;

  size_t size() const override { return store_.size(); }
  size_t dimensions() const override { return store_.dimensions(); }
  std::string_view name() const override { return "linear_scan"; }

  const PointStore& store() const { return store_; }

  /// Serializes the arena, scan order and epoch (DESIGN.md §5).
  void SaveTo(persist::ByteWriter* out) const;

  /// Loads a saved index back, preserving insertion order and epoch.
  static Result<LinearScanIndex> LoadFrom(persist::ByteReader* in);

 private:
  PointStore store_;
  std::vector<PointStore::Slot> slots_;  // Live slots, insertion order.
};

}  // namespace semtree

#endif  // SEMTREE_KDTREE_LINEAR_SCAN_H_

// Copyright 2026 The SemTree Authors
//
// Exact linear-scan baseline over embedded points. Tests use it as the
// gold standard for KD-tree and SemTree searches; benches use it as the
// brute-force comparator.

#ifndef SEMTREE_KDTREE_LINEAR_SCAN_H_
#define SEMTREE_KDTREE_LINEAR_SCAN_H_

#include <vector>

#include "common/result.h"
#include "kdtree/kdtree.h"

namespace semtree {

/// Stores points in a flat array; every query scans all of them.
class LinearScanIndex {
 public:
  explicit LinearScanIndex(size_t dimensions)
      : dimensions_(std::max<size_t>(1, dimensions)) {}

  Status Insert(const std::vector<double>& coords, PointId id);

  /// Exact k nearest neighbours, sorted by (distance, id).
  std::vector<Neighbor> KnnSearch(const std::vector<double>& query,
                                  size_t k) const;

  /// Exact range search, sorted by (distance, id).
  std::vector<Neighbor> RangeSearch(const std::vector<double>& query,
                                    double radius) const;

  size_t size() const { return points_.size(); }
  size_t dimensions() const { return dimensions_; }

 private:
  size_t dimensions_;
  std::vector<KdPoint> points_;
};

}  // namespace semtree

#endif  // SEMTREE_KDTREE_LINEAR_SCAN_H_

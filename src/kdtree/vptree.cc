// Copyright 2026 The SemTree Authors

#include "kdtree/vptree.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/best_first.h"
#include "core/bulk_build.h"

namespace semtree {

/// Phase-1 plan node for the VP-tree build (two-phase scheme of
/// core/bulk_build.h): split decisions over disjoint spans of the
/// object permutation, emitted serially afterwards.
struct VpPlanNode {
  bool is_leaf = true;
  size_t vantage = 0;
  double threshold = 0.0;
  size_t lo = 0;
  size_t hi = 0;
  std::unique_ptr<VpPlanNode> inside;
  std::unique_ptr<VpPlanNode> outside;
};

namespace {

struct VpPlanParams {
  const MetricDistanceFn* distance;
  std::vector<size_t>* objects;
  size_t bucket_size;
  uint64_t seed;
  /// Spans at or above this fan their inside child out to the pool.
  size_t parallel_cutoff = 4096;
};

// One span's split decision. The vantage pick is seeded from
// (seed, lo, hi) rather than drawn from one sequential stream — every
// node's randomness then depends only on its span, never on the order
// tasks ran in, which is what makes the parallel build reproduce the
// serial one node for node.
void FillVpPlanNode(VpPlanNode* node, const VpPlanParams* p, size_t lo,
                    size_t hi, TaskGroup* group) {
  std::vector<size_t>& objects = *p->objects;
  const MetricDistanceFn& distance = *p->distance;
  size_t count = hi - lo;
  if (count <= p->bucket_size) {
    node->is_leaf = true;
    node->lo = lo;
    node->hi = hi;
    return;
  }
  // Per-span-seeded vantage point; swap it to the front of the span.
  Rng rng(MixSeed(p->seed, lo, hi));
  size_t pick = lo + rng.Uniform(count);
  std::swap(objects[lo], objects[pick]);
  size_t vantage = objects[lo];

  // Partition the rest by the median distance to the vantage point.
  std::vector<std::pair<double, size_t>> tagged;
  tagged.reserve(count - 1);
  for (size_t i = lo + 1; i < hi; ++i) {
    tagged.emplace_back(distance(vantage, objects[i]), objects[i]);
  }
  size_t mid = tagged.size() / 2;
  std::nth_element(tagged.begin(), tagged.begin() + mid, tagged.end());
  double threshold = tagged[mid].first;
  // Stable partition: inside (<= threshold) first. nth_element only
  // guarantees the pivot position, so re-partition explicitly.
  std::vector<size_t> inside = {vantage};
  std::vector<size_t> outside;
  for (const auto& [d, obj] : tagged) {
    (d <= threshold ? inside : outside).push_back(obj);
  }
  if (outside.empty()) {
    // All equidistant: no separation possible; keep one flat leaf.
    node->is_leaf = true;
    node->lo = lo;
    node->hi = hi;
    return;
  }
  size_t cursor = lo;
  for (size_t obj : inside) objects[cursor++] = obj;
  size_t split = cursor;
  for (size_t obj : outside) objects[cursor++] = obj;

  node->is_leaf = false;
  node->vantage = vantage;
  node->threshold = threshold;
  node->inside = std::make_unique<VpPlanNode>();
  node->outside = std::make_unique<VpPlanNode>();
  VpPlanNode* in_child = node->inside.get();
  VpPlanNode* out_child = node->outside.get();
  if (group != nullptr && count >= p->parallel_cutoff) {
    group->Run([in_child, p, lo, split, group]() {
      FillVpPlanNode(in_child, p, lo, split, group);
    });
    FillVpPlanNode(out_child, p, split, hi, group);
    return;
  }
  FillVpPlanNode(in_child, p, lo, split, group);
  FillVpPlanNode(out_child, p, split, hi, group);
}

}  // namespace

Result<VpTree> VpTree::Build(size_t n, const MetricDistanceFn& distance,
                             const VpTreeOptions& options) {
  if (n == 0) return Status::InvalidArgument("cannot index zero objects");
  if (!distance) {
    return Status::InvalidArgument("distance oracle must be callable");
  }
  VpTree tree(options);
  if (tree.options_.bucket_size == 0) tree.options_.bucket_size = 1;
  tree.size_ = n;
  std::vector<size_t> objects(n);
  for (size_t i = 0; i < n; ++i) objects[i] = i;

  VpPlanNode root;
  VpPlanParams params;
  params.distance = &distance;
  params.objects = &objects;
  params.bucket_size = tree.options_.bucket_size;
  params.seed = options.seed;
  size_t threads = ResolveBuildThreads(options.build_threads);
  if (threads > 1 && n >= params.parallel_cutoff) {
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    FillVpPlanNode(&root, &params, 0, n, &group);
    group.Wait();
  } else {
    FillVpPlanNode(&root, &params, 0, n, nullptr);
  }
  tree.BuildFromPlan(root, objects);
  return tree;
}

void VpTree::BuildFromPlan(const VpPlanNode& root,
                           const std::vector<size_t>& objects) {
  // Iterative pre-order emission replicating the historical serial
  // recursion's allocation order: node, inside subtree, outside
  // subtree. Parent child-indices are patched as subtrees are reached.
  struct Frame {
    const VpPlanNode* plan;
    int32_t parent;   // Node awaiting a child index, -1 for the root.
    bool is_outside;  // Which child of `parent` this subtree is.
  };
  nodes_.clear();
  std::vector<Frame> stack = {{&root, -1, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    nodes_.emplace_back();
    int32_t node = static_cast<int32_t>(nodes_.size() - 1);
    if (f.parent >= 0) {
      (f.is_outside ? nodes_[size_t(f.parent)].outside
                    : nodes_[size_t(f.parent)].inside) = node;
    }
    const VpPlanNode* p = f.plan;
    if (p->is_leaf) {
      nodes_[size_t(node)].bucket.assign(
          objects.begin() + static_cast<ptrdiff_t>(p->lo),
          objects.begin() + static_cast<ptrdiff_t>(p->hi));
      continue;
    }
    Node& n = nodes_[size_t(node)];
    n.is_leaf = false;
    n.vantage = p->vantage;
    n.threshold = p->threshold;
    // Inside subtree is emitted before the outside one: push outside
    // first.
    stack.push_back({p->outside.get(), node, true});
    stack.push_back({p->inside.get(), node, false});
  }
}

// Both searches run the shared best-first walker over metric ball
// bounds: for a routing node with vantage distance d and threshold t,
// anything inside the ball is at least d - t away and anything outside
// at least t - d (triangle inequality; prune_slack widens both for
// near-metric distances). Bounds are admissible, so exact budgets
// reproduce the recursive traversal's results; spent budgets leave the
// farthest balls unvisited.

std::vector<Neighbor> VpTree::KnnSearch(const QueryDistanceFn& dq,
                                        size_t k,
                                        const SearchBudget& budget,
                                        SearchStats* stats) const {
  if (k == 0 || size_ == 0) return {};
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  KnnAccumulator acc(k);
  double scale = budget.pruning_scale();
  double slack = options_.prune_slack;
  BestFirstSearch(
      0, &gauge, [&] { return acc.tau() * scale; }, [&] { return acc.tau(); },
      [&](int32_t nd, double bound, Frontier* frontier) {
        const Node& n = nodes_[size_t(nd)];
        if (n.is_leaf) {
          ++st->leaves_visited;
          for (size_t object : n.bucket) {
            if (!gauge.ChargeDistance()) return;
            acc.Offer(object, dq(object));
          }
          return;
        }
        // The vantage object itself lives in the inside subtree
        // (distance 0 to itself <= threshold), so it is offered when
        // that leaf is scanned; here its distance only steers
        // navigation.
        if (!gauge.ChargeDistance()) return;
        double d = dq(n.vantage);
        frontier->Push(std::max(bound, d - n.threshold - slack),
                       n.inside);
        frontier->Push(std::max(bound, n.threshold - d - slack),
                       n.outside);
      });
  return acc.Take();
}

std::vector<Neighbor> VpTree::RangeSearch(const QueryDistanceFn& dq,
                                          double radius,
                                          const SearchBudget& budget,
                                          SearchStats* stats) const {
  std::vector<Neighbor> out;
  if (size_ == 0 || radius < 0.0) return out;
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  double limit = radius * budget.pruning_scale();
  double slack = options_.prune_slack;
  BestFirstSearch(
      0, &gauge, [&] { return limit; }, [&] { return radius; },
      [&](int32_t nd, double bound, Frontier* frontier) {
        const Node& n = nodes_[size_t(nd)];
        if (n.is_leaf) {
          ++st->leaves_visited;
          for (size_t object : n.bucket) {
            if (!gauge.ChargeDistance()) return;
            double d = dq(object);
            if (d <= radius) out.push_back(Neighbor{object, d});
          }
          return;
        }
        if (!gauge.ChargeDistance()) return;
        double d = dq(n.vantage);
        frontier->Push(std::max(bound, d - n.threshold - slack),
                       n.inside);
        frontier->Push(std::max(bound, n.threshold - d - slack),
                       n.outside);
      });
  std::sort(out.begin(), out.end(), NeighborDistanceThenId);
  return out;
}

void VpTree::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(options_.bucket_size);
  out->PutU64(options_.seed);
  out->PutDouble(options_.prune_slack);
  out->PutU64(size_);
  out->PutU64(nodes_.size());
  for (const Node& n : nodes_) {
    out->PutU8(n.is_leaf ? 1 : 0);
    out->PutU64(n.vantage);
    out->PutDouble(n.threshold);
    out->PutI32(n.inside);
    out->PutI32(n.outside);
    out->PutU64(n.bucket.size());
    for (size_t object : n.bucket) out->PutU64(object);
  }
}

Result<VpTree> VpTree::LoadFrom(persist::ByteReader* in) {
  VpTreeOptions options;
  SEMTREE_ASSIGN_OR_RETURN(options.bucket_size, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(options.seed, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(options.prune_slack, in->Double());
  VpTree tree(options);
  SEMTREE_ASSIGN_OR_RETURN(tree.size_, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t node_count, in->U64());
  if (node_count == 0 || tree.size_ == 0) {
    return Status::Corruption("vp-tree snapshot is empty");
  }
  // 33 = serialized bytes of an empty node.
  SEMTREE_RETURN_NOT_OK(in->CheckCount(node_count, 33));
  tree.nodes_.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Node n;
    SEMTREE_ASSIGN_OR_RETURN(uint8_t is_leaf, in->U8());
    n.is_leaf = is_leaf != 0;
    SEMTREE_ASSIGN_OR_RETURN(n.vantage, in->U64());
    SEMTREE_ASSIGN_OR_RETURN(n.threshold, in->Double());
    SEMTREE_ASSIGN_OR_RETURN(n.inside, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(n.outside, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(uint64_t bucket_len, in->U64());
    SEMTREE_RETURN_NOT_OK(in->CheckCount(bucket_len, 8));
    n.bucket.reserve(bucket_len);
    for (uint64_t b = 0; b < bucket_len; ++b) {
      SEMTREE_ASSIGN_OR_RETURN(uint64_t object, in->U64());
      if (object >= tree.size_) {
        return Status::Corruption("vp-tree bucket object out of range");
      }
      n.bucket.push_back(object);
    }
    if (!n.is_leaf &&
        (n.vantage >= tree.size_ || n.inside < 0 || n.outside < 0 ||
         uint64_t(n.inside) >= node_count ||
         uint64_t(n.outside) >= node_count)) {
      return Status::Corruption("vp-tree routing node malformed");
    }
    tree.nodes_.push_back(std::move(n));
  }
  // Reject cyclic topologies (they would overflow the search
  // recursion); the children must form a tree below node 0.
  std::vector<bool> visited(node_count, false);
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    int32_t node = stack.back();
    stack.pop_back();
    if (visited[size_t(node)]) {
      return Status::Corruption("vp-tree snapshot topology has a cycle");
    }
    visited[size_t(node)] = true;
    const Node& n = tree.nodes_[size_t(node)];
    if (!n.is_leaf) {
      stack.push_back(n.inside);
      stack.push_back(n.outside);
    }
  }
  return tree;
}

size_t VpTree::Depth() const {
  struct Frame {
    int32_t node;
    size_t depth;
  };
  size_t max_depth = 0;
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, f.depth);
    const Node& n = nodes_[size_t(f.node)];
    if (!n.is_leaf) {
      stack.push_back({n.inside, f.depth + 1});
      stack.push_back({n.outside, f.depth + 1});
    }
  }
  return max_depth;
}

}  // namespace semtree

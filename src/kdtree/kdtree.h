// Copyright 2026 The SemTree Authors
//
// A sequential KD-tree with bucket leaves — the substrate of SemTree
// (§III-B). Data lives only in leaf buckets, as the paper assumes; each
// internal (routing) node carries a split index Sr and split value Sv.
// When an insertion saturates a leaf's bucket, two child nodes are
// instantiated and the points move down (Fig. 1).
//
// Coordinates live in a flat row-major PointStore arena; leaf buckets
// hold 32-bit slot indices into it, so bucket scans stream contiguous
// rows instead of chasing per-point heap vectors.
//
// Besides dynamic insertion, two bulk builders exist for the paper's
// efficiency experiments: a balanced median build and a "totally
// unbalanced (chain)" build (Figs. 3, 4, 6).

#ifndef SEMTREE_KDTREE_KDTREE_H_
#define SEMTREE_KDTREE_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/distance.h"
#include "core/kernels.h"
#include "core/point.h"
#include "core/point_store.h"
#include "core/spatial_index.h"
#include "persist/wire.h"

namespace semtree {

struct KdTreeOptions {
  /// Bucket capacity Bs of a leaf; exceeding it triggers a split.
  size_t bucket_size = 32;

  /// Distance function evaluated by searches (core/kernels.h). The
  /// splitting structure is coordinate-based and metric-independent;
  /// only leaf distances and the far-child pruning bound change. For
  /// kCosine the splitting-plane bound degenerates to 0 (searches stay
  /// exact but approach an exhaustive scan; see KdPlaneLowerBound).
  Metric metric = Metric::kL2;

  /// How bulk builds cut nodes (core/split.h): the paper's median
  /// split, or clustering-guided centroid splits (core/bulk_build.h).
  /// Incremental insertion always splits overflowing buckets by
  /// median — the policy steers bulk loads only.
  SplitPolicy split_policy = SplitPolicy::kMedian;

  /// Worker threads for bulk builds: 1 = serial (default), 0 = one per
  /// hardware thread, n = exactly n. The built tree — and its snapshot
  /// bytes — are identical across all values (DESIGN.md §8).
  size_t build_threads = 1;
};

/// Bucket KD-tree over a fixed-dimensional space.
///
/// Not thread-safe for mutation; concurrent searches are safe once
/// construction/insertion stops.
class KdTree : public SpatialIndex {
 public:
  /// An empty tree (a single empty leaf).
  explicit KdTree(size_t dimensions, KdTreeOptions options = {});

  /// Balanced bulk load: recursive median split over the widest-spread
  /// dimension. Fails on dimension mismatches.
  static Result<KdTree> BulkLoadBalanced(size_t dimensions,
                                         const std::vector<KdPoint>& points,
                                         KdTreeOptions options = {});

  /// Degenerate chain build: the tree becomes a right-leaning chain of
  /// routing nodes, each shedding one leaf — the paper's "totally
  /// unbalanced (chain)" worst case.
  static Result<KdTree> BuildChain(size_t dimensions,
                                   const std::vector<KdPoint>& points,
                                   KdTreeOptions options = {});

  /// Inserts one point (paper §III-B.1, sequential case). Fails if
  /// `coords` has the wrong dimensionality.
  Status Insert(const std::vector<double>& coords, PointId id) override;

  /// Removes the point with the given coordinates and id. The paper
  /// notes that "once built, modifying or rebalancing a Kd-tree is a
  /// non-trivial task"; removal here erases the point from its leaf
  /// bucket (the routing structure is kept — regions only ever shrink,
  /// so searches stay correct). Returns NotFound if no such point is
  /// stored.
  Status Remove(const std::vector<double>& coords, PointId id) override;

  // Re-expose the budget-less convenience overloads next to the
  // budgeted overrides below.
  using SpatialIndex::KnnSearch;
  using SpatialIndex::RangeSearch;

  /// Keeps options().metric in sync so the stored options never
  /// disagree with metric() (the single source of truth).
  Status set_metric(Metric metric) override {
    options_.metric = metric;
    return SpatialIndex::set_metric(metric);
  }

  /// Keeps options().split_policy in sync, mirroring set_metric.
  Status set_split_policy(SplitPolicy policy) override {
    options_.split_policy = policy;
    return SpatialIndex::set_split_policy(policy);
  }

  /// Batch load through the parallel plan builder (core/bulk_build.h)
  /// under options().split_policy: on an empty tree the whole batch is
  /// built balanced in one pass (parallel when build_threads allows,
  /// byte-identical to serial either way); on a non-empty tree it
  /// falls back to the Insert loop.
  Status BulkLoad(const std::vector<KdPoint>& points) override;

  /// The k nearest points to `query` (paper §III-B.3, sequential
  /// case), as a budgeted best-first walk over region lower bounds
  /// (core/best_first.h): exact budgets reproduce the textbook result,
  /// spent budgets truncate (stats->truncated) having visited the
  /// closest regions first.
  std::vector<Neighbor> KnnSearch(
      const std::vector<double>& query, size_t k, const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;

  /// All points within `radius` of `query` (paper §III-B.4), under the
  /// same budget semantics (truncation may drop members, never add).
  std::vector<Neighbor> RangeSearch(
      const std::vector<double>& query, double radius,
      const SearchBudget& budget,
      SearchStats* stats = nullptr) const override;

  size_t size() const override { return store_.size(); }
  size_t dimensions() const override { return dimensions_; }
  std::string_view name() const override { return "kdtree"; }
  const KdTreeOptions& options() const { return options_; }

  /// The flat coordinate arena backing this tree.
  const PointStore& store() const { return store_; }

  /// Total node count (routing + leaf).
  size_t NodeCount() const { return nodes_.size(); }
  size_t LeafCount() const;
  size_t RoutingCount() const { return NodeCount() - LeafCount(); }

  /// Longest root-to-leaf path (0 for a single leaf).
  size_t Depth() const;

  /// Verifies structural invariants: every stored point lies in the
  /// region its ancestors' splits induce; size bookkeeping matches.
  Status CheckInvariants() const;

  /// Serializes the tree — node topology, leaf buckets, the arena and
  /// the mutation epoch — for the v2 snapshot (DESIGN.md §5).
  void SaveTo(persist::ByteWriter* out) const;

  /// Structure-preserving load: the saved topology is read back
  /// directly (O(bytes), no rebuild), so searches on the loaded tree
  /// visit the same nodes and return byte-identical results.
  static Result<KdTree> LoadFrom(persist::ByteReader* in);

 private:
  using Slot = PointStore::Slot;

  struct Node {
    bool is_leaf = true;
    uint32_t split_dim = 0;    // Sr
    double split_value = 0.0;  // Sv
    int32_t left = -1;
    int32_t right = -1;
    std::vector<Slot> bucket;  // Leaf payload (empty on routing nodes).
  };

  int32_t NewLeaf();
  /// Splits leaf `node` if a separating dimension exists; on totally
  /// duplicated points the bucket is left to overflow.
  void MaybeSplitLeaf(int32_t node);
  /// Replaces the current (empty) node array with the balanced tree
  /// described by the phase-1 plan over `slots`, allocating nodes in
  /// the canonical serial order: node, left subtree, right subtree.
  void BuildFromPlan(std::vector<Slot>& slots);
  /// Appends `points` into the arena, returning their slots; fails on a
  /// dimensionality mismatch.
  Result<std::vector<Slot>> StoreAll(const std::vector<KdPoint>& points);

  size_t dimensions_;
  KdTreeOptions options_;
  PointStore store_;
  std::vector<Node> nodes_;
};

}  // namespace semtree

#endif  // SEMTREE_KDTREE_KDTREE_H_

// Copyright 2026 The SemTree Authors

#include "kdtree/mtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "core/best_first.h"

namespace semtree {

namespace {

}  // namespace

Result<MTree> MTree::Create(MetricDistanceFn distance,
                            MTreeOptions options) {
  if (!distance) {
    return Status::InvalidArgument("distance oracle must be callable");
  }
  if (options.node_capacity < 2) {
    return Status::InvalidArgument("node_capacity must be at least 2");
  }
  return MTree(std::move(distance), options);
}

int32_t MTree::ChooseLeaf(size_t object) {
  int32_t node = root_;
  while (!nodes_[size_t(node)].is_leaf) {
    Node& n = nodes_[size_t(node)];
    // Prefer the routing entry already covering the object; otherwise
    // the one whose radius grows least. Covering radii are enlarged on
    // the way down so the invariant holds even before any split.
    double best_key = std::numeric_limits<double>::infinity();
    size_t best = 0;
    double best_d = 0.0;
    for (size_t i = 0; i < n.entries.size(); ++i) {
      double d = EntryDistance(n.entries[i], object);
      double key = (d <= n.entries[i].radius)
                       ? d
                       : 1e9 + (d - n.entries[i].radius);
      if (key < best_key) {
        best_key = key;
        best = i;
        best_d = d;
      }
    }
    Entry& chosen = n.entries[best];
    chosen.radius = std::max(chosen.radius, best_d);
    node = chosen.child;
  }
  return node;
}

Status MTree::Insert(size_t index) {
  int32_t leaf = ChooseLeaf(index);
  Node& n = nodes_[size_t(leaf)];
  Entry entry;
  entry.object = index;
  if (n.parent >= 0) {
    // The leaf's pivot is the object of the parent entry pointing here.
    const Node& parent = nodes_[size_t(n.parent)];
    for (const Entry& pe : parent.entries) {
      if (pe.child == leaf) {
        entry.parent_distance = distance_(pe.object, index);
        break;
      }
    }
  }
  n.entries.push_back(entry);
  ++size_;
  if (n.entries.size() > options_.node_capacity) SplitNode(leaf);
  return Status::OK();
}

void MTree::SplitNode(int32_t node_index) {
  // Work on copies: splitting may reallocate nodes_.
  std::vector<Entry> entries = std::move(nodes_[size_t(node_index)].entries);
  bool is_leaf = nodes_[size_t(node_index)].is_leaf;
  int32_t parent = nodes_[size_t(node_index)].parent;

  // Promotion: the pair of entries with the largest pairwise distance
  // (exact mM_RAD over the node; capacities are small).
  size_t p1 = 0, p2 = 1;
  double best = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double d = distance_(entries[i].object, entries[j].object);
      if (d > best) {
        best = d;
        p1 = i;
        p2 = j;
      }
    }
  }
  size_t pivot1 = entries[p1].object;
  size_t pivot2 = entries[p2].object;

  // Generalized-hyperplane partition: each entry goes to the closer
  // pivot (ties to pivot1).
  std::vector<Entry> group1, group2;
  std::vector<double> dist1_list, dist2_list;
  for (Entry& e : entries) {
    double d1 = distance_(pivot1, e.object);
    double d2 = distance_(pivot2, e.object);
    if (d1 <= d2) {
      e.parent_distance = d1;
      group1.push_back(e);
      dist1_list.push_back(d1);
    } else {
      e.parent_distance = d2;
      group2.push_back(e);
      dist2_list.push_back(d2);
    }
  }
  auto covering_radius = [&](const std::vector<Entry>& group,
                             const std::vector<double>& dists) {
    double r = 0.0;
    for (size_t i = 0; i < group.size(); ++i) {
      double extent = dists[i] + (is_leaf ? 0.0 : group[i].radius);
      r = std::max(r, extent);
    }
    return r;
  };
  double r1 = covering_radius(group1, dist1_list);
  double r2 = covering_radius(group2, dist2_list);

  // Reuse `node_index` for group1; allocate a sibling for group2.
  int32_t sibling = int32_t(nodes_.size());
  nodes_.push_back(Node{});
  Node& left = nodes_[size_t(node_index)];
  Node& right = nodes_[size_t(sibling)];
  left.entries = std::move(group1);
  right.is_leaf = is_leaf;
  right.entries = std::move(group2);
  if (!is_leaf) {
    for (const Entry& e : left.entries) {
      nodes_[size_t(e.child)].parent = node_index;
    }
    for (const Entry& e : right.entries) {
      nodes_[size_t(e.child)].parent = sibling;
    }
  }

  if (parent < 0) {
    // Root split: grow the tree by one level.
    int32_t new_root = int32_t(nodes_.size());
    nodes_.push_back(Node{});
    Node& root = nodes_[size_t(new_root)];
    root.is_leaf = false;
    Entry e1;
    e1.object = pivot1;
    e1.radius = r1;
    e1.child = node_index;
    Entry e2;
    e2.object = pivot2;
    e2.radius = r2;
    e2.child = sibling;
    root.entries = {e1, e2};
    nodes_[size_t(node_index)].parent = new_root;
    nodes_[size_t(sibling)].parent = new_root;
    root_ = new_root;
    return;
  }

  // Replace the parent's entry for this node and add the sibling's.
  Node& pnode = nodes_[size_t(parent)];
  nodes_[size_t(sibling)].parent = parent;
  // The parent's own pivot (for parent_distance of the new entries).
  size_t parent_pivot = 0;
  bool has_grandparent = pnode.parent >= 0;
  if (has_grandparent) {
    for (const Entry& ge : nodes_[size_t(pnode.parent)].entries) {
      if (ge.child == parent) {
        parent_pivot = ge.object;
        break;
      }
    }
  }
  for (Entry& pe : pnode.entries) {
    if (pe.child == node_index) {
      pe.object = pivot1;
      pe.radius = r1;
      pe.parent_distance =
          has_grandparent ? distance_(parent_pivot, pivot1) : 0.0;
      break;
    }
  }
  Entry se;
  se.object = pivot2;
  se.radius = r2;
  se.child = sibling;
  se.parent_distance =
      has_grandparent ? distance_(parent_pivot, pivot2) : 0.0;
  pnode.entries.push_back(se);
  if (pnode.entries.size() > options_.node_capacity) SplitNode(parent);
}

// Both searches run the shared budgeted best-first walker
// (core/best_first.h) on covering-ball lower bounds: a routing entry
// with pivot distance d and covering radius r cannot contain anything
// closer than d - r (minus prune_slack for near-metric distances).

std::vector<Neighbor> MTree::KnnSearch(const QueryDistanceFn& dq,
                                       size_t k,
                                       const SearchBudget& budget,
                                       SearchStats* stats) const {
  if (k == 0 || size_ == 0) return {};
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  KnnAccumulator acc(k);
  double scale = budget.pruning_scale();
  double slack = options_.prune_slack;
  BestFirstSearch(
      root_, &gauge, [&] { return acc.tau() * scale + slack; },
      [&] { return acc.tau() + slack; },
      [&](int32_t nd, double bound, Frontier* frontier) {
        const Node& n = nodes_[size_t(nd)];
        if (n.is_leaf) {
          ++st->leaves_visited;
          for (const Entry& e : n.entries) {
            if (!gauge.ChargeDistance()) return;
            acc.Offer(e.object, dq(e.object));
          }
          return;
        }
        for (const Entry& e : n.entries) {
          if (!gauge.ChargeDistance()) return;
          double d = dq(e.object);
          double dmin = std::max(0.0, d - e.radius - slack);
          frontier->Push(std::max(bound, dmin), d, e.child);
        }
      });
  return acc.Take();
}

std::vector<Neighbor> MTree::RangeSearch(const QueryDistanceFn& dq,
                                         double radius,
                                         const SearchBudget& budget,
                                         SearchStats* stats) const {
  std::vector<Neighbor> out;
  if (size_ == 0 || radius < 0.0) return out;
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  double limit = radius * budget.pruning_scale();
  double slack = options_.prune_slack;
  BestFirstSearch(
      root_, &gauge, [&] { return limit; }, [&] { return radius; },
      [&](int32_t nd, double bound, Frontier* frontier) {
        const Node& n = nodes_[size_t(nd)];
        if (n.is_leaf) {
          ++st->leaves_visited;
          for (const Entry& e : n.entries) {
            if (!gauge.ChargeDistance()) return;
            double d = dq(e.object);
            if (d <= radius) out.push_back(Neighbor{e.object, d});
          }
          return;
        }
        for (const Entry& e : n.entries) {
          if (!gauge.ChargeDistance()) return;
          double d = dq(e.object);
          double dmin = std::max(0.0, d - e.radius - slack);
          frontier->Push(std::max(bound, dmin), d, e.child);
        }
      });
  std::sort(out.begin(), out.end(), NeighborDistanceThenId);
  return out;
}

void MTree::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(options_.node_capacity);
  out->PutU64(options_.seed);
  out->PutDouble(options_.prune_slack);
  out->PutI32(root_);
  out->PutU64(size_);
  out->PutU64(nodes_.size());
  for (const Node& n : nodes_) {
    out->PutU8(n.is_leaf ? 1 : 0);
    out->PutI32(n.parent);
    out->PutU64(n.entries.size());
    for (const Entry& e : n.entries) {
      out->PutU64(e.object);
      out->PutDouble(e.parent_distance);
      out->PutDouble(e.radius);
      out->PutI32(e.child);
    }
  }
}

Result<MTree> MTree::LoadFrom(MetricDistanceFn distance,
                              uint64_t object_bound,
                              persist::ByteReader* in) {
  if (!distance) {
    return Status::InvalidArgument("distance oracle must be callable");
  }
  MTreeOptions options;
  SEMTREE_ASSIGN_OR_RETURN(options.node_capacity, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(options.seed, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(options.prune_slack, in->Double());
  if (options.node_capacity < 2) {
    return Status::Corruption("m-tree snapshot has bad node capacity");
  }
  MTree tree(std::move(distance), options);
  SEMTREE_ASSIGN_OR_RETURN(tree.root_, in->I32());
  SEMTREE_ASSIGN_OR_RETURN(tree.size_, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t node_count, in->U64());
  if (node_count == 0 || tree.root_ < 0 ||
      uint64_t(tree.root_) >= node_count) {
    return Status::Corruption("m-tree snapshot root out of range");
  }
  // 13 = serialized bytes of an empty node (flag, parent, entry count).
  SEMTREE_RETURN_NOT_OK(in->CheckCount(node_count, 13));
  tree.nodes_.clear();
  tree.nodes_.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Node n;
    SEMTREE_ASSIGN_OR_RETURN(uint8_t is_leaf, in->U8());
    n.is_leaf = is_leaf != 0;
    SEMTREE_ASSIGN_OR_RETURN(n.parent, in->I32());
    SEMTREE_ASSIGN_OR_RETURN(uint64_t entry_count, in->U64());
    // 28 = serialized bytes per entry.
    SEMTREE_RETURN_NOT_OK(in->CheckCount(entry_count, 28));
    n.entries.reserve(entry_count);
    for (uint64_t j = 0; j < entry_count; ++j) {
      Entry e;
      SEMTREE_ASSIGN_OR_RETURN(e.object, in->U64());
      SEMTREE_ASSIGN_OR_RETURN(e.parent_distance, in->Double());
      SEMTREE_ASSIGN_OR_RETURN(e.radius, in->Double());
      SEMTREE_ASSIGN_OR_RETURN(e.child, in->I32());
      if (e.object >= object_bound) {
        return Status::Corruption("m-tree entry object out of range");
      }
      if (!n.is_leaf &&
          (e.child < 0 || uint64_t(e.child) >= node_count)) {
        return Status::Corruption("m-tree routing entry malformed");
      }
      n.entries.push_back(e);
    }
    if (!n.is_leaf && n.entries.empty()) {
      return Status::Corruption("m-tree routing node has no entries");
    }
    tree.nodes_.push_back(std::move(n));
  }
  // Reject cyclic child links (Height() and the searches assume a
  // tree): every node may be entered at most once from root_.
  std::vector<bool> visited(node_count, false);
  std::vector<int32_t> stack = {tree.root_};
  while (!stack.empty()) {
    int32_t node = stack.back();
    stack.pop_back();
    if (visited[size_t(node)]) {
      return Status::Corruption("m-tree snapshot topology has a cycle");
    }
    visited[size_t(node)] = true;
    const Node& n = tree.nodes_[size_t(node)];
    if (!n.is_leaf) {
      for (const Entry& e : n.entries) stack.push_back(e.child);
    }
  }
  return tree;
}

size_t MTree::Height() const {
  size_t height = 0;
  int32_t node = root_;
  while (!nodes_[size_t(node)].is_leaf) {
    ++height;
    node = nodes_[size_t(node)].entries.front().child;
  }
  return height;
}

Status MTree::CheckInvariants() const {
  // Collect leaf objects per subtree and verify covering radii.
  size_t seen = 0;
  struct Frame {
    int32_t node;
    // Constraints from ancestors: (pivot object, radius).
    std::vector<std::pair<size_t, double>> covers;
  };
  std::vector<Frame> stack = {{root_, {}}};
  double slack = options_.prune_slack + 1e-9;
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const Node& n = nodes_[size_t(f.node)];
    if (n.is_leaf) {
      for (const Entry& e : n.entries) {
        ++seen;
        for (const auto& [pivot, radius] : f.covers) {
          if (distance_(pivot, e.object) > radius + slack) {
            return Status::Corruption(StringPrintf(
                "object %zu escapes covering radius of pivot %zu",
                e.object, pivot));
          }
        }
      }
      continue;
    }
    for (const Entry& e : n.entries) {
      if (e.child < 0 || size_t(e.child) >= nodes_.size()) {
        return Status::Corruption("routing entry with bad child");
      }
      if (nodes_[size_t(e.child)].parent != f.node) {
        return Status::Corruption("parent pointer mismatch");
      }
      Frame child{e.child, f.covers};
      child.covers.emplace_back(e.object, e.radius);
      stack.push_back(std::move(child));
    }
  }
  if (seen != size_) {
    return Status::Corruption(StringPrintf(
        "size_ is %zu but %zu objects reachable", size_, seen));
  }
  return Status::OK();
}

}  // namespace semtree

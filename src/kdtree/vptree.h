// Copyright 2026 The SemTree Authors
//
// A vantage-point tree over an arbitrary (near-)metric distance. This
// is the comparison baseline for SemTree's central design choice: the
// paper maps triples into a vector space with FastMap and indexes the
// vectors with a KD-tree; a VP-tree indexes the *original* distance
// directly, with no embedding error. The ablation bench pits the two
// against each other.
//
// Caveat: VP-tree pruning assumes the triangle inequality. The semantic
// distance of Eq. (1) can violate it mildly (see metric_audit.h), in
// which case the VP-tree's k-NN becomes slightly approximate; the
// `prune_slack` option widens the visit condition to compensate.

#ifndef SEMTREE_KDTREE_VPTREE_H_
#define SEMTREE_KDTREE_VPTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "core/point.h"  // Neighbor, SearchStats.
#include "core/query.h"  // SearchBudget.
#include "persist/wire.h"

namespace semtree {

/// Distance oracle over the indexed objects (by index 0..n-1).
using MetricDistanceFn = std::function<double(size_t, size_t)>;

/// Distance from the query object to an indexed object.
using QueryDistanceFn = std::function<double(size_t)>;

struct VpTreeOptions {
  /// Leaf bucket capacity.
  size_t bucket_size = 16;

  /// Seed for vantage-point selection.
  uint64_t seed = 42;

  /// Additive slack on the pruning conditions; raise above the worst
  /// observed triangle-inequality excess to regain exactness on
  /// near-metric distances (0 = textbook pruning).
  double prune_slack = 0.0;

  /// Worker threads for Build: 1 = serial (default), 0 = one per
  /// hardware thread, n = exactly n. Vantage picks are seeded per node
  /// span (core/bulk_build.h MixSeed), so the built tree is identical
  /// across all values. Values > 1 require the distance oracle to be
  /// safe to call from concurrent threads. Not persisted: a snapshot
  /// stores the built structure, and this knob never changes it.
  size_t build_threads = 1;
};

/// Static vantage-point tree (built once over n objects).
class VpTree {
 public:
  /// Builds the tree; the oracle must be symmetric with zero
  /// self-distance. Fails on n == 0 or a null oracle.
  static Result<VpTree> Build(size_t n, const MetricDistanceFn& distance,
                              const VpTreeOptions& options = {});

  /// K nearest indexed objects to the query under `budget`, sorted by
  /// (distance, id). `distance_to_query` is invoked lazily, only for
  /// objects the search actually visits — vantage-point probes and
  /// leaf scans both count against the budget's distance cap. The
  /// traversal is a best-first walk over metric ball bounds
  /// (core/best_first.h); an exact budget reproduces textbook VP-tree
  /// results, truncation is reported via `stats->truncated`.
  std::vector<Neighbor> KnnSearch(const QueryDistanceFn& distance_to_query,
                                  size_t k, const SearchBudget& budget,
                                  SearchStats* stats = nullptr) const;
  std::vector<Neighbor> KnnSearch(const QueryDistanceFn& distance_to_query,
                                  size_t k,
                                  SearchStats* stats = nullptr) const {
    return KnnSearch(distance_to_query, k, SearchBudget{}, stats);
  }

  /// All indexed objects within `radius` of the query, under the same
  /// budget semantics (members may be missed, never misreported).
  std::vector<Neighbor> RangeSearch(
      const QueryDistanceFn& distance_to_query, double radius,
      const SearchBudget& budget, SearchStats* stats = nullptr) const;
  std::vector<Neighbor> RangeSearch(
      const QueryDistanceFn& distance_to_query, double radius,
      SearchStats* stats = nullptr) const {
    return RangeSearch(distance_to_query, radius, SearchBudget{}, stats);
  }

  size_t size() const { return size_; }
  size_t NodeCount() const { return nodes_.size(); }
  size_t Depth() const;

  /// Serializes the built tree (options, nodes, buckets) so a load
  /// reproduces the exact vantage-point structure without re-running
  /// the randomized build (DESIGN.md §5).
  void SaveTo(persist::ByteWriter* out) const;
  static Result<VpTree> LoadFrom(persist::ByteReader* in);

 private:
  struct Node {
    bool is_leaf = true;
    size_t vantage = 0;      // Object index of the vantage point.
    double threshold = 0.0;  // Median distance to the vantage point.
    int32_t inside = -1;     // d(vantage, x) <= threshold.
    int32_t outside = -1;    // d(vantage, x) > threshold.
    std::vector<size_t> bucket;  // Leaf objects.
  };

  explicit VpTree(VpTreeOptions options) : options_(options) {}

  /// Phase-2 emission (core/bulk_build.h): turns the phase-1 plan into
  /// the node array in canonical pre-order (node, inside subtree,
  /// outside subtree — the historical recursion's allocation order).
  void BuildFromPlan(const struct VpPlanNode& root,
                     const std::vector<size_t>& objects);

  VpTreeOptions options_;
  std::vector<Node> nodes_;
  size_t size_ = 0;
};

}  // namespace semtree

#endif  // SEMTREE_KDTREE_VPTREE_H_

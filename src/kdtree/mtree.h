// Copyright 2026 The SemTree Authors
//
// An M-tree (Ciaccia, Patella & Zezula, VLDB 1997): a *dynamic*,
// balanced metric index. The paper's §III-B surveys it among the
// alternative structures ("R-tree, Kd-tree, X-tree, SS-tree, M-tree,
// Quadtree") before choosing the KD-tree; together with the static
// VP-tree (vptree.h) it completes the metric-baseline family used by
// the ablation benches: unlike SemTree it needs no FastMap embedding,
// and unlike the VP-tree it supports incremental insertion.
//
// Like every ball-decomposition index, pruning relies on the triangle
// inequality; `prune_slack` widens the bounds for the mildly
// non-metric semantic distance (see metric_audit.h).

#ifndef SEMTREE_KDTREE_MTREE_H_
#define SEMTREE_KDTREE_MTREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/point.h"     // Neighbor, SearchStats.
#include "kdtree/vptree.h"  // MetricDistanceFn / QueryDistanceFn.
#include "persist/wire.h"

namespace semtree {

struct MTreeOptions {
  /// Maximum entries per node before it splits.
  size_t node_capacity = 16;

  /// Seed for split-promotion sampling.
  uint64_t seed = 42;

  /// Additive slack on pruning bounds (0 = textbook; raise above the
  /// worst triangle-inequality excess for near-metric distances).
  double prune_slack = 0.0;
};

/// Dynamic M-tree over objects 0..n-1 known through a distance oracle.
///
/// The oracle is captured at construction and must stay valid for the
/// tree's lifetime; `Insert(i)` may invoke it against previously
/// inserted objects.
class MTree {
 public:
  /// Creates an empty tree. The oracle must be symmetric with zero
  /// self-distance.
  static Result<MTree> Create(MetricDistanceFn distance,
                              MTreeOptions options = {});

  /// Inserts object `index`. Objects may be inserted in any order;
  /// duplicate indices are allowed (multiset semantics).
  Status Insert(size_t index);

  /// K nearest objects to the query under `budget`, sorted by
  /// (distance, id). `distance_to_query` is evaluated lazily; routing
  /// pivot probes and leaf scans both count against the budget's
  /// distance cap. The traversal was already best-first on covering-
  /// ball lower bounds — it now runs on the shared budgeted walker
  /// (core/best_first.h), so exact budgets reproduce the classic
  /// result and spent budgets truncate (stats->truncated) having
  /// visited the closest balls first.
  std::vector<Neighbor> KnnSearch(const QueryDistanceFn& distance_to_query,
                                  size_t k, const SearchBudget& budget,
                                  SearchStats* stats = nullptr) const;
  std::vector<Neighbor> KnnSearch(const QueryDistanceFn& distance_to_query,
                                  size_t k,
                                  SearchStats* stats = nullptr) const {
    return KnnSearch(distance_to_query, k, SearchBudget{}, stats);
  }

  /// All objects within `radius` of the query, same budget semantics
  /// (members may be missed, never misreported).
  std::vector<Neighbor> RangeSearch(
      const QueryDistanceFn& distance_to_query, double radius,
      const SearchBudget& budget, SearchStats* stats = nullptr) const;
  std::vector<Neighbor> RangeSearch(
      const QueryDistanceFn& distance_to_query, double radius,
      SearchStats* stats = nullptr) const {
    return RangeSearch(distance_to_query, radius, SearchBudget{}, stats);
  }

  size_t size() const { return size_; }
  size_t NodeCount() const { return nodes_.size(); }
  size_t Height() const;

  /// Structural audit: every object lies within the covering radius of
  /// each ancestor routing entry (up to prune_slack), and entry counts
  /// reconcile.
  Status CheckInvariants() const;

  /// Serializes the tree structure — options, nodes, routing entries,
  /// cached distances — for the v2 snapshot (DESIGN.md §5).
  void SaveTo(persist::ByteWriter* out) const;

  /// Structure-preserving load. The caller supplies the distance
  /// oracle (it cannot be persisted) and the exclusive upper bound on
  /// valid object indices; the split-promotion Rng restarts from the
  /// saved seed, which only influences future splits, never query
  /// results.
  static Result<MTree> LoadFrom(MetricDistanceFn distance,
                                uint64_t object_bound,
                                persist::ByteReader* in);

 private:
  struct Entry {
    size_t object = 0;          // Pivot (routing) or data object (leaf).
    double parent_distance = 0.0;  // d(object, parent pivot).
    double radius = 0.0;        // Covering radius (routing only).
    int32_t child = -1;         // Subtree (routing only).
  };
  struct Node {
    bool is_leaf = true;
    int32_t parent = -1;        // Node index; -1 for the root.
    std::vector<Entry> entries;
  };

  explicit MTree(MetricDistanceFn distance, MTreeOptions options)
      : distance_(std::move(distance)), options_(options), rng_(options.seed) {
    nodes_.push_back(Node{});  // Empty leaf root.
  }

  int32_t ChooseLeaf(size_t object);
  void SplitNode(int32_t node);
  void UpdateRadiiUpward(int32_t node, size_t object);
  double EntryDistance(const Entry& e, size_t object) const {
    return distance_(e.object, object);
  }

  MetricDistanceFn distance_;
  MTreeOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  int32_t root_ = 0;
  size_t size_ = 0;
};

}  // namespace semtree

#endif  // SEMTREE_KDTREE_MTREE_H_

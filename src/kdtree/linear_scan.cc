// Copyright 2026 The SemTree Authors

#include "kdtree/linear_scan.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/best_first.h"
#include "core/kernels.h"
#include "persist/snapshot.h"

namespace semtree {

Status LinearScanIndex::Insert(const std::vector<double>& coords,
                               PointId id) {
  if (coords.size() != store_.dimensions()) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, index has %zu",
                     coords.size(), store_.dimensions()));
  }
  SEMTREE_RETURN_NOT_OK(CheckFiniteCoords(coords));
  slots_.push_back(store_.Append(coords.data(), id));
  BumpEpoch();
  return Status::OK();
}

Status LinearScanIndex::Remove(const std::vector<double>& coords,
                               PointId id) {
  if (coords.size() != store_.dimensions()) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, index has %zu",
                     coords.size(), store_.dimensions()));
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    PointStore::Slot slot = slots_[i];
    if (store_.IdAt(slot) == id &&
        std::equal(coords.begin(), coords.end(), store_.CoordsAt(slot))) {
      slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
      store_.Release(slot);
      BumpEpoch();
      return Status::OK();
    }
  }
  return Status::NotFound(StringPrintf(
      "point %llu not stored at the given coordinates",
      (unsigned long long)id));
}

void LinearScanIndex::SaveTo(persist::ByteWriter* out) const {
  out->PutU64(store_.dimensions());
  out->PutU64(epoch());
  persist::WritePointStore(store_, out);
  out->PutU32Array(slots_);
}

Result<LinearScanIndex> LinearScanIndex::LoadFrom(
    persist::ByteReader* in) {
  SEMTREE_ASSIGN_OR_RETURN(uint64_t dimensions, in->U64());
  SEMTREE_ASSIGN_OR_RETURN(uint64_t epoch, in->U64());
  LinearScanIndex index(dimensions);
  SEMTREE_ASSIGN_OR_RETURN(index.store_, persist::ReadPointStore(in));
  if (index.store_.dimensions() != dimensions) {
    return Status::Corruption("linear-scan arena dimensionality mismatch");
  }
  SEMTREE_ASSIGN_OR_RETURN(index.slots_, in->U32Array());
  if (index.slots_.size() != index.store_.size()) {
    return Status::Corruption("linear-scan slot list disagrees with arena");
  }
  for (PointStore::Slot s : index.slots_) {
    if (s >= index.store_.slot_count()) {
      return Status::Corruption("linear-scan slot out of range");
    }
  }
  index.RestoreEpoch(epoch);
  return index;
}

std::vector<Neighbor> LinearScanIndex::KnnSearch(
    const std::vector<double>& query, size_t k, const SearchBudget& budget,
    SearchStats* stats) const {
  std::vector<Neighbor> all;
  // Wrong-arity and non-finite queries return empty rather than
  // reading out of bounds (the raw-pointer kernel consumes exactly
  // dimensions() doubles).
  if (query.size() != store_.dimensions() || !AllFinite(query)) {
    return all;
  }
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  all.reserve(slots_.size());
  size_t dim = store_.dimensions();
  if (gauge.ChargeNode()) {
    ++st->leaves_visited;
    size_t granted = gauge.ChargeDistances(slots_.size());
    BatchScan(
        metric(), query.data(), dim, granted,
        [&](size_t j) { return store_.CoordsAt(slots_[j]); },
        [&](size_t j, double d) {
          all.push_back(Neighbor{store_.IdAt(slots_[j]), d});
        });
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    NeighborDistanceThenId);
  all.resize(take);
  return all;
}

std::vector<Neighbor> LinearScanIndex::RangeSearch(
    const std::vector<double>& query, double radius,
    const SearchBudget& budget, SearchStats* stats) const {
  std::vector<Neighbor> out;
  // !(radius >= 0) also rejects a NaN radius.
  if (!(radius >= 0.0) || query.size() != store_.dimensions() ||
      !AllFinite(query)) {
    return out;
  }
  SearchStats local;
  SearchStats* st = stats ? stats : &local;
  BudgetGauge gauge(budget, st);
  size_t dim = store_.dimensions();
  if (gauge.ChargeNode()) {
    ++st->leaves_visited;
    size_t granted = gauge.ChargeDistances(slots_.size());
    BatchScan(
        metric(), query.data(), dim, granted,
        [&](size_t j) { return store_.CoordsAt(slots_[j]); },
        [&](size_t j, double d) {
          if (d <= radius) out.push_back(Neighbor{store_.IdAt(slots_[j]), d});
        });
  }
  std::sort(out.begin(), out.end(), NeighborDistanceThenId);
  return out;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "kdtree/linear_scan.h"

#include <algorithm>

#include "common/string_util.h"

namespace semtree {

namespace {
bool ByDistanceThenId(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}
}  // namespace

Status LinearScanIndex::Insert(const std::vector<double>& coords,
                               PointId id) {
  if (coords.size() != dimensions_) {
    return Status::InvalidArgument(
        StringPrintf("point has %zu dimensions, index has %zu",
                     coords.size(), dimensions_));
  }
  points_.push_back(KdPoint{coords, id});
  return Status::OK();
}

std::vector<Neighbor> LinearScanIndex::KnnSearch(
    const std::vector<double>& query, size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(points_.size());
  for (const KdPoint& p : points_) {
    all.push_back(Neighbor{p.id, EuclideanDistance(query, p.coords)});
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    ByDistanceThenId);
  all.resize(take);
  return all;
}

std::vector<Neighbor> LinearScanIndex::RangeSearch(
    const std::vector<double>& query, double radius) const {
  std::vector<Neighbor> out;
  if (radius < 0.0) return out;
  for (const KdPoint& p : points_) {
    double d = EuclideanDistance(query, p.coords);
    if (d <= radius) out.push_back(Neighbor{p.id, d});
  }
  std::sort(out.begin(), out.end(), ByDistanceThenId);
  return out;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// A sharded LRU cache of query results. Entries are keyed on the full
// query (coordinates + type + k/radius) *and* the index epoch, so a
// mutation — which bumps the epoch (core/spatial_index.h) — implicitly
// invalidates every earlier entry: stale results can never be returned,
// they simply stop matching and age out of the LRU. Sharding by key
// hash keeps concurrent clients from serializing on one mutex.

#ifndef SEMTREE_ENGINE_RESULT_CACHE_H_
#define SEMTREE_ENGINE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "core/kernels.h"
#include "core/point.h"
#include "core/query.h"

namespace semtree {

/// Full identity of a cached query result. Two keys are equal only if
/// every field — including each coordinate and the search budget —
/// matches, so a hash collision can never surface a wrong result and a
/// budgeted (approximate) result can never be served for an exact
/// query or vice versa: the budget is part of the key, not a side
/// channel.
struct CacheKey {
  QueryType type = QueryType::kKnn;
  /// The index's Metric: a result computed under one geometry must
  /// never be served under another (set_metric does not bump the
  /// epoch, so the metric needs its own key field).
  Metric metric = Metric::kL2;
  uint64_t param_bits = 0;  ///< k, or the radius's bit pattern.
  uint64_t epoch = 0;       ///< Index version the result was computed at.
  uint64_t budget_distances = 0;  ///< SearchBudget caps (0 = unlimited);
  uint64_t budget_nodes = 0;      ///< exact queries keep all three zero.
  uint64_t epsilon_bits = 0;      ///< Epsilon's bit pattern, -0.0 → 0.0.
  std::vector<double> coords;

  bool operator==(const CacheKey& o) const {
    return type == o.type && metric == o.metric &&
           param_bits == o.param_bits && epoch == o.epoch &&
           budget_distances == o.budget_distances &&
           budget_nodes == o.budget_nodes &&
           epsilon_bits == o.epsilon_bits && coords == o.coords;
  }

  static CacheKey Make(const SpatialQuery& query, uint64_t epoch,
                       Metric metric = Metric::kL2);

  /// Same, but keyed under `budget` instead of `query.budget` — for
  /// callers that resolve an *effective* budget (e.g. the engine
  /// substituting the index's default for unspecified ones). The key
  /// must always reflect the budget the search actually ran under.
  static CacheKey Make(const SpatialQuery& query, uint64_t epoch,
                       const SearchBudget& budget,
                       Metric metric = Metric::kL2);
};

/// Sharded LRU map from CacheKey to a result vector.
///
/// Thread-safe; each shard is guarded by its own mutex and evicts
/// least-recently-used entries beyond its capacity share.
class ShardedResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  /// `total_capacity` entries spread over `shards` shards (both
  /// clamped to at least 1).
  ShardedResultCache(size_t shards, size_t total_capacity);

  /// Copies the cached result into `*out` and returns true on a hit
  /// (refreshing the entry's LRU position); returns false on a miss.
  /// `truncated`, if given, receives the flag the result was stored
  /// with, so a cache hit replays the original search's approximation
  /// verdict.
  bool Lookup(const CacheKey& key, std::vector<Neighbor>* out,
              bool* truncated = nullptr);

  /// Stores (or refreshes) an entry, evicting the shard's LRU tail
  /// beyond capacity. `truncated` records whether the result was
  /// produced by a search that stopped short of proving exactness
  /// (SearchStats::truncated); it rides along with the value.
  void Put(const CacheKey& key, std::vector<Neighbor> value,
           bool truncated = false);

  /// Drops every entry and resets the hit/miss/insertion/eviction
  /// counters — after a Clear (e.g. a warm start) the cache reports
  /// like a freshly constructed one.
  void Clear();

  /// Per-version invalidation for RCU targets (DESIGN.md §11): drops
  /// exactly the entries keyed at an epoch below `min_epoch` — the
  /// versions no pinned reader can still observe
  /// (SpatialIndex::oldest_live_epoch) — and leaves every other
  /// version's entries warm. Counted as evictions. Returns the number
  /// dropped. With a non-RCU target the epoch-in-key scheme already
  /// ages stale entries out; this is for callers that want the memory
  /// back eagerly.
  size_t EvictEpochsBelow(uint64_t min_epoch);

  Stats stats() const;

  /// Live entries across all shards.
  size_t size() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  struct Entry {
    CacheKey key;
    std::vector<Neighbor> value;
    bool truncated = false;
  };
  struct Shard {
    Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);  // Front = most recently used.
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> map
        GUARDED_BY(mu);
  };

  Shard& ShardFor(const CacheKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t capacity_per_shard_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace semtree

#endif  // SEMTREE_ENGINE_RESULT_CACHE_H_

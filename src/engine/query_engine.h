// Copyright 2026 The SemTree Authors
//
// QueryEngine: the concurrent batch query layer (see DESIGN.md §1).
// Clients hand it batches of mixed k-NN/range queries; it fans them out
// over a worker pool, consults a sharded LRU result cache keyed on
// (query, parameters, index epoch), and aggregates per-batch search
// work and latency percentiles. Two targets are supported behind the
// same API: any sequential SpatialIndex backend (queries run on worker
// threads under a reader lock, mutations take the writer lock), and the
// distributed SemTree (each worker ships its share of the batch as one
// coalesced BatchSearch protocol run). Batched results are identical to
// issuing every query sequentially against the target.

#ifndef SEMTREE_ENGINE_QUERY_ENGINE_H_
#define SEMTREE_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/query.h"
#include "core/spatial_index.h"
#include "engine/result_cache.h"
#include "semtree/semtree.h"

namespace semtree {

struct QueryEngineOptions {
  /// Worker threads executing batch queries.
  size_t threads = 4;

  /// Result-cache shards (1 disables sharding, not caching).
  size_t cache_shards = 8;

  /// Total cached results across shards; 0 disables the cache.
  size_t cache_capacity = 4096;

  /// Smallest number of queries handed to one worker task; batches
  /// smaller than threads * this run on fewer workers.
  size_t min_queries_per_task = 8;
};

/// Outcome of one query of a batch.
struct QueryOutcome {
  std::vector<Neighbor> neighbors;  ///< Sorted by (distance, id).
  bool from_cache = false;
  /// The query's SearchBudget ran out or its epsilon pruning bit:
  /// `neighbors` may be missing members (distances are still true).
  /// Always false for exact budgets. Cached results replay the flag
  /// the original computation produced (the budget is part of the
  /// cache key, so a truncated result can never satisfy an exact
  /// query).
  bool truncated = false;
  double latency_us = 0.0;  ///< Distributed target: its sub-batch's time.
};

/// Latency distribution over one batch, microseconds.
struct LatencySummary {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Aggregated counters for one batch.
struct BatchStats {
  size_t queries = 0;
  size_t knn_queries = 0;
  size_t range_queries = 0;
  size_t cache_hits = 0;
  size_t truncated_queries = 0;   ///< Outcomes flagged truncated.
  SearchStats search;             ///< Summed (sequential targets only).
  size_t partitions_visited = 0;  ///< Summed (distributed target only).
  LatencySummary latency;
  double wall_us = 0.0;  ///< Whole-batch wall time.
};

struct BatchResult {
  std::vector<QueryOutcome> outcomes;  ///< Aligned with the input batch.
  BatchStats stats;
};

/// Concurrent batch executor over one query target.
///
/// Thread-safe: any thread may call Run/Insert/Remove concurrently.
/// The engine does not own its target; the target must outlive it.
class QueryEngine {
 public:
  /// Engine over a sequential backend. The engine serializes its own
  /// mutations against its own queries with a reader/writer lock; the
  /// index must not be mutated behind the engine's back while batches
  /// run. Exception: an index reporting lock_free_reads() (the RCU
  /// wrapper, core/versioned_index.h) is driven without any engine
  /// lock — queries and mutations proceed concurrently, the cache is
  /// keyed at the version each search actually pinned
  /// (SearchStats::version_epoch), and mutations evict only the cache
  /// entries of versions every reader has drained
  /// (oldest_live_epoch + ShardedResultCache::EvictEpochsBelow).
  explicit QueryEngine(SpatialIndex* index, QueryEngineOptions options = {});

  /// Engine over the distributed tree (internally thread-safe, so no
  /// engine-side locking; mutations go through Insert/Remove below so
  /// the cache epoch advances).
  explicit QueryEngine(SemTree* tree, QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes the batch; outcomes are positionally aligned with
  /// `batch`. Each query runs under its own SearchBudget
  /// (SpatialQuery::budget); sequential-target queries whose budget is
  /// unspecified (exact) inherit the index's default_budget, so a
  /// warm-restarted server keeps serving at its persisted
  /// approximation level. Budgeted outcomes carry `truncated` when
  /// they may be missing members, and the *effective* budget is part
  /// of the result-cache key, so a budgeted and an exact run of the
  /// same query never share a cache slot. Fails up front on a
  /// dimensionality mismatch, negative radius or negative/NaN epsilon,
  /// executing nothing.
  Result<BatchResult> Run(const std::vector<SpatialQuery>& batch);

  /// Executes one query on the calling thread — the per-op hook the
  /// open-loop workload driver (workload/driver.h, DESIGN.md §9)
  /// issues through. Semantically a one-element Run() (same
  /// validation, default-budget inheritance, caching and truncation
  /// replay), but with no worker fan-out, no batch aggregation and no
  /// per-call allocation beyond the outcome itself, so driving the
  /// engine op-by-op does not perturb the batch hot path.
  Result<QueryOutcome> RunOne(const SpatialQuery& query);

  /// Inserts through to the target and advances the cache epoch.
  Status Insert(const std::vector<double>& coords, PointId id);

  /// Removes through to the target and advances the cache epoch.
  Status Remove(const std::vector<double>& coords, PointId id);

  /// Saves the sequential target to a v2 snapshot (persist/, DESIGN.md
  /// §5) under the reader/writer lock, so the snapshot captures one
  /// consistent index state even while batches run. Distributed
  /// targets persist through SaveIndexSnapshot instead.
  Status SaveSnapshot(const std::string& path);

  /// A warm-started engine plus the index it owns serving it.
  struct WarmStarted {
    std::unique_ptr<SpatialIndex> index;  ///< Must outlive `engine`.
    std::unique_ptr<QueryEngine> engine;
  };

  /// Stands a fresh engine up from a SaveSnapshot file: the index
  /// loads structure-preserving (including its default SearchBudget —
  /// the restarted engine keeps the saved approximation tuning for
  /// budget-less callers), the engine resumes at the saved index
  /// epoch, and the cache starts empty with zeroed stats.
  static Result<WarmStarted> WarmStart(const std::string& path,
                                       QueryEngineOptions options = {});

  /// Current cache-key epoch (the target's for sequential backends,
  /// engine-tracked for the distributed tree).
  uint64_t epoch() const;

  size_t dimensions() const;
  size_t num_threads() const { return pool_.num_threads(); }
  bool cache_enabled() const { return cache_ != nullptr; }
  ShardedResultCache::Stats cache_stats() const;

 private:
  struct TaskOutput;  // Per-worker partial aggregates.

  Status ValidateOne(const SpatialQuery& query, size_t index) const;
  Status Validate(const std::vector<SpatialQuery>& batch) const;
  // One query against the lock-free (RCU) target: no index_mu_, cache
  // fills re-keyed at the version the search pinned.
  void RunOneUnsynced(const SpatialQuery& q, QueryOutcome* o,
                      TaskOutput* out);
  // After a lock-free mutation: evict drained versions' cache entries
  // once per oldest_live_epoch advance.
  void MaybeEvictDrainedVersions();
  // Spans address `batch[lo..hi)` through a raw pointer so RunOne can
  // execute a single caller-owned query without materializing a batch.
  void RunLocalSpan(const SpatialQuery* batch, size_t lo, size_t hi,
                    std::vector<QueryOutcome>* outcomes, TaskOutput* out);
  Status RunDistributedSpan(const SpatialQuery* batch, size_t lo,
                            size_t hi,
                            std::vector<QueryOutcome>* outcomes,
                            TaskOutput* out);
  void FinalizeStats(std::vector<TaskOutput>& parts, BatchResult* result);

  // Exactly one target is non-null. The pointer itself is set once in
  // the constructor; what index_mu_ guards is the *pointee* — searches
  // dereference under the shared side, mutations under the exclusive
  // side.
  SpatialIndex* index_ PT_GUARDED_BY(index_mu_) = nullptr;
  // Set (to the same index) when the target reports lock_free_reads():
  // its own RCU machinery replaces index_mu_, so accesses through this
  // alias are deliberately unannotated — that is the point.
  SpatialIndex* unsynced_index_ = nullptr;
  SemTree* tree_ = nullptr;
  QueryEngineOptions options_;
  // Cached at construction so per-query validation (the hottest
  // read-only path) never touches index_mu_.
  size_t dims_ = 0;
  ThreadPool pool_;
  std::unique_ptr<ShardedResultCache> cache_;  // Null when disabled.

  // Sequential target: queries take the lock shared, mutations
  // exclusive, so a search never observes a half-applied insert.
  // Mutable: const observers (epoch) still need the reader side.
  mutable SharedMutex index_mu_;

  // Distributed target: SemTree has no epoch of its own; the engine
  // versions its mutations here.
  std::atomic<uint64_t> tree_epoch_{0};

  // Lock-free target: highest oldest_live_epoch the cache has been
  // swept below already, so concurrent writers do one sweep per
  // advance instead of one per mutation.
  std::atomic<uint64_t> evict_floor_{0};
};

}  // namespace semtree

#endif  // SEMTREE_ENGINE_QUERY_ENGINE_H_

// Copyright 2026 The SemTree Authors

#include "engine/result_cache.h"

#include <bit>

namespace semtree {

namespace {

uint64_t DoubleBits(double d) { return std::bit_cast<uint64_t>(d); }

// 64-bit FNV-1a style mixing; collisions only cost a shard-placement
// imbalance or a map probe — equality is always verified on the full
// key.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;
  return h;
}

}  // namespace

CacheKey CacheKey::Make(const SpatialQuery& query, uint64_t epoch,
                        Metric metric) {
  return Make(query, epoch, query.budget, metric);
}

CacheKey CacheKey::Make(const SpatialQuery& query, uint64_t epoch,
                        const SearchBudget& budget, Metric metric) {
  CacheKey key;
  key.type = query.type;
  key.metric = metric;
  // Normalize the radius: -0.0 and 0.0 compare equal and bound the
  // same result set, but their bit patterns differ — without this a
  // negative-zero radius would miss (and duplicate) the 0.0 entry.
  double radius = query.radius == 0.0 ? 0.0 : query.radius;
  key.param_bits = query.type == QueryType::kKnn
                       ? static_cast<uint64_t>(query.k)
                       : DoubleBits(radius);
  key.epoch = epoch;
  // The budget is part of the result's identity: a truncated result
  // must never be served for an exact query (or for a different
  // budget). Epsilon gets the same -0.0 normalization as the radius.
  key.budget_distances = budget.max_distance_computations;
  key.budget_nodes = budget.max_nodes_visited;
  double epsilon = budget.epsilon == 0.0 ? 0.0 : budget.epsilon;
  key.epsilon_bits = DoubleBits(epsilon);
  // Same normalization for coordinates: operator== treats -0.0 and
  // 0.0 as equal keys, so their hashes must agree as well.
  key.coords = query.coords;
  for (double& c : key.coords) {
    if (c == 0.0) c = 0.0;
  }
  return key;
}

size_t ShardedResultCache::KeyHash::operator()(const CacheKey& key) const {
  uint64_t h = 0xcbf29ce484222325ull;
  h = Mix(h, static_cast<uint64_t>(key.type));
  h = Mix(h, static_cast<uint64_t>(key.metric));
  h = Mix(h, key.param_bits);
  h = Mix(h, key.epoch);
  h = Mix(h, key.budget_distances);
  h = Mix(h, key.budget_nodes);
  h = Mix(h, key.epsilon_bits);
  for (double c : key.coords) h = Mix(h, DoubleBits(c));
  return static_cast<size_t>(h);
}

ShardedResultCache::ShardedResultCache(size_t shards,
                                       size_t total_capacity) {
  if (shards < 1) shards = 1;
  if (total_capacity < shards) total_capacity = shards;
  capacity_per_shard_ = total_capacity / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedResultCache::Shard& ShardedResultCache::ShardFor(
    const CacheKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

bool ShardedResultCache::Lookup(const CacheKey& key,
                                std::vector<Neighbor>* out,
                                bool* truncated) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->value;
  if (truncated != nullptr) *truncated = it->second->truncated;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardedResultCache::Put(const CacheKey& key,
                             std::vector<Neighbor> value, bool truncated) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->value = std::move(value);
    it->second->truncated = truncated;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value), truncated});
  shard.map.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedResultCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
  // Reset the counters too: a cleared cache reporting the old
  // process's hits/misses would skew every post-warm-start hit-rate
  // computation.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

size_t ShardedResultCache::EvictEpochsBelow(uint64_t min_epoch) {
  size_t dropped = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.epoch < min_epoch) {
        shard->map.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

ShardedResultCache::Stats ShardedResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

size_t ShardedResultCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace semtree

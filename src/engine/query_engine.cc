// Copyright 2026 The SemTree Authors

#include "engine/query_engine.h"

#include <algorithm>
#include <future>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "persist/index_snapshot.h"

namespace semtree {

// Partial aggregates of one worker task. Tasks write disjoint outcome
// spans and their own TaskOutput, so the fan-out needs no locking.
struct QueryEngine::TaskOutput {
  size_t cache_hits = 0;
  size_t truncated = 0;
  SearchStats search;
  size_t partitions_visited = 0;
  std::vector<double> latencies_us;
  Status status;
};

namespace {

size_t ClampThreads(size_t threads) { return threads < 1 ? 1 : threads; }

void Accumulate(const SearchStats& from, SearchStats* into) {
  into->nodes_visited += from.nodes_visited;
  into->leaves_visited += from.leaves_visited;
  into->points_examined += from.points_examined;
  into->truncated = into->truncated || from.truncated;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

QueryEngine::QueryEngine(SpatialIndex* index, QueryEngineOptions options)
    : index_(index),
      options_(options),
      dims_(index->dimensions()),
      pool_(ClampThreads(options.threads)) {
  // An RCU target synchronizes its own readers against its writer
  // (core/versioned_index.h); taking index_mu_ on top would reintroduce
  // exactly the writer-stalls-every-reader coupling it exists to
  // remove. Decided once here: lock_free_reads() is a static property
  // of the backend, not of any one call.
  if (index->lock_free_reads()) unsynced_index_ = index;
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ShardedResultCache>(options_.cache_shards,
                                                  options_.cache_capacity);
  }
}

QueryEngine::QueryEngine(SemTree* tree, QueryEngineOptions options)
    : tree_(tree),
      options_(options),
      dims_(tree->options().dimensions),
      pool_(ClampThreads(options.threads)) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ShardedResultCache>(options_.cache_shards,
                                                  options_.cache_capacity);
  }
}

size_t QueryEngine::dimensions() const { return dims_; }

uint64_t QueryEngine::epoch() const {
  if (unsynced_index_ != nullptr) return unsynced_index_->epoch();
  if (index_ != nullptr) {
    SharedReaderLock lock(index_mu_);
    return index_->epoch();
  }
  // Fold in the tree's rebalance epoch: it is bumped at the start AND
  // end of every structural rebalance step (odd mid-step), so entries
  // cached against routing that a split/merge/migration is rewriting
  // can never be served once the step lands — the combined epoch has
  // already moved on. Both counters are monotone, so the sum is too.
  return tree_epoch_.load(std::memory_order_acquire) +
         tree_->rebalance_epoch();
}

ShardedResultCache::Stats QueryEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : ShardedResultCache::Stats{};
}

Status QueryEngine::ValidateOne(const SpatialQuery& query,
                                size_t index) const {
  if (query.coords.size() != dimensions()) {
    return Status::InvalidArgument(StringPrintf(
        "query %zu has %zu dimensions, target has %zu", index,
        query.coords.size(), dimensions()));
  }
  if (!AllFinite(query.coords)) {
    return Status::InvalidArgument(StringPrintf(
        "query %zu has non-finite (NaN/Inf) coordinates", index));
  }
  // !(radius >= 0) also rejects NaN, which would defeat every
  // pruning comparison.
  if (query.type == QueryType::kRange && !(query.radius >= 0.0)) {
    return Status::InvalidArgument(
        StringPrintf("query %zu has a negative or NaN radius", index));
  }
  // NaN fails both comparisons, so it is rejected here too.
  if (!(query.budget.epsilon >= 0.0)) {
    return Status::InvalidArgument(StringPrintf(
        "query %zu has a negative or NaN budget epsilon", index));
  }
  return Status::OK();
}

Status QueryEngine::Validate(const std::vector<SpatialQuery>& batch) const {
  for (size_t i = 0; i < batch.size(); ++i) {
    SEMTREE_RETURN_NOT_OK(ValidateOne(batch[i], i));
  }
  return Status::OK();
}

void QueryEngine::RunOneUnsynced(const SpatialQuery& q, QueryOutcome* o,
                                 TaskOutput* out) {
  const SearchBudget& budget =
      q.budget.exact() ? unsynced_index_->default_budget() : q.budget;
  CacheKey key;
  bool hit = false;
  if (cache_ != nullptr) {
    key = CacheKey::Make(q, unsynced_index_->epoch(), budget,
                         unsynced_index_->metric());
    hit = cache_->Lookup(key, &o->neighbors, &o->truncated);
  }
  if (hit) {
    o->from_cache = true;
    ++out->cache_hits;
  } else {
    SearchStats sstats;
    o->neighbors =
        q.type == QueryType::kKnn
            ? unsynced_index_->KnnSearch(q.coords, q.k, budget, &sstats)
            : unsynced_index_->RangeSearch(q.coords, q.radius, budget,
                                           &sstats);
    o->truncated = sstats.truncated;
    Accumulate(sstats, &out->search);
    if (cache_ != nullptr) {
      // The probe key carried the live epoch, but a concurrent writer
      // may have published between probe and pin — or the pin may
      // trail a publish the probe already saw. Either way the honest
      // key is the version the search actually ran against, which the
      // RCU wrapper reports back; filling under any other epoch would
      // let a reader pinned to version V surface V+1's results.
      key.epoch = sstats.version_epoch;
      cache_->Put(key, o->neighbors, o->truncated);
    }
  }
  if (o->truncated) ++out->truncated;
}

void QueryEngine::RunLocalSpan(const SpatialQuery* batch, size_t lo,
                               size_t hi,
                               std::vector<QueryOutcome>* outcomes,
                               TaskOutput* out) {
  for (size_t i = lo; i < hi; ++i) {
    const SpatialQuery& q = batch[i];
    QueryOutcome& o = (*outcomes)[i];
    Stopwatch sw;
    if (unsynced_index_ != nullptr) {
      RunOneUnsynced(q, &o, out);
    } else {
      // Shared lock: the epoch read, cache probe and search see one
      // consistent index state even while another thread mutates
      // through Insert/Remove (which take the lock exclusively).
      SharedReaderLock lock(index_mu_);
      // Queries with an unspecified (exact) budget inherit the
      // index's default — that is how a warm-restarted server keeps
      // serving at its persisted approximation level. An explicit
      // per-query budget always wins.
      const SearchBudget& budget =
          q.budget.exact() ? index_->default_budget() : q.budget;
      CacheKey key;
      bool hit = false;
      if (cache_ != nullptr) {
        // The key carries the *effective* budget, so a truncated
        // result can never be served where an exact one was computed,
        // and retuning the default re-keys subsequent queries.
        key = CacheKey::Make(q, index_->epoch(), budget,
                             index_->metric());
        hit = cache_->Lookup(key, &o.neighbors, &o.truncated);
      }
      if (hit) {
        o.from_cache = true;
        ++out->cache_hits;
      } else {
        SearchStats sstats;
        o.neighbors =
            q.type == QueryType::kKnn
                ? index_->KnnSearch(q.coords, q.k, budget, &sstats)
                : index_->RangeSearch(q.coords, q.radius, budget,
                                      &sstats);
        o.truncated = sstats.truncated;
        Accumulate(sstats, &out->search);
        if (cache_ != nullptr) cache_->Put(key, o.neighbors, o.truncated);
      }
      if (o.truncated) ++out->truncated;
    }
    o.latency_us = sw.ElapsedMicros();
    out->latencies_us.push_back(o.latency_us);
  }
}

Status QueryEngine::RunDistributedSpan(
    const SpatialQuery* batch, size_t lo, size_t hi,
    std::vector<QueryOutcome>* outcomes, TaskOutput* out) {
  Stopwatch sw;
  // Mutation epoch + rebalance epoch (see epoch()): read once per
  // span, so a rebalance step landing mid-span invalidates both this
  // span's lookups and its stores.
  uint64_t ep = tree_epoch_.load(std::memory_order_acquire) +
                tree_->rebalance_epoch();

  // Probe the cache first; only the misses ship as this worker's
  // coalesced protocol run.
  std::vector<size_t> miss;
  miss.reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) {
    QueryOutcome& o = (*outcomes)[i];
    if (cache_ != nullptr &&
        cache_->Lookup(CacheKey::Make(batch[i], ep), &o.neighbors,
                       &o.truncated)) {
      o.from_cache = true;
      ++out->cache_hits;
      if (o.truncated) ++out->truncated;
    } else {
      miss.push_back(i);
    }
  }

  if (!miss.empty()) {
    std::vector<SpatialQuery> sub;
    sub.reserve(miss.size());
    for (size_t i : miss) sub.push_back(batch[i]);
    DistributedSearchStats dstats;
    std::vector<uint8_t> truncated;
    auto results = tree_->BatchSearch(sub, &dstats, &truncated);
    if (!results.ok()) return results.status();
    out->partitions_visited += dstats.partitions_visited;
    for (size_t j = 0; j < miss.size(); ++j) {
      QueryOutcome& o = (*outcomes)[miss[j]];
      o.neighbors = std::move((*results)[j]);
      o.truncated = truncated[j] != 0;
      if (o.truncated) ++out->truncated;
      if (cache_ != nullptr) {
        cache_->Put(CacheKey::Make(batch[miss[j]], ep), o.neighbors,
                    o.truncated);
      }
    }
  }

  // One protocol run answers the whole span, so each query is charged
  // the span's wall time (see QueryOutcome::latency_us).
  double span_us = sw.ElapsedMicros();
  for (size_t i = lo; i < hi; ++i) {
    (*outcomes)[i].latency_us = span_us;
    out->latencies_us.push_back(span_us);
  }
  return Status::OK();
}

void QueryEngine::FinalizeStats(std::vector<TaskOutput>& parts,
                                BatchResult* result) {
  std::vector<double> latencies;
  for (TaskOutput& part : parts) {
    result->stats.cache_hits += part.cache_hits;
    result->stats.truncated_queries += part.truncated;
    result->stats.partitions_visited += part.partitions_visited;
    Accumulate(part.search, &result->stats.search);
    latencies.insert(latencies.end(), part.latencies_us.begin(),
                     part.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result->stats.latency.p50_us = Percentile(latencies, 0.50);
  result->stats.latency.p90_us = Percentile(latencies, 0.90);
  result->stats.latency.p99_us = Percentile(latencies, 0.99);
  result->stats.latency.max_us =
      latencies.empty() ? 0.0 : latencies.back();
}

Result<BatchResult> QueryEngine::Run(
    const std::vector<SpatialQuery>& batch) {
  SEMTREE_RETURN_NOT_OK(Validate(batch));
  BatchResult result;
  result.stats.queries = batch.size();
  for (const SpatialQuery& q : batch) {
    (q.type == QueryType::kKnn ? result.stats.knn_queries
                               : result.stats.range_queries)++;
  }
  if (batch.empty()) return result;

  size_t per_task = std::max<size_t>(options_.min_queries_per_task, 1);
  size_t tasks = std::min(pool_.num_threads(),
                          (batch.size() + per_task - 1) / per_task);
  if (tasks < 1) tasks = 1;
  size_t chunk = (batch.size() + tasks - 1) / tasks;

  result.outcomes.resize(batch.size());
  std::vector<TaskOutput> parts(tasks);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  Stopwatch wall;
  for (size_t t = 0; t < tasks; ++t) {
    size_t lo = t * chunk;
    size_t hi = std::min(batch.size(), lo + chunk);
    futures.push_back(pool_.Submit([this, &batch, lo, hi, &result,
                                    part = &parts[t]]() {
      if (index_ != nullptr) {
        RunLocalSpan(batch.data(), lo, hi, &result.outcomes, part);
      } else {
        part->status = RunDistributedSpan(batch.data(), lo, hi,
                                          &result.outcomes, part);
      }
    }));
  }
  for (std::future<void>& f : futures) f.get();
  result.stats.wall_us = wall.ElapsedMicros();

  for (TaskOutput& part : parts) {
    SEMTREE_RETURN_NOT_OK(part.status);
  }
  FinalizeStats(parts, &result);
  return result;
}

Result<QueryOutcome> QueryEngine::RunOne(const SpatialQuery& query) {
  SEMTREE_RETURN_NOT_OK(ValidateOne(query, 0));
  std::vector<QueryOutcome> outcomes(1);
  TaskOutput out;
  if (index_ != nullptr) {
    RunLocalSpan(&query, 0, 1, &outcomes, &out);
  } else {
    SEMTREE_RETURN_NOT_OK(
        RunDistributedSpan(&query, 0, 1, &outcomes, &out));
  }
  return std::move(outcomes[0]);
}

Status QueryEngine::SaveSnapshot(const std::string& path) {
  if (index_ == nullptr) {
    return Status::NotSupported(
        "snapshot the distributed tree through SaveIndexSnapshot");
  }
  // Reader side of the lock: concurrent batches may keep querying, but
  // no Insert/Remove can interleave with the serialization.
  SharedReaderLock lock(index_mu_);
  return persist::SaveSpatialIndex(*index_, path);
}

Result<QueryEngine::WarmStarted> QueryEngine::WarmStart(
    const std::string& path, QueryEngineOptions options) {
  WarmStarted out;
  SEMTREE_ASSIGN_OR_RETURN(out.index, persist::LoadSpatialIndex(path));
  // The loaded backend resumed at its saved epoch, so the fresh
  // (empty, zero-stat) cache keys line up with where the saved engine
  // left off.
  out.engine = std::make_unique<QueryEngine>(out.index.get(), options);
  return out;
}

void QueryEngine::MaybeEvictDrainedVersions() {
  if (cache_ == nullptr) return;
  const uint64_t floor = unsynced_index_->oldest_live_epoch();
  uint64_t prev = evict_floor_.load(std::memory_order_acquire);
  // First writer to raise the floor sweeps; rivals at the same floor
  // skip, so the cache is walked once per advance, not once per
  // mutation.
  while (floor > prev) {
    if (evict_floor_.compare_exchange_weak(prev, floor,
                                           std::memory_order_acq_rel)) {
      cache_->EvictEpochsBelow(floor);
      return;
    }
  }
}

Status QueryEngine::Insert(const std::vector<double>& coords, PointId id) {
  if (unsynced_index_ != nullptr) {
    // No engine lock: the RCU target publishes the mutation itself;
    // in-flight readers keep searching their pinned versions.
    Status st = unsynced_index_->Insert(coords, id);
    if (st.ok()) MaybeEvictDrainedVersions();
    return st;
  }
  if (index_ != nullptr) {
    SharedMutexLock lock(index_mu_);
    return index_->Insert(coords, id);  // Bumps the index epoch.
  }
  Status st = tree_->Insert(coords, id);
  if (st.ok()) tree_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return st;
}

Status QueryEngine::Remove(const std::vector<double>& coords, PointId id) {
  if (unsynced_index_ != nullptr) {
    Status st = unsynced_index_->Remove(coords, id);
    if (st.ok()) MaybeEvictDrainedVersions();
    return st;
  }
  if (index_ != nullptr) {
    SharedMutexLock lock(index_mu_);
    return index_->Remove(coords, id);
  }
  Status st = tree_->Remove(coords, id);
  if (st.ok()) tree_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return st;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors

#include "fastmap/fastmap.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/distance.h"
#include "core/kernels.h"

namespace semtree {

namespace {
constexpr double kDegenerateEps = 1e-12;
}  // namespace

double FastMap::ResidualSquared(const IndexDistanceFn& distance,
                                size_t axis, size_t i, size_t j) const {
  if (i == j) return 0.0;
  double d = distance(i, j);
  double d2 = d * d;
  for (size_t l = 0; l < axis; ++l) {
    double diff = AtConst(i, l) - AtConst(j, l);
    d2 -= diff * diff;
  }
  // Triangle-inequality violations in the original distance can push
  // the residual negative; clamp, as Faloutsos & Lin prescribe.
  return std::max(0.0, d2);
}

Result<FastMap> FastMap::Train(size_t n, const IndexDistanceFn& distance,
                               const FastMapOptions& options) {
  if (n == 0) return Status::InvalidArgument("cannot embed zero objects");
  if (options.dimensions == 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (!distance) {
    return Status::InvalidArgument("distance oracle must be callable");
  }
  FastMap fm(n, options.dimensions);
  Rng rng(options.seed);

  for (size_t axis = 0; axis < options.dimensions; ++axis) {
    // Farthest-pair heuristic on the residual distance of this axis.
    size_t b = rng.Uniform(n);
    size_t a = b;
    double dab2 = 0.0;
    for (size_t iter = 0; iter < std::max<size_t>(1, options.pivot_iterations);
         ++iter) {
      size_t farthest = b;
      double best = -1.0;
      for (size_t i = 0; i < n; ++i) {
        double r2 = fm.ResidualSquared(distance, axis, b, i);
        if (r2 > best) {
          best = r2;
          farthest = i;
        }
      }
      a = b;
      b = farthest;
      dab2 = best;
      if (dab2 <= kDegenerateEps) break;
    }
    if (dab2 <= kDegenerateEps) {
      // All objects coincide in the residual space: the embedding is
      // complete; remaining axes stay zero.
      break;
    }
    double dab = std::sqrt(dab2);
    for (size_t i = 0; i < n; ++i) {
      double dai2 = fm.ResidualSquared(distance, axis, a, i);
      double dbi2 = fm.ResidualSquared(distance, axis, b, i);
      fm.At(i, axis) = (dai2 + dab2 - dbi2) / (2.0 * dab);
    }
    fm.pivots_.emplace_back(a, b);
    fm.pivot_distances_.push_back(dab);
    fm.effective_dimensions_ = axis + 1;
  }
  return fm;
}

Result<FastMap> FastMap::FromParts(
    size_t n, size_t dimensions, std::vector<double> flat_coordinates,
    std::vector<std::pair<size_t, size_t>> pivots,
    std::vector<double> pivot_distances) {
  if (n == 0 || dimensions == 0) {
    return Status::InvalidArgument("n and dimensions must be positive");
  }
  if (flat_coordinates.size() != n * dimensions) {
    return Status::InvalidArgument("coordinate matrix has wrong size");
  }
  if (pivots.size() != pivot_distances.size() ||
      pivots.size() > dimensions) {
    return Status::InvalidArgument("pivot table has wrong size");
  }
  for (const auto& [a, b] : pivots) {
    if (a >= n || b >= n) {
      return Status::InvalidArgument("pivot index out of range");
    }
  }
  for (double d : pivot_distances) {
    if (!(d > 0.0)) {
      return Status::InvalidArgument(
          "pivot distances must be positive and finite");
    }
  }
  FastMap fm(n, dimensions);
  fm.coords_ = std::move(flat_coordinates);
  fm.pivots_ = std::move(pivots);
  fm.pivot_distances_ = std::move(pivot_distances);
  fm.effective_dimensions_ = fm.pivots_.size();
  return fm;
}

std::vector<double> FastMap::Coordinates(size_t i) const {
  std::vector<double> out(dimensions_);
  for (size_t axis = 0; axis < dimensions_; ++axis) {
    out[axis] = AtConst(i, axis);
  }
  return out;
}

std::vector<double> FastMap::Project(
    const std::function<double(size_t)>& distance_to_training) const {
  std::vector<double> q(dimensions_, 0.0);
  for (size_t axis = 0; axis < effective_dimensions_; ++axis) {
    auto [a, b] = pivots_[axis];
    double dab = pivot_distances_[axis];
    // Residual squared distance from the query to each pivot at this
    // axis, from the original distance minus the coordinates fixed on
    // previous axes.
    auto residual2 = [&](size_t pivot) {
      double d = distance_to_training(pivot);
      double d2 = d * d;
      for (size_t l = 0; l < axis; ++l) {
        double diff = q[l] - AtConst(pivot, l);
        d2 -= diff * diff;
      }
      return std::max(0.0, d2);
    };
    double daq2 = residual2(a);
    double dbq2 = residual2(b);
    q[axis] = (daq2 + dab * dab - dbq2) / (2.0 * dab);
  }
  return q;
}

PointBlock FastMap::ToPointBlock() const {
  PointBlock block(dimensions_);
  block.coords = coords_;
  block.ids.resize(n_);
  for (size_t i = 0; i < n_; ++i) {
    block.ids[i] = static_cast<PointId>(i);
  }
  return block;
}

double FastMap::EmbeddedDistance(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  // The embedded space is Euclidean by construction (coordinates are
  // built from L2 residuals), so the embedded metric is pinned to kL2
  // regardless of any index-side Metric choice; route through the
  // kernel layer so there is exactly one hot implementation.
  if (a.size() != b.size()) {
    internal::FatalDimensionMismatch(a.size(), b.size());
  }
  return MetricDistance(Metric::kL2, a.data(), b.data(), a.size());
}

double FastMap::SampleStress(const IndexDistanceFn& distance,
                             size_t samples, uint64_t seed) const {
  if (n_ < 2 || samples == 0) return 0.0;
  Rng rng(seed);
  double sum_sq_err = 0.0;
  size_t counted = 0;
  for (size_t s = 0; s < samples; ++s) {
    size_t i = rng.Uniform(n_);
    size_t j = rng.Uniform(n_);
    if (i == j) continue;
    double original = distance(i, j);
    double embedded =
        MetricDistance(Metric::kL2, CoordsRow(i), CoordsRow(j),
                       dimensions_);
    double err = original - embedded;
    sum_sq_err += err * err;
    ++counted;
  }
  return counted == 0 ? 0.0 : std::sqrt(sum_sq_err / counted);
}

}  // namespace semtree

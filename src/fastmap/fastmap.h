// Copyright 2026 The SemTree Authors
//
// FastMap (Faloutsos & Lin, SIGMOD 1995): embeds N objects, known only
// through a pairwise distance function, into a k-dimensional Euclidean
// space. SemTree uses it to map triples (with the semantic distance of
// Eq. (1)) into the vector space indexed by the distributed KD-tree
// (paper §III-A, feature (iii)).
//
// The implementation is generic: it works on object *indices* 0..N-1
// and a distance oracle, so any object type can be embedded.

#ifndef SEMTREE_FASTMAP_FASTMAP_H_
#define SEMTREE_FASTMAP_FASTMAP_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/point.h"
#include "core/point_block.h"

namespace semtree {

/// Distance oracle over the training objects.
using IndexDistanceFn = std::function<double(size_t, size_t)>;

struct FastMapOptions {
  /// Target dimensionality k of the embedding.
  size_t dimensions = 8;

  /// Iterations of the farthest-pair pivot heuristic per axis
  /// (the original paper uses a small constant; 5 is standard).
  size_t pivot_iterations = 5;

  /// Seed for the heuristic's random starting object.
  uint64_t seed = 42;
};

/// A trained FastMap embedding.
///
/// Keeps, per axis, the pivot object indices and their residual
/// distance, which is exactly the state needed to project new (query)
/// objects into the same space later.
class FastMap {
 public:
  /// Trains an embedding of `n` objects. Fails on n == 0 or
  /// dimensions == 0. The oracle must be symmetric with zero
  /// self-distance; mild triangle violations are tolerated (residuals
  /// are clamped at zero, as in the original algorithm).
  static Result<FastMap> Train(size_t n, const IndexDistanceFn& distance,
                               const FastMapOptions& options);

  /// Number of embedded objects.
  size_t size() const { return n_; }

  /// Configured dimensionality (coordinates always have this size).
  size_t dimensions() const { return dimensions_; }

  /// Axes that received a non-degenerate pivot pair. Axes beyond this
  /// hold zero for every object.
  size_t effective_dimensions() const { return effective_dimensions_; }

  /// Coordinates of training object `i`.
  std::vector<double> Coordinates(size_t i) const;

  /// Pointer to the row of training object `i` in the flat arena
  /// (contiguous, length dimensions()).
  const double* CoordsRow(size_t i) const {
    return coords_.data() + i * dimensions_;
  }

  /// Non-owning view of training object `i` (id = training index).
  PointView View(size_t i) const {
    return PointView{CoordsRow(i), dimensions_, static_cast<PointId>(i)};
  }

  /// All coordinates, row-major [n x dimensions].
  const std::vector<double>& flat_coordinates() const { return coords_; }

  /// The whole embedding as one contiguous block (ids = training
  /// indices) — the zero-reshaping input to SemTree bulk loading.
  PointBlock ToPointBlock() const;

  /// Pivot object indices (a, b) per effective axis.
  const std::vector<std::pair<size_t, size_t>>& pivots() const {
    return pivots_;
  }

  /// Residual pivot distances d(a,b) per effective axis.
  const std::vector<double>& pivot_distances() const {
    return pivot_distances_;
  }

  /// Reassembles a previously trained embedding from its serialized
  /// parts (see semtree/index_io.h). Validates dimensions and pivot
  /// consistency.
  static Result<FastMap> FromParts(
      size_t n, size_t dimensions, std::vector<double> flat_coordinates,
      std::vector<std::pair<size_t, size_t>> pivots,
      std::vector<double> pivot_distances);

  /// Projects an out-of-sample object into the embedding. The caller
  /// supplies the *original-space* distance from the query to any
  /// training object index; it is invoked only for pivot indices.
  std::vector<double> Project(
      const std::function<double(size_t)>& distance_to_training) const;

  /// Euclidean distance between two embedded coordinate vectors.
  static double EmbeddedDistance(const std::vector<double>& a,
                                 const std::vector<double>& b);

  /// Root-mean-square error between original and embedded distances on
  /// a uniform sample of pairs; the standard FastMap quality metric.
  double SampleStress(const IndexDistanceFn& distance, size_t samples,
                      uint64_t seed = 42) const;

 private:
  FastMap(size_t n, size_t dimensions)
      : n_(n), dimensions_(dimensions), coords_(n * dimensions, 0.0) {}

  double& At(size_t i, size_t axis) {
    return coords_[i * dimensions_ + axis];
  }
  double AtConst(size_t i, size_t axis) const {
    return coords_[i * dimensions_ + axis];
  }

  /// Squared residual distance at `axis` between training objects.
  double ResidualSquared(const IndexDistanceFn& distance, size_t axis,
                         size_t i, size_t j) const;

  size_t n_;
  size_t dimensions_;
  size_t effective_dimensions_ = 0;
  std::vector<double> coords_;
  std::vector<std::pair<size_t, size_t>> pivots_;
  std::vector<double> pivot_distances_;  // Residual d(a,b) per axis.
};

}  // namespace semtree

#endif  // SEMTREE_FASTMAP_FASTMAP_H_

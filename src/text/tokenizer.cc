// Copyright 2026 The SemTree Authors

#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace semtree {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '_';
}

std::vector<std::string> TokenizeImpl(std::string_view sentence,
                                      bool lowercase) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < sentence.size()) {
    while (i < sentence.size() && !IsWordChar(sentence[i])) ++i;
    size_t start = i;
    while (i < sentence.size() && IsWordChar(sentence[i])) ++i;
    if (i > start) {
      std::string word(sentence.substr(start, i - start));
      if (lowercase) word = ToLower(word);
      tokens.push_back(std::move(word));
    }
  }
  return tokens;
}

}  // namespace

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    bool boundary = i == text.size() || text[i] == '.' || text[i] == '!' ||
                    text[i] == '?';
    if (!boundary) continue;
    std::string_view piece = Trim(text.substr(start, i - start));
    if (!piece.empty()) sentences.emplace_back(piece);
    start = i + 1;
  }
  return sentences;
}

std::vector<std::string> Tokenize(std::string_view sentence) {
  return TokenizeImpl(sentence, /*lowercase=*/true);
}

std::vector<std::string> TokenizePreservingCase(std::string_view sentence) {
  return TokenizeImpl(sentence, /*lowercase=*/false);
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// A small sentence/word tokenizer used by the requirements triple
// extractor (src/nlp). Deliberately simple: the paper treats NLP triple
// extraction as an external facility ([6]); we only need enough to parse
// the controlled natural language of requirement sentences.

#ifndef SEMTREE_TEXT_TOKENIZER_H_
#define SEMTREE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace semtree {

/// Splits text into sentences on '.', '!', '?' (keeping abbreviations is
/// out of scope for the controlled requirements language).
std::vector<std::string> SplitSentences(std::string_view text);

/// Splits a sentence into lowercase word tokens; punctuation is dropped,
/// but '-', '_' and digits are kept inside words (identifiers such as
/// "OBSW001" and parameters such as "start-up" survive intact).
std::vector<std::string> Tokenize(std::string_view sentence);

/// Same as Tokenize but preserves the original casing.
std::vector<std::string> TokenizePreservingCase(std::string_view sentence);

}  // namespace semtree

#endif  // SEMTREE_TEXT_TOKENIZER_H_

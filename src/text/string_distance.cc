// Copyright 2026 The SemTree Authors

#include "text/string_distance.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace semtree {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string.
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // row[j-1] from the previous row.
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(LevenshteinDistance(a, b)) /
         static_cast<double>(longest);
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({cur[j - 1] + 1, prev[j] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t window =
      std::max<size_t>(1, std::max(n, m) / 2) - 1;
  std::vector<bool> a_matched(n, false), b_matched(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = (i > window) ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t cap = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < cap && a[prefix] == b[prefix]) ++prefix;
  constexpr double kScaling = 0.1;
  return jaro + static_cast<double>(prefix) * kScaling * (1.0 - jaro);
}

double JaroWinklerDistance(std::string_view a, std::string_view b) {
  return 1.0 - JaroWinklerSimilarity(a, b);
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1
                                      : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double BigramDiceSimilarity(std::string_view a, std::string_view b) {
  if (a.size() < 2 || b.size() < 2) return a == b ? 1.0 : 0.0;
  std::unordered_map<uint16_t, int> bigrams;
  auto key = [](char c1, char c2) {
    return static_cast<uint16_t>((static_cast<uint8_t>(c1) << 8) |
                                 static_cast<uint8_t>(c2));
  };
  for (size_t i = 0; i + 1 < a.size(); ++i) ++bigrams[key(a[i], a[i + 1])];
  size_t overlap = 0;
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    auto it = bigrams.find(key(b[i], b[i + 1]));
    if (it != bigrams.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  double total = static_cast<double>((a.size() - 1) + (b.size() - 1));
  return 2.0 * static_cast<double>(overlap) / total;
}

double StringDistance(StringDistanceKind kind, std::string_view a,
                      std::string_view b) {
  switch (kind) {
    case StringDistanceKind::kNormalizedLevenshtein:
      return NormalizedLevenshtein(a, b);
    case StringDistanceKind::kJaroWinkler:
      return JaroWinklerDistance(a, b);
    case StringDistanceKind::kBigramDice:
      return 1.0 - BigramDiceSimilarity(a, b);
  }
  return 1.0;
}

}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// String distances used for the literal/constant case of the SemTree
// element distance (paper §III-A: "we can apply any distance function
// between strings, i.e. Levenshtein").

#ifndef SEMTREE_TEXT_STRING_DISTANCE_H_
#define SEMTREE_TEXT_STRING_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace semtree {

/// Classic Levenshtein edit distance (insert/delete/substitute, unit
/// costs). O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance normalized to [0,1] by max(|a|,|b|);
/// 0 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Damerau–Levenshtein (optimal string alignment variant): Levenshtein
/// plus transposition of adjacent characters.
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1] (1 = equal).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity in [0,1] with standard prefix scaling
/// (p = 0.1, prefix capped at 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// 1 - JaroWinklerSimilarity, in [0,1].
double JaroWinklerDistance(std::string_view a, std::string_view b);

/// Length of the longest common subsequence.
size_t LongestCommonSubsequence(std::string_view a, std::string_view b);

/// Dice coefficient over character bigrams, in [0,1] (1 = identical
/// bigram multisets). Strings shorter than 2 fall back to equality.
double BigramDiceSimilarity(std::string_view a, std::string_view b);

/// The normalized string distances selectable in SemTree configuration.
enum class StringDistanceKind {
  kNormalizedLevenshtein,
  kJaroWinkler,
  kBigramDice,
};

/// Dispatches to the chosen normalized distance; result in [0,1].
double StringDistance(StringDistanceKind kind, std::string_view a,
                      std::string_view b);

}  // namespace semtree

#endif  // SEMTREE_TEXT_STRING_DISTANCE_H_

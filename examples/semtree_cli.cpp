// Copyright 2026 The SemTree Authors
//
// A small command-line front end for the library — build, persist and
// query semantic indexes from files:
//
//   semtree_cli build  <vocab.txt> <triples.txt> <index.out> [dims]
//   semtree_cli knn    <index.file> "<triple>" <k>
//   semtree_cli range  <index.file> "<triple>" <radius>
//   semtree_cli check  <index.file>          # stats + invariants
//   semtree_cli demo   <directory>           # writes demo input files
//
// Triples use the paper's notation: ('OBSW001', Fun:accept_cmd,
// CmdType:startup_cmd)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "nlp/requirements_corpus.h"
#include "nlp/triple_extractor.h"
#include "ontology/requirements_vocabulary.h"
#include "ontology/vocabulary_io.h"
#include "rdf/turtle.h"
#include "semtree/index_io.h"

namespace {

using namespace semtree;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  semtree_cli build <vocab.txt> <triples.txt> <index.out> [dims]\n"
      "  semtree_cli knn <index.file> \"<triple>\" <k>\n"
      "  semtree_cli range <index.file> \"<triple>\" <radius>\n"
      "  semtree_cli check <index.file>\n"
      "  semtree_cli demo <directory>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int CmdBuild(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto vocab = LoadVocabularyFile(argv[2]);
  if (!vocab.ok()) return Fail(vocab.status());
  auto text = ReadFile(argv[3]);
  if (!text.ok()) return Fail(text.status());
  auto triples = ParseTriples(*text);
  if (!triples.ok()) return Fail(triples.status());
  if (triples->empty()) {
    std::fprintf(stderr, "error: no triples in %s\n", argv[3]);
    return 1;
  }
  SemanticIndexOptions opts;
  if (argc >= 6) opts.fastmap.dimensions = std::strtoul(argv[5], nullptr, 10);
  std::printf("Building: %zu triples, %zu concepts, %zu-d embedding...\n",
              triples->size(), vocab->size(), opts.fastmap.dimensions);
  auto index = SemanticIndex::Build(&*vocab, std::move(*triples), opts);
  if (!index.ok()) return Fail(index.status());
  Status st = SaveIndex(**index, argv[4]);
  if (!st.ok()) return Fail(st);
  std::printf("Saved index to %s\n", argv[4]);
  return 0;
}

int RunQuery(int argc, char** argv, bool is_knn) {
  if (argc < 5) return Usage();
  auto bundle = LoadIndex(argv[2]);
  if (!bundle.ok()) return Fail(bundle.status());
  auto query = ParseTriple(argv[3]);
  if (!query.ok()) return Fail(query.status());
  Result<std::vector<SemanticIndex::Hit>> hits =
      is_knn
          ? bundle->index->KnnQuery(*query,
                                    std::strtoul(argv[4], nullptr, 10))
          : bundle->index->RangeQuery(*query,
                                      std::strtod(argv[4], nullptr));
  if (!hits.ok()) return Fail(hits.status());
  std::printf("%zu hits for %s\n", hits->size(),
              query->ToString().c_str());
  for (const auto& hit : *hits) {
    std::printf("  %-56s embedded=%.4f semantic=%.4f\n",
                bundle->index->triple(hit.id).ToString().c_str(),
                hit.embedded_distance, hit.semantic_distance);
  }
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto bundle = LoadIndex(argv[2]);
  if (!bundle.ok()) return Fail(bundle.status());
  const SemanticIndex& index = *bundle->index;
  std::printf("triples:    %zu\n", index.size());
  std::printf("vocabulary: %zu concepts, depth %zu\n",
              index.taxonomy().size(), index.taxonomy().MaxDepth());
  std::printf("embedding:  %zu dims (%zu effective)\n",
              index.fastmap().dimensions(),
              index.fastmap().effective_dimensions());
  std::printf("partitions: %zu\n", index.tree().PartitionCount());
  for (const auto& s : index.tree().AllPartitionStats()) {
    std::printf("  %s\n", s.ToString().c_str());
  }
  Status st = index.tree().CheckInvariants();
  std::printf("invariants: %s\n", st.ToString().c_str());
  return st.ok() ? 0 : 1;
}

int CmdDemo(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string dir = argv[2];
  Taxonomy vocab = RequirementsVocabulary();
  Status st = SaveVocabularyFile(vocab, dir + "/vocab.txt");
  if (!st.ok()) return Fail(st);

  RequirementsCorpusGenerator gen(&vocab, {.num_documents = 20,
                                           .seed = 1});
  TripleExtractor extractor(&vocab);
  TripleStore store;
  auto count = extractor.ExtractCorpus(gen.Generate(), &store);
  if (!count.ok()) return Fail(count.status());
  std::ofstream out(dir + "/triples.txt");
  out << SerializeTriples(store.triples());
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s/triples.txt\n",
                 dir.c_str());
    return 1;
  }
  std::printf(
      "Wrote %s/vocab.txt and %s/triples.txt (%zu triples).\n"
      "Try:\n"
      "  semtree_cli build %s/vocab.txt %s/triples.txt %s/index.txt\n"
      "  semtree_cli knn %s/index.txt \"('OBSW001', Fun:block_cmd, "
      "CmdType:reset)\" 5\n",
      dir.c_str(), dir.c_str(), store.size(), dir.c_str(), dir.c_str(),
      dir.c_str(), dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "knn") == 0) return RunQuery(argc, argv, true);
  if (std::strcmp(argv[1], "range") == 0) {
    return RunQuery(argc, argv, false);
  }
  if (std::strcmp(argv[1], "check") == 0) return CmdCheck(argc, argv);
  if (std::strcmp(argv[1], "demo") == 0) return CmdDemo(argc, argv);
  return Usage();
}

// Copyright 2026 The SemTree Authors
//
// Distributed SemTree walkthrough: build the same index with 1, 3, 5
// and 9 partitions on the simulated cluster, show how build-partition
// spreads the data (routing vs storing partitions, edge nodes), and
// compare build/query times — a miniature of the paper's efficiency
// experiments (§IV-A).
//
//   $ ./build/examples/distributed_scaling

#include <cstdio>

#include "common/random.h"
#include "common/stopwatch.h"
#include "semtree/semtree.h"

int main() {
  using namespace semtree;

  // A synthetic embedded point set (in a real pipeline these come from
  // FastMap; see the quickstart example).
  const size_t kPoints = 40000;
  const size_t kDims = 8;
  Rng rng(42);
  std::vector<KdPoint> points(kPoints);
  for (size_t i = 0; i < kPoints; ++i) {
    points[i].id = i;
    points[i].coords.resize(kDims);
    for (double& c : points[i].coords) c = rng.UniformDouble(0.0, 1.0);
  }
  std::vector<std::vector<double>> queries;
  for (int q = 0; q < 100; ++q) {
    std::vector<double> query(kDims);
    for (double& c : query) c = rng.UniformDouble(0.0, 1.0);
    queries.push_back(std::move(query));
  }

  std::printf("%10s %10s %10s %12s %12s %10s\n", "partitions", "build_ms",
              "knn_us", "messages", "net_bytes", "storing");
  for (size_t partitions : {1u, 3u, 5u, 9u}) {
    SemTreeOptions opts;
    opts.dimensions = kDims;
    opts.bucket_size = 32;
    opts.max_partitions = partitions;
    opts.partition_capacity =
        partitions == 1 ? SIZE_MAX : opts.bucket_size * partitions;
    opts.network_latency = std::chrono::microseconds(20);
    auto tree = SemTree::Create(opts);
    if (!tree.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   tree.status().ToString().c_str());
      return 1;
    }

    Stopwatch build;
    if (!(*tree)->BulkInsert(points, /*client_threads=*/8).ok()) return 1;
    double build_ms = build.ElapsedMillis();

    Stopwatch query;
    for (const auto& q : queries) {
      auto hits = (*tree)->KnnSearch(q, 3);
      if (!hits.ok()) return 1;
    }
    double knn_us = query.ElapsedMicros() / double(queries.size());

    ClusterStats net = (*tree)->NetworkStats();
    auto stats = (*tree)->AllPartitionStats();
    size_t storing = 0;
    for (const auto& s : stats) storing += (s.points > 0);

    std::printf("%10zu %10.1f %10.1f %12llu %12llu %10zu\n", partitions,
                build_ms, knn_us, (unsigned long long)net.messages,
                (unsigned long long)net.bytes, storing);

    if (partitions == 9) {
      std::printf("\nPer-partition layout at 9 partitions:\n");
      for (const auto& s : stats) {
        std::printf("  %s\n", s.ToString().c_str());
      }
    }
  }
  return 0;
}

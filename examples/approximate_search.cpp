// Copyright 2026 The SemTree Authors
//
// Approximate search walkthrough (DESIGN.md §6): run the same k-NN
// query exact, under a distance-computation cap, and under epsilon
// pruning slack — through the raw SpatialIndex surface and through a
// QueryEngine batch — and read the work counters and truncation flags
// back.
//
//   $ ./build/example_approximate_search

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/backends.h"
#include "engine/query_engine.h"

int main() {
  using namespace semtree;

  // 1. An indexed corpus: 20k clustered points in 8 dimensions.
  constexpr size_t kDims = 8;
  auto index = MakeSpatialIndex(BackendKind::kKdTree, kDims,
                                {.bucket_size = 16});
  Rng rng(42);
  std::vector<double> center(kDims);
  for (size_t i = 0; i < 20000; ++i) {
    if (i % 700 == 0) {  // New cluster center now and then.
      for (double& c : center) c = rng.UniformDouble(0.0, 100.0);
    }
    std::vector<double> p(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      p[d] = center[d] + rng.Gaussian() * 10.0;
    }
    if (!index->Insert(p, PointId(i)).ok()) return 1;
  }
  std::vector<double> query(kDims);
  for (double& c : query) c = rng.UniformDouble(0.0, 100.0);

  // 2. The same query under three budgets. Every search reports its
  //    work in SearchStats; `truncated` tells approximate results
  //    apart from proven-exact ones.
  auto run = [&](const char* label, SearchBudget budget) {
    SearchStats stats;
    auto hits = index->KnnSearch(query, 10, budget, &stats);
    std::printf("%-22s top=%llu dist=%.3f  distances=%zu  truncated=%s\n",
                label,
                (unsigned long long)(hits.empty() ? 0 : hits[0].id),
                hits.empty() ? 0.0 : hits[0].distance,
                stats.points_examined, stats.truncated ? "yes" : "no");
  };
  run("exact", SearchBudget::Exact());
  run("max 500 distances", SearchBudget::MaxDistances(500));
  run("epsilon 1.0", SearchBudget::Epsilon(1.0));

  // 3. The engine threads per-query budgets through batches, caches
  //    budgeted and exact results under distinct keys, and counts the
  //    truncated outcomes.
  QueryEngine engine(index.get());
  std::vector<SpatialQuery> batch = {
      SpatialQuery::Knn(query, 10),
      SpatialQuery::Knn(query, 10, SearchBudget::MaxDistances(500)),
      SpatialQuery::Range(query, 60.0, SearchBudget::Epsilon(0.5)),
  };
  auto result = engine.Run(batch);
  if (!result.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("batch: %zu queries, %zu truncated, %zu cache hits\n",
              result->stats.queries, result->stats.truncated_queries,
              result->stats.cache_hits);
  for (size_t i = 0; i < result->outcomes.size(); ++i) {
    std::printf("  query %zu: %zu hits%s\n", i,
                result->outcomes[i].neighbors.size(),
                result->outcomes[i].truncated ? " (truncated)" : "");
  }

  // 4. An index-wide default budget: every budget-less search on this
  //    index now runs approximately — and the setting survives a
  //    snapshot (persist/index_snapshot.h).
  index->set_default_budget(SearchBudget::Epsilon(0.5));
  SearchStats stats;
  (void)index->KnnSearch(query, 10, &stats);
  std::printf("default-budget search: distances=%zu truncated=%s\n",
              stats.points_examined, stats.truncated ? "yes" : "no");
  return 0;
}

// Copyright 2026 The SemTree Authors
//
// The paper's case study (§II, §IV-B), end to end: generate a software
// requirements corpus, extract triples from the natural-language
// sentences, index them, then hunt for inconsistencies by querying with
// antinomic target triples and score Precision/Recall against the
// annotator oracle.
//
//   $ ./build/examples/requirements_inconsistency

#include <cstdio>

#include "nlp/requirements_corpus.h"
#include "nlp/triple_extractor.h"
#include "ontology/requirements_vocabulary.h"
#include "reqverify/evaluation.h"

int main() {
  using namespace semtree;

  // 1. Vocabulary + synthetic requirements documents (the stand-in for
  //    the CIRA corpus; see DESIGN.md).
  Taxonomy vocab = RequirementsVocabulary();
  CorpusOptions copts;
  copts.num_documents = 120;
  copts.min_requirements_per_doc = 30;
  copts.max_requirements_per_doc = 50;
  copts.num_actors = 120;
  copts.inconsistency_rate = 0.06;
  RequirementsCorpusGenerator generator(&vocab, copts);
  auto documents = generator.Generate();
  std::printf("Generated %zu requirement documents.\n", documents.size());
  std::printf("Sample requirement: \"%s\"\n\n",
              documents[0].requirements[0].text.c_str());

  // 2. NLP extraction: sentences -> triples, with provenance.
  TripleExtractor extractor(&vocab);
  TripleStore store;
  auto extracted = extractor.ExtractCorpus(documents, &store);
  if (!extracted.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 extracted.status().ToString().c_str());
    return 1;
  }
  std::printf("Extracted %zu triples (%zu actors, %zu functions).\n",
              store.size(), store.DistinctSubjects(),
              store.DistinctPredicates());

  // 3. Build the semantic index over the extracted triples.
  SemanticIndexOptions iopts;
  iopts.fastmap.dimensions = 8;
  auto index = SemanticIndex::Build(&vocab, store.triples(), iopts);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // 4. One worked inconsistency hunt, like the paper's motivating
  //    example: pick a requirement, negate its predicate, query.
  Rng rng(4);
  for (size_t attempt = 0; attempt < 1000; ++attempt) {
    TripleId id = rng.Uniform(store.size());
    const Triple& source = store.Get(id);
    auto truth = GroundTruthInconsistencies(store, source, vocab);
    if (truth.empty()) continue;
    auto target = MakeTargetTriple(source, vocab, &rng);
    if (!target.ok()) continue;
    std::printf("\nRequirement:   %s\n", source.ToString().c_str());
    std::printf("Target triple: %s\n", target->ToString().c_str());
    auto hits = (*index)->KnnQuery(*target, 5);
    if (!hits.ok()) return 1;
    std::printf("Nearest triples (potential contradictions):\n");
    for (const auto& hit : *hits) {
      bool is_true_inconsistency =
          AreInconsistent(source, (*index)->triple(hit.id), vocab);
      std::printf("  %-52s d=%.3f %s\n",
                  (*index)->triple(hit.id).ToString().c_str(),
                  hit.semantic_distance,
                  is_true_inconsistency ? "<-- inconsistent" : "");
    }
    break;
  }

  // 5. The Fig. 8 experiment: average P/R over 100 queries, sweeping K.
  std::printf("\nEffectiveness over 100 inconsistency queries:\n");
  std::printf("%4s %10s %10s %10s\n", "K", "Precision", "Recall", "F1");
  EffectivenessOptions eopts;
  eopts.num_queries = 100;
  eopts.ks = {1, 2, 3, 5, 8, 12, 16, 20, 25};
  auto points = EvaluateEffectiveness(**index, store, vocab, eopts);
  if (!points.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }
  for (const auto& p : *points) {
    std::printf("%4zu %10.3f %10.3f %10.3f\n", p.k, p.precision, p.recall,
                p.f1);
  }
  return 0;
}

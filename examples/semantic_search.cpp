// Copyright 2026 The SemTree Authors
//
// Semantic document search: index a requirements corpus and retrieve
// the documents whose triples are semantically closest to a
// query-by-example triple — the paper's document-retrieval framing
// (§I): documents are represented by their triple sets, and retrieval
// works through the semantic index.
//
//   $ ./build/examples/semantic_search

#include <algorithm>
#include <cstdio>
#include <map>

#include "nlp/requirements_corpus.h"
#include "nlp/triple_extractor.h"
#include "ontology/requirements_vocabulary.h"
#include "rdf/turtle.h"
#include "semtree/semantic_index.h"

int main() {
  using namespace semtree;

  Taxonomy vocab = RequirementsVocabulary();
  CorpusOptions copts;
  copts.num_documents = 60;
  copts.min_requirements_per_doc = 20;
  copts.max_requirements_per_doc = 30;
  RequirementsCorpusGenerator generator(&vocab, copts);
  auto documents = generator.Generate();

  TripleExtractor extractor(&vocab);
  TripleStore store;
  auto extracted = extractor.ExtractCorpus(documents, &store);
  if (!extracted.ok()) return 1;
  std::printf("Corpus: %zu documents, %zu triples.\n", documents.size(),
              store.size());

  SemanticIndexOptions opts;
  opts.fastmap.dimensions = 8;
  opts.rerank_by_semantic_distance = true;
  auto index = SemanticIndex::Build(&vocab, store.triples(), opts);
  if (!index.ok()) return 1;

  // Query by example, written in the Turtle-like notation. Note the
  // predicate "transmit_msg" is a *synonym* (resolves to send_msg) and
  // the query triple itself appears nowhere in the corpus.
  auto query = ParseTriple("('OBSW001', Fun:transmit_msg, MsgType:heartbeat)");
  if (!query.ok()) return 1;
  std::printf("\nQuery: %s\n\n", query->ToString().c_str());

  auto hits = (*index)->KnnQuery(*query, 12);
  if (!hits.ok()) return 1;

  std::printf("Closest triples (reranked by exact semantic distance):\n");
  for (const auto& hit : *hits) {
    std::printf("  doc %-4u %-52s d=%.3f\n", store.document(hit.id),
                (*index)->triple(hit.id).ToString().c_str(),
                hit.semantic_distance);
  }

  // Aggregate triple hits into a document ranking: a document scores by
  // its best (smallest) triple distance, then by hit count.
  std::map<DocumentId, std::pair<double, int>> doc_scores;
  for (const auto& hit : *hits) {
    DocumentId doc = store.document(hit.id);
    auto [it, inserted] =
        doc_scores.try_emplace(doc, hit.semantic_distance, 1);
    if (!inserted) {
      it->second.first = std::min(it->second.first, hit.semantic_distance);
      ++it->second.second;
    }
  }
  std::vector<std::pair<DocumentId, std::pair<double, int>>> ranked(
      doc_scores.begin(), doc_scores.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second.first != b.second.first) {
                return a.second.first < b.second.first;
              }
              return a.second.second > b.second.second;
            });

  std::printf("\nDocument ranking:\n");
  for (const auto& [doc, score] : ranked) {
    std::printf("  %-44s best=%.3f hits=%d\n",
                documents[doc].title.c_str(), score.first, score.second);
  }
  return 0;
}

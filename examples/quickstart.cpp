// Copyright 2026 The SemTree Authors
//
// Quickstart: index a handful of hand-written triples over the built-in
// general-purpose vocabulary and run a k-nearest query by example.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "ontology/requirements_vocabulary.h"
#include "rdf/turtle.h"
#include "semtree/semantic_index.h"

int main() {
  using namespace semtree;

  // 1. A vocabulary: concepts in an IS-A taxonomy, with synonyms and
  //    antonyms. MiniWordNet() is a small built-in stand-in for "a
  //    standard vocabulary"; you can also load one from disk with
  //    LoadVocabularyFile().
  Taxonomy vocab = MiniWordNet();

  // 2. A corpus of (subject, predicate, object) triples, written in the
  //    paper's Turtle-like notation.
  auto corpus = ParseTriples(R"(
('alice', own, dog)
('alice', own, cat)
('alice', buy, house)
('bob', own, car)
('bob', sell, car)
('bob', buy, bicycle)
('carol', own, horse)
('carol', lend, laptop)
('dave', borrow, laptop)
('dave', own, truck)
('erin', buy, boat)
('erin', own, eagle)
)");
  if (!corpus.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }

  // 3. Build the semantic index: Eq. (1) distance -> FastMap -> SemTree.
  SemanticIndexOptions options;
  options.fastmap.dimensions = 4;
  auto index = SemanticIndex::Build(&vocab, *corpus, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build error: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("Indexed %zu triples in %zu-dimensional FastMap space.\n\n",
              (*index)->size(), (*index)->fastmap().dimensions());

  // 4. Query by example: who owns something dog-like?
  Triple query(Term::Literal("alice"), Term::Concept("own"),
               Term::Concept("cat"));
  std::printf("Query: %s\n", query.ToString().c_str());
  auto hits = (*index)->KnnQuery(query, 4);
  if (!hits.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }
  for (const auto& hit : *hits) {
    std::printf("  %-34s embedded=%.3f  semantic=%.3f\n",
                (*index)->triple(hit.id).ToString().c_str(),
                hit.embedded_distance, hit.semantic_distance);
  }

  // 5. Range query: everything semantically close to "bob buys things".
  Triple range_query(Term::Literal("bob"), Term::Concept("buy"),
                     Term::Concept("car"));
  std::printf("\nRange query (radius 0.35): %s\n",
              range_query.ToString().c_str());
  auto in_range = (*index)->RangeQuery(range_query, 0.35);
  if (!in_range.ok()) return 1;
  for (const auto& hit : *in_range) {
    std::printf("  %-34s embedded=%.3f\n",
                (*index)->triple(hit.id).ToString().c_str(),
                hit.embedded_distance);
  }
  return 0;
}

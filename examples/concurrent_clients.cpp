// Copyright 2026 The SemTree Authors
//
// Concurrent clients: N threads share one QueryEngine over a KD-tree
// backend, each submitting batches of mixed k-NN/range queries while
// one of them occasionally inserts new points. Demonstrates the batch
// API, the epoch-keyed result cache, and the per-batch latency
// percentiles.
//
//   $ ./build/example_concurrent_clients

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/backends.h"
#include "engine/query_engine.h"

int main() {
  using namespace semtree;

  constexpr size_t kDims = 8;
  constexpr size_t kCorpus = 10000;
  constexpr size_t kClients = 4;
  constexpr size_t kBatchesPerClient = 20;
  constexpr size_t kBatchSize = 64;

  // 1. A corpus of random embedded points in a KD-tree backend. Any
  //    SpatialIndex works here — swap the BackendKind to compare.
  auto index = MakeSpatialIndex(BackendKind::kKdTree, kDims);
  Rng corpus_rng(1);
  for (size_t i = 0; i < kCorpus; ++i) {
    std::vector<double> p(kDims);
    for (double& c : p) c = corpus_rng.UniformDouble(-1.0, 1.0);
    if (!index->Insert(p, PointId(i)).ok()) return 1;
  }

  // 2. One engine shared by every client. Four workers execute batch
  //    queries; the sharded cache is keyed on the index epoch, so the
  //    inserts below invalidate it automatically.
  QueryEngineOptions options;
  options.threads = 4;
  QueryEngine engine(index.get(), options);

  // 3. Clients draw queries from a shared pool (repeats hit the cache).
  std::vector<std::vector<double>> pool(256);
  Rng pool_rng(2);
  for (auto& q : pool) {
    q.resize(kDims);
    for (double& c : q) c = pool_rng.UniformDouble(-1.0, 1.0);
  }

  std::atomic<size_t> queries{0};
  std::atomic<size_t> cache_hits{0};
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Rng rng(10 + c);
      for (size_t b = 0; b < kBatchesPerClient; ++b) {
        std::vector<SpatialQuery> batch;
        batch.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          const auto& q = pool[rng.Uniform(pool.size())];
          if (i % 2 == 0) {
            batch.push_back(SpatialQuery::Knn(q, 5));
          } else {
            batch.push_back(SpatialQuery::Range(q, 0.5));
          }
        }
        auto result = engine.Run(batch);
        if (!result.ok()) {
          std::fprintf(stderr, "batch failed: %s\n",
                       result.status().ToString().c_str());
          return;
        }
        queries.fetch_add(result->stats.queries);
        cache_hits.fetch_add(result->stats.cache_hits);
        if (b + 1 == kBatchesPerClient) {
          std::printf(
              "client %zu last batch: p50=%.0fus p99=%.0fus max=%.0fus\n",
              c, result->stats.latency.p50_us,
              result->stats.latency.p99_us, result->stats.latency.max_us);
        }
        // Client 0 also writes: every insert bumps the index epoch and
        // retires all cached results.
        if (c == 0 && b % 5 == 4) {
          std::vector<double> p(kDims);
          for (double& x : p) x = rng.UniformDouble(-1.0, 1.0);
          (void)engine.Insert(p, PointId(kCorpus + b));
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  double secs = wall.ElapsedSeconds();
  size_t total = queries.load();
  std::printf("\n%zu clients, %zu queries in %.2fs = %.0f queries/sec\n",
              kClients, total, secs, double(total) / secs);
  std::printf("cache: %zu hits (%.1f%%), final index epoch %llu\n",
              cache_hits.load(), 100.0 * double(cache_hits.load()) / total,
              (unsigned long long)engine.epoch());
  return 0;
}

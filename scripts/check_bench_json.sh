#!/usr/bin/env bash
# Bench-artifact schema check: every BENCH_*.json in the repo root must
# parse as JSON and carry the envelope the dashboards and diff scripts
# consume — a non-empty string "bench" and a non-empty "records" list
# of flat objects whose values are numbers or strings. Catches a bench
# silently emitting broken or empty artifacts before anyone diffs them.
#
#   scripts/check_bench_json.sh [file ...]   # default: ./BENCH_*.json

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  shopt -s nullglob
  files=(BENCH_*.json)
  shopt -u nullglob
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "no BENCH_*.json artifacts found" >&2
  exit 1
fi

status=0
for f in "${files[@]}"; do
  if python3 - "$f" <<'EOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as e:
    sys.exit(f"{path}: not valid JSON: {e}")

if not isinstance(doc, dict):
    sys.exit(f"{path}: top level must be an object")
bench = doc.get("bench")
if not isinstance(bench, str) or not bench:
    sys.exit(f"{path}: 'bench' must be a non-empty string")
records = doc.get("records")
if not isinstance(records, list) or not records:
    sys.exit(f"{path}: 'records' must be a non-empty list")
for i, rec in enumerate(records):
    if not isinstance(rec, dict) or not rec:
        sys.exit(f"{path}: records[{i}] must be a non-empty object")
    for key, value in rec.items():
        if not isinstance(value, (int, float, str)) or isinstance(value, bool):
            sys.exit(
                f"{path}: records[{i}][{key!r}] must be a number or "
                f"string, got {type(value).__name__}")
print(f"{path}: ok ({bench}, {len(records)} records)")
EOF
  then :; else status=1; fi
done
exit $status

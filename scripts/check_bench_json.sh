#!/usr/bin/env bash
# Bench-artifact schema check: every BENCH_*.json in the repo root must
# parse as JSON and carry the envelope the dashboards and diff scripts
# consume — a non-empty string "bench" and a non-empty "records" list
# of flat objects whose values are numbers or strings. Catches a bench
# silently emitting broken or empty artifacts before anyone diffs them.
#
#   scripts/check_bench_json.sh [file ...]   # default: ./BENCH_*.json

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  shopt -s nullglob
  files=(BENCH_*.json)
  shopt -u nullglob
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "no BENCH_*.json artifacts found" >&2
  exit 1
fi

status=0
for f in "${files[@]}"; do
  if python3 - "$f" <<'EOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as e:
    sys.exit(f"{path}: not valid JSON: {e}")

if not isinstance(doc, dict):
    sys.exit(f"{path}: top level must be an object")
bench = doc.get("bench")
if not isinstance(bench, str) or not bench:
    sys.exit(f"{path}: 'bench' must be a non-empty string")
records = doc.get("records")
if not isinstance(records, list) or not records:
    sys.exit(f"{path}: 'records' must be a non-empty list")
for i, rec in enumerate(records):
    if not isinstance(rec, dict) or not rec:
        sys.exit(f"{path}: records[{i}] must be a non-empty object")
    for key, value in rec.items():
        if not isinstance(value, (int, float, str)) or isinstance(value, bool):
            sys.exit(
                f"{path}: records[{i}][{key!r}] must be a number or "
                f"string, got {type(value).__name__}")

# Mixed read/write artifacts (bench_workload_driver --mixed-rw, the
# RCU gate of DESIGN.md §11) carry a fixed record set: one rw_config,
# exactly one rw_phase per phase name, one rw_summary with the gated
# ratio. Validate whenever any rw_* record is present.
rw = [r for r in records if str(r.get("record", "")).startswith("rw_")]
if rw:
    def only(kind):
        found = [r for r in rw if r.get("record") == kind]
        if len(found) != 1:
            sys.exit(f"{path}: expected exactly one {kind!r} record, "
                     f"got {len(found)}")
        return found[0]

    def require(rec, kind, fields):
        for f in fields:
            v = rec.get(f)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                sys.exit(f"{path}: {kind} record needs numeric {f!r}")

    require(only("rw_config"), "rw_config",
            ("seed", "reader_threads", "k", "writer_window", "trials",
             "phase_duration_s", "writer_qps", "merge_threshold"))
    phases = {r.get("rw_phase"): r for r in rw
              if r.get("record") == "rw_phase"}
    if sorted(phases) != ["mixed", "read_only"]:
        sys.exit(f"{path}: rw_phase records must be exactly "
                 f"read_only + mixed, got {sorted(phases)}")
    for name, rec in phases.items():
        require(rec, f"rw_phase[{name}]",
                ("reads", "read_errors", "writes", "write_errors",
                 "p50_us", "p99_us", "p999_us", "read_qps",
                 "write_qps", "duration_s"))
    if phases["read_only"]["writes"] != 0:
        sys.exit(f"{path}: read_only rw_phase must record zero writes")
    summary = only("rw_summary")
    require(summary, "rw_summary", ("read_throughput_ratio", "merges"))

# Rebalance artifacts (bench_rebalance, the DESIGN.md §12 gate) carry
# a fixed record set: one config, one run per mode (off before on),
# one rebalance counter record, one summary with the gated fields.
if bench == "rebalance":
    def one(kind, **match):
        found = [r for r in records if r.get("record") == kind and
                 all(r.get(k) == v for k, v in match.items())]
        if len(found) != 1:
            sys.exit(f"{path}: expected exactly one {kind!r} record"
                     + (f" with {match}" if match else "")
                     + f", got {len(found)}")
        return found[0]

    def numeric(rec, kind, fields):
        for f in fields:
            v = rec.get(f)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                sys.exit(f"{path}: {kind} record needs numeric {f!r}")

    numeric(one("config"), "config",
            ("seed", "keys", "dims", "ops", "zipf_s", "workers",
             "max_partitions", "bulk_load_partitions", "bucket_size",
             "min_ratio", "hardware_threads"))
    run_fields = ("completed", "errors", "truncated", "p50_us",
                  "p99_us", "p999_us", "throughput_qps", "duration_s")
    numeric(one("run", mode="off"), "run[off]", run_fields)
    numeric(one("run", mode="on"), "run[on]", run_fields)
    numeric(one("rebalance"), "rebalance",
            ("ticks", "splits", "merges", "migrations", "points_moved",
             "strands_reinserted", "partitions", "free_partitions"))
    summary = one("summary")
    numeric(summary, "summary",
            ("throughput_ratio", "identical", "invariants_ok",
             "points_equal", "ratio_gated"))
    for flag in ("identical", "invariants_ok", "points_equal"):
        if summary[flag] != 1:
            sys.exit(f"{path}: summary {flag!r} is {summary[flag]}, "
                     f"expected 1")

print(f"{path}: ok ({bench}, {len(records)} records"
      + (f", {len(rw)} rw" if rw else "") + ")")
EOF
  then :; else status=1; fi
done
exit $status

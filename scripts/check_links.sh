#!/usr/bin/env bash
# Markdown link check: every relative link target named in the repo's
# top-level docs must exist, so stale cross-references (a renamed
# bench, a dropped DESIGN section anchor file, a moved example) fail
# the build instead of rotting silently. External (http/mailto) links
# and intra-document #anchors are out of scope.
#
#   scripts/check_links.sh [file ...]     # default: the top-level docs

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md DESIGN.md CHANGES.md ROADMAP.md)
fi

status=0
for f in "${files[@]}"; do
  [ -f "$f" ] || { echo "missing doc: $f"; status=1; continue; }
  # Inline links: [text](target). Strip any #fragment; keep local paths.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|"") continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "$f: broken link -> $target"
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$status" -ne 0 ]; then
  echo "docs link check FAILED"
else
  echo "docs link check OK (${files[*]})"
fi
exit "$status"

#!/usr/bin/env bash
# Project-rule linter: greppable invariants that neither the compiler
# nor clang-tidy enforce. Exits 0 on a clean tree, 1 with a report
# otherwise.
#
# Rules:
#   R1  No locale-sensitive number parsing (atof/strtod/strtof/stod/
#       stof/stoi) outside src/common/string_util.* — a comma-decimal
#       locale silently corrupts every parsed coordinate. Use
#       ParseDoubleText / ParseInt from common/string_util.h.
#   R2  No raw memcpy outside src/persist/ and src/core/ — type-punning
#       belongs in the wire layer and the kernel layer; everywhere else
#       use std::bit_cast.
#   R3  No raw std synchronization primitives in src/ outside
#       src/common/mutex.h — locks must go through the annotated
#       wrappers so the clang thread-safety analysis sees them.
#   R4  No direct file writers in bench/ outside bench_util.cc — every
#       BENCH_*.json goes through bench::BenchJson so the schema stays
#       uniform for the driver's trend tooling.
#
# Usage: scripts/check_source.sh [--selftest]
#   --selftest runs the rules against tests/lint/ (a corpus of known-bad
#   fixtures) and fails unless every fixture is flagged by its rule.

set -u
cd "$(dirname "$0")/.."

FAILURES=0

report() {  # report <rule> <matches>
  if [ -n "$2" ]; then
    echo "== $1 violations:"
    echo "$2"
    FAILURES=$((FAILURES + 1))
  fi
}

# Each rule_* echoes matching "file:line:text" lines for the files given
# as arguments (so the selftest can point them at fixtures).

rule_locale_parse() {
  grep -nE '(std::)?(atof|strtod|strtof|stod|stof|stoi) *\(' "$@" \
    /dev/null 2>/dev/null |
    grep -v 'common/string_util'
}

rule_raw_memcpy() {
  grep -nE '(std::)?memcpy *\(' "$@" /dev/null 2>/dev/null |
    grep -v -e 'src/persist/' -e 'src/core/'
}

rule_raw_sync() {
  grep -nE \
    'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)' \
    "$@" /dev/null 2>/dev/null |
    grep -v 'src/common/mutex\.h'
}

rule_bench_writer() {
  grep -nE '(std::)?fopen *\(|std::(o|f)stream[^_a-zA-Z]|std::ofstream' \
    "$@" /dev/null 2>/dev/null |
    grep -v 'bench/bench_util'
}

run_tree_checks() {
  # shellcheck disable=SC2046
  local src_files bench_files
  src_files=$(find src -name '*.cc' -o -name '*.h')
  bench_files=$(find bench -name '*.cc' -o -name '*.h')

  # shellcheck disable=SC2086
  report "R1 (locale-sensitive parse; use common/string_util)" \
    "$(rule_locale_parse $src_files $bench_files)"
  # shellcheck disable=SC2086
  report "R2 (raw memcpy outside persist/ and core/; use std::bit_cast)" \
    "$(rule_raw_memcpy $src_files)"
  # shellcheck disable=SC2086
  report "R3 (raw std sync primitive; use common/mutex.h wrappers)" \
    "$(rule_raw_sync $src_files)"
  # shellcheck disable=SC2086
  report "R4 (direct file writer in bench/; use bench::BenchJson)" \
    "$(rule_bench_writer $bench_files)"
}

run_selftest() {
  # Every fixture must be caught by the rule its name declares;
  # a fixture slipping through means the rule regressed.
  local ok=0 bad=0
  check_fixture() {  # check_fixture <rule_fn> <file>
    if [ ! -f "$2" ]; then
      echo "selftest: missing fixture $2"
      bad=$((bad + 1))
      return
    fi
    if [ -n "$("$1" "$2")" ]; then
      ok=$((ok + 1))
    else
      echo "selftest: $1 failed to flag $2"
      bad=$((bad + 1))
    fi
  }
  check_fixture rule_locale_parse tests/lint/bad_locale_parse.cc
  check_fixture rule_raw_memcpy tests/lint/src/bad_memcpy.cc
  check_fixture rule_raw_sync tests/lint/src/bad_raw_mutex.cc
  check_fixture rule_bench_writer tests/lint/bench/bad_bench_writer.cc
  echo "selftest: $ok fixtures flagged, $bad problems"
  [ "$bad" -eq 0 ] || exit 1
}

if [ "${1:-}" = "--selftest" ]; then
  run_selftest
  exit 0
fi

run_tree_checks
if [ "$FAILURES" -ne 0 ]; then
  echo "check_source: $FAILURES rule(s) violated"
  exit 1
fi
echo "check_source: clean"

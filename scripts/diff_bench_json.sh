#!/usr/bin/env bash
# Perf-trajectory gate (ROADMAP item 2 leftover): diff a freshly
# written bench artifact against the committed baseline and fail on a
# p99 latency regression.
#
#   scripts/diff_bench_json.sh <baseline.json> <current.json> [max_regress]
#
# Records are matched by identity key — ("record", "phase") for the
# open-loop phase records, ("record", "rw_phase") for the mixed
# read/write phases — and every matched pair's p99_us is compared. The
# gate fails when current p99 exceeds baseline by more than
# `max_regress` (default 0.15 = 15%) AND by more than an absolute
# 25 us floor: smoke-sized runs put only a few thousand samples in a
# histogram bucketed at 2^-7 relative precision, so single-bucket
# jitter on a sub-100 us p99 must not flap the gate. Records present
# only in one file are reported: missing from current is an error
# (a silently dropped phase is a regression too), new in current is
# informational. Improvements never fail.
#
# The baseline lives in bench/baselines/ and is refreshed by re-running
# the bench and copying the artifact over it (reviewed like any code
# change, so a perf regression cannot ratify itself).

set -u
cd "$(dirname "$0")/.."

if [ $# -lt 2 ]; then
  echo "usage: $0 <baseline.json> <current.json> [max_regress]" >&2
  exit 2
fi

python3 - "$1" "$2" "${3:-0.15}" <<'EOF'
import json
import sys

baseline_path, current_path, max_regress = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]))
ABS_FLOOR_US = 25.0

def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    records = doc.get("records")
    if not isinstance(records, list):
        sys.exit(f"{path}: 'records' must be a list")
    return records

def key(rec):
    kind = rec.get("record")
    if kind == "rw_phase":
        return ("rw_phase", rec.get("rw_phase"))
    if "phase" in rec:
        return (kind, rec.get("phase"))
    return None  # config/summary/total records carry no p99 identity.

def index(records, path):
    out = {}
    for rec in records:
        k = key(rec)
        if k is None or "p99_us" not in rec:
            continue
        if k in out:
            sys.exit(f"{path}: duplicate record identity {k}")
        out[k] = rec
    return out

base = index(load(baseline_path), baseline_path)
cur = index(load(current_path), current_path)
if not base:
    sys.exit(f"{baseline_path}: no p99-carrying records to diff")

failed = False
for k in sorted(base, key=str):
    if k not in cur:
        print(f"FAIL {k}: present in baseline, missing from current")
        failed = True
        continue
    b, c = float(base[k]["p99_us"]), float(cur[k]["p99_us"])
    delta = c - b
    rel = delta / b if b > 0 else 0.0
    verdict = "ok"
    if delta > ABS_FLOOR_US and b > 0 and rel > max_regress:
        verdict = "FAIL"
        failed = True
    print(f"{verdict} {k}: p99 {b:.0f}us -> {c:.0f}us "
          f"({rel:+.1%}, gate {max_regress:.0%} + {ABS_FLOOR_US:.0f}us)")
for k in sorted(set(cur) - set(base), key=str):
    print(f"new  {k}: p99 {float(cur[k]['p99_us']):.0f}us (no baseline)")

sys.exit(1 if failed else 0)
EOF

#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every src/ translation
# unit using the compile database. Exits nonzero on any finding —
# WarningsAsErrors promotes everything, so CI treats findings as build
# breaks.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir defaults to ./build and must contain compile_commands.json
#   (the top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS ON).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found (set CLANG_TIDY=... to override)" >&2
  exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" >&2
  echo "  configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

mapfile -t FILES < <(find src -name '*.cc' | sort)
echo "run_clang_tidy: ${#FILES[@]} files, config $(pwd)/.clang-tidy"

# xargs -P fans the single-TU invocations out across cores; clang-tidy
# is embarrassingly parallel per file.
JOBS="$(nproc 2>/dev/null || echo 4)"
if printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above (treated as errors)" >&2
  exit 1
fi

// Copyright 2026 The SemTree Authors
//
// Tests for the adversarial workload generator and the open-loop
// driver (workload/workload_gen.h, workload/driver.h): trace
// determinism, phase/hot-set mechanics, op-mix and budget-tier
// distribution, and the deterministic-replay property — the same seed
// and config produce the identical op trace and identical aggregate
// counters at different target qps, proving pacing changes only *when*
// ops run, never *what* runs.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/backends.h"
#include "core/versioned_index.h"
#include "engine/query_engine.h"
#include "workload/driver.h"
#include "workload/workload_gen.h"

namespace semtree {
namespace workload {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig c;
  c.num_keys = 500;
  c.dims = 4;
  c.zipf_s = 0.99;
  c.total_ops = 2000;
  c.ops_per_phase = 500;
  c.hotset_rotation = 100;
  c.knn_k = 5;
  c.range_radius = 0.3;
  c.seed = 42;
  return c;
}

std::vector<KdPoint> CorpusFor(const WorkloadConfig& c) {
  return MakeClusteredCorpus(c.num_keys, c.dims, 8, c.seed);
}

WorkloadTrace MustGenerate(const WorkloadConfig& c,
                           const std::vector<KdPoint>& corpus) {
  auto trace = GenerateTrace(c, corpus);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return std::move(*trace);
}

// ---------------------------------------------------------------- gen

TEST(WorkloadGenTest, CorpusIsDeterministicAndWellFormed) {
  auto a = MakeClusteredCorpus(300, 6, 5, 9);
  auto b = MakeClusteredCorpus(300, 6, 5, 9);
  ASSERT_EQ(a.size(), 300u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].coords.size(), 6u);
    EXPECT_EQ(a[i].coords, b[i].coords);
  }
  auto c = MakeClusteredCorpus(300, 6, 5, 10);
  EXPECT_NE(a[0].coords, c[0].coords);
}

TEST(WorkloadGenTest, TraceIsDeterministic) {
  WorkloadConfig config = SmallConfig();
  auto corpus = CorpusFor(config);
  WorkloadTrace a = MustGenerate(config, corpus);
  WorkloadTrace b = MustGenerate(config, corpus);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(TraceHash(a), TraceHash(b));
}

TEST(WorkloadGenTest, TraceHashDetectsSeedChange) {
  WorkloadConfig config = SmallConfig();
  auto corpus = CorpusFor(config);
  WorkloadTrace a = MustGenerate(config, corpus);
  config.seed = 43;
  WorkloadTrace b = MustGenerate(config, corpus);
  EXPECT_NE(TraceHash(a), TraceHash(b));
}

TEST(WorkloadGenTest, PhaseAssignmentFollowsOpIndex) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 350;
  config.ops_per_phase = 100;
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  EXPECT_EQ(trace.num_phases, 4u);
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    EXPECT_EQ(trace.ops[i].phase, i / 100);
  }
}

TEST(WorkloadGenTest, SinglePhaseWhenUnconfigured) {
  WorkloadConfig config = SmallConfig();
  config.ops_per_phase = 0;
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  EXPECT_EQ(trace.num_phases, 1u);
  for (const WorkloadOp& op : trace.ops) EXPECT_EQ(op.phase, 0u);
}

TEST(WorkloadGenTest, HotsetRotatesAcrossPhases) {
  // With heavy skew, each phase's most-hit key is rank 0 rotated by
  // phase * hotset_rotation — the hotspot demonstrably *moves*.
  WorkloadConfig config = SmallConfig();
  config.zipf_s = 2.0;
  config.total_ops = 4000;
  config.ops_per_phase = 1000;
  config.hotset_rotation = 123;
  config.mix = OpMix{0.0, 0.0, 1.0, 0.0};
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  for (uint32_t phase = 0; phase < 4; ++phase) {
    std::map<uint64_t, size_t> hits;
    for (const WorkloadOp& op : trace.ops) {
      if (op.phase == phase) ++hits[op.key];
    }
    uint64_t top_key = 0;
    size_t top_hits = 0;
    for (const auto& [key, count] : hits) {
      if (count > top_hits) {
        top_hits = count;
        top_key = key;
      }
    }
    EXPECT_EQ(top_key, (uint64_t{phase} * 123) % config.num_keys)
        << "phase " << phase;
  }
}

TEST(WorkloadGenTest, OpMixRatiosRespected) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 20000;
  config.ops_per_phase = 0;
  config.mix = OpMix{0.10, 0.10, 0.50, 0.30};
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  std::map<OpKind, size_t> counts;
  for (const WorkloadOp& op : trace.ops) ++counts[op.kind];
  // Removes degrade to inserts only while nothing is live, which at
  // these ratios is a handful of ops at the very front.
  EXPECT_NEAR(double(counts[OpKind::kInsert]), 2000.0, 300.0);
  EXPECT_NEAR(double(counts[OpKind::kRemove]), 2000.0, 300.0);
  EXPECT_NEAR(double(counts[OpKind::kKnn]), 10000.0, 500.0);
  EXPECT_NEAR(double(counts[OpKind::kRange]), 6000.0, 500.0);
}

TEST(WorkloadGenTest, RemovesAlwaysTargetLiveInserts) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 5000;
  config.mix = OpMix{0.3, 0.3, 0.2, 0.2};
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  std::set<PointId> live;
  size_t removes = 0;
  for (const WorkloadOp& op : trace.ops) {
    if (op.kind == OpKind::kInsert) {
      // Fresh ids, disjoint from the corpus key space.
      EXPECT_GE(op.id, config.num_keys);
      EXPECT_TRUE(live.insert(op.id).second);
    } else if (op.kind == OpKind::kRemove) {
      ++removes;
      EXPECT_EQ(live.erase(op.id), 1u)
          << "remove of id " << op.id << " not live";
    }
  }
  EXPECT_GT(removes, 0u);
}

TEST(WorkloadGenTest, RemoveWithNothingLiveDegradesToInsert) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 50;
  config.mix = OpMix{0.0, 1.0, 0.0, 0.0};  // Remove-only mix.
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  // The first op must degrade; thereafter inserts and removes
  // alternate (each remove empties the live set again).
  ASSERT_FALSE(trace.ops.empty());
  EXPECT_EQ(trace.ops[0].kind, OpKind::kInsert);
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    EXPECT_EQ(trace.ops[i].kind,
              i % 2 == 0 ? OpKind::kInsert : OpKind::kRemove);
  }
}

TEST(WorkloadGenTest, BudgetTiersAssignedToSearchOpsByWeight) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 10000;
  config.mix = OpMix{0.1, 0.1, 0.4, 0.4};
  config.budget_tiers = {
      BudgetTier{SearchBudget::Exact(), 0.75},
      BudgetTier{SearchBudget::MaxDistances(50), 0.25},
  };
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  size_t searches = 0, budgeted = 0;
  for (const WorkloadOp& op : trace.ops) {
    if (op.kind == OpKind::kKnn || op.kind == OpKind::kRange) {
      ++searches;
      if (!op.budget.exact()) {
        ++budgeted;
        EXPECT_EQ(op.budget.max_distance_computations, 50u);
      }
    } else {
      EXPECT_TRUE(op.budget.exact());  // Mutations carry no budget.
    }
  }
  ASSERT_GT(searches, 0u);
  EXPECT_NEAR(double(budgeted) / double(searches), 0.25, 0.03);
}

TEST(WorkloadGenTest, ValidationRejectsBadConfigs) {
  auto corpus = MakeClusteredCorpus(10, 4, 2, 1);
  WorkloadConfig c;
  c.num_keys = 10;
  c.dims = 4;

  WorkloadConfig bad = c;
  bad.num_keys = 0;
  EXPECT_TRUE(GenerateTrace(bad, {}).status().IsInvalidArgument());

  bad = c;
  bad.mix = OpMix{0.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(GenerateTrace(bad, corpus).status().IsInvalidArgument());

  bad = c;
  bad.mix.knn = -1.0;
  EXPECT_TRUE(GenerateTrace(bad, corpus).status().IsInvalidArgument());

  bad = c;
  bad.zipf_s = -0.5;
  EXPECT_TRUE(GenerateTrace(bad, corpus).status().IsInvalidArgument());

  bad = c;
  bad.query_noise = -0.1;
  EXPECT_TRUE(GenerateTrace(bad, corpus).status().IsInvalidArgument());

  bad = c;
  bad.knn_k = 0;
  EXPECT_TRUE(GenerateTrace(bad, corpus).status().IsInvalidArgument());

  bad = c;
  bad.budget_tiers = {BudgetTier{SearchBudget::Exact(), -1.0}};
  EXPECT_TRUE(GenerateTrace(bad, corpus).status().IsInvalidArgument());

  // Corpus not matching num_keys, and wrong dimensionality.
  EXPECT_TRUE(GenerateTrace(c, MakeClusteredCorpus(9, 4, 2, 1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateTrace(c, MakeClusteredCorpus(10, 3, 2, 1))
                  .status()
                  .IsInvalidArgument());
}

TEST(WorkloadGenTest, SZeroSpreadsKeysUniformly) {
  WorkloadConfig config = SmallConfig();
  config.zipf_s = 0.0;
  config.num_keys = 50;
  config.total_ops = 50000;
  config.ops_per_phase = 0;
  config.mix = OpMix{0.0, 0.0, 1.0, 0.0};
  auto corpus = CorpusFor(config);
  WorkloadTrace trace = MustGenerate(config, corpus);
  std::map<uint64_t, size_t> hits;
  for (const WorkloadOp& op : trace.ops) ++hits[op.key];
  for (const auto& [key, count] : hits) {
    EXPECT_NEAR(double(count), 1000.0, 150.0) << "key " << key;
  }
}

// ------------------------------------------------------------- driver

struct EngineFixture {
  explicit EngineFixture(const WorkloadConfig& config)
      : corpus(CorpusFor(config)) {
    index = MakeSpatialIndex(BackendKind::kKdTree, config.dims);
    Status st = index->BulkLoad(corpus);
    EXPECT_TRUE(st.ok()) << st.ToString();
    QueryEngineOptions eopts;
    eopts.threads = 2;
    engine = std::make_unique<QueryEngine>(index.get(), eopts);
  }

  std::vector<KdPoint> corpus;
  std::unique_ptr<SpatialIndex> index;
  std::unique_ptr<QueryEngine> engine;
};

DriverConfig FastDriver() {
  DriverConfig d;
  d.target_qps = 50000.0;  // Keeps tests quick; pacing still real.
  d.workers = 1;
  d.max_pending = 0;
  return d;
}

TEST(WorkloadDriverTest, ExecutesEveryOpOfTheTrace) {
  WorkloadConfig config = SmallConfig();
  EngineFixture fx(config);
  WorkloadTrace trace = MustGenerate(config, fx.corpus);
  auto report = RunOpenLoop(fx.engine.get(), trace, FastDriver());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  size_t knn = 0, range = 0, inserts = 0, removes = 0;
  for (const WorkloadOp& op : trace.ops) {
    knn += op.kind == OpKind::kKnn;
    range += op.kind == OpKind::kRange;
    inserts += op.kind == OpKind::kInsert;
    removes += op.kind == OpKind::kRemove;
  }
  const PhaseStats& total = report->total;
  EXPECT_EQ(total.issued, trace.ops.size());
  EXPECT_EQ(total.completed, trace.ops.size());
  EXPECT_EQ(total.shed, 0u);
  EXPECT_EQ(total.errors, 0u);
  EXPECT_EQ(total.knn, knn);
  EXPECT_EQ(total.range, range);
  EXPECT_EQ(total.inserts, inserts);
  EXPECT_EQ(total.removes, removes);
  EXPECT_EQ(total.latency.count(), trace.ops.size());
  EXPECT_GT(total.throughput_qps, 0.0);
  ASSERT_EQ(report->phases.size(), trace.num_phases);
  uint64_t phase_completed = 0, phase_latency = 0;
  for (const PhaseStats& ps : report->phases) {
    phase_completed += ps.completed;
    phase_latency += ps.latency.count();
    EXPECT_GT(ps.latency.ValueAtQuantile(0.5), 0u);
  }
  EXPECT_EQ(phase_completed, total.completed);
  EXPECT_EQ(phase_latency, total.latency.count());
}

TEST(WorkloadDriverTest, DeterministicReplayAcrossTargetQps) {
  // The satellite property: pacing never changes *what* runs. One
  // worker keeps execution order == trace order, so every per-op
  // outcome — and hence every aggregate counter — must be identical
  // at 25k and at 100k target qps. Budget tiers make the truncation
  // counters non-trivially non-zero.
  WorkloadConfig config = SmallConfig();
  config.total_ops = 1500;
  config.budget_tiers = {
      BudgetTier{SearchBudget::Exact(), 0.6},
      BudgetTier{SearchBudget::MaxDistances(8), 0.4},
  };
  EngineFixture fast_fx(config), slow_fx(config);
  WorkloadTrace fast_trace = MustGenerate(config, fast_fx.corpus);
  WorkloadTrace slow_trace = MustGenerate(config, slow_fx.corpus);
  ASSERT_EQ(TraceHash(fast_trace), TraceHash(slow_trace));

  DriverConfig fast = FastDriver();
  fast.target_qps = 100000.0;
  DriverConfig slow = FastDriver();
  slow.target_qps = 25000.0;

  auto a = RunOpenLoop(fast_fx.engine.get(), fast_trace, fast);
  auto b = RunOpenLoop(slow_fx.engine.get(), slow_trace, slow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->phases.size(), b->phases.size());
  EXPECT_GT(a->total.truncated, 0u);  // The claim is non-trivial.
  for (size_t p = 0; p < a->phases.size(); ++p) {
    const PhaseStats &pa = a->phases[p], &pb = b->phases[p];
    EXPECT_EQ(pa.issued, pb.issued) << "phase " << p;
    EXPECT_EQ(pa.completed, pb.completed) << "phase " << p;
    EXPECT_EQ(pa.shed, pb.shed) << "phase " << p;
    EXPECT_EQ(pa.errors, pb.errors) << "phase " << p;
    EXPECT_EQ(pa.truncated, pb.truncated) << "phase " << p;
    EXPECT_EQ(pa.cache_hits, pb.cache_hits) << "phase " << p;
    EXPECT_EQ(pa.knn, pb.knn) << "phase " << p;
    EXPECT_EQ(pa.range, pb.range) << "phase " << p;
    EXPECT_EQ(pa.inserts, pb.inserts) << "phase " << p;
    EXPECT_EQ(pa.removes, pb.removes) << "phase " << p;
  }
  EXPECT_EQ(a->total.truncated, b->total.truncated);
  EXPECT_EQ(a->total.cache_hits, b->total.cache_hits);
  EXPECT_EQ(a->total.errors, b->total.errors);
}

TEST(WorkloadDriverTest, TruncationTiersAreCountedPerPhase) {
  WorkloadConfig config = SmallConfig();
  config.mix = OpMix{0.0, 0.0, 1.0, 0.0};
  config.budget_tiers = {BudgetTier{SearchBudget::MaxDistances(2), 1.0}};
  EngineFixture fx(config);
  WorkloadTrace trace = MustGenerate(config, fx.corpus);
  auto report = RunOpenLoop(fx.engine.get(), trace, FastDriver());
  ASSERT_TRUE(report.ok());
  // A 2-distance cap over a 500-point corpus truncates every k=5
  // search that misses the cache; hits replay the original verdict.
  EXPECT_EQ(report->total.truncated, report->total.completed);
  EXPECT_DOUBLE_EQ(report->total.truncation_rate, 1.0);
  for (const PhaseStats& ps : report->phases) {
    EXPECT_EQ(ps.truncated, ps.completed);
  }
}

TEST(WorkloadDriverTest, ErrorsAreCountedNotFatal) {
  // A hand-built trace whose removes target ids that were never
  // inserted: each op executes, fails with NotFound, and lands in the
  // error counters without aborting the run.
  WorkloadConfig config = SmallConfig();
  EngineFixture fx(config);
  WorkloadTrace trace;
  trace.num_phases = 1;
  for (int i = 0; i < 10; ++i) {
    WorkloadOp op;
    op.kind = OpKind::kRemove;
    op.id = 1000000 + i;
    op.coords = fx.corpus[i].coords;
    trace.ops.push_back(op);
  }
  auto report = RunOpenLoop(fx.engine.get(), trace, FastDriver());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total.completed, 10u);
  EXPECT_EQ(report->total.errors, 10u);
  EXPECT_DOUBLE_EQ(report->total.error_rate, 1.0);
}

TEST(WorkloadDriverTest, BoundedQueueShedsUnderOverload) {
  // Arrivals every 1us against a single worker whose exact k=50
  // searches over 4000 points take far longer than that: the 4-deep
  // pending queue must shed, and shed ops never enter the latency
  // histogram.
  WorkloadConfig config = SmallConfig();
  config.num_keys = 4000;
  config.knn_k = 50;
  config.total_ops = 3000;
  config.mix = OpMix{0.0, 0.0, 1.0, 0.0};
  EngineFixture fx(config);
  WorkloadTrace trace = MustGenerate(config, fx.corpus);
  DriverConfig d;
  d.target_qps = 1000000.0;
  d.workers = 1;
  d.max_pending = 4;
  auto report = RunOpenLoop(fx.engine.get(), trace, d);
  ASSERT_TRUE(report.ok());
  const PhaseStats& total = report->total;
  EXPECT_EQ(total.issued, trace.ops.size());
  EXPECT_EQ(total.completed + total.shed, total.issued);
  EXPECT_GT(total.shed, 0u);
  EXPECT_GT(total.shed_rate, 0.0);
  EXPECT_EQ(total.latency.count(), total.completed);
}

TEST(WorkloadDriverTest, MultiWorkerCountersMatchSingleWorker) {
  // Pure-query trace against a static index: per-op outcomes are
  // order-independent, so a 4-worker run must aggregate to the same
  // op and truncation counts as the single-worker run.
  WorkloadConfig config = SmallConfig();
  config.mix = OpMix{0.0, 0.0, 0.7, 0.3};
  config.budget_tiers = {
      BudgetTier{SearchBudget::Exact(), 0.5},
      BudgetTier{SearchBudget::MaxDistances(8), 0.5},
  };
  EngineFixture fx_one(config), fx_four(config);
  WorkloadTrace trace = MustGenerate(config, fx_one.corpus);
  DriverConfig one = FastDriver();
  DriverConfig four = FastDriver();
  four.workers = 4;
  auto a = RunOpenLoop(fx_one.engine.get(), trace, one);
  auto b = RunOpenLoop(fx_four.engine.get(), trace, four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total.completed, b->total.completed);
  EXPECT_EQ(a->total.errors, b->total.errors);
  EXPECT_EQ(a->total.truncated, b->total.truncated);
  EXPECT_EQ(a->total.knn, b->total.knn);
  EXPECT_EQ(a->total.range, b->total.range);
}

TEST(WorkloadDriverTest, RejectsInvalidQps) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 10;
  EngineFixture fx(config);
  WorkloadTrace trace = MustGenerate(config, fx.corpus);
  for (double qps : {0.0, -5.0,
                     std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    DriverConfig d;
    d.target_qps = qps;
    EXPECT_TRUE(RunOpenLoop(fx.engine.get(), trace, d)
                    .status()
                    .IsInvalidArgument())
        << "qps=" << qps;
  }
}

TEST(WorkloadDriverTest, EmptyTraceYieldsEmptyReport) {
  WorkloadConfig config = SmallConfig();
  EngineFixture fx(config);
  WorkloadTrace trace;
  auto report = RunOpenLoop(fx.engine.get(), trace, FastDriver());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total.issued, 0u);
  EXPECT_EQ(report->total.completed, 0u);
  EXPECT_EQ(report->total.latency.count(), 0u);
  ASSERT_EQ(report->phases.size(), 1u);
}

TEST(WorkloadDriverTest, HistogramPrecisionFlowsFromConfig) {
  WorkloadConfig config = SmallConfig();
  config.total_ops = 100;
  EngineFixture fx(config);
  WorkloadTrace trace = MustGenerate(config, fx.corpus);
  DriverConfig d = FastDriver();
  d.histogram_precision_bits = 10;
  auto report = RunOpenLoop(fx.engine.get(), trace, d);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total.latency.precision_bits(), 10u);
  for (const PhaseStats& ps : report->phases) {
    EXPECT_EQ(ps.latency.precision_bits(), 10u);
  }
}

// ------------------------------------------------------------ mixed-rw

TEST(MixedRwTest, RejectsInvalidConfigs) {
  VersionedIndex index(4);
  auto corpus = CorpusFor(SmallConfig());
  ASSERT_TRUE(index.BulkLoad(corpus).ok());
  QueryEngineOptions eopts;
  eopts.threads = 2;
  eopts.cache_capacity = 0;
  QueryEngine engine(&index, eopts);

  MixedRwConfig cfg;
  cfg.phase_duration_s = 0.0;
  EXPECT_FALSE(RunMixedReadWrite(&engine, corpus, cfg).ok());
  cfg = MixedRwConfig();
  cfg.writer_qps = 0.0;
  EXPECT_FALSE(RunMixedReadWrite(&engine, corpus, cfg).ok());
  cfg = MixedRwConfig();
  cfg.query_noise = -1.0;
  EXPECT_FALSE(RunMixedReadWrite(&engine, corpus, cfg).ok());
  cfg = MixedRwConfig();
  EXPECT_FALSE(RunMixedReadWrite(&engine, {}, cfg).ok());  // No corpus.
}

TEST(MixedRwTest, RunsBothPhasesAndReportsRatio) {
  VersionedIndex index(4);
  auto corpus = CorpusFor(SmallConfig());
  ASSERT_TRUE(index.BulkLoad(corpus).ok());
  QueryEngineOptions eopts;
  eopts.threads = 2;
  eopts.cache_capacity = 0;
  QueryEngine engine(&index, eopts);

  MixedRwConfig cfg;
  cfg.phase_duration_s = 0.05;  // Semantics only; the ratio gate runs
  cfg.reader_threads = 1;       // in the bench, not here.
  cfg.writer_qps = 500.0;
  auto report = RunMixedReadWrite(&engine, corpus, cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Read-only phase: reads happened, nothing was written.
  EXPECT_GT(report->read_only.reads, 0u);
  EXPECT_EQ(report->read_only.writes, 0u);
  EXPECT_EQ(report->read_only.read_errors, 0u);
  EXPECT_GT(report->read_only.duration_s, 0.0);
  EXPECT_GT(report->read_only.read_qps, 0.0);
  EXPECT_EQ(report->read_only.read_latency.count(),
            report->read_only.reads);

  // Mixed phase: the writer made progress alongside the readers.
  EXPECT_GT(report->mixed.reads, 0u);
  EXPECT_GT(report->mixed.writes, 0u);
  EXPECT_EQ(report->mixed.read_errors, 0u);
  EXPECT_EQ(report->mixed.write_errors, 0u);
  EXPECT_GT(report->read_throughput_ratio, 0.0);

  // The writer's post-phase drain removed its sliding window: every
  // surviving point is from the original corpus.
  ASSERT_TRUE(index.Freeze().ok());
  EXPECT_EQ(index.size(), corpus.size());
}

}  // namespace
}  // namespace workload
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Unit tests for src/common: Status/Result, Rng, string utilities,
// Mutex wrappers, ThreadPool, Stopwatch.

#include <atomic>
#include <future>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace semtree {
namespace {

// ---------------------------------------------------------------------
// Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_FALSE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  SEMTREE_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(7), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  SEMTREE_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(29);
  const int n = 20000;
  int rank0 = 0, rank9 = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t r = rng.Zipf(10, 1.0);
    EXPECT_LT(r, 10u);
    rank0 += (r == 0);
    rank9 += (r == 9);
  }
  EXPECT_GT(rank0, 4 * rank9);
}

TEST(RngTest, IdentifierLengthAndAlphabet) {
  Rng rng(31);
  std::string id = rng.Identifier(12);
  EXPECT_EQ(id.size(), 12u);
  for (char c : id) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

// ---------------------------------------------------------------------
// String utilities

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  alpha\t beta\n gamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC-1"), "abc-1");
  EXPECT_TRUE(StartsWith("semtree", "sem"));
  EXPECT_FALSE(StartsWith("sem", "semtree"));
  EXPECT_TRUE(EndsWith("semtree", "tree"));
  EXPECT_FALSE(EndsWith("tree", "semtree"));
}

TEST(StringUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024ull * 1024ull), "3.0 MiB");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(7), "7");
  EXPECT_EQ(HumanCount(1234), "1,234");
  EXPECT_EQ(HumanCount(1234567), "1,234,567");
}

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, FuturesCarryResults) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([]() { return 6 * 7; });
  auto f2 = pool.Submit([]() { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([]() { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsBrokenFuture) {
  // Regression: Submit used to enqueue unconditionally, so a task
  // submitted after shutdown would never run and its future would
  // block forever. Now the task is dropped and the future reports
  // broken_promise instead of deadlocking.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 16);  // Shutdown drains the queue first.
  auto late = pool.Submit([&counter]() {
    counter.fetch_add(1);
    return 99;
  });
  EXPECT_EQ(counter.load(), 16);  // The late task never ran.
  try {
    (void)late.get();
    FAIL() << "expected broken_promise from a post-shutdown Submit";
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::future_errc::broken_promise);
  }
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  pool.Submit([]() {}).get();
  pool.Shutdown();
  pool.Shutdown();  // Second call must be a no-op, not a double join.
  auto f = pool.Submit([]() { return 1; });
  EXPECT_THROW((void)f.get(), std::future_error);
}

TEST(ThreadPoolTest, WaitIsIdempotentAndReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&]() { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&]() { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter]() { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TryRunOneStealsQueuedWork) {
  // A pool whose single worker is parked on a long task still makes
  // progress when the caller steals from the queue directly.
  ThreadPool pool(1);
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([&started, gate]() {
    started.set_value();
    gate.wait();
  });
  // Only enqueue stealable work once the worker is provably parked on
  // the gate — otherwise this thread could steal the gate task itself
  // and wait on a release that never comes.
  started.get_future().wait();
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  while (pool.TryRunOne()) {
  }
  EXPECT_EQ(counter.load(), 8);
  EXPECT_FALSE(pool.TryRunOne());  // Queue is empty now.
  release.set_value();
  pool.Wait();
}

TEST(ThreadPoolTest, TrySubmitRefusedAfterShutdown) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.TrySubmit([&counter]() { counter.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(pool.TrySubmit([&counter]() { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 1);
}

// ---------------------------------------------------------------------
// TaskGroup

TEST(TaskGroupTest, RunsInlineWithoutPool) {
  TaskGroup group(nullptr);
  int ran = 0;
  group.Run([&ran]() { ++ran; });
  EXPECT_EQ(ran, 1);  // Inline: done before Wait.
  group.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(TaskGroupTest, NestedSubmissionOnSaturatedPoolCannotDeadlock) {
  // Regression for the parallel bulk builders: tasks recursively
  // submit subtasks from pool threads. With ONE worker, the root task
  // occupies it while its children sit in the queue — without the
  // stealing Wait this deadlocks. The group's Wait must drain the
  // queue itself.
  ThreadPool pool(1);
  TaskGroup group(&pool);
  std::atomic<int> leaves{0};
  // Recursive fan-out: each level spawns two children through the
  // same group; ~2^6 leaves in total.
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    group.Run([&spawn, depth]() { spawn(depth - 1); });
    group.Run([&spawn, depth]() { spawn(depth - 1); });
  };
  group.Run([&spawn]() { spawn(6); });
  group.Wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskGroupTest, WaitFromInsidePoolTaskDrainsByStealing) {
  // Even the root Run may come from a pool thread (nested build
  // inside a cluster handler). The waiter then IS the only worker.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  auto outer = pool.Submit([&pool, &done]() {
    TaskGroup group(&pool);
    for (int i = 0; i < 16; ++i) {
      group.Run([&done]() { done.fetch_add(1); });
    }
    group.Wait();  // Must steal: the sole worker is this frame.
    return done.load();
  });
  EXPECT_EQ(outer.get(), 16);
}

TEST(TaskGroupTest, FallsBackInlineWhenPoolShutDown) {
  ThreadPool pool(2);
  pool.Shutdown();
  TaskGroup group(&pool);
  int ran = 0;
  group.Run([&ran]() { ++ran; });
  group.Wait();
  EXPECT_EQ(ran, 1);
}

// ---------------------------------------------------------------------
// Logging

TEST(LoggingTest, LevelGateIsHonoured) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are swallowed; at-threshold emitted.
  // (No output capture here — the assertions cover the level state and
  // that emission does not crash from concurrent threads.)
  SEMTREE_LOG(Debug) << "suppressed " << 1;
  SEMTREE_LOG(Error) << "emitted " << 2;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < 50; ++i) SEMTREE_LOG(Warning) << "w" << i;
    });
  }
  for (auto& th : threads) th.join();
  SetLogLevel(original);
}

// ---------------------------------------------------------------------
// Stopwatch

// ---------------------------------------------------------------------
// Mutex wrappers (common/mutex.h)
//
// These pin the RAII semantics the thread-safety annotations encode:
// MutexLock holds exclusively for its scope, SharedReaderLock admits
// other readers but no writer, and both release on destruction. The
// try-lock probes run on a *separate* thread because try-locking a
// mutex the calling thread already holds is undefined behavior.

namespace {
// Runs `fn` on a fresh thread and returns its result; the join makes
// the probe's answer visible before the expectation runs.
template <typename Fn>
auto OnOtherThread(Fn fn) -> decltype(fn()) {
  decltype(fn()) result{};
  std::thread t([&result, &fn]() { result = fn(); });
  t.join();
  return result;
}
}  // namespace

TEST(MutexTest, MutexLockHoldsExclusivelyForScope) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
      if (!mu.TryLock()) return false;
      mu.Unlock();
      return true;
    }));
  }
  // Destroyed lock released the mutex.
  EXPECT_TRUE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
    if (!mu.TryLock()) return false;
    mu.Unlock();
    return true;
  }));
}

TEST(MutexTest, SharedReaderLockAdmitsReadersExcludesWriters) {
  SharedMutex mu;
  {
    SharedReaderLock reader(mu);
    // A second reader gets in...
    EXPECT_TRUE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
      if (!mu.TryLockShared()) return false;
      mu.UnlockShared();
      return true;
    }));
    // ...but a writer does not.
    EXPECT_FALSE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
      if (!mu.TryLock()) return false;
      mu.Unlock();
      return true;
    }));
  }
  EXPECT_TRUE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
    if (!mu.TryLock()) return false;
    mu.Unlock();
    return true;
  }));
}

TEST(MutexTest, SharedMutexLockExcludesReadersAndWriters) {
  SharedMutex mu;
  {
    SharedMutexLock writer(mu);
    EXPECT_FALSE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
      if (!mu.TryLockShared()) return false;
      mu.UnlockShared();
      return true;
    }));
    EXPECT_FALSE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
      if (!mu.TryLock()) return false;
      mu.Unlock();
      return true;
    }));
  }
  EXPECT_TRUE(OnOtherThread([&mu]() NO_THREAD_SAFETY_ANALYSIS {
    if (!mu.TryLockShared()) return false;
    mu.UnlockShared();
    return true;
  }));
}

TEST(MutexTest, MutexLockSerializesCriticalSections) {
  // Under TSan this is the canonical mutual-exclusion check: an
  // unguarded counter incremented by many threads through MutexLock
  // must come out exact (and race-free).
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8, kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter]() NO_THREAD_SAFETY_ANALYSIS {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&]() NO_THREAD_SAFETY_ANALYSIS {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    // If Wait failed to release mu, this lock would deadlock.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

// Negative-compile documentation: each of these bodies is a contract
// violation the clang CI leg (-Wthread-safety -Werror) rejects. They
// stay commented because the point of the annotations is that such
// code CANNOT build:
//
//   Mutex mu;
//   int value GUARDED_BY(mu);
//
//   void Bad1() { value = 1; }           // writing without the lock:
//       // error: writing variable 'value' requires holding mutex 'mu'
//       // exclusively [-Werror,-Wthread-safety-analysis]
//
//   void Bad2() { mu.Lock(); }           // return while still holding:
//       // error: mutex 'mu' is still held at the end of function
//
//   void Bad3() {
//     SharedReaderLock lock(shared_mu);
//     guarded_by_shared_mu = 1;          // writing under a READER lock:
//       // error: writing variable requires holding mutex exclusively
//   }

// ---------------------------------------------------------------------
// ThreadPool shutdown discipline (lock-discipline regression tests)

TEST(ThreadPoolTest, ConcurrentShutdownJoinsEachWorkerOnce) {
  // Regression: Shutdown used to join workers_ in place, so two
  // concurrent Shutdown calls could both join the same std::thread
  // (terminate) or race the vector. Now the vector is swapped out
  // under the lock and each caller reaps a disjoint set.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i) {
      pool.TrySubmit([&done]() { done.fetch_add(1); });
    }
    std::vector<std::thread> closers;
    for (int t = 0; t < 3; ++t) {
      closers.emplace_back([&pool]() { pool.Shutdown(); });
    }
    for (std::thread& t : closers) t.join();
    EXPECT_EQ(done.load(), 16);  // Shutdown drains the queue.
    EXPECT_EQ(pool.num_threads(), 0u);
  }
}

TEST(ThreadPoolTest, NumThreadsIsSafeDuringShutdown) {
  // Regression: num_threads() used to read workers_.size() unlocked
  // while Shutdown cleared the vector on another thread.
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4u);
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load()) {
      size_t n = pool.num_threads();
      EXPECT_TRUE(n == 0 || n == 4) << n;
    }
  });
  pool.Shutdown();
  stop.store(true);
  reader.join();
  EXPECT_EQ(pool.num_threads(), 0u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a hair so elapsed strictly grows.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GE(sw.ElapsedSeconds(), t0);
  EXPECT_GE(sw.ElapsedNanos(), 0u);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  double before = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), before + 1.0);
}

TEST(StopwatchTest, UnitConversionsConsistent) {
  Stopwatch sw;
  double s = sw.ElapsedSeconds();
  double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // Same order of magnitude.
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Tests for the v2 binary snapshot subsystem (src/persist/): wire
// primitives, container framing and checksums, structure-preserving
// round-trips for all four SpatialIndex backends, the SemanticIndex
// snapshot with its SemTree partition fan-out, QueryEngine warm start,
// the persistence-layer bugfixes (locale parsing, atomic writes,
// error-line diagnostics) and the result-cache fixes that ride along.

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/random.h"
#include "common/string_util.h"
#include "core/backends.h"
#include "kdtree/kdtree.h"
#include "engine/query_engine.h"
#include "engine/result_cache.h"
#include "nlp/requirements_corpus.h"
#include "ontology/requirements_vocabulary.h"
#include "persist/index_snapshot.h"
#include "persist/snapshot.h"
#include "persist/wire.h"
#include "semtree/index_io.h"

namespace semtree {
namespace {

std::vector<KdPoint> MakePoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<KdPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KdPoint p;
    p.id = i;
    p.coords.reserve(dims);
    for (size_t d = 0; d < dims; ++d) {
      p.coords.push_back(rng.UniformDouble(-10.0, 10.0));
    }
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<double> MakeQuery(size_t dims, Rng* rng) {
  std::vector<double> q;
  q.reserve(dims);
  for (size_t d = 0; d < dims; ++d) {
    q.push_back(rng->UniformDouble(-10.0, 10.0));
  }
  return q;
}

constexpr size_t kDims = 5;

// Builds a backend with insertion churn; KdTree and LinearScan also
// get removals + re-inserts so the arena free list is exercised.
std::unique_ptr<SpatialIndex> BuildBackend(BackendKind kind) {
  auto index = MakeSpatialIndex(kind, kDims, {.bucket_size = 8});
  std::vector<KdPoint> points = MakePoints(400, kDims, /*seed=*/7);
  for (const KdPoint& p : points) {
    EXPECT_TRUE(index->Insert(p.coords, p.id).ok());
  }
  if (kind == BackendKind::kKdTree || kind == BackendKind::kLinearScan) {
    for (size_t i = 0; i < 40; ++i) {
      EXPECT_TRUE(index->Remove(points[i * 7].coords, points[i * 7].id).ok());
    }
    for (const KdPoint& p : MakePoints(25, kDims, /*seed=*/17)) {
      EXPECT_TRUE(index->Insert(p.coords, p.id + 10000).ok());
    }
  }
  return index;
}

const BackendKind kAllBackends[] = {
    BackendKind::kKdTree,
    BackendKind::kLinearScan,
    BackendKind::kVpTree,
    BackendKind::kMTree,
};

// -------------------------------------------------------------------
// Wire primitives

TEST(WireTest, PrimitivesRoundTrip) {
  persist::ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-42);
  w.PutDouble(-0.0);
  w.PutDouble(1.0 / 3.0);
  w.PutString("hello\0world");
  w.PutU32Array({1, 2, 3});

  persist::ByteReader r(w.bytes());
  EXPECT_EQ(*r.U8(), 0xAB);
  EXPECT_EQ(*r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.I32(), -42);
  EXPECT_EQ(*r.U64(), uint64_t(1) << 63);  // -0.0 bit pattern, exact.
  EXPECT_EQ(*r.Double(), 1.0 / 3.0);
  EXPECT_EQ(*r.String(), std::string("hello"));  // string_view stops at \0.
  EXPECT_EQ(*r.U32Array(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedReadsAreCorruption) {
  persist::ByteWriter w;
  w.PutU32(7);
  persist::ByteReader r(w.bytes());
  EXPECT_TRUE(r.U64().status().IsCorruption());
  // A huge length prefix must not allocate or read past the end.
  persist::ByteWriter w2;
  w2.PutU64(uint64_t(1) << 60);
  persist::ByteReader r2(w2.bytes());
  EXPECT_TRUE(r2.String().status().IsCorruption());
  persist::ByteReader r3(w2.bytes());
  EXPECT_TRUE(r3.DoubleArray().status().IsCorruption());
}

// -------------------------------------------------------------------
// Backend snapshots

TEST(SpatialSnapshotTest, RoundTripAllBackends) {
  Rng rng(23);
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(BackendName(kind));
    auto original = BuildBackend(kind);
    auto bytes = persist::SerializeSpatialIndex(*original);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto loaded = persist::ParseSpatialIndex(*bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    EXPECT_EQ((*loaded)->name(), original->name());
    EXPECT_EQ((*loaded)->size(), original->size());
    EXPECT_EQ((*loaded)->dimensions(), original->dimensions());
    EXPECT_EQ((*loaded)->epoch(), original->epoch());

    for (int q = 0; q < 20; ++q) {
      std::vector<double> query = MakeQuery(kDims, &rng);
      SearchStats sa, sb;
      EXPECT_EQ(original->KnnSearch(query, 9, &sa),
                (*loaded)->KnnSearch(query, 9, &sb));
      // Same work counters: the load preserved the structure, so the
      // search visits the very same nodes — it did not rebuild.
      EXPECT_EQ(sa.nodes_visited, sb.nodes_visited);
      EXPECT_EQ(sa.points_examined, sb.points_examined);
      EXPECT_EQ(original->RangeSearch(query, 2.5),
                (*loaded)->RangeSearch(query, 2.5));
    }

    // Byte-exact: re-serializing the loaded index reproduces the
    // snapshot bit for bit.
    auto bytes2 = persist::SerializeSpatialIndex(**loaded);
    ASSERT_TRUE(bytes2.ok());
    EXPECT_EQ(*bytes, *bytes2);
  }
}

TEST(SpatialSnapshotTest, SplitPolicyRoundTrips) {
  // The split policy rides in the tuning section (one byte after the
  // metric); a warm-restarted index keeps bulk-building the way it was
  // configured to. Old snapshots without the byte load as median —
  // covered by the defaulting path the metric tail already exercises.
  for (BackendKind kind : kAllBackends) {
    SCOPED_TRACE(BackendName(kind));
    BackendOptions opts;
    opts.bucket_size = 8;
    opts.split_policy = SplitPolicy::kCentroid;
    auto original = MakeSpatialIndex(kind, kDims, opts);
    for (const KdPoint& p : MakePoints(60, kDims, /*seed=*/3)) {
      ASSERT_TRUE(original->Insert(p.coords, p.id).ok());
    }
    ASSERT_EQ(original->split_policy(), SplitPolicy::kCentroid);
    auto bytes = persist::SerializeSpatialIndex(*original);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto loaded = persist::ParseSpatialIndex(*bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->split_policy(), SplitPolicy::kCentroid);
  }
}

TEST(SpatialSnapshotTest, MutationAfterLoadMatchesOriginal) {
  // The free list and bucket layout survived, so post-restart inserts
  // land exactly where they would have without the restart.
  auto original = BuildBackend(BackendKind::kKdTree);
  auto bytes = persist::SerializeSpatialIndex(*original);
  ASSERT_TRUE(bytes.ok());
  auto loaded = persist::ParseSpatialIndex(*bytes);
  ASSERT_TRUE(loaded.ok());

  Rng rng(99);
  for (const KdPoint& p : MakePoints(50, kDims, /*seed=*/31)) {
    ASSERT_TRUE(original->Insert(p.coords, p.id + 50000).ok());
    ASSERT_TRUE((*loaded)->Insert(p.coords, p.id + 50000).ok());
  }
  EXPECT_EQ(original->epoch(), (*loaded)->epoch());
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query = MakeQuery(kDims, &rng);
    EXPECT_EQ(original->KnnSearch(query, 5),
              (*loaded)->KnnSearch(query, 5));
  }
  auto a = persist::SerializeSpatialIndex(*original);
  auto b = persist::SerializeSpatialIndex(**loaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SpatialSnapshotTest, FileRoundTripIsAtomic) {
  auto original = BuildBackend(BackendKind::kVpTree);
  std::string path = ::testing::TempDir() + "/vptree.snap";
  ASSERT_TRUE(persist::SaveSpatialIndex(*original, path).ok());
  // The temp file was renamed away, not left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  auto loaded = persist::LoadSpatialIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), original->size());
  EXPECT_TRUE(
      persist::LoadSpatialIndex("/nonexistent/x.snap").status().IsNotFound());
  std::remove(path.c_str());
}

TEST(SpatialSnapshotTest, TruncationRejected) {
  auto original = BuildBackend(BackendKind::kLinearScan);
  auto bytes = persist::SerializeSpatialIndex(*original);
  ASSERT_TRUE(bytes.ok());
  for (size_t keep :
       {size_t(0), size_t(4), size_t(19), bytes->size() / 2,
        bytes->size() - 1}) {
    SCOPED_TRACE(keep);
    auto r = persist::ParseSpatialIndex(bytes->substr(0, keep));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
}

TEST(SpatialSnapshotTest, BitFlipsRejectedByChecksum) {
  auto original = BuildBackend(BackendKind::kMTree);
  auto bytes = persist::SerializeSpatialIndex(*original);
  ASSERT_TRUE(bytes.ok());
  for (size_t pos : {size_t(2), bytes->size() / 3, bytes->size() / 2,
                     bytes->size() - 2}) {
    SCOPED_TRACE(pos);
    std::string flipped = *bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    auto r = persist::ParseSpatialIndex(std::move(flipped));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
}

TEST(SpatialSnapshotTest, CyclicTopologyRejected) {
  // Hand-craft a checksum-valid KdTree snapshot whose single routing
  // node points at itself; the loader must reject it instead of
  // letting the first query recurse forever.
  persist::Snapshot snap;
  persist::ByteWriter* blob = snap.AddSection(/*kSecBackendBlob=*/0x11);
  blob->PutU64(2);     // dimensions
  blob->PutU64(8);     // bucket_size
  blob->PutU64(0);     // epoch
  blob->PutU64(2);     // store: dimensions
  blob->PutU64(1024);  // store: chunk capacity
  blob->PutU64Array({7});  // store: one id
  blob->PutU32Array({});   // store: no free slots
  blob->PutU64(2);         // store: row doubles
  blob->PutDouble(1.0);
  blob->PutDouble(2.0);
  blob->PutU64(1);  // one node...
  blob->PutU8(0);   // ...which is a routing node
  blob->PutU32(0);
  blob->PutDouble(0.5);
  blob->PutI32(0);  // left = itself
  blob->PutI32(0);  // right = itself
  blob->PutU32Array({});
  snap.AddSection(/*kSecBackendKind=*/0x10)->PutU32(0);  // kKdTree
  auto r = persist::ParseSpatialIndex(snap.Serialize());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

// -------------------------------------------------------------------
// SemanticIndex snapshots (with SemTree partition fan-out)

class SemanticSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = RequirementsVocabulary();
    RequirementsCorpusGenerator gen(&vocab_,
                                    {.num_documents = 12, .seed = 5});
    auto triples = gen.GenerateTriples();
    ASSERT_TRUE(triples.ok());
    corpus_ = std::move(*triples);

    SemanticIndexOptions opts;
    opts.fastmap.dimensions = 6;
    opts.weights = TripleDistanceWeights{0.5, 0.25, 0.25};
    opts.bucket_size = 16;
    // Several data partitions, so the snapshot really fans out one
    // blob per compute node and reassembles them on load.
    opts.max_partitions = 4;
    opts.partition_capacity = 48;
    auto index = SemanticIndex::Build(&vocab_, corpus_, opts);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
    ASSERT_GT(index_->tree().PartitionCount(), 1u);
  }

  void ExpectQueriesIdentical(const SemanticIndex& a,
                              const SemanticIndex& b) {
    Rng rng(11);
    for (int q = 0; q < 10; ++q) {
      const Triple& query = corpus_[rng.Uniform(corpus_.size())];
      auto ha = a.KnnQuery(query, 7);
      auto hb = b.KnnQuery(query, 7);
      ASSERT_TRUE(ha.ok());
      ASSERT_TRUE(hb.ok());
      ASSERT_EQ(ha->size(), hb->size());
      for (size_t i = 0; i < ha->size(); ++i) {
        EXPECT_EQ((*ha)[i].id, (*hb)[i].id);
        EXPECT_EQ((*ha)[i].embedded_distance, (*hb)[i].embedded_distance);
      }
    }
  }

  Taxonomy vocab_;
  std::vector<Triple> corpus_;
  std::unique_ptr<SemanticIndex> index_;
};

TEST_F(SemanticSnapshotTest, SnapshotRoundTripPreservesPartitions) {
  auto bytes = persist::SerializeIndexSnapshot(*index_);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  SemanticIndexOptions runtime;
  runtime.max_partitions = 4;
  auto bundle = persist::ParseIndexSnapshot(*bytes, runtime);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  // The partition layout was reassembled, not re-bulk-loaded.
  EXPECT_EQ(bundle->index->tree().PartitionCount(),
            index_->tree().PartitionCount());
  EXPECT_EQ(bundle->index->size(), index_->size());
  EXPECT_TRUE(bundle->index->tree().CheckInvariants().ok());
  ExpectQueriesIdentical(*index_, *bundle->index);
  for (TripleId id = 0; id < index_->size(); ++id) {
    EXPECT_EQ(bundle->index->triple(id), index_->triple(id));
  }
}

TEST_F(SemanticSnapshotTest, LoadIndexSniffsBothGenerations) {
  // v2 binary through the v1 entry point.
  std::string v2 = ::testing::TempDir() + "/index.snap";
  ASSERT_TRUE(persist::SaveIndexSnapshot(*index_, v2).ok());
  SemanticIndexOptions runtime;
  runtime.max_partitions = 4;
  auto from_v2 = LoadIndex(v2, runtime);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  ExpectQueriesIdentical(*index_, *from_v2->index);

  // v1 text keeps loading exactly as before.
  std::string v1 = ::testing::TempDir() + "/index.txt";
  ASSERT_TRUE(SaveIndex(*index_, v1).ok());
  EXPECT_FALSE(std::ifstream(v1 + ".tmp").good());  // Atomic rename.
  auto from_v1 = LoadIndex(v1, runtime);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  ExpectQueriesIdentical(*index_, *from_v1->index);

  std::remove(v2.c_str());
  std::remove(v1.c_str());
}

TEST_F(SemanticSnapshotTest, TruncatedOrFlippedSnapshotRejected) {
  auto bytes = persist::SerializeIndexSnapshot(*index_);
  ASSERT_TRUE(bytes.ok());
  auto truncated =
      persist::ParseIndexSnapshot(bytes->substr(0, bytes->size() / 2));
  EXPECT_TRUE(truncated.status().IsCorruption());
  std::string flipped = *bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  auto r = persist::ParseIndexSnapshot(std::move(flipped));
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(SemanticSnapshotTest, TripleParseErrorReportsItsOwnLine) {
  std::string text = SerializeIndex(*index_);
  std::vector<std::string> lines = Split(text, '\n');
  size_t header = 0;
  while (header < lines.size() && !StartsWith(lines[header], "triples ")) {
    ++header;
  }
  ASSERT_LT(header, lines.size());
  // Corrupt the SECOND triple; 0-based index header+2, 1-based line
  // number header+3.
  const size_t corrupt_index = header + 2;
  const size_t expected_line = corrupt_index + 1;
  lines[corrupt_index] = "### not a triple ###";
  auto bundle = ParseIndex(Join(lines, "\n"));
  ASSERT_FALSE(bundle.ok());
  EXPECT_TRUE(bundle.status().IsCorruption());
  std::string needle =
      StringPrintf("line %zu", expected_line);
  EXPECT_NE(bundle.status().message().find(needle), std::string::npos)
      << bundle.status().message();
}

// -------------------------------------------------------------------
// Locale independence

class ScopedLocale {
 public:
  explicit ScopedLocale(const char* name) {
    const char* current = std::setlocale(LC_ALL, nullptr);
    previous_ = current != nullptr ? current : "C";
    active_ = std::setlocale(LC_ALL, name) != nullptr;
  }
  ~ScopedLocale() { std::setlocale(LC_ALL, previous_.c_str()); }
  bool active() const { return active_; }

 private:
  std::string previous_;
  bool active_;
};

TEST_F(SemanticSnapshotTest, RoundTripUnderCommaDecimalLocale) {
  ScopedLocale locale(std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr
                          ? "de_DE.UTF-8"
                          : "de_DE.utf8");
  if (!locale.active()) {
    GTEST_SKIP() << "no de_DE locale installed";
  }
  // Sanity: the locale really uses ',' — otherwise this test proves
  // nothing.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
  if (std::string(buf) != "1,5") {
    GTEST_SKIP() << "locale did not change the decimal point";
  }

  double v = 0.0;
  EXPECT_TRUE(ParseDoubleText("1.5", &v));
  EXPECT_EQ(v, 1.5);
  EXPECT_EQ(FormatDouble(1.5), "1.5");

  // v1 text: written and parsed with '.' regardless of LC_NUMERIC.
  std::string text = SerializeIndex(*index_);
  EXPECT_EQ(text.find("0,"), std::string::npos);
  auto bundle = ParseIndex(text);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ExpectQueriesIdentical(*index_, *bundle->index);

  // v2 binary snapshot is byte-oriented and equally immune.
  auto bytes = persist::SerializeIndexSnapshot(*index_);
  ASSERT_TRUE(bytes.ok());
  auto snap = persist::ParseIndexSnapshot(*bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ExpectQueriesIdentical(*index_, *snap->index);
}

// -------------------------------------------------------------------
// Result-cache fixes

TEST(ResultCacheFixTest, ClearResetsStatistics) {
  ShardedResultCache cache(2, 16);
  SpatialQuery q = SpatialQuery::Knn({1.0, 2.0}, 3);
  CacheKey key = CacheKey::Make(q, /*epoch=*/0);
  std::vector<Neighbor> out;
  EXPECT_FALSE(cache.Lookup(key, &out));        // miss
  cache.Put(key, {Neighbor{1, 0.5}});           // insertion
  EXPECT_TRUE(cache.Lookup(key, &out));         // hit
  ShardedResultCache::Stats before = cache.stats();
  EXPECT_EQ(before.hits, 1u);
  EXPECT_EQ(before.misses, 1u);
  EXPECT_EQ(before.insertions, 1u);

  cache.Clear();
  ShardedResultCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
  EXPECT_EQ(after.insertions, 0u);
  EXPECT_EQ(after.evictions, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheFixTest, NegativeZeroNormalized) {
  std::vector<double> coords = {1.0, 2.0};
  CacheKey plus = CacheKey::Make(SpatialQuery::Range(coords, 0.0), 4);
  CacheKey minus = CacheKey::Make(SpatialQuery::Range(coords, -0.0), 4);
  EXPECT_EQ(plus.param_bits, minus.param_bits);
  EXPECT_TRUE(plus == minus);

  // Functionally: a result cached under +0.0 hits for -0.0 (equal keys
  // must also hash equal, or the shard map would miss).
  ShardedResultCache cache(4, 16);
  cache.Put(plus, {Neighbor{7, 0.0}});
  std::vector<Neighbor> out;
  EXPECT_TRUE(cache.Lookup(minus, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7u);

  // Coordinates get the same treatment.
  CacheKey c1 = CacheKey::Make(SpatialQuery::Knn({0.0, 1.0}, 2), 0);
  CacheKey c2 = CacheKey::Make(SpatialQuery::Knn({-0.0, 1.0}, 2), 0);
  cache.Put(c1, {Neighbor{9, 0.25}});
  EXPECT_TRUE(cache.Lookup(c2, &out));
}

// -------------------------------------------------------------------
// QueryEngine warm start

TEST(WarmStartTest, EngineResumesAtSavedEpoch) {
  KdTree tree(kDims, {.bucket_size = 8});
  QueryEngineOptions eopts;
  eopts.threads = 2;
  QueryEngine engine(&tree, eopts);
  for (const KdPoint& p : MakePoints(200, kDims, /*seed=*/3)) {
    ASSERT_TRUE(engine.Insert(p.coords, p.id).ok());
  }

  Rng rng(5);
  std::vector<SpatialQuery> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(i % 2 == 0
                        ? SpatialQuery::Knn(MakeQuery(kDims, &rng), 5)
                        : SpatialQuery::Range(MakeQuery(kDims, &rng), 2.0));
  }
  auto before = engine.Run(batch);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(engine.cache_stats().insertions, 0u);

  std::string path = ::testing::TempDir() + "/engine.snap";
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());

  auto warm = QueryEngine::WarmStart(path, eopts);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  // Resumes at the saved index epoch, with an empty zero-stat cache.
  EXPECT_EQ(warm->engine->epoch(), engine.epoch());
  EXPECT_EQ(warm->engine->cache_stats().hits, 0u);
  EXPECT_EQ(warm->engine->cache_stats().insertions, 0u);

  auto after = warm->engine->Run(batch);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->outcomes.size(), before->outcomes.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(after->outcomes[i].neighbors, before->outcomes[i].neighbors);
  }

  // The warm-started engine keeps serving mutations.
  ASSERT_TRUE(
      warm->engine->Insert(MakeQuery(kDims, &rng), 777).ok());
  EXPECT_EQ(warm->engine->epoch(), engine.epoch() + 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semtree

// Environment variables alone never change a C++ program's runtime
// locale (processes start in "C" regardless of LANG/LC_ALL), so CI
// opts the whole suite into the environment's locale explicitly: with
// SEMTREE_TEST_SETLOCALE set and LC_ALL=de_DE.UTF-8, every test above
// runs under a comma-decimal locale, not just the dedicated one.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (std::getenv("SEMTREE_TEST_SETLOCALE") != nullptr) {
    const char* applied = std::setlocale(LC_ALL, "");
    std::printf("process locale: %s\n", applied ? applied : "(failed)");
  }
  return RUN_ALL_TESTS();
}

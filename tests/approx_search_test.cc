// Copyright 2026 The SemTree Authors
//
// Budget-semantics tests for the approximate-search subsystem
// (DESIGN.md §6):
//  * an exact SearchBudget is byte-identical to the budget-less search
//    on all four sequential backends AND the distributed SemTree;
//  * truncated searches are flagged, deterministic, and respect their
//    caps; epsilon searches never misreport a distance;
//  * budgeted and exact results never share a result-cache slot, and
//    a cache hit replays the original truncation verdict;
//  * the -0.0/0.0 epsilon normalization mirrors the radius one;
//  * the per-index default budget round-trips through the v2 snapshot.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/backends.h"
#include "core/query.h"
#include "engine/query_engine.h"
#include "engine/result_cache.h"
#include "persist/index_snapshot.h"
#include "semtree/semtree.h"

namespace semtree {
namespace {

constexpr size_t kDims = 4;

std::vector<std::vector<double>> RandomVectors(size_t n, size_t dims,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out(n);
  for (auto& v : out) {
    v.resize(dims);
    for (double& c : v) c = rng.UniformDouble(-1.0, 1.0);
  }
  return out;
}

std::unique_ptr<SpatialIndex> BuildIndex(BackendKind kind, size_t n,
                                         uint64_t seed) {
  BackendOptions opts;
  opts.bucket_size = 8;
  auto index = MakeSpatialIndex(kind, kDims, opts);
  auto rows = RandomVectors(n, kDims, seed);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(index->Insert(rows[i], PointId(i)).ok());
  }
  return index;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------
// Exact budgets are byte-identical to budget-less searches, per
// backend, and match the linear-scan gold standard.

class ApproxBackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ApproxBackendTest, ExactBudgetIsByteIdentical) {
  auto index = BuildIndex(GetParam(), 400, 11);
  auto gold = BuildIndex(BackendKind::kLinearScan, 400, 11);
  auto queries = RandomVectors(32, kDims, 12);
  for (const auto& q : queries) {
    SearchStats plain_stats, exact_stats;
    auto plain = index->KnnSearch(q, 9, &plain_stats);
    auto exact =
        index->KnnSearch(q, 9, SearchBudget::Exact(), &exact_stats);
    EXPECT_EQ(plain, exact);
    EXPECT_EQ(plain, gold->KnnSearch(q, 9));
    EXPECT_FALSE(exact_stats.truncated);
    EXPECT_EQ(plain_stats.points_examined, exact_stats.points_examined);
    EXPECT_EQ(plain_stats.nodes_visited, exact_stats.nodes_visited);

    SearchStats range_stats;
    auto range =
        index->RangeSearch(q, 0.6, SearchBudget::Exact(), &range_stats);
    EXPECT_EQ(range, index->RangeSearch(q, 0.6));
    EXPECT_EQ(range, gold->RangeSearch(q, 0.6));
    EXPECT_FALSE(range_stats.truncated);
  }
}

TEST_P(ApproxBackendTest, TruncatedSearchesAreFlaggedAndDeterministic) {
  auto index = BuildIndex(GetParam(), 400, 21);
  auto queries = RandomVectors(16, kDims, 22);
  SearchBudget budget = SearchBudget::MaxDistances(40);
  for (const auto& q : queries) {
    SearchStats a_stats, b_stats;
    auto a = index->KnnSearch(q, 9, budget, &a_stats);
    auto b = index->KnnSearch(q, 9, budget, &b_stats);
    EXPECT_EQ(a, b);  // Deterministic: identical truncation point.
    EXPECT_TRUE(a_stats.truncated);
    EXPECT_LE(a_stats.points_examined, 40u);
    EXPECT_EQ(a_stats.points_examined, b_stats.points_examined);
    // Budgeted distances are still true distances to stored points
    // (verify through the exact gold result: every reported pair must
    // appear there — recall may drop, precision may not).
    auto exact = index->KnnSearch(q, 400);
    for (const Neighbor& n : a) {
      bool found = false;
      for (const Neighbor& e : exact) {
        if (e.id == n.id && e.distance == n.distance) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "fabricated neighbor " << n.id;
    }
  }
}

TEST_P(ApproxBackendTest, ExhaustedDistanceBudgetStopsTheWalk) {
  auto index = BuildIndex(GetParam(), 400, 35);
  auto q = RandomVectors(1, kDims, 36)[0];
  SearchStats exact_stats, capped_stats;
  (void)index->KnnSearch(q, 9, SearchBudget::Exact(), &exact_stats);
  (void)index->KnnSearch(q, 9, SearchBudget::MaxDistances(5),
                         &capped_stats);
  // A spent distance budget freezes the result set; the walk must stop
  // rather than keep visiting nodes (on the KD-tree, whose routing
  // nodes charge no distances, continuing would traverse MORE nodes
  // than the exact search).
  EXPECT_LE(capped_stats.nodes_visited, exact_stats.nodes_visited);
  EXPECT_TRUE(capped_stats.truncated);
}

TEST_P(ApproxBackendTest, ReusedStatsObjectDoesNotEatTheBudget) {
  auto index = BuildIndex(GetParam(), 400, 37);
  auto queries = RandomVectors(3, kDims, 38)[0];
  SearchBudget budget = SearchBudget::MaxDistances(60);
  // SearchStats is an accumulative contract (benches reuse one object
  // across many searches); the budget must meter each search's own
  // work, not the accumulated counters.
  SearchStats reused;
  auto first = index->KnnSearch(queries, 5, budget, &reused);
  auto second = index->KnnSearch(queries, 5, budget, &reused);
  SearchStats fresh;
  auto control = index->KnnSearch(queries, 5, budget, &fresh);
  EXPECT_EQ(first, control);
  EXPECT_EQ(second, control);
  EXPECT_EQ(reused.points_examined, 2 * fresh.points_examined);
}

TEST_P(ApproxBackendTest, NodeBudgetTruncates) {
  if (GetParam() == BackendKind::kLinearScan) {
    // A scan is one node: no node cap above zero can interrupt it (the
    // distance cap is its budget knob, covered above).
    GTEST_SKIP();
  }
  auto index = BuildIndex(GetParam(), 400, 31);
  auto q = RandomVectors(1, kDims, 32)[0];
  SearchStats stats;
  auto hits = index->KnnSearch(q, 9, SearchBudget::MaxNodes(2), &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(stats.nodes_visited, 2u);
  (void)hits;
}

TEST_P(ApproxBackendTest, EpsilonRangeNeverMisreports) {
  auto index = BuildIndex(GetParam(), 400, 41);
  auto queries = RandomVectors(16, kDims, 42);
  for (const auto& q : queries) {
    auto exact = index->RangeSearch(q, 0.7);
    SearchStats stats;
    auto approx =
        index->RangeSearch(q, 0.7, SearchBudget::Epsilon(1.0), &stats);
    // Approximate range results are a subset of the exact ones.
    EXPECT_LE(approx.size(), exact.size());
    for (const Neighbor& n : approx) {
      bool found = false;
      for (const Neighbor& e : exact) {
        if (e.id == n.id && e.distance == n.distance) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "fabricated range member " << n.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ApproxBackendTest,
    ::testing::Values(BackendKind::kKdTree, BackendKind::kLinearScan,
                      BackendKind::kVpTree, BackendKind::kMTree),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(BackendName(info.param));
    });

// ---------------------------------------------------------------------
// Distributed SemTree: exact budgets reproduce the budget-less
// protocol results; budgeted runs truncate deterministically.

TEST(ApproxDistributedTest, ExactBudgetMatchesOnSemTree) {
  SemTreeOptions opts;
  opts.dimensions = kDims;
  opts.bucket_size = 8;
  opts.max_partitions = 4;
  opts.partition_capacity = 64;
  auto tree = SemTree::Create(opts);
  ASSERT_TRUE(tree.ok());
  auto rows = RandomVectors(300, kDims, 51);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(rows[i], PointId(i)).ok());
  }
  ASSERT_GT((*tree)->PartitionCount(), 1u);

  auto queries = RandomVectors(12, kDims, 52);
  for (const auto& q : queries) {
    DistributedSearchStats stats;
    auto plain = (*tree)->KnnSearch(q, 7);
    auto exact = (*tree)->KnnSearch(q, 7, SearchBudget::Exact(), &stats);
    ASSERT_TRUE(plain.ok() && exact.ok());
    EXPECT_EQ(*plain, *exact);
    EXPECT_FALSE(stats.truncated);

    auto range_plain = (*tree)->RangeSearch(q, 0.5);
    auto range_exact =
        (*tree)->RangeSearch(q, 0.5, SearchBudget::Exact(), &stats);
    ASSERT_TRUE(range_plain.ok() && range_exact.ok());
    EXPECT_EQ(*range_plain, *range_exact);
    EXPECT_FALSE(stats.truncated);
  }

  // Batch: exact budgets match, budgeted items are flagged per slot.
  std::vector<SpatialQuery> batch;
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.push_back(i % 2 == 0
                        ? SpatialQuery::Knn(queries[i], 5)
                        : SpatialQuery::Range(queries[i], 0.5));
  }
  std::vector<uint8_t> truncated;
  auto exact_batch = (*tree)->BatchSearch(batch, nullptr, &truncated);
  ASSERT_TRUE(exact_batch.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto want = batch[i].type == QueryType::kKnn
                    ? (*tree)->KnnSearch(batch[i].coords, batch[i].k)
                    : (*tree)->RangeSearch(batch[i].coords,
                                           batch[i].radius);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ((*exact_batch)[i], *want) << "slot " << i;
    EXPECT_EQ(truncated[i], 0u) << "slot " << i;
  }

  // The same batch under a tight distance cap: flagged and repeatable.
  for (SpatialQuery& q : batch) {
    q.budget = SearchBudget::MaxDistances(20);
  }
  DistributedSearchStats bstats;
  std::vector<uint8_t> trunc_a, trunc_b;
  auto run_a = (*tree)->BatchSearch(batch, &bstats, &trunc_a);
  auto run_b = (*tree)->BatchSearch(batch, nullptr, &trunc_b);
  ASSERT_TRUE(run_a.ok() && run_b.ok());
  EXPECT_EQ(*run_a, *run_b);
  EXPECT_EQ(trunc_a, trunc_b);
  EXPECT_TRUE(bstats.truncated);
  bool any = false;
  for (uint8_t t : trunc_a) any = any || t != 0;
  EXPECT_TRUE(any);
}

// ---------------------------------------------------------------------
// Cache-key semantics.

TEST(ApproxCacheTest, BudgetedAndExactKeysNeverCollide) {
  std::vector<double> coords = {0.25, 0.5, 0.75};
  SpatialQuery exact_q = SpatialQuery::Knn(coords, 5);
  SpatialQuery capped = SpatialQuery::Knn(coords, 5,
                                          SearchBudget::MaxDistances(10));
  SpatialQuery noded =
      SpatialQuery::Knn(coords, 5, SearchBudget::MaxNodes(3));
  SpatialQuery eps =
      SpatialQuery::Knn(coords, 5, SearchBudget::Epsilon(0.5));

  CacheKey exact_key = CacheKey::Make(exact_q, /*epoch=*/7);
  EXPECT_FALSE(exact_key == CacheKey::Make(capped, 7));
  EXPECT_FALSE(exact_key == CacheKey::Make(noded, 7));
  EXPECT_FALSE(exact_key == CacheKey::Make(eps, 7));

  // A truncated result stored under a budgeted key can never satisfy
  // an exact lookup.
  ShardedResultCache cache(2, 16);
  cache.Put(CacheKey::Make(capped, 7), {Neighbor{1, 0.5}},
            /*truncated=*/true);
  std::vector<Neighbor> out;
  EXPECT_FALSE(cache.Lookup(exact_key, &out));
  bool truncated = false;
  EXPECT_TRUE(cache.Lookup(CacheKey::Make(capped, 7), &out, &truncated));
  EXPECT_TRUE(truncated);  // The verdict rides along with the value.
}

TEST(ApproxCacheTest, NegativeZeroEpsilonHashesLikeZero) {
  std::vector<double> coords = {1.0, 2.0};
  SpatialQuery plus = SpatialQuery::Knn(coords, 3, SearchBudget::Epsilon(0.0));
  SpatialQuery minus =
      SpatialQuery::Knn(coords, 3, SearchBudget::Epsilon(-0.0));
  CacheKey kp = CacheKey::Make(plus, 1);
  CacheKey km = CacheKey::Make(minus, 1);
  EXPECT_TRUE(kp == km);

  ShardedResultCache cache(4, 16);
  cache.Put(kp, {Neighbor{3, 0.125}});
  std::vector<Neighbor> out;
  EXPECT_TRUE(cache.Lookup(km, &out));  // Same slot, not a duplicate.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 3u);
}

// ---------------------------------------------------------------------
// Engine integration: budgets thread end-to-end, truncation flags
// survive cache replay, bad epsilons are rejected up front.

TEST(ApproxEngineTest, BudgetedOutcomesFlaggedAndReplayedFromCache) {
  auto index = BuildIndex(BackendKind::kKdTree, 400, 61);
  QueryEngine engine(index.get());
  auto q = RandomVectors(1, kDims, 62)[0];

  std::vector<SpatialQuery> batch = {
      SpatialQuery::Knn(q, 5),
      SpatialQuery::Knn(q, 5, SearchBudget::MaxDistances(12)),
  };
  auto first = engine.Run(batch);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->outcomes[0].truncated);
  EXPECT_TRUE(first->outcomes[1].truncated);
  EXPECT_EQ(first->stats.truncated_queries, 1u);
  EXPECT_EQ(first->stats.cache_hits, 0u);

  // Both entries were cached under distinct keys; the repeat hits both
  // and replays the truncation verdicts.
  auto repeat = engine.Run(batch);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->stats.cache_hits, 2u);
  EXPECT_TRUE(repeat->outcomes[0].from_cache);
  EXPECT_TRUE(repeat->outcomes[1].from_cache);
  EXPECT_FALSE(repeat->outcomes[0].truncated);
  EXPECT_TRUE(repeat->outcomes[1].truncated);
  EXPECT_EQ(repeat->outcomes[0].neighbors, first->outcomes[0].neighbors);
  EXPECT_EQ(repeat->outcomes[1].neighbors, first->outcomes[1].neighbors);
}

TEST(ApproxEngineTest, UnspecifiedBudgetsInheritTheIndexDefault) {
  auto index = BuildIndex(BackendKind::kKdTree, 400, 65);
  index->set_default_budget(SearchBudget::MaxDistances(15));
  QueryEngine engine(index.get());
  auto q = RandomVectors(1, kDims, 66)[0];

  // An unspecified (exact) budget inherits the default: truncated
  // under the 15-distance cap. An explicit non-exact budget wins over
  // the default: a vanishing epsilon never prunes anything here, so
  // that outcome is the full exact result, proving the cap was
  // bypassed.
  std::vector<SpatialQuery> batch = {
      SpatialQuery::Knn(q, 5),
      SpatialQuery::Knn(q, 5, SearchBudget::Epsilon(1e-12)),
  };
  auto run = engine.Run(batch);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->outcomes[0].truncated);
  EXPECT_FALSE(run->outcomes[1].truncated);
  EXPECT_EQ(run->outcomes[1].neighbors,
            index->KnnSearch(q, 5, SearchBudget::Exact()));

  // Retuning the default re-keys the cache: the same query under the
  // new default is a miss computed fresh, not a stale truncated replay.
  index->set_default_budget(SearchBudget::Exact());
  auto retuned = engine.Run({SpatialQuery::Knn(q, 5)});
  ASSERT_TRUE(retuned.ok());
  EXPECT_FALSE(retuned->outcomes[0].from_cache);
  EXPECT_FALSE(retuned->outcomes[0].truncated);
  EXPECT_EQ(retuned->outcomes[0].neighbors, index->KnnSearch(q, 5));
}

TEST(ApproxEngineTest, RejectsNegativeOrNanEpsilon) {
  auto index = BuildIndex(BackendKind::kKdTree, 50, 71);
  QueryEngine engine(index.get());
  auto q = RandomVectors(1, kDims, 72)[0];
  std::vector<SpatialQuery> bad = {
      SpatialQuery::Knn(q, 3, SearchBudget::Epsilon(-0.5))};
  EXPECT_TRUE(engine.Run(bad).status().IsInvalidArgument());
  bad[0].budget.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(engine.Run(bad).status().IsInvalidArgument());
}

TEST(ApproxEngineTest, DistributedEngineExactBudgetMatches) {
  SemTreeOptions topts;
  topts.dimensions = kDims;
  topts.bucket_size = 8;
  topts.max_partitions = 3;
  topts.partition_capacity = 64;
  auto tree = SemTree::Create(topts);
  ASSERT_TRUE(tree.ok());
  auto rows = RandomVectors(250, kDims, 81);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(rows[i], PointId(i)).ok());
  }
  QueryEngine engine(tree->get());
  auto queries = RandomVectors(10, kDims, 82);
  std::vector<SpatialQuery> exact_batch, budget_batch;
  for (const auto& q : queries) {
    exact_batch.push_back(SpatialQuery::Knn(q, 5));
    budget_batch.push_back(
        SpatialQuery::Knn(q, 5, SearchBudget::Exact()));
  }
  auto a = engine.Run(exact_batch);
  auto b = engine.Run(budget_batch);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a->outcomes[i].neighbors, b->outcomes[i].neighbors);
    EXPECT_FALSE(b->outcomes[i].truncated);
  }
  EXPECT_EQ(b->stats.truncated_queries, 0u);
}

// ---------------------------------------------------------------------
// Persistence: the per-index default budget survives a snapshot.

TEST(ApproxPersistTest, DefaultBudgetRoundTrips) {
  auto index = BuildIndex(BackendKind::kKdTree, 200, 91);
  SearchBudget tuned = SearchBudget::MaxDistances(25);
  tuned.epsilon = 0.5;
  index->set_default_budget(tuned);

  std::string path = TempPath("approx_budget.snap");
  ASSERT_TRUE(persist::SaveSpatialIndex(*index, path).ok());
  auto loaded = persist::LoadSpatialIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->default_budget() == tuned);

  // The budget-less overload on the loaded index serves under the
  // restored default: tight cap => truncated.
  auto q = RandomVectors(1, kDims, 92)[0];
  SearchStats stats;
  (void)(*loaded)->KnnSearch(q, 5, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(stats.points_examined, 25u);
  std::remove(path.c_str());
}

TEST(ApproxPersistTest, ExactIndexSnapshotStaysExact) {
  auto index = BuildIndex(BackendKind::kVpTree, 150, 93);
  std::string path = TempPath("approx_exact.snap");
  ASSERT_TRUE(persist::SaveSpatialIndex(*index, path).ok());
  auto loaded = persist::LoadSpatialIndex(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->default_budget().exact());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Tests for src/ontology: taxonomy structure, similarity measures,
// vocabulary IO, and the built-in vocabularies.

#include <gtest/gtest.h>

#include "ontology/requirements_vocabulary.h"
#include "ontology/similarity.h"
#include "ontology/taxonomy.h"
#include "ontology/vocabulary_io.h"

namespace semtree {
namespace {

Taxonomy SmallTaxonomy() {
  // entity -> animal -> {mammal -> {dog, cat}, bird -> eagle}
  Taxonomy tax;
  EXPECT_TRUE(tax.AddConcept("animal").ok());
  EXPECT_TRUE(tax.AddConcept("mammal", {"animal"}).ok());
  EXPECT_TRUE(tax.AddConcept("bird", {"animal"}).ok());
  EXPECT_TRUE(tax.AddConcept("dog", {"mammal"}).ok());
  EXPECT_TRUE(tax.AddConcept("cat", {"mammal"}).ok());
  EXPECT_TRUE(tax.AddConcept("eagle", {"bird"}).ok());
  return tax;
}

ConceptId Id(const Taxonomy& tax, const std::string& name) {
  auto r = tax.Find(name);
  EXPECT_TRUE(r.ok()) << name;
  return r.ok() ? *r : kInvalidConcept;
}

// ---------------------------------------------------------------------
// Structure

TEST(TaxonomyTest, RootOnlyAtConstruction) {
  Taxonomy tax;
  EXPECT_EQ(tax.size(), 1u);
  EXPECT_EQ(tax.name(tax.root()), "entity");
  EXPECT_EQ(tax.Depth(tax.root()), 0u);
  EXPECT_TRUE(tax.Validate().ok());
}

TEST(TaxonomyTest, AddConceptDefaultsToRootParent) {
  Taxonomy tax;
  auto id = tax.AddConcept("thing");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(tax.parents(*id).size(), 1u);
  EXPECT_EQ(tax.parents(*id)[0], tax.root());
  EXPECT_EQ(tax.Depth(*id), 1u);
}

TEST(TaxonomyTest, DuplicateNameRejected) {
  Taxonomy tax;
  ASSERT_TRUE(tax.AddConcept("x").ok());
  EXPECT_TRUE(tax.AddConcept("x").status().IsAlreadyExists());
}

TEST(TaxonomyTest, UnknownParentRejected) {
  Taxonomy tax;
  EXPECT_TRUE(tax.AddConcept("x", {"ghost"}).status().IsNotFound());
}

TEST(TaxonomyTest, EmptyNameRejected) {
  Taxonomy tax;
  EXPECT_TRUE(tax.AddConcept("").status().IsInvalidArgument());
}

TEST(TaxonomyTest, DepthsFollowShortestChain) {
  Taxonomy tax = SmallTaxonomy();
  EXPECT_EQ(tax.Depth(Id(tax, "animal")), 1u);
  EXPECT_EQ(tax.Depth(Id(tax, "mammal")), 2u);
  EXPECT_EQ(tax.Depth(Id(tax, "dog")), 3u);
  EXPECT_EQ(tax.MaxDepth(), 3u);
}

TEST(TaxonomyTest, MultipleInheritanceShortensDepth) {
  Taxonomy tax = SmallTaxonomy();
  // Give "dog" a second parent directly under the root.
  ASSERT_TRUE(tax.AddConcept("pet").ok());
  ASSERT_TRUE(tax.AddParent(Id(tax, "dog"), Id(tax, "pet")).ok());
  EXPECT_EQ(tax.Depth(Id(tax, "dog")), 2u);  // entity->pet->dog
  EXPECT_TRUE(tax.Validate().ok());
}

TEST(TaxonomyTest, CycleRejected) {
  Taxonomy tax = SmallTaxonomy();
  // animal cannot become a child of dog.
  Status st = tax.AddParent(Id(tax, "animal"), Id(tax, "dog"));
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_TRUE(tax.Validate().ok());
}

TEST(TaxonomyTest, RootCannotGainParent) {
  Taxonomy tax = SmallTaxonomy();
  EXPECT_TRUE(tax.AddParent(tax.root(), Id(tax, "animal"))
                  .IsInvalidArgument());
}

TEST(TaxonomyTest, IsAncestorReflexiveAndTransitive) {
  Taxonomy tax = SmallTaxonomy();
  ConceptId dog = Id(tax, "dog");
  EXPECT_TRUE(tax.IsAncestor(dog, dog));
  EXPECT_TRUE(tax.IsAncestor(Id(tax, "mammal"), dog));
  EXPECT_TRUE(tax.IsAncestor(Id(tax, "animal"), dog));
  EXPECT_TRUE(tax.IsAncestor(tax.root(), dog));
  EXPECT_FALSE(tax.IsAncestor(Id(tax, "bird"), dog));
  EXPECT_FALSE(tax.IsAncestor(dog, Id(tax, "mammal")));
}

TEST(TaxonomyTest, AncestorsInclusive) {
  Taxonomy tax = SmallTaxonomy();
  auto ancestors = tax.Ancestors(Id(tax, "dog"));
  EXPECT_EQ(ancestors.size(), 4u);  // dog, mammal, animal, entity
}

TEST(TaxonomyTest, LowestCommonSubsumer) {
  Taxonomy tax = SmallTaxonomy();
  EXPECT_EQ(tax.LowestCommonSubsumer(Id(tax, "dog"), Id(tax, "cat")),
            Id(tax, "mammal"));
  EXPECT_EQ(tax.LowestCommonSubsumer(Id(tax, "dog"), Id(tax, "eagle")),
            Id(tax, "animal"));
  EXPECT_EQ(tax.LowestCommonSubsumer(Id(tax, "dog"), Id(tax, "dog")),
            Id(tax, "dog"));
  EXPECT_EQ(tax.LowestCommonSubsumer(Id(tax, "dog"), Id(tax, "mammal")),
            Id(tax, "mammal"));
}

TEST(TaxonomyTest, ShortestPathEdges) {
  Taxonomy tax = SmallTaxonomy();
  EXPECT_EQ(tax.ShortestPathEdges(Id(tax, "dog"), Id(tax, "dog")), 0u);
  EXPECT_EQ(tax.ShortestPathEdges(Id(tax, "dog"), Id(tax, "cat")), 2u);
  EXPECT_EQ(tax.ShortestPathEdges(Id(tax, "dog"), Id(tax, "eagle")), 4u);
  EXPECT_EQ(tax.ShortestPathEdges(Id(tax, "dog"), Id(tax, "mammal")), 1u);
}

TEST(TaxonomyTest, SynonymsResolve) {
  Taxonomy tax = SmallTaxonomy();
  ASSERT_TRUE(tax.AddSynonym("hound", Id(tax, "dog")).ok());
  EXPECT_TRUE(tax.Contains("hound"));
  EXPECT_EQ(Id(tax, "hound"), Id(tax, "dog"));
  // A synonym cannot shadow an existing name.
  EXPECT_TRUE(tax.AddSynonym("cat", Id(tax, "dog")).IsAlreadyExists());
  EXPECT_TRUE(tax.AddSynonym("hound", Id(tax, "cat")).IsAlreadyExists());
}

TEST(TaxonomyTest, AntonymsSymmetric) {
  Taxonomy tax = SmallTaxonomy();
  ConceptId dog = Id(tax, "dog");
  ConceptId cat = Id(tax, "cat");
  ASSERT_TRUE(tax.AddAntonym(dog, cat).ok());
  EXPECT_TRUE(tax.AreAntonyms(dog, cat));
  EXPECT_TRUE(tax.AreAntonyms(cat, dog));
  EXPECT_FALSE(tax.AreAntonyms(dog, Id(tax, "eagle")));
  EXPECT_TRUE(tax.AddAntonym(dog, cat).IsAlreadyExists());
  EXPECT_TRUE(tax.AddAntonym(dog, dog).IsInvalidArgument());
  auto names = tax.AntonymNamesOf("dog");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "cat");
}

TEST(TaxonomyTest, InformationContentMonotoneDown) {
  Taxonomy tax = SmallTaxonomy();
  // Uniform fallback: deeper concepts are rarer, so IC grows downward.
  EXPECT_DOUBLE_EQ(tax.InformationContent(tax.root()), 0.0);
  EXPECT_LT(tax.InformationContent(Id(tax, "animal")),
            tax.InformationContent(Id(tax, "mammal")));
  EXPECT_LT(tax.InformationContent(Id(tax, "mammal")),
            tax.InformationContent(Id(tax, "dog")) + 1e-12);
  EXPECT_GT(tax.MaxInformationContent(), 0.0);
}

TEST(TaxonomyTest, FrequenciesShiftInformationContent) {
  Taxonomy tax = SmallTaxonomy();
  ASSERT_TRUE(tax.AddFrequency(Id(tax, "dog"), 1000).ok());
  ASSERT_TRUE(tax.AddFrequency(Id(tax, "eagle"), 10).ok());
  EXPECT_LT(tax.InformationContent(Id(tax, "dog")),
            tax.InformationContent(Id(tax, "eagle")));
}

// ---------------------------------------------------------------------
// Similarity measures

class MeasureProperty
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(MeasureProperty, RangeIdentityAndSymmetry) {
  Taxonomy tax = MiniWordNet();
  std::vector<std::string> names = {"dog",   "cat",   "car",
                                    "eagle", "pilot", "entity"};
  for (const auto& a : names) {
    for (const auto& b : names) {
      double sab = ConceptSimilarity(GetParam(), tax, Id(tax, a), Id(tax, b));
      double sba = ConceptSimilarity(GetParam(), tax, Id(tax, b), Id(tax, a));
      EXPECT_DOUBLE_EQ(sab, sba) << a << "/" << b;
      EXPECT_GE(sab, 0.0);
      EXPECT_LE(sab, 1.0);
      if (a == b) {
        EXPECT_DOUBLE_EQ(sab, 1.0) << a;
      }
    }
  }
}

TEST_P(MeasureProperty, SiblingsCloserThanCrossFamily) {
  Taxonomy tax = MiniWordNet();
  double siblings =
      ConceptSimilarity(GetParam(), tax, Id(tax, "dog"), Id(tax, "cat"));
  double cross =
      ConceptSimilarity(GetParam(), tax, Id(tax, "dog"), Id(tax, "car"));
  EXPECT_GT(siblings, cross);
}

TEST_P(MeasureProperty, DistanceComplementsSimilarity) {
  Taxonomy tax = MiniWordNet();
  ConceptId a = Id(tax, "dog");
  ConceptId b = Id(tax, "eagle");
  EXPECT_DOUBLE_EQ(ConceptDistance(GetParam(), tax, a, b),
                   1.0 - ConceptSimilarity(GetParam(), tax, a, b));
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasureProperty,
                         ::testing::Values(SimilarityMeasure::kWuPalmer,
                                           SimilarityMeasure::kPath,
                                           SimilarityMeasure::kLeacockChodorow,
                                           SimilarityMeasure::kResnik,
                                           SimilarityMeasure::kLin));

TEST(WuPalmerTest, ClassicFormula) {
  Taxonomy tax = SmallTaxonomy();
  // dog: depth 3, cat: depth 3, lcs mammal: depth 2, counted from 1:
  // 2*3 / (4+4) = 0.75.
  EXPECT_DOUBLE_EQ(
      WuPalmerSimilarity(tax, Id(tax, "dog"), Id(tax, "cat")), 0.75);
  // dog vs eagle (both depth 3): lcs animal (depth 1 -> 2):
  // 2*2/(4+4) = 0.5.
  EXPECT_NEAR(WuPalmerSimilarity(tax, Id(tax, "dog"), Id(tax, "eagle")),
              0.5, 1e-12);
}

TEST(PathSimilarityTest, InversePathLength) {
  Taxonomy tax = SmallTaxonomy();
  EXPECT_DOUBLE_EQ(PathSimilarity(tax, Id(tax, "dog"), Id(tax, "cat")),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(PathSimilarity(tax, Id(tax, "dog"), Id(tax, "dog")),
                   1.0);
}

TEST(SimilarityMeasureNameTest, AllNamed) {
  EXPECT_STREQ(SimilarityMeasureName(SimilarityMeasure::kWuPalmer),
               "wu-palmer");
  EXPECT_STREQ(SimilarityMeasureName(SimilarityMeasure::kLin), "lin");
}

// ---------------------------------------------------------------------
// Vocabulary IO

TEST(VocabularyIoTest, ParseMinimal) {
  auto tax = ParseVocabulary(R"(
# comment
concept animal
concept dog animal
concept cat animal
synonym hound dog
antonym dog cat
freq dog 10
)");
  ASSERT_TRUE(tax.ok()) << tax.status().ToString();
  EXPECT_EQ(tax->size(), 4u);
  EXPECT_EQ(Id(*tax, "hound"), Id(*tax, "dog"));
  EXPECT_TRUE(tax->AreAntonyms(Id(*tax, "dog"), Id(*tax, "cat")));
  EXPECT_EQ(tax->frequency(Id(*tax, "dog")), 10u);
}

TEST(VocabularyIoTest, CustomRootDirective) {
  auto tax = ParseVocabulary("root thing\nconcept gadget thing\n");
  ASSERT_TRUE(tax.ok());
  EXPECT_EQ(tax->root_name(), "thing");
  EXPECT_TRUE(tax->Contains("gadget"));
}

TEST(VocabularyIoTest, ErrorsNameTheLine) {
  auto bad = ParseVocabulary("concept a\nbogus x y\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);

  auto missing = ParseVocabulary("concept a ghost\n");
  ASSERT_FALSE(missing.ok());

  auto late_root = ParseVocabulary("concept a\nroot b\n");
  ASSERT_FALSE(late_root.ok());

  auto bad_freq = ParseVocabulary("concept a\nfreq a ten\n");
  ASSERT_FALSE(bad_freq.ok());
}

TEST(VocabularyIoTest, SerializeRoundTrip) {
  Taxonomy original = RequirementsVocabulary();
  std::string text = SerializeVocabulary(original);
  auto reparsed = ParseVocabulary(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->size(), original.size());
  EXPECT_EQ(reparsed->ConceptNames(), original.ConceptNames());
  EXPECT_EQ(reparsed->AntonymPairs(), original.AntonymPairs());
  EXPECT_EQ(reparsed->Synonyms().size(), original.Synonyms().size());
  // Structure-derived quantities must agree too.
  EXPECT_EQ(reparsed->MaxDepth(), original.MaxDepth());
  for (ConceptId c = 0; c < original.size(); ++c) {
    EXPECT_EQ(reparsed->Depth(c), original.Depth(c));
  }
}

TEST(VocabularyIoTest, FileRoundTrip) {
  Taxonomy original = MiniWordNet();
  std::string path = ::testing::TempDir() + "/vocab_roundtrip.txt";
  ASSERT_TRUE(SaveVocabularyFile(original, path).ok());
  auto loaded = LoadVocabularyFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_TRUE(LoadVocabularyFile("/nonexistent/vocab.txt")
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------
// Built-in vocabularies

TEST(RequirementsVocabularyTest, ValidatesAndHasExpectedShape) {
  Taxonomy tax = RequirementsVocabulary();
  EXPECT_TRUE(tax.Validate().ok());
  EXPECT_GT(tax.size(), 80u);
  EXPECT_TRUE(tax.Contains("accept_cmd"));
  EXPECT_TRUE(tax.Contains("startup_cmd"));
  EXPECT_TRUE(tax.Contains("obsw_component"));
}

TEST(RequirementsVocabularyTest, PaperAntinomiesPresent) {
  Taxonomy tax = RequirementsVocabulary();
  // The motivating example: accept_cmd vs block_cmd (§II).
  EXPECT_TRUE(tax.AreAntonyms(Id(tax, "accept_cmd"), Id(tax, "block_cmd")));
  EXPECT_TRUE(tax.AreAntonyms(Id(tax, "send_msg"), Id(tax, "inhibit_msg")));
  EXPECT_TRUE(tax.AreAntonyms(Id(tax, "start_up"), Id(tax, "shut_down")));
  EXPECT_FALSE(
      tax.AreAntonyms(Id(tax, "accept_cmd"), Id(tax, "send_msg")));
}

TEST(RequirementsVocabularyTest, SynonymsResolve) {
  Taxonomy tax = RequirementsVocabulary();
  EXPECT_EQ(Id(tax, "reject_cmd"), Id(tax, "block_cmd"));
  EXPECT_EQ(Id(tax, "boot"), Id(tax, "start_up"));
}

TEST(RequirementsVocabularyTest, FunctionAndParameterEnumerations) {
  auto functions = RequirementsFunctionNames();
  auto parameters = RequirementsParameterNames();
  EXPECT_GT(functions.size(), 40u);
  EXPECT_GT(parameters.size(), 40u);
  EXPECT_TRUE(std::is_sorted(functions.begin(), functions.end()));
  Taxonomy tax = RequirementsVocabulary();
  for (const auto& name : functions) EXPECT_TRUE(tax.Contains(name));
}

TEST(RequirementsVocabularyTest, ParametersMatchFunctionFamily) {
  Taxonomy tax = RequirementsVocabulary();
  auto params = ParameterNamesForFunction(tax, "accept_cmd");
  ASSERT_FALSE(params.empty());
  ConceptId cmd_type = Id(tax, "command_type");
  for (const auto& p : params) {
    EXPECT_TRUE(tax.IsAncestor(cmd_type, Id(tax, p))) << p;
  }
  EXPECT_TRUE(ParameterNamesForFunction(tax, "no_such_function").empty());
}

TEST(MiniWordNetTest, ValidatesWithAntonymsAndSynonyms) {
  Taxonomy tax = MiniWordNet();
  EXPECT_TRUE(tax.Validate().ok());
  EXPECT_GT(tax.size(), 60u);
  EXPECT_TRUE(tax.AreAntonyms(Id(tax, "hot"), Id(tax, "cold")));
  EXPECT_EQ(Id(tax, "automobile"), Id(tax, "car"));
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Unit + property tests for src/text: string distances and tokenizer.

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/string_distance.h"
#include "text/tokenizer.h"

namespace semtree {
namespace {

// ---------------------------------------------------------------------
// Levenshtein

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("identical", "identical"), 0u);
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1u);   // substitute
  EXPECT_EQ(LevenshteinDistance("abc", "abcd"), 1u);  // insert
  EXPECT_EQ(LevenshteinDistance("abc", "ab"), 1u);    // delete
}

TEST(NormalizedLevenshteinTest, RangeAndEdges) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "xyz"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("ab", ""), 1.0);
  double d = NormalizedLevenshtein("OBSW001", "OBSW002");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 0.3);
}

TEST(DamerauTest, TranspositionCountsOnce) {
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1u);
  EXPECT_EQ(DamerauLevenshteinDistance("abcdef", "abcdfe"), 1u);
  EXPECT_EQ(DamerauLevenshteinDistance("ca", "abc"), 3u);  // OSA variant
}

TEST(DamerauTest, MatchesLevenshteinWithoutTranspositions) {
  EXPECT_EQ(DamerauLevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(DamerauLevenshteinDistance("", "xyz"), 3u);
}

// ---------------------------------------------------------------------
// Jaro / Jaro–Winkler

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822222, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("MARTHA", "MARHTA");
  double jw = JaroWinklerSimilarity("MARTHA", "MARHTA");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.961111, 1e-5);
}

TEST(JaroWinklerTest, DistanceComplementsSimilarity) {
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("abc", "abc"), 0.0);
  double s = JaroWinklerSimilarity("node", "note");
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("node", "note"), 1.0 - s);
}

// ---------------------------------------------------------------------
// LCS / Dice

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubsequence("", "x"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "abc"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "def"), 0u);
}

TEST(DiceTest, BigramOverlap) {
  EXPECT_DOUBLE_EQ(BigramDiceSimilarity("night", "night"), 1.0);
  EXPECT_NEAR(BigramDiceSimilarity("night", "nacht"), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(BigramDiceSimilarity("ab", "cd"), 0.0);
  // Short strings fall back to equality.
  EXPECT_DOUBLE_EQ(BigramDiceSimilarity("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(BigramDiceSimilarity("a", "b"), 0.0);
}

// ---------------------------------------------------------------------
// Property sweep over all dispatchable distances

class StringDistanceProperty
    : public ::testing::TestWithParam<StringDistanceKind> {};

TEST_P(StringDistanceProperty, IdentitySymmetryRange) {
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    std::string a = rng.Identifier(rng.Uniform(12));
    std::string b = rng.Identifier(rng.Uniform(12));
    double dab = StringDistance(GetParam(), a, b);
    double dba = StringDistance(GetParam(), b, a);
    EXPECT_DOUBLE_EQ(StringDistance(GetParam(), a, a), 0.0) << a;
    EXPECT_DOUBLE_EQ(dab, dba) << a << " / " << b;
    EXPECT_GE(dab, 0.0);
    EXPECT_LE(dab, 1.0);
  }
}

TEST_P(StringDistanceProperty, DistinctStringsPositive) {
  EXPECT_GT(StringDistance(GetParam(), "alpha", "omega"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StringDistanceProperty,
    ::testing::Values(StringDistanceKind::kNormalizedLevenshtein,
                      StringDistanceKind::kJaroWinkler,
                      StringDistanceKind::kBigramDice));

TEST(LevenshteinPropertyTest, TriangleInequalityOnSamples) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    std::string a = rng.Identifier(1 + rng.Uniform(8));
    std::string b = rng.Identifier(1 + rng.Uniform(8));
    std::string c = rng.Identifier(1 + rng.Uniform(8));
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
  }
}

// ---------------------------------------------------------------------
// Tokenizer

TEST(TokenizerTest, SplitsSentencesOnTerminators) {
  auto s = SplitSentences("First one. Second one! Third one? ");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "First one");
  EXPECT_EQ(s[1], "Second one");
  EXPECT_EQ(s[2], "Third one");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   \n ").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(TokenizerTest, LowercasesAndDropsPunctuation) {
  auto t = Tokenize("The OBSW001 component, shall (accept)!");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[1], "obsw001");
  EXPECT_EQ(t[4], "accept");
}

TEST(TokenizerTest, PreservesHyphensAndUnderscoresInWords) {
  auto t = Tokenize("acquire the pre-launch_phase input");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[2], "pre-launch_phase");
}

TEST(TokenizerTest, PreservingCaseVariant) {
  auto t = TokenizePreservingCase("The OBSW001 shall");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "OBSW001");
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Tests for the parallel bulk-build pipeline (DESIGN.md §8): the
// nth_element median split against its sort-based golden reference,
// the byte-identity of parallel and serial builds across all backends,
// the determinism of the centroid split across thread counts, the
// degenerate corpora, and the SemTree partition build.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/backends.h"
#include "core/bulk_build.h"
#include "core/split.h"
#include "kdtree/kdtree.h"
#include "kdtree/linear_scan.h"
#include "persist/index_snapshot.h"
#include "semtree/semtree.h"

namespace semtree {
namespace {

std::vector<KdPoint> ClusteredPoints(size_t n, size_t dims,
                                     size_t clusters, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers(clusters);
  for (auto& c : centers) {
    c.resize(dims);
    for (double& v : c) v = rng.UniformDouble(0.0, 100.0);
  }
  std::vector<KdPoint> points(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& center = centers[rng.Uniform(clusters)];
    points[i].id = i;
    points[i].coords.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      points[i].coords[d] = center[d] + rng.Gaussian() * 5.0;
    }
  }
  return points;
}

std::string SnapshotBytes(const SpatialIndex& index) {
  auto bytes = persist::SerializeSpatialIndex(index);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::string();
}

std::unique_ptr<SpatialIndex> BuildBackend(BackendKind kind, size_t dims,
                                           const std::vector<KdPoint>& pts,
                                           SplitPolicy policy,
                                           size_t threads) {
  BackendOptions opts;
  opts.split_policy = policy;
  opts.build_threads = threads;
  auto index = MakeSpatialIndex(kind, dims, opts);
  EXPECT_TRUE(index->BulkLoad(pts).ok());
  return index;
}

// ---------------------------------------------------------------------
// Median split: nth_element path vs the sort-based golden reference.

TEST(MedianSplitTest, MatchesSortReferenceOnRandomSpans) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    size_t n = 2 + rng.Uniform(60);
    size_t dims = 1 + rng.Uniform(3);
    // Values drawn from a small integer set: heavy duplicate pressure
    // so the equal-block tie-break paths are actually exercised.
    std::vector<std::vector<double>> rows(n);
    for (auto& r : rows) {
      r.resize(dims);
      for (double& v : r) v = double(rng.Uniform(6));
    }
    auto row = [&rows](size_t i) { return rows[i].data(); };
    std::vector<size_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) a[i] = b[i] = i;
    // Shuffle so the two paths start from the same (arbitrary) order.
    for (size_t i = n; i > 1; --i) std::swap(a[i - 1], a[rng.Uniform(i)]);
    b = a;

    MedianSplit fast, ref;
    bool fast_ok = ChooseMedianSplit(a, 0, n, dims, row, &fast);
    bool ref_ok = ChooseMedianSplitBySort(b, 0, n, dims, row, &ref);
    ASSERT_EQ(fast_ok, ref_ok) << "trial " << trial;
    if (!fast_ok) continue;
    EXPECT_EQ(fast.dim, ref.dim) << "trial " << trial;
    EXPECT_EQ(fast.value, ref.value) << "trial " << trial;
    EXPECT_EQ(fast.boundary, ref.boundary) << "trial " << trial;
    // Same membership on both sides, whatever the internal order.
    std::vector<size_t> left_a(a.begin(), a.begin() + ptrdiff_t(fast.boundary));
    std::vector<size_t> left_b(b.begin(), b.begin() + ptrdiff_t(ref.boundary));
    std::sort(left_a.begin(), left_a.end());
    std::sort(left_b.begin(), left_b.end());
    EXPECT_EQ(left_a, left_b) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Byte-identity: parallel build == serial build, per backend & policy.

struct IdentityCase {
  BackendKind kind;
  SplitPolicy policy;
  size_t n;
};

class ParallelIdentity : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(ParallelIdentity, SnapshotBytesMatchSerial) {
  const IdentityCase& c = GetParam();
  const size_t dims = 4;
  auto points = ClusteredPoints(c.n, dims, 8, 42);
  auto serial = BuildBackend(c.kind, dims, points, c.policy, 1);
  auto parallel = BuildBackend(c.kind, dims, points, c.policy, 8);
  EXPECT_EQ(serial->size(), points.size());
  EXPECT_EQ(SnapshotBytes(*serial), SnapshotBytes(*parallel));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelIdentity,
    ::testing::Values(
        // 5000 points crosses the parallel cutoff (4096) on the tree
        // builders; the insert-loop backends get smaller corpora.
        IdentityCase{BackendKind::kKdTree, SplitPolicy::kMedian, 5000},
        IdentityCase{BackendKind::kKdTree, SplitPolicy::kCentroid, 5000},
        IdentityCase{BackendKind::kVpTree, SplitPolicy::kMedian, 5000},
        IdentityCase{BackendKind::kVpTree, SplitPolicy::kCentroid, 5000},
        IdentityCase{BackendKind::kLinearScan, SplitPolicy::kMedian, 1200},
        IdentityCase{BackendKind::kLinearScan, SplitPolicy::kCentroid, 1200},
        IdentityCase{BackendKind::kMTree, SplitPolicy::kMedian, 1200},
        IdentityCase{BackendKind::kMTree, SplitPolicy::kCentroid, 1200}));

TEST(ParallelIdentityTest, CentroidStableAcrossThreadCounts) {
  const size_t dims = 6;
  auto points = ClusteredPoints(6000, dims, 12, 9);
  std::string reference;
  for (size_t threads : {size_t(1), size_t(2), size_t(3), size_t(8)}) {
    auto index = BuildBackend(BackendKind::kKdTree, dims, points,
                              SplitPolicy::kCentroid, threads);
    std::string bytes = SnapshotBytes(*index);
    if (reference.empty()) {
      reference = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelIdentityTest, AutoThreadsMatchesSerial) {
  const size_t dims = 4;
  auto points = ClusteredPoints(5000, dims, 8, 3);
  auto serial = BuildBackend(BackendKind::kKdTree, dims, points,
                             SplitPolicy::kMedian, 1);
  // 0 = one thread per hardware thread — whatever that resolves to,
  // the bytes must not move.
  auto auto_threads = BuildBackend(BackendKind::kKdTree, dims, points,
                                   SplitPolicy::kMedian, 0);
  EXPECT_EQ(SnapshotBytes(*serial), SnapshotBytes(*auto_threads));
}

// ---------------------------------------------------------------------
// Degenerate corpora.

TEST(BulkBuildDegenerateTest, AllIdenticalPoints) {
  const size_t dims = 3;
  std::vector<KdPoint> points(200);
  for (size_t i = 0; i < points.size(); ++i) {
    points[i] = KdPoint{{1.0, 2.0, 3.0}, i};
  }
  for (SplitPolicy policy :
       {SplitPolicy::kMedian, SplitPolicy::kCentroid}) {
    KdTreeOptions opts;
    opts.split_policy = policy;
    opts.build_threads = 4;
    KdTree tree(dims, opts);
    ASSERT_TRUE(tree.BulkLoad(points).ok());
    EXPECT_EQ(tree.size(), points.size());
    EXPECT_TRUE(tree.CheckInvariants().ok());
    // One overflowing leaf: inseparable points must not split.
    EXPECT_EQ(tree.NodeCount(), 1u);
    auto got = tree.KnnSearch({1.0, 2.0, 3.0}, 5);
    ASSERT_EQ(got.size(), 5u);
    for (const Neighbor& nb : got) EXPECT_EQ(nb.distance, 0.0);
  }
}

TEST(BulkBuildDegenerateTest, TinyAndSubCutoffCorpora) {
  const size_t dims = 2;
  for (size_t n : {size_t(0), size_t(1), size_t(2), size_t(3),
                   size_t(40), size_t(1000)}) {
    auto points = ClusteredPoints(n, dims, 3, n + 1);
    for (SplitPolicy policy :
         {SplitPolicy::kMedian, SplitPolicy::kCentroid}) {
      KdTreeOptions opts;
      opts.split_policy = policy;
      opts.build_threads = 8;  // Sub-cutoff spans must build inline.
      KdTree tree(dims, opts);
      ASSERT_TRUE(tree.BulkLoad(points).ok());
      EXPECT_EQ(tree.size(), n);
      EXPECT_TRUE(tree.CheckInvariants().ok());
    }
  }
}

// ---------------------------------------------------------------------
// Centroid-built trees answer exactly.

TEST(CentroidSplitTest, ExactAgainstLinearScan) {
  const size_t dims = 5;
  auto points = ClusteredPoints(3000, dims, 10, 21);
  LinearScanIndex scan(dims);
  for (const KdPoint& p : points) ASSERT_TRUE(scan.Insert(p.coords, p.id).ok());
  auto tree = BuildBackend(BackendKind::kKdTree, dims, points,
                           SplitPolicy::kCentroid, 2);
  Rng rng(5);
  for (int q = 0; q < 30; ++q) {
    std::vector<double> query = points[rng.Uniform(points.size())].coords;
    for (double& v : query) v += rng.Gaussian();
    auto truth = scan.KnnSearch(query, 10);
    auto got = tree->KnnSearch(query, 10);
    ASSERT_EQ(truth.size(), got.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(truth[i].id, got[i].id) << "query " << q;
      EXPECT_EQ(truth[i].distance, got[i].distance) << "query " << q;
    }
  }
}

// ---------------------------------------------------------------------
// SemTree: the partition build goes through the same pipeline.

std::string SemTreeBytes(const SemTree& tree) {
  persist::ByteWriter out;
  Status st = tree.SaveTo(&out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out.Take();
}

TEST(SemTreeBulkBuildTest, ParallelPartitionBuildsAreByteIdentical) {
  for (SplitPolicy policy :
       {SplitPolicy::kMedian, SplitPolicy::kCentroid}) {
    auto points = ClusteredPoints(6000, 4, 6, 13);
    std::string reference;
    for (size_t threads : {size_t(1), size_t(4)}) {
      SemTreeOptions opts;
      opts.dimensions = 4;
      opts.bucket_size = 16;
      opts.max_partitions = 3;
      opts.split_policy = policy;
      opts.build_threads = threads;
      auto tree = SemTree::Create(opts);
      ASSERT_TRUE(tree.ok());
      ASSERT_TRUE((*tree)->BulkLoadBalanced(points).ok());
      EXPECT_TRUE((*tree)->CheckInvariants().ok());
      std::string bytes = SemTreeBytes(**tree);
      if (reference.empty()) {
        reference = std::move(bytes);
      } else {
        EXPECT_EQ(bytes, reference)
            << SplitPolicyName(policy) << " threads=" << threads;
      }
    }
  }
}

TEST(SemTreeBulkBuildTest, CentroidBulkLoadAnswersExactly) {
  const size_t dims = 4;
  auto points = ClusteredPoints(4000, dims, 8, 17);
  LinearScanIndex scan(dims);
  for (const KdPoint& p : points) ASSERT_TRUE(scan.Insert(p.coords, p.id).ok());
  SemTreeOptions opts;
  opts.dimensions = dims;
  opts.bucket_size = 16;
  opts.max_partitions = 4;
  opts.split_policy = SplitPolicy::kCentroid;
  opts.build_threads = 2;
  auto tree = SemTree::Create(opts);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->BulkLoadBalanced(points).ok());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
  Rng rng(29);
  for (int q = 0; q < 20; ++q) {
    std::vector<double> query = points[rng.Uniform(points.size())].coords;
    for (double& v : query) v += rng.Gaussian();
    auto truth = scan.KnnSearch(query, 8);
    auto got = (*tree)->KnnSearch(query, 8);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(truth.size(), got->size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(truth[i].id, (*got)[i].id) << "query " << q;
    }
  }
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Tests for point removal — the extension the paper defers ("once
// built, modifying or rebalancing a Kd-tree is a non-trivial task") —
// on both the sequential KD-tree and the distributed SemTree, plus the
// batch inconsistency detector built on top of the index.

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "kdtree/kdtree.h"
#include "kdtree/linear_scan.h"
#include "nlp/requirements_corpus.h"
#include "ontology/requirements_vocabulary.h"
#include "reqverify/batch_detector.h"
#include "semtree/semtree.h"

namespace semtree {
namespace {

std::vector<KdPoint> RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<KdPoint> points(n);
  for (size_t i = 0; i < n; ++i) {
    points[i].id = i;
    points[i].coords.resize(dims);
    for (double& c : points[i].coords) c = rng.UniformDouble(-1.0, 1.0);
  }
  return points;
}

// ---------------------------------------------------------------------
// KdTree::Remove

TEST(KdTreeRemoveTest, RemoveThenQueriesForget) {
  auto points = RandomPoints(500, 3, 1);
  KdTree tree(3, {.bucket_size = 8});
  for (const auto& p : points) ASSERT_TRUE(tree.Insert(p.coords, p.id).ok());

  ASSERT_TRUE(tree.Remove(points[42].coords, 42).ok());
  EXPECT_EQ(tree.size(), 499u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  auto hits = tree.KnnSearch(points[42].coords, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].id, 42u);
}

TEST(KdTreeRemoveTest, ErrorsOnAbsentOrMismatched) {
  KdTree tree(2);
  ASSERT_TRUE(tree.Insert({1.0, 2.0}, 7).ok());
  EXPECT_TRUE(tree.Remove({1.0, 2.0}, 8).IsNotFound());   // Wrong id.
  EXPECT_TRUE(tree.Remove({9.0, 9.0}, 7).IsNotFound());   // Wrong coords.
  EXPECT_TRUE(tree.Remove({1.0}, 7).IsInvalidArgument()); // Wrong dims.
  EXPECT_TRUE(tree.Remove({1.0, 2.0}, 7).ok());
  EXPECT_TRUE(tree.Remove({1.0, 2.0}, 7).IsNotFound());   // Already gone.
  EXPECT_EQ(tree.size(), 0u);
}

TEST(KdTreeRemoveTest, InterleavedInsertRemoveMatchesScan) {
  const size_t kDims = 3;
  KdTree tree(kDims, {.bucket_size = 4});
  LinearScanIndex scan(kDims);
  Rng rng(3);
  std::vector<KdPoint> live;
  PointId next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    bool remove = !live.empty() && rng.Bernoulli(0.4);
    if (remove) {
      size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(tree.Remove(live[victim].coords, live[victim].id).ok());
      live.erase(live.begin() + ptrdiff_t(victim));
    } else {
      KdPoint p;
      p.id = next_id++;
      p.coords.resize(kDims);
      for (double& c : p.coords) c = rng.UniformDouble(-1, 1);
      ASSERT_TRUE(tree.Insert(p.coords, p.id).ok());
      live.push_back(p);
    }
    if (step % 200 == 199) {
      ASSERT_EQ(tree.size(), live.size());
      ASSERT_TRUE(tree.CheckInvariants().ok());
      LinearScanIndex fresh(kDims);
      for (const auto& p : live) ASSERT_TRUE(fresh.Insert(p.coords, p.id).ok());
      std::vector<double> q(kDims);
      for (double& c : q) c = rng.UniformDouble(-1, 1);
      EXPECT_EQ(tree.KnnSearch(q, 5), fresh.KnnSearch(q, 5));
      EXPECT_EQ(tree.RangeSearch(q, 0.4), fresh.RangeSearch(q, 0.4));
    }
  }
}

// ---------------------------------------------------------------------
// SemTree::Remove (distributed)

TEST(SemTreeRemoveTest, RemoveAcrossPartitions) {
  SemTreeOptions opts;
  opts.dimensions = 3;
  opts.bucket_size = 8;
  opts.max_partitions = 5;
  opts.partition_capacity = opts.bucket_size * opts.max_partitions;
  auto tree = SemTree::Create(opts);
  ASSERT_TRUE(tree.ok());
  auto points = RandomPoints(1000, 3, 7);
  ASSERT_TRUE((*tree)->BulkInsert(points).ok());
  ASSERT_GT((*tree)->PartitionCount(), 1u);

  Rng rng(9);
  std::unordered_set<PointId> removed;
  for (int step = 0; step < 200; ++step) {
    size_t victim = rng.Uniform(points.size());
    if (removed.count(points[victim].id)) continue;
    ASSERT_TRUE(
        (*tree)->Remove(points[victim].coords, points[victim].id).ok());
    removed.insert(points[victim].id);
  }
  EXPECT_EQ((*tree)->size(), points.size() - removed.size());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());

  // Removed points are gone; the rest is intact.
  LinearScanIndex scan(3);
  for (const auto& p : points) {
    if (!removed.count(p.id)) {
      ASSERT_TRUE(scan.Insert(p.coords, p.id).ok());
    }
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query(3);
    for (double& c : query) c = rng.UniformDouble(-1, 1);
    auto got = (*tree)->KnnSearch(query, 8);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, scan.KnnSearch(query, 8));
  }
}

TEST(SemTreeRemoveTest, RemoveValidatesArguments) {
  SemTreeOptions opts;
  opts.dimensions = 2;
  auto tree = SemTree::Create(opts);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->Insert({0.5, 0.5}, 1).ok());
  EXPECT_TRUE((*tree)->Remove({0.5}, 1).IsInvalidArgument());
  EXPECT_TRUE((*tree)->Remove({0.5, 0.5}, 99).IsNotFound());
  EXPECT_TRUE((*tree)->Remove({0.5, 0.5}, 1).ok());
  EXPECT_EQ((*tree)->size(), 0u);
}

// ---------------------------------------------------------------------
// Batch inconsistency detection

class BatchDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = RequirementsVocabulary();
    RequirementsCorpusGenerator gen(&vocab_,
                                    {.num_documents = 30,
                                     .inconsistency_rate = 0.12,
                                     .seed = 21});
    auto triples = gen.GenerateTriples();
    ASSERT_TRUE(triples.ok());
    for (Triple& t : *triples) store_.Add(std::move(t));
    SemanticIndexOptions opts;
    opts.fastmap.dimensions = 8;
    auto index = SemanticIndex::Build(&vocab_, store_.triples(), opts);
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
  }

  Taxonomy vocab_;
  TripleStore store_;
  std::unique_ptr<SemanticIndex> index_;
};

TEST_F(BatchDetectorTest, ExactScanFindsSymmetricVerifiedPairs) {
  auto pairs = ExactInconsistencyScan(store_, vocab_);
  EXPECT_GT(pairs.size(), 0u);  // The corpus seeds contradictions.
  for (const auto& p : pairs) {
    EXPECT_LT(p.a, p.b);
    EXPECT_TRUE(AreInconsistent(store_.Get(p.a), store_.Get(p.b), vocab_));
  }
  // Sorted and unique.
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_TRUE(pairs[i - 1] < pairs[i]);
  }
}

TEST_F(BatchDetectorTest, SweepHasPerfectPrecisionAndHighRecall) {
  auto report = DetectAllInconsistencies(*index_, store_, vocab_,
                                         {.k = 15});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->detected.size(), 0u);
  // Precision 1 by construction: every emitted pair is verified.
  for (const auto& p : report->detected) {
    EXPECT_TRUE(AreInconsistent(store_.Get(p.a), store_.Get(p.b), vocab_));
  }
  EXPECT_GT(report->recall, 0.6) << report->ToString();
  EXPECT_GT(report->queries_run, report->sources_swept / 2);
  EXPECT_FALSE(report->ToString().empty());
}

TEST_F(BatchDetectorTest, LargerKImprovesRecall) {
  auto small = DetectAllInconsistencies(*index_, store_, vocab_,
                                        {.k = 2});
  auto large = DetectAllInconsistencies(*index_, store_, vocab_,
                                        {.k = 25});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GE(large->recall, small->recall);
}

TEST_F(BatchDetectorTest, ValidatesArguments) {
  EXPECT_TRUE(DetectAllInconsistencies(*index_, store_, vocab_, {.k = 0})
                  .status()
                  .IsInvalidArgument());
  TripleStore other;
  other.Add(store_.Get(0));
  EXPECT_TRUE(DetectAllInconsistencies(*index_, other, vocab_, {})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BatchDetectorTest, MaxSourcesCapsWork) {
  auto capped = DetectAllInconsistencies(*index_, store_, vocab_,
                                         {.k = 10, .max_sources = 5});
  ASSERT_TRUE(capped.ok());
  EXPECT_LE(capped->sources_swept, 5u);
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// End-to-end integration tests: documents -> NLP extraction -> semantic
// distance -> FastMap -> distributed SemTree -> queries, exercising the
// whole pipeline the way examples/ and the benches do.

#include <gtest/gtest.h>

#include "distance/metric_audit.h"
#include "nlp/requirements_corpus.h"
#include "nlp/triple_extractor.h"
#include "ontology/requirements_vocabulary.h"
#include "ontology/vocabulary_io.h"
#include "rdf/turtle.h"
#include "reqverify/evaluation.h"
#include "semtree/semantic_index.h"

namespace semtree {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = RequirementsVocabulary();
    CorpusOptions copts;
    copts.num_documents = 30;
    copts.inconsistency_rate = 0.1;
    copts.seed = 13;
    RequirementsCorpusGenerator gen(&vocab_, copts);
    docs_ = gen.Generate();
    TripleExtractor extractor(&vocab_);
    auto count = extractor.ExtractCorpus(docs_, &store_);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    ASSERT_GT(*count, 200u);
  }

  std::unique_ptr<SemanticIndex> BuildIndex(SemanticIndexOptions opts) {
    auto index = SemanticIndex::Build(&vocab_, store_.triples(), opts);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    return index.ok() ? std::move(*index) : nullptr;
  }

  Taxonomy vocab_;
  std::vector<RequirementsDocument> docs_;
  TripleStore store_;
};

TEST_F(PipelineTest, BuildRejectsEmptyCorpusAndNullTaxonomy) {
  EXPECT_FALSE(SemanticIndex::Build(&vocab_, {}, {}).ok());
}

TEST_F(PipelineTest, SelfQueryLandsOnOwnCoordinates) {
  auto index = BuildIndex({});
  ASSERT_NE(index, nullptr);
  // Querying with an indexed triple projects exactly onto its training
  // coordinates, so the top hit is at embedded distance ~0. Distinct
  // triples may share those coordinates (FastMap collisions), so the
  // top hit need not be the identical triple — but it must be close
  // semantically, and most queries should recover an exact duplicate.
  Rng rng(17);
  int exact = 0;
  const int kQueries = 15;
  for (int q = 0; q < kQueries; ++q) {
    TripleId id = rng.Uniform(store_.size());
    auto hits = index->KnnQuery(store_.Get(id), 3);
    ASSERT_TRUE(hits.ok());
    ASSERT_FALSE(hits->empty());
    EXPECT_NEAR((*hits)[0].embedded_distance, 0.0, 1e-6);
    EXPECT_LT((*hits)[0].semantic_distance, 0.3);
    if ((*hits)[0].semantic_distance < 1e-9) ++exact;
  }
  EXPECT_GE(exact, kQueries / 2);
}

TEST_F(PipelineTest, KnnHitsAreSemanticallyRelevant) {
  auto index = BuildIndex({});
  ASSERT_NE(index, nullptr);
  // Compare against the exact semantic-distance scan: the embedded
  // k-NN's mean distance should be close to the optimal mean distance.
  Rng rng(19);
  double embedded_total = 0.0, exact_total = 0.0;
  const size_t kK = 10;
  for (int q = 0; q < 10; ++q) {
    const Triple& query = store_.Get(rng.Uniform(store_.size()));
    auto hits = index->KnnQuery(query, kK);
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), kK);
    for (const auto& hit : *hits) embedded_total += hit.semantic_distance;
    // Exact top-k by brute force.
    std::vector<double> all;
    all.reserve(store_.size());
    for (const Triple& t : store_.triples()) {
      all.push_back(index->SemanticDistance(query, t));
    }
    std::partial_sort(all.begin(), all.begin() + kK, all.end());
    for (size_t i = 0; i < kK; ++i) exact_total += all[i];
  }
  // The FastMap approximation costs something, but hits must stay far
  // closer than random (mean corpus distance is ~0.6-0.9).
  EXPECT_LT(embedded_total, exact_total + 0.15 * 10 * kK);
}

TEST_F(PipelineTest, RangeQueryHonoursEmbeddedRadius) {
  auto index = BuildIndex({});
  ASSERT_NE(index, nullptr);
  const Triple& query = store_.Get(5);
  auto hits = index->RangeQuery(query, 0.25);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    EXPECT_LE(hit.embedded_distance, 0.25 + 1e-12);
  }
  // Radius zero still returns the exact duplicates.
  auto zero = index->RangeQuery(query, 1e-9);
  ASSERT_TRUE(zero.ok());
  EXPECT_FALSE(zero->empty());
}

TEST_F(PipelineTest, RerankOrdersBySemanticDistance) {
  SemanticIndexOptions opts;
  opts.rerank_by_semantic_distance = true;
  auto index = BuildIndex(opts);
  ASSERT_NE(index, nullptr);
  auto hits = index->KnnQuery(store_.Get(0), 10);
  ASSERT_TRUE(hits.ok());
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i].semantic_distance,
              (*hits)[i - 1].semantic_distance - 1e-12);
  }
}

TEST_F(PipelineTest, DistributedIndexAgreesWithSinglePartition) {
  SemanticIndexOptions single;
  single.fastmap.dimensions = 6;
  auto a = BuildIndex(single);
  SemanticIndexOptions distributed = single;
  distributed.max_partitions = 5;
  distributed.partition_capacity = store_.size() / 5;
  distributed.build_client_threads = 4;
  auto b = BuildIndex(distributed);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(b->tree().PartitionCount(), 1u);
  Rng rng(23);
  for (int q = 0; q < 10; ++q) {
    const Triple& query = store_.Get(rng.Uniform(store_.size()));
    auto ha = a->KnnQuery(query, 8);
    auto hb = b->KnnQuery(query, 8);
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(hb.ok());
    ASSERT_EQ(ha->size(), hb->size());
    for (size_t i = 0; i < ha->size(); ++i) {
      EXPECT_EQ((*ha)[i].id, (*hb)[i].id);
      EXPECT_NEAR((*ha)[i].embedded_distance, (*hb)[i].embedded_distance,
                  1e-9);
    }
  }
}

TEST_F(PipelineTest, FindsSeededInconsistencies) {
  auto index = BuildIndex({});
  ASSERT_NE(index, nullptr);
  // Locate a seeded contradiction and verify the query-by-example flow
  // of §II surfaces it.
  Rng rng(29);
  bool exercised = false;
  for (size_t attempts = 0; attempts < 500 && !exercised; ++attempts) {
    TripleId id = rng.Uniform(store_.size());
    const Triple& source = store_.Get(id);
    auto truth = GroundTruthInconsistencies(store_, source, vocab_);
    if (truth.empty()) continue;
    auto target = MakeTargetTriple(source, vocab_, &rng);
    ASSERT_TRUE(target.ok());
    auto hits = index->KnnQuery(*target, 10);
    ASSERT_TRUE(hits.ok());
    size_t found = 0;
    for (const auto& hit : *hits) {
      if (std::find(truth.begin(), truth.end(), hit.id) != truth.end()) {
        ++found;
      }
    }
    EXPECT_GT(found, 0u) << "target " << target->ToString();
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "corpus seeded no recoverable inconsistency";
}

TEST_F(PipelineTest, MetricAuditCleanOnCorpusSample) {
  auto dist = TripleDistance::Make(&vocab_);
  ASSERT_TRUE(dist.ok());
  std::vector<Triple> sample(store_.triples().begin(),
                             store_.triples().begin() +
                                 std::min<size_t>(200, store_.size()));
  auto report = AuditMetric(sample, *dist, 30000);
  EXPECT_EQ(report.identity_violations, 0u);
  EXPECT_EQ(report.symmetry_violations, 0u);
  EXPECT_EQ(report.range_violations, 0u);
}

TEST_F(PipelineTest, VocabularyRoundTripPreservesQueryResults) {
  // Serialize the vocabulary, reload it, rebuild the index: results
  // must be identical (the on-disk format carries everything the
  // pipeline needs).
  std::string path = ::testing::TempDir() + "/pipeline_vocab.txt";
  ASSERT_TRUE(SaveVocabularyFile(vocab_, path).ok());
  auto reloaded = LoadVocabularyFile(path);
  ASSERT_TRUE(reloaded.ok());

  SemanticIndexOptions opts;
  opts.fastmap.dimensions = 4;
  auto a = SemanticIndex::Build(&vocab_, store_.triples(), opts);
  auto b = SemanticIndex::Build(&*reloaded, store_.triples(), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Triple& query = store_.Get(11);
  auto ha = (*a)->KnnQuery(query, 5);
  auto hb = (*b)->KnnQuery(query, 5);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  ASSERT_EQ(ha->size(), hb->size());
  for (size_t i = 0; i < ha->size(); ++i) {
    EXPECT_EQ((*ha)[i].id, (*hb)[i].id);
  }
}

TEST_F(PipelineTest, WeightAblationChangesNeighbourhoods) {
  // With gamma = 1 (object only), triples sharing an object must
  // dominate the neighbourhood of a query.
  SemanticIndexOptions opts;
  opts.weights = TripleDistanceWeights{0.0, 0.0, 1.0};
  auto index = BuildIndex(opts);
  ASSERT_NE(index, nullptr);
  const Triple& query = store_.Get(3);
  auto hits = index->KnnQuery(query, 5);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    EXPECT_NEAR(hit.semantic_distance, 0.0, 0.35)
        << index->triple(hit.id).ToString();
  }
}

TEST_F(PipelineTest, TurtleExportImportOfCorpus) {
  std::string text = SerializeTriples(store_.triples());
  auto parsed = ParseTriples(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), store_.size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_EQ((*parsed)[i], store_.Get(i));
  }
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Edge-case tests for the SemanticIndex facade: degenerate corpora,
// extreme weights, determinism of query embedding, and option
// interplay (bulk load + persistence, distributed + rerank).

#include <gtest/gtest.h>

#include "nlp/requirements_corpus.h"
#include "ontology/requirements_vocabulary.h"
#include "semtree/index_io.h"
#include "semtree/semantic_index.h"

namespace semtree {
namespace {

class SemanticIndexEdgeTest : public ::testing::Test {
 protected:
  SemanticIndexEdgeTest() : vocab_(RequirementsVocabulary()) {}

  static Triple Req(const std::string& actor, const std::string& fn,
                    const std::string& param) {
    return Triple(Term::Literal(actor), Term::Concept(fn, "Fun"),
                  Term::Concept(param, "CmdType"));
  }

  Taxonomy vocab_;
};

TEST_F(SemanticIndexEdgeTest, SingleTripleCorpus) {
  std::vector<Triple> corpus = {Req("OBSW001", "accept_cmd",
                                    "startup_cmd")};
  auto index = SemanticIndex::Build(&vocab_, corpus, {});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->size(), 1u);
  auto hits = (*index)->KnnQuery(corpus[0], 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, 0u);
  EXPECT_NEAR((*hits)[0].semantic_distance, 0.0, 1e-12);
}

TEST_F(SemanticIndexEdgeTest, AllIdenticalTriples) {
  std::vector<Triple> corpus(20, Req("OBSW001", "accept_cmd",
                                     "startup_cmd"));
  auto index = SemanticIndex::Build(&vocab_, corpus, {});
  ASSERT_TRUE(index.ok());
  // Degenerate embedding: everything at the origin; queries still work.
  EXPECT_EQ((*index)->fastmap().effective_dimensions(), 0u);
  auto hits = (*index)->KnnQuery(corpus[0], 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
  auto range = (*index)->RangeQuery(corpus[0], 0.0);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 20u);
}

TEST_F(SemanticIndexEdgeTest, TwoClustersSeparateCleanly) {
  // Two well-separated families; k-NN inside one must not leak into
  // the other.
  std::vector<Triple> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(Req("OBSW00" + std::to_string(i % 3), "accept_cmd",
                         "startup_cmd"));
  }
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(Triple(
        Term::Literal("PSU90" + std::to_string(i % 3)),
        Term::Concept("power_on", "Fun"),
        Term::Concept("battery", "DevType")));
  }
  SemanticIndexOptions opts;
  opts.fastmap.dimensions = 4;
  auto index = SemanticIndex::Build(&vocab_, corpus, opts);
  ASSERT_TRUE(index.ok());
  auto hits = (*index)->KnnQuery(corpus[0], 10);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    EXPECT_LT(hit.id, 10u) << "leaked into the power cluster";
  }
}

TEST_F(SemanticIndexEdgeTest, ExtremeWeightsStillWork) {
  RequirementsCorpusGenerator gen(&vocab_, {.num_documents = 5,
                                            .seed = 7});
  auto triples = gen.GenerateTriples();
  ASSERT_TRUE(triples.ok());
  for (TripleDistanceWeights w :
       {TripleDistanceWeights{1.0, 0.0, 0.0},
        TripleDistanceWeights{0.0, 1.0, 0.0},
        TripleDistanceWeights{0.0, 0.0, 1.0}}) {
    SemanticIndexOptions opts;
    opts.weights = w;
    opts.fastmap.dimensions = 4;
    auto index = SemanticIndex::Build(&vocab_, *triples, opts);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto hits = (*index)->KnnQuery((*triples)[0], 3);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(hits->size(), 3u);
  }
}

TEST_F(SemanticIndexEdgeTest, EmbedIsDeterministic) {
  RequirementsCorpusGenerator gen(&vocab_, {.num_documents = 5,
                                            .seed = 9});
  auto triples = gen.GenerateTriples();
  ASSERT_TRUE(triples.ok());
  auto index = SemanticIndex::Build(&vocab_, *triples, {});
  ASSERT_TRUE(index.ok());
  Triple query = Req("GHOST99", "block_cmd", "reset");
  EXPECT_EQ((*index)->Embed(query), (*index)->Embed(query));
  // A different query embeds differently (non-degenerate space).
  Triple other(Term::Literal("PSU123"),
               Term::Concept("power_off", "Fun"),
               Term::Concept("battery", "DevType"));
  EXPECT_NE((*index)->Embed(query), (*index)->Embed(other));
}

TEST_F(SemanticIndexEdgeTest, BulkLoadPersistReloadPipeline) {
  RequirementsCorpusGenerator gen(&vocab_, {.num_documents = 8,
                                            .seed = 11});
  auto triples = gen.GenerateTriples();
  ASSERT_TRUE(triples.ok());
  SemanticIndexOptions opts;
  opts.fastmap.dimensions = 6;
  opts.bulk_load = true;
  opts.max_partitions = 5;
  auto index = SemanticIndex::Build(&vocab_, *triples, opts);
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->tree().PartitionCount(), 1u);

  // Persist the distributed, bulk-loaded index; reload single-node.
  std::string text = SerializeIndex(**index);
  auto bundle = ParseIndex(text);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const Triple& query = (*triples)[3];
  auto a = (*index)->KnnQuery(query, 6);
  auto b = bundle->index->KnnQuery(query, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].id, (*b)[i].id);
  }
}

TEST_F(SemanticIndexEdgeTest, HitsExposeBothDistances) {
  RequirementsCorpusGenerator gen(&vocab_, {.num_documents = 5,
                                            .seed = 13});
  auto triples = gen.GenerateTriples();
  ASSERT_TRUE(triples.ok());
  auto index = SemanticIndex::Build(&vocab_, *triples, {});
  ASSERT_TRUE(index.ok());
  const Triple& query = (*triples)[1];
  auto hits = (*index)->KnnQuery(query, 8);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    // Semantic distance recomputed exactly.
    EXPECT_DOUBLE_EQ(
        hit.semantic_distance,
        (*index)->SemanticDistance(query, (*index)->triple(hit.id)));
    EXPECT_GE(hit.embedded_distance, 0.0);
  }
  // Without rerank, ordering follows the embedded distance.
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i].embedded_distance,
              (*hits)[i - 1].embedded_distance - 1e-12);
  }
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Tests for the QueryEngine subsystem: batched/concurrent execution
// must be byte-identical to sequential single-query execution across
// every SpatialIndex backend and the distributed SemTree, the sharded
// result cache must hit on repeats and invalidate on mutation (epoch
// bump), and the coalesced distributed batch protocol must spend fewer
// messages than one RPC per query.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/backends.h"
#include "core/query.h"
#include "core/versioned_index.h"
#include "engine/query_engine.h"
#include "engine/result_cache.h"
#include "semtree/semtree.h"

namespace semtree {
namespace {

std::vector<std::vector<double>> RandomVectors(size_t n, size_t dims,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out(n);
  for (auto& v : out) {
    v.resize(dims);
    for (double& c : v) c = rng.UniformDouble(-1.0, 1.0);
  }
  return out;
}

// A mixed batch: alternating k-NN and range queries over perturbed
// corpus points.
std::vector<SpatialQuery> MixedBatch(
    const std::vector<std::vector<double>>& queries) {
  std::vector<SpatialQuery> batch;
  batch.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % 2 == 0) {
      batch.push_back(SpatialQuery::Knn(queries[i], 1 + i % 7));
    } else {
      batch.push_back(SpatialQuery::Range(queries[i], 0.3 + 0.1 * (i % 5)));
    }
  }
  return batch;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance) << context;
  }
}

// ---------------------------------------------------------------------
// Batched == sequential across every SpatialIndex backend.

class EngineBackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(EngineBackendTest, BatchMatchesSequential) {
  const size_t kDims = 5;
  auto rows = RandomVectors(500, kDims, 21);

  BackendOptions bopts;
  bopts.bucket_size = 16;
  auto index = MakeSpatialIndex(GetParam(), kDims, bopts);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(index->Insert(rows[i], PointId(i)).ok());
  }

  QueryEngineOptions opts;
  opts.threads = 4;
  opts.min_queries_per_task = 4;
  QueryEngine engine(index.get(), opts);

  auto batch = MixedBatch(RandomVectors(48, kDims, 22));
  auto result = engine.Run(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->outcomes.size(), batch.size());
  EXPECT_EQ(result->stats.queries, batch.size());
  EXPECT_EQ(result->stats.knn_queries + result->stats.range_queries,
            batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<Neighbor> want =
        batch[i].type == QueryType::kKnn
            ? index->KnnSearch(batch[i].coords, batch[i].k)
            : index->RangeSearch(batch[i].coords, batch[i].radius);
    ExpectSameNeighbors(result->outcomes[i].neighbors, want,
                        std::string(index->name()) + " query " +
                            std::to_string(i));
  }

  // Second run of the same batch: served from cache, still identical.
  auto again = engine.Run(batch);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache_hits, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(again->outcomes[i].from_cache);
    ExpectSameNeighbors(again->outcomes[i].neighbors,
                        result->outcomes[i].neighbors, "cached");
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EngineBackendTest,
                         ::testing::Values(BackendKind::kKdTree,
                                           BackendKind::kVpTree,
                                           BackendKind::kMTree,
                                           BackendKind::kLinearScan),
                         [](const auto& info) {
                           return std::string(BackendName(info.param));
                         });

// ---------------------------------------------------------------------
// Epoch hook

TEST(EpochTest, MutationsBumpTheEpoch) {
  for (BackendKind kind :
       {BackendKind::kKdTree, BackendKind::kLinearScan,
        BackendKind::kVpTree, BackendKind::kMTree}) {
    auto index = MakeSpatialIndex(kind, 2);
    EXPECT_EQ(index->epoch(), 0u) << BackendName(kind);
    ASSERT_TRUE(index->Insert({0.1, 0.2}, 1).ok());
    EXPECT_EQ(index->epoch(), 1u) << BackendName(kind);
    // Failed mutations leave the epoch alone.
    EXPECT_FALSE(index->Insert({0.1}, 2).ok());
    EXPECT_EQ(index->epoch(), 1u) << BackendName(kind);
    Status removed = index->Remove({0.1, 0.2}, 1);
    if (removed.ok()) {
      EXPECT_EQ(index->epoch(), 2u) << BackendName(kind);
    } else {
      EXPECT_TRUE(removed.IsNotSupported());
      EXPECT_EQ(index->epoch(), 1u) << BackendName(kind);
    }
  }
}

// ---------------------------------------------------------------------
// Cache invalidation: a mutation after a cached query must surface
// fresh results, not the stale cached ones.

TEST(EngineCacheTest, InsertInvalidatesCachedResults) {
  const size_t kDims = 3;
  auto rows = RandomVectors(200, kDims, 31);
  auto index = MakeSpatialIndex(BackendKind::kKdTree, kDims);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(index->Insert(rows[i], PointId(i)).ok());
  }
  QueryEngine engine(index.get());

  std::vector<double> q(kDims, 0.0);
  std::vector<SpatialQuery> batch = {SpatialQuery::Knn(q, 3)};

  auto before = engine.Run(batch);
  ASSERT_TRUE(before.ok());
  uint64_t epoch_before = engine.epoch();

  // Cached now: a repeat is a hit.
  auto repeat = engine.Run(batch);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->stats.cache_hits, 1u);

  // Insert a point at the query location — the new nearest neighbour.
  ASSERT_TRUE(engine.Insert(q, 9999).ok());
  EXPECT_GT(engine.epoch(), epoch_before);

  auto after = engine.Run(batch);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->outcomes[0].from_cache);  // Epoch changed: miss.
  ASSERT_FALSE(after->outcomes[0].neighbors.empty());
  EXPECT_EQ(after->outcomes[0].neighbors[0].id, 9999u);
  EXPECT_DOUBLE_EQ(after->outcomes[0].neighbors[0].distance, 0.0);

  // Remove it again: another epoch bump, results revert to the
  // original set (computed fresh, not replayed from the stale entry).
  ASSERT_TRUE(engine.Remove(q, 9999).ok());
  auto reverted = engine.Run(batch);
  ASSERT_TRUE(reverted.ok());
  EXPECT_FALSE(reverted->outcomes[0].from_cache);
  ExpectSameNeighbors(reverted->outcomes[0].neighbors,
                      before->outcomes[0].neighbors, "post-remove");
}

TEST(EngineCacheTest, RangeResultsInvalidateToo) {
  const size_t kDims = 2;
  auto index = MakeSpatialIndex(BackendKind::kLinearScan, kDims);
  ASSERT_TRUE(index->Insert({1.0, 0.0}, 1).ok());
  QueryEngine engine(index.get());

  std::vector<SpatialQuery> batch = {
      SpatialQuery::Range({0.0, 0.0}, 0.5)};
  auto empty = engine.Run(batch);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->outcomes[0].neighbors.empty());

  ASSERT_TRUE(engine.Insert({0.1, 0.0}, 2).ok());
  auto hit = engine.Run(batch);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->outcomes[0].neighbors.size(), 1u);
  EXPECT_EQ(hit->outcomes[0].neighbors[0].id, 2u);
}

TEST(EngineCacheTest, DisabledCacheNeverHits) {
  auto index = MakeSpatialIndex(BackendKind::kLinearScan, 2);
  ASSERT_TRUE(index->Insert({0.5, 0.5}, 1).ok());
  QueryEngineOptions opts;
  opts.cache_capacity = 0;
  QueryEngine engine(index.get(), opts);
  EXPECT_FALSE(engine.cache_enabled());
  std::vector<SpatialQuery> batch = {SpatialQuery::Knn({0.0, 0.0}, 1)};
  for (int i = 0; i < 3; ++i) {
    auto r = engine.Run(batch);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.cache_hits, 0u);
  }
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ShardedResultCache cache(/*shards=*/1, /*total_capacity=*/2);
  auto key = [](double x) {
    return CacheKey::Make(SpatialQuery::Knn({x}, 1), /*epoch=*/0);
  };
  cache.Put(key(1.0), {Neighbor{1, 0.0}});
  cache.Put(key(2.0), {Neighbor{2, 0.0}});
  std::vector<Neighbor> out;
  ASSERT_TRUE(cache.Lookup(key(1.0), &out));  // Refresh 1.0.
  cache.Put(key(3.0), {Neighbor{3, 0.0}});    // Evicts 2.0.
  EXPECT_TRUE(cache.Lookup(key(1.0), &out));
  EXPECT_FALSE(cache.Lookup(key(2.0), &out));
  EXPECT_TRUE(cache.Lookup(key(3.0), &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------
// Validation

TEST(EngineTest, RejectsMalformedQueriesUpFront) {
  auto index = MakeSpatialIndex(BackendKind::kKdTree, 3);
  QueryEngine engine(index.get());
  EXPECT_TRUE(engine
                  .Run({SpatialQuery::Knn({1.0, 2.0}, 1)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine
                  .Run({SpatialQuery::Range({1.0, 2.0, 3.0}, -1.0)})
                  .status()
                  .IsInvalidArgument());
  auto empty = engine.Run({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->outcomes.empty());
}

TEST(EngineTest, RejectsNonFiniteQueriesUpFront) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  auto index = MakeSpatialIndex(BackendKind::kKdTree, 2);
  ASSERT_TRUE(index->Insert({0.0, 0.0}, 1).ok());
  QueryEngine engine(index.get());
  EXPECT_TRUE(engine.Run({SpatialQuery::Knn({nan, 0.0}, 1)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine.Run({SpatialQuery::Range({0.0, inf}, 1.0)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine.Run({SpatialQuery::Range({0.0, 0.0}, nan)})
                  .status()
                  .IsInvalidArgument());
}

TEST(EngineCacheTest, MetricIsPartOfTheCacheKey) {
  // Same query, same epoch, different metric: distinct cache slots —
  // a result computed under one geometry must never satisfy a query
  // under another.
  SpatialQuery q = SpatialQuery::Knn({1.0, 2.0}, 3);
  CacheKey l2 = CacheKey::Make(q, /*epoch=*/5, Metric::kL2);
  CacheKey l1 = CacheKey::Make(q, /*epoch=*/5, Metric::kL1);
  EXPECT_FALSE(l2 == l1);
  EXPECT_TRUE(l2 == CacheKey::Make(q, 5, Metric::kL2));

  ShardedResultCache cache(2, 16);
  cache.Put(l2, {Neighbor{1, 0.5}});
  std::vector<Neighbor> out;
  EXPECT_FALSE(cache.Lookup(l1, &out));
  EXPECT_TRUE(cache.Lookup(l2, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
}

// ---------------------------------------------------------------------
// Distributed target: the coalesced batch protocol.

std::unique_ptr<SemTree> MakeLoadedTree(
    const std::vector<std::vector<double>>& rows, size_t partitions) {
  SemTreeOptions opts;
  opts.dimensions = rows[0].size();
  opts.bucket_size = 8;
  opts.max_partitions = partitions;
  opts.partition_capacity = 64;
  auto tree = SemTree::Create(opts);
  EXPECT_TRUE(tree.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE((*tree)->Insert(rows[i], PointId(i)).ok());
  }
  return std::move(*tree);
}

TEST(DistributedBatchTest, MatchesSequentialAcrossPartitions) {
  const size_t kDims = 4;
  auto rows = RandomVectors(600, kDims, 41);
  auto tree = MakeLoadedTree(rows, /*partitions=*/5);
  ASSERT_GT(tree->PartitionCount(), 1u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  auto batch = MixedBatch(RandomVectors(40, kDims, 42));
  DistributedSearchStats stats;
  auto results = tree->BatchSearch(batch, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), batch.size());
  EXPECT_GT(stats.partitions_visited, 0u);

  for (size_t i = 0; i < batch.size(); ++i) {
    auto want = batch[i].type == QueryType::kKnn
                    ? tree->KnnSearch(batch[i].coords, batch[i].k)
                    : tree->RangeSearch(batch[i].coords, batch[i].radius);
    ASSERT_TRUE(want.ok());
    ExpectSameNeighbors((*results)[i], *want,
                        "distributed query " + std::to_string(i));
  }
}

TEST(DistributedBatchTest, RejectsNonFiniteQueries) {
  // The raw SemTree surface must reject what the backends reject: a
  // NaN query would poison the partition walks' heap ordering.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto rows = RandomVectors(64, 3, 77);
  auto tree = MakeLoadedTree(rows, 2);
  EXPECT_TRUE(
      tree->KnnSearch({nan, 0.0, 0.0}, 3).status().IsInvalidArgument());
  EXPECT_TRUE(tree->RangeSearch({0.0, 0.0, 0.0}, nan)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(tree->BatchSearch({SpatialQuery::Knn({nan, 0.0, 0.0}, 2)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      tree->BatchSearch({SpatialQuery::Range({0.0, 0.0, 0.0}, nan)})
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(tree->KnnSearch({0.1, 0.1, 0.1}, 3).ok());
}

TEST(DistributedBatchTest, KZeroReturnsEmptyEverywhere) {
  // k == 0 must not dereference the empty result heap in the batch
  // traversal (or the single-query handler it shares its step with).
  auto rows = RandomVectors(200, 3, 91);
  auto tree = MakeLoadedTree(rows, /*partitions=*/3);
  ASSERT_GT(tree->PartitionCount(), 1u);
  auto res = tree->BatchSearch({SpatialQuery::Knn(rows[0], 0)});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE((*res)[0].empty());
  auto single = tree->KnnSearch(rows[0], 0);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single->empty());
}

TEST(DistributedBatchTest, CoalescingSpendsFewerMessagesThanPerQueryRpcs) {
  const size_t kDims = 4;
  auto rows = RandomVectors(600, kDims, 51);
  auto tree = MakeLoadedTree(rows, /*partitions=*/5);
  ASSERT_GT(tree->PartitionCount(), 1u);

  auto batch = MixedBatch(RandomVectors(32, kDims, 52));

  uint64_t before_seq = tree->NetworkStats().messages;
  for (const SpatialQuery& q : batch) {
    if (q.type == QueryType::kKnn) {
      ASSERT_TRUE(tree->KnnSearch(q.coords, q.k).ok());
    } else {
      ASSERT_TRUE(tree->RangeSearch(q.coords, q.radius).ok());
    }
  }
  uint64_t sequential = tree->NetworkStats().messages - before_seq;

  uint64_t before_batch = tree->NetworkStats().messages;
  ASSERT_TRUE(tree->BatchSearch(batch).ok());
  uint64_t batched = tree->NetworkStats().messages - before_batch;

  // The whole point of coalescing: per-partition sub-queries share
  // messages, so the batch spends strictly less interconnect traffic.
  EXPECT_LT(batched, sequential);
  // And at minimum the per-query request/response pairs collapse into
  // far fewer envelopes than 2 * |batch|.
  EXPECT_LT(batched, 2 * batch.size());
}

TEST(DistributedBatchTest, EngineOverSemTreeMatchesAndCaches) {
  const size_t kDims = 4;
  auto rows = RandomVectors(400, kDims, 61);
  auto tree = MakeLoadedTree(rows, /*partitions=*/4);

  QueryEngineOptions opts;
  opts.threads = 3;
  opts.min_queries_per_task = 4;
  QueryEngine engine(tree.get(), opts);

  auto batch = MixedBatch(RandomVectors(30, kDims, 62));
  auto result = engine.Run(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t i = 0; i < batch.size(); ++i) {
    auto want = batch[i].type == QueryType::kKnn
                    ? tree->KnnSearch(batch[i].coords, batch[i].k)
                    : tree->RangeSearch(batch[i].coords, batch[i].radius);
    ASSERT_TRUE(want.ok());
    ExpectSameNeighbors(result->outcomes[i].neighbors, *want,
                        "engine/semtree query " + std::to_string(i));
  }

  // Repeat: all hits. Mutate through the engine: epoch advances and the
  // repeat is computed fresh.
  auto again = engine.Run(batch);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache_hits, batch.size());
  ASSERT_TRUE(engine.Insert(batch[0].coords, 7777).ok());
  auto fresh = engine.Run(batch);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->stats.cache_hits, 0u);
  ASSERT_FALSE(fresh->outcomes[0].neighbors.empty());
  EXPECT_EQ(fresh->outcomes[0].neighbors[0].id, 7777u);
}

// ---------------------------------------------------------------------
// Concurrency: many client threads sharing one engine, with mutations
// interleaved, must produce exactly-sequential results afterwards and
// internally consistent ones throughout.

TEST(EngineConcurrencyTest, ParallelClientsWithInterleavedMutations) {
  const size_t kDims = 4;
  const size_t kClients = 6;
  auto rows = RandomVectors(400, kDims, 71);
  auto index = MakeSpatialIndex(BackendKind::kKdTree, kDims);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(index->Insert(rows[i], PointId(i)).ok());
  }
  QueryEngineOptions opts;
  opts.threads = 4;
  opts.min_queries_per_task = 2;
  QueryEngine engine(index.get(), opts);

  auto queries = RandomVectors(64, kDims, 72);
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Rng rng(80 + c);
      for (int round = 0; round < 10; ++round) {
        std::vector<SpatialQuery> batch;
        for (int j = 0; j < 8; ++j) {
          const auto& q = queries[rng.Uniform(queries.size())];
          if (j % 2 == 0) {
            batch.push_back(SpatialQuery::Knn(q, 4));
          } else {
            batch.push_back(SpatialQuery::Range(q, 0.6));
          }
        }
        auto result = engine.Run(batch);
        if (!result.ok()) {
          failed.store(true);
          return;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          const auto& hits = result->outcomes[i].neighbors;
          if (batch[i].type == QueryType::kKnn && hits.size() > 4) {
            failed.store(true);
          }
          for (size_t r = 1; r < hits.size(); ++r) {
            if (!NeighborDistanceThenId(hits[r - 1], hits[r])) {
              failed.store(true);  // Ordering violated.
            }
          }
        }
        // One client also mutates, exercising epoch invalidation under
        // concurrent readers.
        if (c == 0) {
          std::vector<double> p = queries[rng.Uniform(queries.size())];
          (void)engine.Insert(p, PointId(100000 + round));
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_FALSE(failed.load());

  // Quiescent again: batched results must equal sequential ones.
  auto batch = MixedBatch(queries);
  auto result = engine.Run(batch);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<Neighbor> want =
        batch[i].type == QueryType::kKnn
            ? index->KnnSearch(batch[i].coords, batch[i].k)
            : index->RangeSearch(batch[i].coords, batch[i].radius);
    ExpectSameNeighbors(result->outcomes[i].neighbors, want,
                        "post-churn query " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------
// Engine over the RCU target (DESIGN.md §11): the cache is keyed at
// the version each search actually pinned, so results can never leak
// across versions, and per-version invalidation evicts exactly the
// drained versions' entries.

TEST(EngineRcuTest, CachedResultsNeverLeakAcrossVersions) {
  VersionedIndex index(2);
  ASSERT_TRUE(index.Insert({5.0, 0.0}, 1).ok());
  ASSERT_TRUE(index.Insert({6.0, 0.0}, 2).ok());

  QueryEngineOptions options;
  options.threads = 2;
  QueryEngine engine(&index, options);
  ASSERT_TRUE(engine.cache_enabled());

  // Version V: nearest to the origin is id 1, and the repeat is a
  // cache hit keyed at V.
  const auto q = SpatialQuery::Knn({0.0, 0.0}, 1);
  auto first = engine.RunOne(q);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  ASSERT_EQ(first->neighbors.size(), 1u);
  EXPECT_EQ(first->neighbors[0].id, 1u);
  auto repeat = engine.RunOne(q);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->from_cache);
  EXPECT_EQ(repeat->neighbors[0].id, 1u);

  // Version V+1 puts a closer point in. The V-keyed entry must not be
  // served: the same query misses and sees the new point.
  ASSERT_TRUE(engine.Insert({1.0, 0.0}, 3).ok());
  auto after = engine.RunOne(q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);
  ASSERT_EQ(after->neighbors.size(), 1u);
  EXPECT_EQ(after->neighbors[0].id, 3u);

  // And V+1's own entry is warm on repeat.
  auto warm = engine.RunOne(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->neighbors[0].id, 3u);
}

TEST(EngineRcuTest, MutationsEvictDrainedVersionEntries) {
  VersionedIndex index(2);
  ASSERT_TRUE(index.Insert({1.0, 1.0}, 10).ok());

  QueryEngineOptions options;
  options.threads = 2;
  QueryEngine engine(&index, options);

  // Cache one result at the current version.
  const auto q = SpatialQuery::Knn({0.0, 0.0}, 1);
  ASSERT_TRUE(engine.RunOne(q).ok());
  EXPECT_EQ(engine.cache_stats().insertions, 1u);

  // With no reader pinned, a mutation drains the old version
  // immediately; the engine sweeps its entries out of the cache.
  ASSERT_TRUE(engine.Insert({2.0, 2.0}, 11).ok());
  EXPECT_EQ(index.oldest_live_epoch(), index.epoch());
  const auto stats = engine.cache_stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
}

// EvictEpochsBelow must drop exactly the entries below the watermark:
// a reader still pinned to version V keeps V's entries, and versions
// newer than the watermark stay warm untouched.
TEST(ResultCacheTest, EvictEpochsBelowSparesNewerVersions) {
  ShardedResultCache cache(4, 64);
  const auto knn = SpatialQuery::Knn({1.0, 2.0}, 3);
  const auto other = SpatialQuery::Knn({9.0, 9.0}, 3);
  const std::vector<Neighbor> value = {{7, 0.5}};

  // The same query cached at three consecutive versions, plus an
  // unrelated query at the oldest.
  cache.Put(CacheKey::Make(knn, 1), value);
  cache.Put(CacheKey::Make(knn, 2), value);
  cache.Put(CacheKey::Make(knn, 3), value);
  cache.Put(CacheKey::Make(other, 1), value);
  EXPECT_EQ(cache.size(), 4u);

  // Watermark 2: exactly the two epoch-1 entries go.
  EXPECT_EQ(cache.EvictEpochsBelow(2), 2u);
  EXPECT_EQ(cache.size(), 2u);
  std::vector<Neighbor> out;
  EXPECT_FALSE(cache.Lookup(CacheKey::Make(knn, 1), &out));
  EXPECT_FALSE(cache.Lookup(CacheKey::Make(other, 1), &out));
  EXPECT_TRUE(cache.Lookup(CacheKey::Make(knn, 2), &out));
  EXPECT_TRUE(cache.Lookup(CacheKey::Make(knn, 3), &out));

  // Re-running the sweep at the same watermark is a no-op.
  EXPECT_EQ(cache.EvictEpochsBelow(2), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// Lock-free end-to-end: batches run against the RCU index while a
// writer mutates through the engine, with the cache on. Quiesced
// results must match the index searched directly.
TEST(EngineRcuTest, ConcurrentBatchesOverRcuIndexStayCoherent) {
  const size_t kDims = 3;
  VersionedIndex::Options vopts;
  vopts.merge_threshold = 32;
  VersionedIndex index(kDims, vopts);
  auto coords = RandomVectors(128, kDims, 17);
  {
    std::vector<KdPoint> corpus(coords.size());
    for (size_t i = 0; i < coords.size(); ++i) {
      corpus[i] = {coords[i], PointId(i)};
    }
    ASSERT_TRUE(index.BulkLoad(corpus).ok());
  }

  QueryEngineOptions options;
  options.threads = 3;
  QueryEngine engine(&index, options);

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (size_t i = 0; i < 200; ++i) {
      if (!engine.Insert(coords[i % coords.size()],
                         PointId(200000 + i)).ok()) {
        failed.store(true);
      }
    }
  });
  for (size_t round = 0; round < 20; ++round) {
    std::vector<SpatialQuery> batch;
    for (size_t i = 0; i < 16; ++i) {
      batch.push_back(
          SpatialQuery::Knn(coords[(round * 16 + i) % coords.size()], 5));
    }
    auto result = engine.Run(batch);
    if (!result.ok()) failed.store(true);
  }
  writer.join();
  ASSERT_FALSE(failed.load());

  ASSERT_TRUE(index.Freeze().ok());
  auto probe = SpatialQuery::Knn(coords[0], 8);
  auto got = engine.RunOne(probe);
  ASSERT_TRUE(got.ok());
  auto want = index.KnnSearch(probe.coords, probe.k);
  ExpectSameNeighbors(got->neighbors, want, "post-churn RCU probe");
}

}  // namespace
}  // namespace semtree

// Copyright 2026 The SemTree Authors
//
// Tests for src/fastmap. Strategy: (a) exact recovery properties on
// genuinely Euclidean inputs, (b) behavioural properties (pivot spread,
// query projection consistency) on the semantic triple distance.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/triple_distance.h"
#include "fastmap/fastmap.h"
#include "nlp/requirements_corpus.h"
#include "ontology/requirements_vocabulary.h"

namespace semtree {
namespace {

// Distance oracle over a synthetic Euclidean point set.
class EuclideanOracle {
 public:
  EuclideanOracle(size_t n, size_t dims, uint64_t seed) {
    Rng rng(seed);
    points_.resize(n);
    for (auto& p : points_) {
      p.resize(dims);
      for (double& c : p) c = rng.UniformDouble(-10.0, 10.0);
    }
  }

  double operator()(size_t i, size_t j) const {
    double sum = 0.0;
    for (size_t d = 0; d < points_[i].size(); ++d) {
      double diff = points_[i][d] - points_[j][d];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  }

  size_t size() const { return points_.size(); }

 private:
  std::vector<std::vector<double>> points_;
};

TEST(FastMapTest, RejectsBadArguments) {
  IndexDistanceFn zero = [](size_t, size_t) { return 0.0; };
  EXPECT_FALSE(FastMap::Train(0, zero, {}).ok());
  FastMapOptions no_dims;
  no_dims.dimensions = 0;
  EXPECT_FALSE(FastMap::Train(3, zero, no_dims).ok());
  EXPECT_FALSE(FastMap::Train(3, nullptr, {}).ok());
}

TEST(FastMapTest, SinglePointEmbedsAtOrigin) {
  IndexDistanceFn zero = [](size_t, size_t) { return 0.0; };
  auto fm = FastMap::Train(1, zero, {});
  ASSERT_TRUE(fm.ok());
  EXPECT_EQ(fm->size(), 1u);
  EXPECT_EQ(fm->effective_dimensions(), 0u);
  for (double c : fm->Coordinates(0)) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(FastMapTest, IdenticalPointsAreDegenerate) {
  IndexDistanceFn zero = [](size_t, size_t) { return 0.0; };
  auto fm = FastMap::Train(10, zero, {});
  ASSERT_TRUE(fm.ok());
  EXPECT_EQ(fm->effective_dimensions(), 0u);
  EXPECT_DOUBLE_EQ(
      FastMap::EmbeddedDistance(fm->Coordinates(3), fm->Coordinates(7)),
      0.0);
}

TEST(FastMapTest, TwoPointsPreserveTheirDistance) {
  IndexDistanceFn d = [](size_t i, size_t j) {
    return i == j ? 0.0 : 5.0;
  };
  FastMapOptions opts;
  opts.dimensions = 3;
  auto fm = FastMap::Train(2, d, opts);
  ASSERT_TRUE(fm.ok());
  EXPECT_NEAR(
      FastMap::EmbeddedDistance(fm->Coordinates(0), fm->Coordinates(1)),
      5.0, 1e-9);
}

TEST(FastMapTest, RecoversEuclideanDistancesExactly) {
  // Points drawn from R^4, embedded with k=4: FastMap recovers the
  // pairwise distances (it is exact when k matches the intrinsic
  // dimensionality of a Euclidean input).
  const size_t kDims = 4;
  EuclideanOracle oracle(60, kDims, 7);
  FastMapOptions opts;
  opts.dimensions = kDims;
  auto fm = FastMap::Train(oracle.size(),
                           [&](size_t i, size_t j) { return oracle(i, j); },
                           opts);
  ASSERT_TRUE(fm.ok());
  double worst = 0.0;
  for (size_t i = 0; i < oracle.size(); ++i) {
    for (size_t j = i + 1; j < oracle.size(); ++j) {
      double emb = FastMap::EmbeddedDistance(fm->Coordinates(i),
                                             fm->Coordinates(j));
      worst = std::max(worst, std::fabs(emb - oracle(i, j)));
    }
  }
  EXPECT_LT(worst, 1e-6);
}

TEST(FastMapTest, EmbeddedDistanceNeverExceedsOriginalOnEuclidean) {
  // With fewer axes than the intrinsic dimension the embedding is a
  // projection: distances can only shrink.
  EuclideanOracle oracle(80, 6, 11);
  FastMapOptions opts;
  opts.dimensions = 3;
  auto fm = FastMap::Train(oracle.size(),
                           [&](size_t i, size_t j) { return oracle(i, j); },
                           opts);
  ASSERT_TRUE(fm.ok());
  for (size_t i = 0; i < oracle.size(); ++i) {
    for (size_t j = i + 1; j < oracle.size(); j += 3) {
      double emb = FastMap::EmbeddedDistance(fm->Coordinates(i),
                                             fm->Coordinates(j));
      EXPECT_LE(emb, oracle(i, j) + 1e-6);
    }
  }
}

TEST(FastMapTest, MoreDimensionsReduceStress) {
  EuclideanOracle oracle(120, 8, 13);
  IndexDistanceFn d = [&](size_t i, size_t j) { return oracle(i, j); };
  double prev = 1e18;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    FastMapOptions opts;
    opts.dimensions = k;
    auto fm = FastMap::Train(oracle.size(), d, opts);
    ASSERT_TRUE(fm.ok());
    double stress = fm->SampleStress(d, 4000);
    EXPECT_LE(stress, prev + 1e-9) << "k=" << k;
    prev = stress;
  }
  EXPECT_LT(prev, 1e-6);  // k=8 matches the intrinsic dimension.
}

TEST(FastMapTest, ProjectMapsTrainingPointsOntoThemselves) {
  EuclideanOracle oracle(40, 4, 17);
  IndexDistanceFn d = [&](size_t i, size_t j) { return oracle(i, j); };
  FastMapOptions opts;
  opts.dimensions = 4;
  auto fm = FastMap::Train(oracle.size(), d, opts);
  ASSERT_TRUE(fm.ok());
  // Re-projecting a training object through the query path must land on
  // its training coordinates.
  for (size_t q = 0; q < oracle.size(); q += 5) {
    std::vector<double> projected =
        fm->Project([&](size_t train) { return oracle(q, train); });
    std::vector<double> trained = fm->Coordinates(q);
    ASSERT_EQ(projected.size(), trained.size());
    for (size_t axis = 0; axis < projected.size(); ++axis) {
      EXPECT_NEAR(projected[axis], trained[axis], 1e-6) << "axis " << axis;
    }
  }
}

TEST(FastMapTest, DeterministicForSameSeed) {
  EuclideanOracle oracle(50, 5, 19);
  IndexDistanceFn d = [&](size_t i, size_t j) { return oracle(i, j); };
  FastMapOptions opts;
  opts.dimensions = 4;
  opts.seed = 99;
  auto a = FastMap::Train(oracle.size(), d, opts);
  auto b = FastMap::Train(oracle.size(), d, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->flat_coordinates(), b->flat_coordinates());
  EXPECT_EQ(a->pivots(), b->pivots());
}

TEST(FastMapTest, PivotsAreDistinctPerAxis) {
  EuclideanOracle oracle(50, 5, 23);
  FastMapOptions opts;
  opts.dimensions = 5;
  auto fm = FastMap::Train(oracle.size(),
                           [&](size_t i, size_t j) { return oracle(i, j); },
                           opts);
  ASSERT_TRUE(fm.ok());
  for (auto [a, b] : fm->pivots()) EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------
// On the semantic triple distance

class FastMapSemanticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = RequirementsVocabulary();
    RequirementsCorpusGenerator gen(&vocab_, {.num_documents = 20,
                                              .seed = 29});
    auto triples = gen.GenerateTriples();
    ASSERT_TRUE(triples.ok());
    triples_ = std::move(*triples);
    auto dist = TripleDistance::Make(&vocab_);
    ASSERT_TRUE(dist.ok());
    distance_ = std::make_unique<TripleDistance>(std::move(*dist));
  }

  Taxonomy vocab_;
  std::vector<Triple> triples_;
  std::unique_ptr<TripleDistance> distance_;
};

TEST_F(FastMapSemanticTest, EmbedsTriplesWithModerateStress) {
  IndexDistanceFn d = [&](size_t i, size_t j) {
    return (*distance_)(triples_[i], triples_[j]);
  };
  FastMapOptions opts;
  opts.dimensions = 8;
  auto fm = FastMap::Train(triples_.size(), d, opts);
  ASSERT_TRUE(fm.ok());
  EXPECT_GT(fm->effective_dimensions(), 0u);
  // Distances live in [0,1]; the embedding should track them well below
  // the trivial error level.
  EXPECT_LT(fm->SampleStress(d, 5000), 0.25);
}

TEST_F(FastMapSemanticTest, SimilarTriplesEmbedCloserThanDissimilar) {
  IndexDistanceFn d = [&](size_t i, size_t j) {
    return (*distance_)(triples_[i], triples_[j]);
  };
  FastMapOptions opts;
  opts.dimensions = 8;
  auto fm = FastMap::Train(triples_.size(), d, opts);
  ASSERT_TRUE(fm.ok());
  // Rank correlation on a sample: for random triples (a, b, c) with
  // d(a,b) much smaller than d(a,c), the embedded order should agree
  // most of the time.
  Rng rng(31);
  size_t agree = 0, total = 0;
  for (int s = 0; s < 3000; ++s) {
    size_t a = rng.Uniform(triples_.size());
    size_t b = rng.Uniform(triples_.size());
    size_t c = rng.Uniform(triples_.size());
    double dab = d(a, b), dac = d(a, c);
    if (std::fabs(dab - dac) < 0.2) continue;  // Only clear-cut cases.
    double eab = FastMap::EmbeddedDistance(fm->Coordinates(a),
                                           fm->Coordinates(b));
    double eac = FastMap::EmbeddedDistance(fm->Coordinates(a),
                                           fm->Coordinates(c));
    agree += ((dab < dac) == (eab < eac));
    ++total;
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(agree) / total, 0.85);
}

}  // namespace
}  // namespace semtree

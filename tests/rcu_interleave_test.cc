// Copyright 2026 The SemTree Authors
//
// Deterministic interleaving stress for the RCU version list. The
// thread-safety-annotation PR hardened three racy shapes found in this
// codebase — Cluster::Shutdown's unlocked running flag racing a late
// Route, VpTreeIndex's unlocked tree reset racing readers, and
// ThreadPool's unlocked thread counter — and this suite replays each
// shape as a barrier-scheduled script against the epoch/version-list
// machinery, with fixed seeds and fixed handoff points so every run
// exercises the same interleaving. Assertions at exclusive handoffs
// are exact; the concurrent windows in between are what the TSan and
// ASan CI legs chew on.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/backends.h"
#include "core/epoch.h"
#include "core/point.h"
#include "core/versioned_index.h"

namespace semtree {
namespace {

/// Totally-ordered two-thread scheduler: each action runs at its own
/// step number, so the interleaving is the same script every run.
class StepScript {
 public:
  void Await(int step) {
    while (step_.load(std::memory_order_acquire) < step) {
      std::this_thread::yield();
    }
  }
  void Advance() { step_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<int> step_{0};
};

std::vector<KdPoint> FixedCorpus(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<KdPoint> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].id = i;
    out[i].coords.resize(dims);
    for (double& c : out[i].coords) c = rng.UniformDouble(-1.0, 1.0);
  }
  return out;
}

void ExpectSortedValidHits(const std::vector<Neighbor>& hits, size_t k) {
  EXPECT_LE(hits.size(), k);
  for (size_t i = 1; i < hits.size(); ++i) {
    const bool ordered =
        hits[i - 1].distance < hits[i].distance ||
        (hits[i - 1].distance == hits[i].distance &&
         hits[i - 1].id < hits[i].id);
    EXPECT_TRUE(ordered) << "result not sorted (distance, id) at " << i;
  }
}

// ---------------------------------------------------------------------
// Shape 1 — "shutdown vs late route": teardown retires state while a
// request is still in flight. Here the writer publishes a replacement
// and retires the old version while a reader pinned *before* the
// publish still holds the old pointer; a second reader that pins
// *after* the retire (the truly late arrival) must not extend the old
// version's life. Exact limbo counts at every handoff; the in-flight
// reader's final dereference is the ASan tripwire.

TEST(RcuInterleaveTest, ShutdownVsLateRouteShape) {
  EpochManager em;
  RetireList limbo;

  auto* version_a = new std::vector<int>{1, 2, 3};
  auto* version_b = new std::vector<int>{4, 5, 6};
  std::atomic<std::vector<int>*> published{version_a};
  std::atomic<bool> a_freed{false};

  StepScript script;
  std::vector<int>* in_flight = nullptr;
  size_t in_flight_slot = 0;

  std::thread reader([&] {
    // Step 1: the "route" starts — pin, load the current version.
    script.Await(1);
    in_flight_slot = em.Pin();
    in_flight = published.load(std::memory_order_seq_cst);
    EXPECT_EQ(in_flight, version_a);
    script.Advance();  // -> 2

    // Step 3: teardown has already retired A; the in-flight request
    // finishes against it anyway. ASan flags this dereference if
    // reclamation jumped the gun.
    script.Await(3);
    EXPECT_FALSE(a_freed.load(std::memory_order_seq_cst));
    int sum = 0;
    for (int x : *in_flight) sum += x;
    EXPECT_EQ(sum, 6);
    em.Unpin(in_flight_slot);
    script.Advance();  // -> 4
  });

  std::thread late_reader([&] {
    // Step 5: pins only after A was retired — announces a newer epoch,
    // so it must NOT keep A alive.
    script.Await(5);
    const size_t slot = em.Pin();
    EXPECT_EQ(published.load(std::memory_order_seq_cst), version_b);
    script.Advance();  // -> 6

    script.Await(7);
    em.Unpin(slot);
    script.Advance();  // -> 8
  });

  // Step 0: initial state published.
  script.Advance();  // -> 1, releases reader.

  // Step 2: "shutdown" — publish B, retire A, attempt reclaim. The
  // pre-publish reader pins the retire epoch, so limbo must hold A.
  script.Await(2);
  published.store(version_b, std::memory_order_seq_cst);
  const uint64_t retire_epoch = em.Advance();
  limbo.Retire(retire_epoch, retire_epoch, [&, version_a] {
    a_freed.store(true, std::memory_order_seq_cst);
    delete version_a;
  });
  EXPECT_EQ(limbo.ReclaimBefore(em.MinActiveEpoch()), 0u);
  EXPECT_EQ(limbo.size(), 1u);
  EXPECT_FALSE(a_freed.load(std::memory_order_seq_cst));
  script.Advance();  // -> 3, releases the in-flight dereference.

  // Step 4: in-flight reader drained; A is now reclaimable...
  script.Await(4);
  script.Advance();  // -> 5, ...but first let the late reader pin.

  // Step 6: late reader is pinned, yet its epoch is newer than the
  // retire epoch — reclamation must proceed.
  script.Await(6);
  EXPECT_EQ(em.ActiveReaders(), 1u);
  EXPECT_EQ(limbo.ReclaimBefore(em.MinActiveEpoch()), 1u);
  EXPECT_TRUE(a_freed.load(std::memory_order_seq_cst));
  EXPECT_TRUE(limbo.empty());
  script.Advance();  // -> 7

  script.Await(8);
  reader.join();
  late_reader.join();
  EXPECT_EQ(em.ActiveReaders(), 0u);
  delete version_b;
}

// ---------------------------------------------------------------------
// Shape 2 — "reset vs read": the VP-tree adapter used to drop and
// rebuild its tree while readers walked it. The versioned index's
// merge is exactly that reset, made safe: each round below overlaps a
// fixed batch of reads with inserts sized to trigger a base rebuild,
// then checks exact counters at the exclusive handoff. Fixed seeds,
// fixed per-round op counts, merge_threshold 4 so nearly every round
// retires a base tree under the readers' feet.

TEST(RcuInterleaveTest, ResetVsReadShape) {
  const size_t kDims = 3;
  const size_t kRounds = 8;
  const size_t kInsertsPerRound = 2;
  const size_t kReadsPerRound = 8;
  const size_t kK = 4;

  VersionedIndex::Options options;
  options.merge_threshold = 4;
  VersionedIndex index(kDims, options);
  auto corpus = FixedCorpus(16, kDims, 21);
  ASSERT_TRUE(index.BulkLoad(corpus).ok());
  const uint64_t epoch0 = index.epoch();
  const uint64_t merges0 = index.merges();

  std::barrier<> sync(2);
  std::atomic<uint64_t> reader_failures{0};

  std::thread reader([&] {
    Rng rng(31);
    uint64_t last_epoch = 0;
    for (size_t round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();  // Round opens: reads overlap inserts.
      for (size_t i = 0; i < kReadsPerRound; ++i) {
        const KdPoint& origin = corpus[rng.Uniform(corpus.size())];
        SearchStats stats;
        auto hits = index.KnnSearch(origin.coords, kK, SearchBudget{},
                                    &stats);
        ExpectSortedValidHits(hits, kK);
        if (hits.size() != kK ||  // Index never shrinks below 16.
            stats.version_epoch < last_epoch) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = stats.version_epoch;
      }
      sync.arrive_and_wait();  // Round closes: writer checks alone.
    }
  });

  Rng wrng(41);
  for (size_t round = 0; round < kRounds; ++round) {
    sync.arrive_and_wait();
    for (size_t i = 0; i < kInsertsPerRound; ++i) {
      std::vector<double> coords(kDims);
      for (double& c : coords) c = wrng.UniformDouble(-1.0, 1.0);
      ASSERT_TRUE(
          index.Insert(coords, 1000 + round * kInsertsPerRound + i).ok());
    }
    sync.arrive_and_wait();
    // Exclusive handoff: exact counter state after this round.
    const uint64_t inserted = (round + 1) * kInsertsPerRound;
    EXPECT_EQ(index.epoch(), epoch0 + inserted);
    EXPECT_EQ(index.size(), corpus.size() + inserted);
    // Merges run lazily at the start of the mutation that would
    // overflow the delta, so insert T+1 performs the first rebuild.
    EXPECT_EQ(index.merges(),
              merges0 + (inserted - 1) / options.merge_threshold);
    EXPECT_LE(index.delta_size(), options.merge_threshold);
  }
  reader.join();
  EXPECT_EQ(reader_failures.load(), 0u);

  // The other half of the original bug was set_metric's reset racing
  // reads. set_metric stays configuration-time even here, so it runs
  // in the quiesced tail — and must rebuild exactly once without
  // bumping the mutation epoch.
  const uint64_t epoch_before = index.epoch();
  const uint64_t merges_before = index.merges();
  ASSERT_TRUE(index.set_metric(Metric::kL1).ok());
  EXPECT_EQ(index.epoch(), epoch_before);
  EXPECT_EQ(index.merges(), merges_before + 1);
  auto hits = index.KnnSearch(corpus[0].coords, kK);
  ExpectSortedValidHits(hits, kK);
  ASSERT_EQ(hits.size(), kK);
  EXPECT_EQ(hits[0].id, corpus[0].id);  // Self-match under any metric.
}

// ---------------------------------------------------------------------
// Shape 3 — "unlocked counter": ThreadPool::num_threads() was read
// unlocked while another thread wrote it. The versioned index exposes
// the same temptation as lock-free counters (size, epoch,
// oldest_live_epoch, active_readers); a monitor thread hammers them
// mid-mutation — TSan proves the loads are synchronized — asserting
// only monotonicity and bounds, and the exclusive handoffs assert
// exact values.

TEST(RcuInterleaveTest, UnlockedCounterShape) {
  const size_t kDims = 2;
  const size_t kRounds = 6;
  const size_t kInsertsPerRound = 16;
  const size_t kRemovesPerRound = 8;

  VersionedIndex::Options options;
  options.merge_threshold = 4096;  // No merges: counter math is exact.
  VersionedIndex index(kDims, options);
  auto corpus = FixedCorpus(8, kDims, 51);
  ASSERT_TRUE(index.BulkLoad(corpus).ok());
  const uint64_t epoch0 = index.epoch();

  std::barrier<> sync(2);
  std::atomic<uint64_t> monitor_failures{0};

  std::thread monitor([&] {
    uint64_t last_epoch = 0;
    for (size_t round = 0; round < kRounds; ++round) {
      const size_t size_floor = corpus.size() +
          round * (kInsertsPerRound - kRemovesPerRound);
      const size_t size_ceil = size_floor + kInsertsPerRound;
      sync.arrive_and_wait();
      for (int probe = 0; probe < 400; ++probe) {
        // Oldest first: it can only trail epoch(), so loading it
        // before the (monotone) epoch keeps `oldest <= e` race-free.
        const uint64_t oldest = index.oldest_live_epoch();
        const uint64_t e = index.epoch();
        const size_t n = index.size();
        const bool ok = e >= last_epoch && n >= size_floor &&
                        n <= size_ceil && oldest <= e &&
                        index.active_readers() == 0;
        if (!ok) monitor_failures.fetch_add(1, std::memory_order_relaxed);
        last_epoch = e;
        std::this_thread::yield();
      }
      sync.arrive_and_wait();
    }
  });

  std::vector<KdPoint> window;
  PointId next_id = 5000;
  Rng wrng(61);
  for (size_t round = 0; round < kRounds; ++round) {
    sync.arrive_and_wait();
    for (size_t i = 0; i < kInsertsPerRound; ++i) {
      KdPoint p;
      p.id = next_id++;
      p.coords = {wrng.UniformDouble(), wrng.UniformDouble()};
      ASSERT_TRUE(index.Insert(p.coords, p.id).ok());
      window.push_back(std::move(p));
    }
    for (size_t i = 0; i < kRemovesPerRound; ++i) {
      ASSERT_TRUE(
          index.Remove(window.front().coords, window.front().id).ok());
      window.erase(window.begin());
    }
    sync.arrive_and_wait();
    // Exclusive handoff: every successful mutation bumped the epoch
    // exactly once, and with no reader pinned nothing lingers.
    const uint64_t ops = (round + 1) *
        (kInsertsPerRound + kRemovesPerRound);
    EXPECT_EQ(index.epoch(), epoch0 + ops);
    EXPECT_EQ(index.size(),
              corpus.size() + (round + 1) *
                  (kInsertsPerRound - kRemovesPerRound));
    EXPECT_EQ(index.oldest_live_epoch(), index.epoch());
    EXPECT_EQ(index.pending_reclaims(), 0u);
  }
  monitor.join();
  EXPECT_EQ(monitor_failures.load(), 0u);
}

}  // namespace
}  // namespace semtree
